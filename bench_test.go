// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation section (§5). Each benchmark runs a
// reduced-repetition version of the corresponding experiment (wall-clock
// budget: ~seconds per figure) and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	Figure  8 — dataset statistics table
//	Figure  9 — end-to-end vs MOSTCITED/MOSTRECENT (+speedup metric)
//	Figure 10 — cost-oblivious multi-tenant comparison
//	Figure 11 — cost-aware multi-tenant comparison
//	Figure 12 — model-correlation / noise grid
//	Figure 13 — cost-awareness lesion
//	Figure 14 — kernel training-set size
//	Figure 15 — hybrid lesion (+crossover metric)
//
// cmd/experiments prints the corresponding full tables.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/easeml"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

// benchCfg trades repetitions for benchmark wall-clock; cmd/experiments
// runs the full protocol.
var benchCfg = experiments.FigureConfig{RunsSmall: 10, RunsLarge: 2, TestUsers: 10, Seed: 1}

func finalAvg(r experiments.Result, series int) float64 {
	s := r.Series[series]
	return s.Avg[len(s.Avg)-1]
}

// BenchmarkEngine pits the async multi-device execution engine against the
// serialized single-device strategy on the same job set and seed: per worker
// count it reports the virtual-time makespan speedup (the §5.3.2 strategy
// comparison on an α=0.35 pool) and the wall-clock speedup (each simulated
// training sleeps TrainDelay, so engine concurrency is real). Final best
// models must be identical between the two runs — the engine changes the
// schedule, never the answers.
func BenchmarkEngine(b *testing.B) {
	const (
		gpus       = 24
		alpha      = 0.35
		seed       = 11
		trainDelay = 200 * time.Microsecond
	)
	jobs := []string{
		"{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[3]], []}}",
		"{input: {[Tensor[16, 16, 3]], []}, output: {[Tensor[2]], []}}",
		"{input: {[Tensor[6]], [next]}, output: {[Tensor[2]], []}}",
	}
	submitAll := func(svc *easeml.Service) []string {
		ids := make([]string, len(jobs))
		for i, prog := range jobs {
			job, err := svc.Submit(fmt.Sprintf("bench-%d", i), prog)
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = job.Name
		}
		return ids
	}
	for _, workers := range []int{4, 8, 24} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var serialWall, engineWall time.Duration
			var virtualSpeedup, utilization float64
			for i := 0; i < b.N; i++ {
				serial := easeml.NewService(easeml.ServiceConfig{
					GPUs: gpus, Seed: seed, Alpha: alpha, TrainDelay: trainDelay,
				})
				serialIDs := submitAll(serial)
				t0 := time.Now()
				if _, err := serial.RunRounds(1 << 20); err != nil {
					b.Fatal(err)
				}
				serialWall += time.Since(t0)

				eng := easeml.NewService(easeml.ServiceConfig{
					GPUs: gpus, Seed: seed, Alpha: alpha, Workers: workers, TrainDelay: trainDelay,
				})
				engIDs := submitAll(eng)
				sum, err := eng.DrainEngine(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				engineWall += sum.Wall
				virtualSpeedup = sum.Speedup
				utilization = sum.Utilization

				// The engine must not change the answers.
				for j := range serialIDs {
					sa, err := serial.Status(serialIDs[j])
					if err != nil {
						b.Fatal(err)
					}
					sb, err := eng.Status(engIDs[j])
					if err != nil {
						b.Fatal(err)
					}
					if sa.Best == nil || sb.Best == nil || sa.Best.Name != sb.Best.Name ||
						sa.Best.Accuracy != sb.Best.Accuracy {
						b.Fatalf("job %d best diverged: serial %+v vs engine %+v", j, sa.Best, sb.Best)
					}
				}
			}
			b.ReportMetric(virtualSpeedup, "virtual-speedup")
			b.ReportMetric(float64(serialWall)/float64(engineWall), "wall-speedup")
			b.ReportMetric(utilization, "utilization")
		})
	}
}

// schedBenchResult is one row of BENCH_scheduler.json.
type schedBenchResult struct {
	Tenants      int     `json:"tenants"`
	Rounds       int     `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	NsPerRound   float64 `json:"ns_per_round"`
}

var (
	schedBenchMu      sync.Mutex
	schedBenchResults = map[int]schedBenchResult{}
)

// writeSchedBench persists the accumulated multi-tenant scheduler
// throughput rows to BENCH_scheduler.json — the machine-readable perf
// trajectory CI uploads as an artifact. Rewritten after every
// sub-benchmark, so a filtered -bench run still leaves a valid file.
func writeSchedBench(b *testing.B) {
	schedBenchMu.Lock()
	defer schedBenchMu.Unlock()
	rows := make([]schedBenchResult, 0, len(schedBenchResults))
	for _, r := range schedBenchResults {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tenants < rows[j].Tenants })
	doc := struct {
		Benchmark string             `json:"benchmark"`
		Picker    string             `json:"picker"`
		Results   []schedBenchResult `json:"results"`
	}{
		Benchmark: "BenchmarkSchedulerMultiTenant",
		Picker:    "class-weighted(hybrid)",
		Results:   rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scheduler.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerMultiTenant measures end-to-end scheduling throughput
// — pick, train (instant simulated run), observe, record — as the tenant
// count scales from 1 to 64 under the default HYBRID picker wrapped in
// class-weighted fair sharing (tenants cycle through guaranteed /
// standard / best-effort). Every tenant submits one job; the serialized
// loop drains the whole job set. rounds/s is the headline metric; the
// results land in BENCH_scheduler.json to seed the perf trajectory.
func BenchmarkSchedulerMultiTenant(b *testing.B) {
	const program = "{input: {[Tensor[6]], [next]}, output: {[Tensor[2]], []}}"
	classes := []string{"guaranteed", "standard", "best-effort"}
	for _, tenants := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			totalRounds := 0
			var busy time.Duration
			for i := 0; i < b.N; i++ {
				quotas := make(map[string]easeml.TenantQuota, tenants)
				names := make([]string, tenants)
				for u := 0; u < tenants; u++ {
					names[u] = fmt.Sprintf("tenant-%03d", u)
					quotas[names[u]] = easeml.TenantQuota{Class: classes[u%len(classes)]}
				}
				svc := easeml.NewService(easeml.ServiceConfig{Seed: 17, Quotas: quotas})
				for _, name := range names {
					if _, err := svc.Submit(name, program); err != nil {
						b.Fatal(err)
					}
				}
				start := time.Now()
				ran, err := svc.RunRounds(1 << 20)
				if err != nil {
					b.Fatal(err)
				}
				busy += time.Since(start)
				totalRounds += ran
			}
			if totalRounds == 0 || busy <= 0 {
				b.Fatal("benchmark ran no rounds")
			}
			perSec := float64(totalRounds) / busy.Seconds()
			b.ReportMetric(perSec, "rounds/s")
			b.ReportMetric(float64(busy.Nanoseconds())/float64(totalRounds), "ns/round")
			schedBenchMu.Lock()
			schedBenchResults[tenants] = schedBenchResult{
				Tenants:      tenants,
				Rounds:       totalRounds,
				RoundsPerSec: perSec,
				NsPerRound:   float64(busy.Nanoseconds()) / float64(totalRounds),
			}
			schedBenchMu.Unlock()
			writeSchedBench(b)
		})
	}
}

func BenchmarkFigure08DatasetStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats := experiments.Figure8()
		if len(stats) != 6 {
			b.Fatalf("%d datasets", len(stats))
		}
	}
}

func BenchmarkFigure09EndToEnd(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "easeml-final-loss")
	b.ReportMetric(finalAvg(res, 1), "mostcited-final-loss")
	b.ReportMetric(finalAvg(res, 2), "mostrecent-final-loss")
	if s, ok := experiments.Figure9Speedup(res, 0.15); ok {
		b.ReportMetric(s, "speedup@0.15")
	}
}

func BenchmarkFigure10CostOblivious(b *testing.B) {
	// One representative pair per benchmark iteration: the real-quality
	// dataset plus one SYN instance (the full six-dataset sweep lives in
	// cmd/experiments).
	var deep, syn experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
		syn, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "deep-easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "deep-roundrobin-loss")
	b.ReportMetric(finalAvg(syn, 0), "syn-easeml-loss")
	b.ReportMetric(finalAvg(syn, 1), "syn-roundrobin-loss")
}

func BenchmarkFigure11CostAware(b *testing.B) {
	var deep experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			CostAware: true,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "roundrobin-loss")
	b.ReportMetric(finalAvg(deep, 2), "random-loss")
}

func BenchmarkFigure12Correlation(b *testing.B) {
	// Strong vs weak model correlation at α=1: stronger correlation must
	// help every scheduler (§5.3.1).
	var strong, weak experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		strong, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
		weak, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.01, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mid-budget worst-case losses (the Figure 12 panels).
	mid := len(strong.Series[0].Worst) / 2
	b.ReportMetric(strong.Series[0].Worst[mid], "strongcorr-worst@50")
	b.ReportMetric(weak.Series[0].Worst[mid], "weakcorr-worst@50")
}

func BenchmarkFigure13CostLesion(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure13(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "costaware-loss")
	b.ReportMetric(finalAvg(res, 1), "costoblivious-loss")
}

func BenchmarkFigure14KernelTraining(b *testing.B) {
	var res map[string]experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure14(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res["10%"], 0), "kernel10pct-loss")
	b.ReportMetric(finalAvg(res["50%"], 0), "kernel50pct-loss")
	b.ReportMetric(finalAvg(res["100%"], 0), "kernel100pct-loss")
}

func BenchmarkFigure15Hybrid(b *testing.B) {
	cfg := benchCfg
	cfg.RunsLarge = 1 // a full-budget 179CLASSIFIER replay is ~4s per run
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure15(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Early-budget (10%) losses: GREEDY ahead of ROUNDROBIN, HYBRID close
	// to GREEDY.
	g10 := res.Series[0].Avg[10]
	r10 := res.Series[1].Avg[10]
	h10 := res.Series[2].Avg[10]
	b.ReportMetric(g10, "greedy-loss@10")
	b.ReportMetric(r10, "roundrobin-loss@10")
	b.ReportMetric(h10, "hybrid-loss@10")
	if x, ok := experiments.Crossover(res.Series[0], res.Series[1]); ok {
		b.ReportMetric(x, "rr-overtakes-greedy@pct")
	}
}
