// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation section (§5). Each benchmark runs a
// reduced-repetition version of the corresponding experiment (wall-clock
// budget: ~seconds per figure) and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	Figure  8 — dataset statistics table
//	Figure  9 — end-to-end vs MOSTCITED/MOSTRECENT (+speedup metric)
//	Figure 10 — cost-oblivious multi-tenant comparison
//	Figure 11 — cost-aware multi-tenant comparison
//	Figure 12 — model-correlation / noise grid
//	Figure 13 — cost-awareness lesion
//	Figure 14 — kernel training-set size
//	Figure 15 — hybrid lesion (+crossover metric)
//
// cmd/experiments prints the corresponding full tables.
package repro

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

// benchCfg trades repetitions for benchmark wall-clock; cmd/experiments
// runs the full protocol.
var benchCfg = experiments.FigureConfig{RunsSmall: 10, RunsLarge: 2, TestUsers: 10, Seed: 1}

func finalAvg(r experiments.Result, series int) float64 {
	s := r.Series[series]
	return s.Avg[len(s.Avg)-1]
}

func BenchmarkFigure08DatasetStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats := experiments.Figure8()
		if len(stats) != 6 {
			b.Fatalf("%d datasets", len(stats))
		}
	}
}

func BenchmarkFigure09EndToEnd(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "easeml-final-loss")
	b.ReportMetric(finalAvg(res, 1), "mostcited-final-loss")
	b.ReportMetric(finalAvg(res, 2), "mostrecent-final-loss")
	if s, ok := experiments.Figure9Speedup(res, 0.15); ok {
		b.ReportMetric(s, "speedup@0.15")
	}
}

func BenchmarkFigure10CostOblivious(b *testing.B) {
	// One representative pair per benchmark iteration: the real-quality
	// dataset plus one SYN instance (the full six-dataset sweep lives in
	// cmd/experiments).
	var deep, syn experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
		syn, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "deep-easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "deep-roundrobin-loss")
	b.ReportMetric(finalAvg(syn, 0), "syn-easeml-loss")
	b.ReportMetric(finalAvg(syn, 1), "syn-roundrobin-loss")
}

func BenchmarkFigure11CostAware(b *testing.B) {
	var deep experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			CostAware: true,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "roundrobin-loss")
	b.ReportMetric(finalAvg(deep, 2), "random-loss")
}

func BenchmarkFigure12Correlation(b *testing.B) {
	// Strong vs weak model correlation at α=1: stronger correlation must
	// help every scheduler (§5.3.1).
	var strong, weak experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		strong, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
		weak, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.01, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mid-budget worst-case losses (the Figure 12 panels).
	mid := len(strong.Series[0].Worst) / 2
	b.ReportMetric(strong.Series[0].Worst[mid], "strongcorr-worst@50")
	b.ReportMetric(weak.Series[0].Worst[mid], "weakcorr-worst@50")
}

func BenchmarkFigure13CostLesion(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure13(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "costaware-loss")
	b.ReportMetric(finalAvg(res, 1), "costoblivious-loss")
}

func BenchmarkFigure14KernelTraining(b *testing.B) {
	var res map[string]experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure14(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res["10%"], 0), "kernel10pct-loss")
	b.ReportMetric(finalAvg(res["50%"], 0), "kernel50pct-loss")
	b.ReportMetric(finalAvg(res["100%"], 0), "kernel100pct-loss")
}

func BenchmarkFigure15Hybrid(b *testing.B) {
	cfg := benchCfg
	cfg.RunsLarge = 1 // a full-budget 179CLASSIFIER replay is ~4s per run
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure15(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Early-budget (10%) losses: GREEDY ahead of ROUNDROBIN, HYBRID close
	// to GREEDY.
	g10 := res.Series[0].Avg[10]
	r10 := res.Series[1].Avg[10]
	h10 := res.Series[2].Avg[10]
	b.ReportMetric(g10, "greedy-loss@10")
	b.ReportMetric(r10, "roundrobin-loss@10")
	b.ReportMetric(h10, "hybrid-loss@10")
	if x, ok := experiments.Crossover(res.Series[0], res.Series[1]); ok {
		b.ReportMetric(x, "rr-overtakes-greedy@pct")
	}
}
