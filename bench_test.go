// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation section (§5). Each benchmark runs a
// reduced-repetition version of the corresponding experiment (wall-clock
// budget: ~seconds per figure) and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates the whole evaluation:
//
//	Figure  8 — dataset statistics table
//	Figure  9 — end-to-end vs MOSTCITED/MOSTRECENT (+speedup metric)
//	Figure 10 — cost-oblivious multi-tenant comparison
//	Figure 11 — cost-aware multi-tenant comparison
//	Figure 12 — model-correlation / noise grid
//	Figure 13 — cost-awareness lesion
//	Figure 14 — kernel training-set size
//	Figure 15 — hybrid lesion (+crossover metric)
//
// cmd/experiments prints the corresponding full tables.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/easeml"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/server"
)

// benchCfg trades repetitions for benchmark wall-clock; cmd/experiments
// runs the full protocol.
var benchCfg = experiments.FigureConfig{RunsSmall: 10, RunsLarge: 2, TestUsers: 10, Seed: 1}

func finalAvg(r experiments.Result, series int) float64 {
	s := r.Series[series]
	return s.Avg[len(s.Avg)-1]
}

// BenchmarkEngine pits the async multi-device execution engine against the
// serialized single-device strategy on the same job set and seed: per worker
// count it reports the virtual-time makespan speedup (the §5.3.2 strategy
// comparison on an α=0.35 pool) and the wall-clock speedup (each simulated
// training sleeps TrainDelay, so engine concurrency is real). Final best
// models must be identical between the two runs — the engine changes the
// schedule, never the answers.
func BenchmarkEngine(b *testing.B) {
	const (
		gpus       = 24
		alpha      = 0.35
		seed       = 11
		trainDelay = 200 * time.Microsecond
	)
	jobs := []string{
		"{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[3]], []}}",
		"{input: {[Tensor[16, 16, 3]], []}, output: {[Tensor[2]], []}}",
		"{input: {[Tensor[6]], [next]}, output: {[Tensor[2]], []}}",
	}
	submitAll := func(svc *easeml.Service) []string {
		ids := make([]string, len(jobs))
		for i, prog := range jobs {
			job, err := svc.Submit(fmt.Sprintf("bench-%d", i), prog)
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = job.Name
		}
		return ids
	}
	for _, workers := range []int{4, 8, 24} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var serialWall, engineWall time.Duration
			var virtualSpeedup, utilization float64
			for i := 0; i < b.N; i++ {
				serial := easeml.NewService(easeml.ServiceConfig{
					GPUs: gpus, Seed: seed, Alpha: alpha, TrainDelay: trainDelay,
				})
				serialIDs := submitAll(serial)
				t0 := time.Now()
				if _, err := serial.RunRounds(1 << 20); err != nil {
					b.Fatal(err)
				}
				serialWall += time.Since(t0)

				eng := easeml.NewService(easeml.ServiceConfig{
					GPUs: gpus, Seed: seed, Alpha: alpha, Workers: workers, TrainDelay: trainDelay,
				})
				engIDs := submitAll(eng)
				sum, err := eng.DrainEngine(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				engineWall += sum.Wall
				virtualSpeedup = sum.Speedup
				utilization = sum.Utilization

				// The engine must not change the answers.
				for j := range serialIDs {
					sa, err := serial.Status(serialIDs[j])
					if err != nil {
						b.Fatal(err)
					}
					sb, err := eng.Status(engIDs[j])
					if err != nil {
						b.Fatal(err)
					}
					if sa.Best == nil || sb.Best == nil || sa.Best.Name != sb.Best.Name ||
						sa.Best.Accuracy != sb.Best.Accuracy {
						b.Fatalf("job %d best diverged: serial %+v vs engine %+v", j, sa.Best, sb.Best)
					}
				}
			}
			b.ReportMetric(virtualSpeedup, "virtual-speedup")
			b.ReportMetric(float64(serialWall)/float64(engineWall), "wall-speedup")
			b.ReportMetric(utilization, "utilization")
		})
	}
}

// schedBenchResult is one row of the multi-tenant throughput section of
// BENCH_scheduler.json.
type schedBenchResult struct {
	Tenants      int     `json:"tenants"`
	Rounds       int     `json:"rounds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	NsPerRound   float64 `json:"ns_per_round"`
}

// schedBenchDoc is the multi-tenant scheduler section of one trajectory
// entry.
type schedBenchDoc struct {
	Benchmark string             `json:"benchmark"`
	Picker    string             `json:"picker"`
	Results   []schedBenchResult `json:"results"`
}

// pickPathBench is the pick-path section of one trajectory entry: the
// selection-index implementation versus the deep-clone baseline on the
// same many-jobs scheduler state.
type pickPathBench struct {
	Benchmark          string  `json:"benchmark"`
	Jobs               int     `json:"jobs"`
	Arms               int     `json:"arms"`
	ObservedPerJob     int     `json:"observed_per_job"`
	DeepCloneNsPerIter float64 `json:"deep_clone_ns_per_iter"`
	IndexedNsPerIter   float64 `json:"indexed_ns_per_iter"`
	Speedup            float64 `json:"speedup"`
}

// ingestBench is the ingest section of one trajectory entry: acked Feed
// throughput under concurrent clients against a durable service, where
// every Feed is fsynced to the WAL before it returns. The baseline
// serializes one write+fsync per append — the pre-segmentation
// single-file WAL discipline — while group commit lets concurrent
// appends share one fsync.
type ingestBench struct {
	Benchmark               string  `json:"benchmark"`
	Feeders                 int     `json:"feeders"`
	FsyncBeforeAck          bool    `json:"fsync_before_ack"`
	FsyncPerAppendEventsSec float64 `json:"fsync_per_append_events_per_sec"`
	GroupCommitEventsSec    float64 `json:"group_commit_events_per_sec"`
	Speedup                 float64 `json:"speedup"`
}

// servingBench is the serving section of one trajectory entry: the online
// inference path over real HTTP. PerRequestQPS pays one round trip per
// prediction; BatchQPS and StreamQPS amortize the round trip, the job
// lookup and the best-model resolution over BatchSize inputs.
// PlanCacheHitRate is measured on the repeated-program submit workload
// that precedes the QPS runs.
type servingBench struct {
	Benchmark        string  `json:"benchmark"`
	BatchSize        int     `json:"batch_size"`
	PerRequestQPS    float64 `json:"per_request_qps"`
	BatchQPS         float64 `json:"batch_qps"`
	StreamQPS        float64 `json:"stream_qps"`
	BatchSpeedup     float64 `json:"batch_speedup"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
}

// fleetBench is the fleet section of one trajectory entry: coordinator
// lease-grant throughput under the plain poll protocol (every grant pays
// the full PickWork sweep) versus the speculative protocol (workers
// pre-score against cached posteriors and most grants take the
// epoch-validated fast path).
type fleetBench struct {
	Benchmark          string  `json:"benchmark"`
	Jobs               int     `json:"jobs"`
	Workers            int     `json:"workers"`
	Devices            int     `json:"devices"`
	PollGrantsPerSec   float64 `json:"poll_grants_per_sec"`
	SpecGrantsPerSec   float64 `json:"speculative_grants_per_sec"`
	PollNsPerGrant     float64 `json:"poll_ns_per_grant"`
	SpecNsPerGrant     float64 `json:"speculative_ns_per_grant"`
	SpeculativeHitRate float64 `json:"speculative_hit_rate"`
	Speedup            float64 `json:"speedup"`
}

// benchRun is one commit's entry in the benchmark trajectory.
type benchRun struct {
	Commit    string         `json:"commit"`
	Scheduler *schedBenchDoc `json:"scheduler,omitempty"`
	PickPath  *pickPathBench `json:"pick_path,omitempty"`
	Ingest    *ingestBench   `json:"ingest,omitempty"`
	Serving   *servingBench  `json:"serving,omitempty"`
	Fleet     *fleetBench    `json:"fleet,omitempty"`
}

// benchTrajectory is the BENCH_scheduler.json schema: one entry per
// commit, appended across runs (re-running on the same commit replaces
// that commit's sections in place), so the committed file accumulates the
// performance history instead of being overwritten per run. CI uploads
// the accumulated file as an artifact.
type benchTrajectory struct {
	Runs []benchRun `json:"runs"`
}

var (
	schedBenchMu      sync.Mutex
	schedBenchResults = map[int]schedBenchResult{}
)

// benchCommit identifies the commit a benchmark run belongs to:
// BENCH_COMMIT and GITHUB_SHA override, then the local git HEAD, then
// "uncommitted".
func benchCommit() string {
	if c := os.Getenv("BENCH_COMMIT"); c != "" {
		return c
	}
	if c := os.Getenv("GITHUB_SHA"); c != "" {
		if len(c) > 12 {
			c = c[:12]
		}
		return c
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if c := strings.TrimSpace(string(out)); c != "" {
			return c
		}
	}
	return "uncommitted"
}

// updateBenchTrajectory merges one section into the current commit's
// trajectory entry in BENCH_scheduler.json, preserving every other run.
// Called after each sub-benchmark, so a filtered -bench run still leaves a
// valid, fully-merged file.
func updateBenchTrajectory(b *testing.B, mutate func(*benchRun)) {
	b.Helper()
	schedBenchMu.Lock()
	defer schedBenchMu.Unlock()
	var doc benchTrajectory
	if data, err := os.ReadFile("BENCH_scheduler.json"); err == nil {
		// A parse failure (e.g. the pre-trajectory schema) starts a fresh
		// history rather than failing the benchmark.
		_ = json.Unmarshal(data, &doc)
	}
	commit := benchCommit()
	var run *benchRun
	for i := range doc.Runs {
		if doc.Runs[i].Commit == commit {
			run = &doc.Runs[i]
			break
		}
	}
	if run == nil {
		doc.Runs = append(doc.Runs, benchRun{Commit: commit})
		run = &doc.Runs[len(doc.Runs)-1]
	}
	mutate(run)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scheduler.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// writeSchedBench folds the accumulated multi-tenant throughput rows into
// the current commit's trajectory entry.
func writeSchedBench(b *testing.B) {
	schedBenchMu.Lock()
	rows := make([]schedBenchResult, 0, len(schedBenchResults))
	for _, r := range schedBenchResults {
		rows = append(rows, r)
	}
	schedBenchMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tenants < rows[j].Tenants })
	updateBenchTrajectory(b, func(run *benchRun) {
		run.Scheduler = &schedBenchDoc{
			Benchmark: "BenchmarkSchedulerMultiTenant",
			Picker:    "class-weighted(hybrid)",
			Results:   rows,
		}
	})
}

// BenchmarkSchedulerMultiTenant measures end-to-end scheduling throughput
// — pick, train (instant simulated run), observe, record — as the tenant
// count scales from 1 to 64 under the default HYBRID picker wrapped in
// class-weighted fair sharing (tenants cycle through guaranteed /
// standard / best-effort). Every tenant submits one job; the serialized
// loop drains the whole job set. rounds/s is the headline metric; the
// results land in BENCH_scheduler.json to seed the perf trajectory.
func BenchmarkSchedulerMultiTenant(b *testing.B) {
	const program = "{input: {[Tensor[6]], [next]}, output: {[Tensor[2]], []}}"
	classes := []string{"guaranteed", "standard", "best-effort"}
	for _, tenants := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			totalRounds := 0
			var busy time.Duration
			for i := 0; i < b.N; i++ {
				quotas := make(map[string]easeml.TenantQuota, tenants)
				names := make([]string, tenants)
				for u := 0; u < tenants; u++ {
					names[u] = fmt.Sprintf("tenant-%03d", u)
					quotas[names[u]] = easeml.TenantQuota{Class: classes[u%len(classes)]}
				}
				svc := easeml.NewService(easeml.ServiceConfig{Seed: 17, Quotas: quotas})
				for _, name := range names {
					if _, err := svc.Submit(name, program); err != nil {
						b.Fatal(err)
					}
				}
				start := time.Now()
				ran, err := svc.RunRounds(1 << 20)
				if err != nil {
					b.Fatal(err)
				}
				busy += time.Since(start)
				totalRounds += ran
			}
			if totalRounds == 0 || busy <= 0 {
				b.Fatal("benchmark ran no rounds")
			}
			perSec := float64(totalRounds) / busy.Seconds()
			b.ReportMetric(perSec, "rounds/s")
			b.ReportMetric(float64(busy.Nanoseconds())/float64(totalRounds), "ns/round")
			schedBenchMu.Lock()
			schedBenchResults[tenants] = schedBenchResult{
				Tenants:      tenants,
				Rounds:       totalRounds,
				RoundsPerSec: perSec,
				NsPerRound:   float64(busy.Nanoseconds()) / float64(totalRounds),
			}
			schedBenchMu.Unlock()
			writeSchedBench(b)
		})
	}
}

var (
	feedSatMu     sync.Mutex
	feedSatPerSec = map[string]float64{}
)

// BenchmarkFeedSaturation measures acked ingest throughput: 8 concurrent
// Feed clients split b.N appends against a durable service, and every
// Feed is fsynced to the WAL before it returns. fsync-per-append
// serializes one write+fsync per Feed under the log mutex — the
// pre-segmentation single-file WAL discipline — while group-commit runs
// the committer pipeline, so appends arriving during one fsync batch
// into the next. acked-events/s is the headline metric; both modes and
// their ratio land in BENCH_scheduler.json's ingest section.
func BenchmarkFeedSaturation(b *testing.B) {
	const (
		feeders = 8
		program = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	)
	for _, mode := range []struct {
		name     string
		interval time.Duration
	}{
		{"fsync-per-append", -1}, // serialized: one fsync per Feed, no committer
		{"group-commit", 0},      // committer pipeline: one fsync per batch
	} {
		b.Run(mode.name, func(b *testing.B) {
			svc, err := easeml.OpenService(easeml.ServiceConfig{
				GPUs: 4, Seed: 7, DataDir: b.TempDir(), WALSyncInterval: mode.interval,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			job, err := svc.Submit("sat", program)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < feeders; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if _, err := svc.Feed(job.Name, []float64{float64(i), 1, 2, 3}, []float64{0, 1}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			perSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "acked-events/s")
			feedSatMu.Lock()
			feedSatPerSec[mode.name] = perSec
			feedSatMu.Unlock()
		})
	}
	feedSatMu.Lock()
	base, group := feedSatPerSec["fsync-per-append"], feedSatPerSec["group-commit"]
	feedSatMu.Unlock()
	if base > 0 && group > 0 {
		b.ReportMetric(group/base, "speedup")
		updateBenchTrajectory(b, func(run *benchRun) {
			run.Ingest = &ingestBench{
				Benchmark:               "BenchmarkFeedSaturation",
				Feeders:                 feeders,
				FsyncBeforeAck:          true,
				FsyncPerAppendEventsSec: base,
				GroupCommitEventsSec:    group,
				Speedup:                 group / base,
			}
		})
	}
}

// BenchmarkPickWorkManyJobs measures the scheduler's selection hot path at
// scale — 256 jobs × 35 candidate arms, ~60% observed — comparing the
// cross-job selection index (dirty-epoch score heap + O(1) prefix-sharing
// hallucination shadows + rank-1 hallucination downdates) against the
// deep-clone baseline (full posterior clone per shadow batch + linear
// picker scan). One benchmark iteration is one steady-state engine
// exchange: lease a batch on top of a standing in-flight set, then hand it
// back. Before timing, both modes run the same iteration sequence and
// every lease must match arm for arm (and UCB bit for bit) — the index is
// a pure optimization, never a behavior change. The measured speedup lands
// in BENCH_scheduler.json's pick_path section.
func BenchmarkPickWorkManyJobs(b *testing.B) {
	const (
		jobs    = 256
		program = "{input: {[Tensor[16, 16, 3]], []}, output: {[Tensor[2]], []}}" // 35 candidates
		hold    = 8                                                               // standing in-flight leases
		batch   = 2                                                               // leases exchanged per iteration
	)
	var arms, observedPerJob int
	setup := func() *server.Scheduler {
		// The pure greedy policy (§4.3) keeps concentrating picks on the
		// max-gap job, so a standing in-flight set puts every measured pick
		// on the hallucination-shadow path — the regime the index exists
		// for. (HYBRID degrades to round-robin once frozen, which spreads
		// picks across no-in-flight jobs and measures only the common
		// O(J) sweep both modes share.)
		sc := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), 21), &core.GreedyPicker{}, "http://bench:9000")
		for i := 0; i < jobs; i++ {
			job, err := sc.Submit(fmt.Sprintf("bench-%03d", i), program)
			if err != nil {
				b.Fatal(err)
			}
			arms = len(job.Candidates)
		}
		// Observe ~60% of every job's arms so the posteriors carry a
		// realistic history (t ≈ 21): this is what makes the baseline's
		// O(t³) clone and O(K·t²) recomputes expensive.
		observedPerJob = arms * 6 / 10
		if _, err := sc.RunRounds(jobs * observedPerJob); err != nil {
			b.Fatal(err)
		}
		return sc
	}
	exchange := func(sc *server.Scheduler) []*server.Lease {
		leases, err := sc.PickWork(hold + batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range leases {
			if err := sc.Release(l); err != nil {
				b.Fatal(err)
			}
		}
		return leases
	}

	indexed := setup()
	deep := setup()
	deep.SetLegacySelection(true)

	// Standing in-flight set (never released): the picks under measurement
	// land on jobs that already have arms in flight, so every pick pays
	// the hallucination-shadow path.
	heldA, err := indexed.PickWork(hold)
	if err != nil {
		b.Fatal(err)
	}
	heldB, err := deep.PickWork(hold)
	if err != nil {
		b.Fatal(err)
	}
	if len(heldA) != hold || len(heldB) != hold {
		b.Fatalf("standing set: %d vs %d leases, want %d", len(heldA), len(heldB), hold)
	}

	// Bit-identity gate: the two modes must produce identical lease
	// sequences before either is timed.
	for i := 0; i < hold; i++ {
		if heldA[i].JobID != heldB[i].JobID || heldA[i].Arm != heldB[i].Arm || heldA[i].UCB != heldB[i].UCB {
			b.Fatalf("standing pick %d diverged: %s/%d@%v vs %s/%d@%v",
				i, heldA[i].JobID, heldA[i].Arm, heldA[i].UCB, heldB[i].JobID, heldB[i].Arm, heldB[i].UCB)
		}
	}
	for iter := 0; iter < 16; iter++ {
		la, lb := exchange(indexed), exchange(deep)
		if len(la) != len(lb) {
			b.Fatalf("iteration %d: %d vs %d leases", iter, len(la), len(lb))
		}
		for i := range la {
			if la[i].JobID != lb[i].JobID || la[i].Arm != lb[i].Arm || la[i].UCB != lb[i].UCB {
				b.Fatalf("iteration %d pick %d diverged: %s/%d@%v vs %s/%d@%v",
					iter, i, la[i].JobID, la[i].Arm, la[i].UCB, lb[i].JobID, lb[i].Arm, lb[i].UCB)
			}
		}
	}

	var deepNs, indexedNs float64
	run := func(sc *server.Scheduler, ns *float64) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := exchange(sc); len(got) == 0 {
					b.Fatal("exchange leased nothing")
				}
			}
			*ns = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		}
	}
	b.Run("deep-clone", run(deep, &deepNs))
	b.Run("indexed", run(indexed, &indexedNs))
	if deepNs > 0 && indexedNs > 0 {
		speedup := deepNs / indexedNs
		b.ReportMetric(speedup, "speedup")
		updateBenchTrajectory(b, func(run *benchRun) {
			run.PickPath = &pickPathBench{
				Benchmark:          "BenchmarkPickWorkManyJobs",
				Jobs:               jobs,
				Arms:               arms,
				ObservedPerJob:     observedPerJob,
				DeepCloneNsPerIter: deepNs,
				IndexedNsPerIter:   indexedNs,
				Speedup:            speedup,
			}
		})
	}
}

// benchFleetProposals ranks the open (untried, unleased) arms of a bench
// worker's cached posterior surfaces by UCB and returns the full ranking
// as speculative proposals, plus the known-epoch map — the agent's scoring
// loop, hand-rolled because the bench drives the coordinator in-process.
// Callers cache the result until a fresh posterior delta invalidates it.
func benchFleetProposals(post map[string]fleet.JobPosterior) ([]fleet.LeaseProposal, map[string]uint64) {
	epochs := make(map[string]uint64, len(post))
	type scored struct {
		p   fleet.LeaseProposal
		ucb float64
	}
	var cands []scored
	for id, s := range post {
		epochs[id] = s.Epoch
		if s.Done {
			continue
		}
		closed := make(map[int]bool, len(s.Tried)+len(s.Leased))
		for _, k := range s.Tried {
			closed[k] = true
		}
		for _, k := range s.Leased {
			closed[k] = true
		}
		for arm, u := range s.UCB {
			if !closed[arm] {
				cands = append(cands, scored{fleet.LeaseProposal{JobID: id, Arm: arm, Epoch: s.Epoch}, u})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ucb != cands[j].ucb {
			return cands[i].ucb > cands[j].ucb
		}
		if cands[i].p.JobID != cands[j].p.JobID {
			return cands[i].p.JobID < cands[j].p.JobID
		}
		return cands[i].p.Arm < cands[j].p.Arm
	})
	props := make([]fleet.LeaseProposal, len(cands))
	for i, c := range cands {
		props[i] = c.p
	}
	return props, epochs
}

// BenchmarkFleetLeaseThroughput measures coordinator lease-grant
// throughput: 256 jobs × 35 candidates, 8 registered workers driven
// serially in-process in a steady-state grant/release cycle (completions
// report a retryable failure, so candidates re-enter selection and the
// posterior never drains — the same exchange trick as
// BenchmarkPickWorkManyJobs). The poll mode takes the full PickWork path
// for every batch; the speculative mode proposes pre-scored (job, arm,
// epoch) triples and grants on the epoch-validated fast path. Only the
// coordinator's Lease call is on the clock — worker-side scoring runs
// between the timed sections, as it does in a real fleet. granted-leases/s
// per mode, their ratio and the speculative hit rate land in
// BENCH_scheduler.json's fleet section; the acceptance gate is ≥2×.
func BenchmarkFleetLeaseThroughput(b *testing.B) {
	const (
		jobs    = 256
		program = "{input: {[Tensor[16, 16, 3]], []}, output: {[Tensor[2]], []}}" // 35 candidates
		workers = 8
		devices = 4
	)
	type modeResult struct {
		grantsPerSec float64
		nsPerGrant   float64
		hitRate      float64
	}
	results := map[string]*modeResult{}
	run := func(name string, speculative bool) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			sc := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), 33), nil, "")
			for i := 0; i < jobs; i++ {
				if _, err := sc.Submit(fmt.Sprintf("fleet-%03d", i), program); err != nil {
					b.Fatal(err)
				}
			}
			// Observe a slice of every job so the surfaces carry history.
			if _, err := sc.RunRounds(jobs * 4); err != nil {
				b.Fatal(err)
			}
			coord := fleet.NewCoordinator(sc, fleet.CoordinatorConfig{
				Seed: 33, MaxRetries: 1 << 30, DisableSpeculative: !speculative,
			})
			// Each bench worker keeps a cached UCB ranking of its posterior
			// surfaces and re-scores only when a posterior delta arrives —
			// the same cache discipline as fleet.Agent, hand-rolled so the
			// untimed worker side stays allocation-quiet and the timed Lease
			// sections are not polluted by scoring garbage or GC.
			type wstate struct {
				id      string
				post    map[string]fleet.JobPosterior
				version uint64
				dirty   bool
				ranked  []fleet.LeaseProposal
				epochs  map[string]uint64
			}
			ws := make([]*wstate, workers)
			for i := range ws {
				reg := coord.Register(fleet.RegisterRequest{Name: fmt.Sprintf("bench-%d", i), Devices: devices})
				ws[i] = &wstate{id: reg.WorkerID, post: map[string]fleet.JobPosterior{}}
			}
			granted, proposed := 0, 0
			var leaseDur time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%workers]
				req := fleet.LeaseRequest{WorkerID: w.id, Max: devices}
				if speculative {
					if w.dirty {
						w.ranked, w.epochs = benchFleetProposals(w.post)
						w.dirty = false
					}
					req.Proposals, req.PosteriorEpochs = w.ranked, w.epochs
					req.PosteriorVersion = w.version
					if len(req.Proposals) > devices {
						req.Proposals = req.Proposals[:devices]
					}
					proposed += len(req.Proposals)
				}
				t0 := time.Now()
				resp, err := coord.Lease(req)
				leaseDur += time.Since(t0)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range resp.Posteriors {
					w.post[p.JobID] = p
					w.dirty = true
				}
				if resp.PosteriorVersion != 0 {
					w.version = resp.PosteriorVersion
				}
				granted += len(resp.Leases)
				for _, wl := range resp.Leases {
					cr, err := coord.Complete(fleet.CompleteRequest{
						WorkerID: w.id, LeaseID: wl.LeaseID, Error: "bench: steady-state release",
					})
					if err != nil {
						b.Fatal(err)
					}
					if cr.Posterior != nil {
						w.post[cr.Posterior.JobID] = *cr.Posterior
						w.dirty = true
					}
				}
			}
			b.StopTimer()
			if granted == 0 || leaseDur <= 0 {
				b.Fatal("benchmark granted no leases")
			}
			r := &modeResult{
				grantsPerSec: float64(granted) / leaseDur.Seconds(),
				nsPerGrant:   float64(leaseDur.Nanoseconds()) / float64(granted),
			}
			if speculative && proposed > 0 {
				r.hitRate = float64(sc.SelectionStats().SpeculativeGrants) / float64(proposed)
				b.ReportMetric(r.hitRate, "hit-rate")
			}
			b.ReportMetric(r.grantsPerSec, "granted-leases/s")
			b.ReportMetric(r.nsPerGrant, "ns/grant")
			schedBenchMu.Lock()
			results[name] = r
			schedBenchMu.Unlock()
		})
	}
	run("poll", false)
	run("speculative", true)
	schedBenchMu.Lock()
	poll, spec := results["poll"], results["speculative"]
	schedBenchMu.Unlock()
	if poll != nil && spec != nil {
		speedup := spec.grantsPerSec / poll.grantsPerSec
		b.ReportMetric(speedup, "speedup")
		updateBenchTrajectory(b, func(run *benchRun) {
			run.Fleet = &fleetBench{
				Benchmark:          "BenchmarkFleetLeaseThroughput",
				Jobs:               jobs,
				Workers:            workers,
				Devices:            devices,
				PollGrantsPerSec:   poll.grantsPerSec,
				SpecGrantsPerSec:   spec.grantsPerSec,
				PollNsPerGrant:     poll.nsPerGrant,
				SpecNsPerGrant:     spec.nsPerGrant,
				SpeculativeHitRate: spec.hitRate,
				Speedup:            speedup,
			}
		})
	}
}

func BenchmarkFigure08DatasetStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats := experiments.Figure8()
		if len(stats) != 6 {
			b.Fatalf("%d datasets", len(stats))
		}
	}
}

func BenchmarkFigure09EndToEnd(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "easeml-final-loss")
	b.ReportMetric(finalAvg(res, 1), "mostcited-final-loss")
	b.ReportMetric(finalAvg(res, 2), "mostrecent-final-loss")
	if s, ok := experiments.Figure9Speedup(res, 0.15); ok {
		b.ReportMetric(s, "speedup@0.15")
	}
}

func BenchmarkFigure10CostOblivious(b *testing.B) {
	// One representative pair per benchmark iteration: the real-quality
	// dataset plus one SYN instance (the full six-dataset sweep lives in
	// cmd/experiments).
	var deep, syn experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
		syn, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "deep-easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "deep-roundrobin-loss")
	b.ReportMetric(finalAvg(syn, 0), "syn-easeml-loss")
	b.ReportMetric(finalAvg(syn, 1), "syn-roundrobin-loss")
}

func BenchmarkFigure11CostAware(b *testing.B) {
	var deep experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		deep, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.DeepLearning(),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsSmall,
			CostAware: true,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML(), experiments.RoundRobin(), experiments.Random()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(deep, 0), "easeml-loss")
	b.ReportMetric(finalAvg(deep, 1), "roundrobin-loss")
	b.ReportMetric(finalAvg(deep, 2), "random-loss")
}

func BenchmarkFigure12Correlation(b *testing.B) {
	// Strong vs weak model correlation at α=1: stronger correlation must
	// help every scheduler (§5.3.1).
	var strong, weak experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		strong, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.5, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
		weak, err = experiments.Run(experiments.Protocol{
			Dataset:   dataset.Syn(0.01, 1.0),
			TestUsers: benchCfg.TestUsers,
			Runs:      benchCfg.RunsLarge,
			Seed:      benchCfg.Seed,
		}, []experiments.Strategy{experiments.EaseML()})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mid-budget worst-case losses (the Figure 12 panels).
	mid := len(strong.Series[0].Worst) / 2
	b.ReportMetric(strong.Series[0].Worst[mid], "strongcorr-worst@50")
	b.ReportMetric(weak.Series[0].Worst[mid], "weakcorr-worst@50")
}

func BenchmarkFigure13CostLesion(b *testing.B) {
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure13(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res, 0), "costaware-loss")
	b.ReportMetric(finalAvg(res, 1), "costoblivious-loss")
}

func BenchmarkFigure14KernelTraining(b *testing.B) {
	var res map[string]experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure14(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(finalAvg(res["10%"], 0), "kernel10pct-loss")
	b.ReportMetric(finalAvg(res["50%"], 0), "kernel50pct-loss")
	b.ReportMetric(finalAvg(res["100%"], 0), "kernel100pct-loss")
}

func BenchmarkFigure15Hybrid(b *testing.B) {
	cfg := benchCfg
	cfg.RunsLarge = 1 // a full-budget 179CLASSIFIER replay is ~4s per run
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure15(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Early-budget (10%) losses: GREEDY ahead of ROUNDROBIN, HYBRID close
	// to GREEDY.
	g10 := res.Series[0].Avg[10]
	r10 := res.Series[1].Avg[10]
	h10 := res.Series[2].Avg[10]
	b.ReportMetric(g10, "greedy-loss@10")
	b.ReportMetric(r10, "roundrobin-loss@10")
	b.ReportMetric(h10, "hybrid-loss@10")
	if x, ok := experiments.Crossover(res.Series[0], res.Series[1]); ok {
		b.ReportMetric(x, "rr-overtakes-greedy@pct")
	}
}

// BenchmarkInferQPS measures the online-serving path over real HTTP: one
// trained job behind httptest, driven through internal/client. per-request
// is the seed-era serving story (one POST per prediction); batch and
// stream answer the same inputs through POST /jobs/{id}/infer/batch and
// the NDJSON streaming endpoint. The setup also replays a repeated-program
// submit workload against a cold plan cache and records its hit rate; the
// acceptance gate is batch ≥ 3× per-request QPS and hit rate > 0.9, both
// persisted in the serving section of BENCH_scheduler.json.
func BenchmarkInferQPS(b *testing.B) {
	const (
		batchSize = 64
		tsProg    = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	)

	// Repeated-program workload against a cold cache: 50 tenants, one
	// program.
	dsl.ResetPlanCache()
	svc := easeml.NewService(easeml.ServiceConfig{GPUs: 4, Seed: 7})
	var jobID string
	for i := 0; i < 50; i++ {
		job, err := svc.Submit(fmt.Sprintf("bench-tenant-%d", i), tsProg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			jobID = job.Name
		}
	}
	hitRate := dsl.PlanCacheStats().HitRate()
	if _, err := svc.RunRounds(2); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := client.New(srv.URL)
	ctx := context.Background()
	inputs := make([][]float64, batchSize)
	for i := range inputs {
		inputs[i] = []float64{float64(i), 1, 2, 3}
	}

	var perRequestQPS, batchQPS, streamQPS float64
	b.Run("per-request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.Infer(ctx, jobID, inputs[i%batchSize]); err != nil {
				b.Fatal(err)
			}
		}
		perRequestQPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(perRequestQPS, "qps")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := cl.InferBatch(ctx, jobID, inputs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resp.Outputs) != batchSize {
				b.Fatalf("%d outputs", len(resp.Outputs))
			}
		}
		batchQPS = float64(b.N*batchSize) / b.Elapsed().Seconds()
		b.ReportMetric(batchQPS, "qps")
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if _, err := cl.InferStream(ctx, jobID, inputs, func(int, []float64) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if n != batchSize {
				b.Fatalf("%d stream lines", n)
			}
		}
		streamQPS = float64(b.N*batchSize) / b.Elapsed().Seconds()
		b.ReportMetric(streamQPS, "qps")
	})

	if perRequestQPS > 0 && batchQPS > 0 {
		speedup := batchQPS / perRequestQPS
		b.ReportMetric(speedup, "batch-speedup")
		b.ReportMetric(hitRate, "plan-cache-hit-rate")
		updateBenchTrajectory(b, func(run *benchRun) {
			run.Serving = &servingBench{
				Benchmark:        "BenchmarkInferQPS",
				BatchSize:        batchSize,
				PerRequestQPS:    perRequestQPS,
				BatchQPS:         batchQPS,
				StreamQPS:        streamQPS,
				BatchSpeedup:     speedup,
				PlanCacheHitRate: hitRate,
			}
		})
	}
}
