// Command datagen emits the benchmark datasets of Figure 8 (or a custom
// SYN(σM, α) instance) as CSV in the long format of internal/dataset.
//
// Usage:
//
//	datagen -dataset DEEPLEARNING|179CLASSIFIER|SYN [-sigma-m 0.5]
//	        [-alpha 1.0] [-users 200] [-models 100] [-out file.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	name := flag.String("dataset", "DEEPLEARNING", "dataset to emit (DEEPLEARNING, 179CLASSIFIER, SYN)")
	sigmaM := flag.Float64("sigma-m", 0.5, "SYN model-correlation strength")
	alpha := flag.Float64("alpha", 1.0, "SYN model-correlation weight")
	users := flag.Int("users", 200, "SYN user count")
	models := flag.Int("models", 100, "SYN model count")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "DEEPLEARNING":
		d = dataset.DeepLearning()
	case "179CLASSIFIER":
		d = dataset.Classifier179()
	case "SYN":
		d = dataset.SynSized(*sigmaM, *alpha, *users, *models)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d users × %d models\n", d.Name, d.NumUsers(), d.NumModels())
}
