// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) and prints them as text tables.
//
// Usage:
//
//	experiments [-fig all|8|9|10|11|12|13|14|15] [-runs-small 50]
//	            [-runs-large 10] [-test-users 10] [-seed 1]
//
// With the defaults the full suite takes a few minutes; -runs-large 50
// matches the paper's 50-repetition protocol exactly at ~5× the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (8..15, ablations, or all)")
	runsSmall := flag.Int("runs-small", 50, "repetitions on DEEPLEARNING")
	runsLarge := flag.Int("runs-large", 10, "repetitions on the 100+-model datasets")
	testUsers := flag.Int("test-users", 10, "test-set size")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	cfg := experiments.FigureConfig{
		RunsSmall: *runsSmall,
		RunsLarge: *runsLarge,
		TestUsers: *testUsers,
		Seed:      *seed,
	}
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[figure %s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("8", func() error {
		fmt.Println("=== Figure 8: dataset statistics ===")
		experiments.RenderStats(os.Stdout, experiments.Figure8())
		return nil
	})
	run("9", func() error {
		fmt.Println("=== Figure 9: end-to-end, DEEPLEARNING, cost-aware, 10% budget ===")
		res, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResult(os.Stdout, "Figure 9", res)
		printSpeedups(res)
		return nil
	})
	run("10", func() error {
		fmt.Println("=== Figure 10: cost-oblivious multi-tenant, all datasets ===")
		res, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResultMap(os.Stdout, "Figure 10", res)
		return nil
	})
	run("11", func() error {
		fmt.Println("=== Figure 11: cost-aware multi-tenant, all datasets ===")
		res, err := experiments.Figure11(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResultMap(os.Stdout, "Figure 11", res)
		return nil
	})
	run("12", func() error {
		fmt.Println("=== Figure 12: model correlation and noise (SYN grid) ===")
		res, err := experiments.Figure12(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResultMap(os.Stdout, "Figure 12", res)
		return nil
	})
	run("13", func() error {
		fmt.Println("=== Figure 13: cost-awareness lesion, DEEPLEARNING ===")
		res, err := experiments.Figure13(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResult(os.Stdout, "Figure 13", res)
		return nil
	})
	run("14", func() error {
		fmt.Println("=== Figure 14: kernel training-set size, DEEPLEARNING ===")
		res, err := experiments.Figure14(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResultMap(os.Stdout, "Figure 14", res)
		return nil
	})
	run("ablations", func() error {
		fmt.Println("=== Ablations beyond the paper's figures (DESIGN.md §5) ===")
		d := dataset.DeepLearning()

		dev, err := experiments.RunDeviceAblation(experiments.DeviceAblationConfig{
			Dataset: d, TestUsers: cfg.TestUsers, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("single- vs multi-device (§5.3.2): regret %.1f vs %.1f, first model at %.2f vs %.2f (%d jobs)\n",
			dev.SingleDeviceRegret, dev.MultiDeviceRegret, dev.SingleFirstModel, dev.MultiFirstModel, dev.Jobs)

		acq, err := experiments.AcquisitionAblation(d, cfg)
		if err != nil {
			return err
		}
		fmt.Println("acquisition functions (§4.5), losses at 20% of budget:", experiments.SummaryAt(acq, 20))

		informed, uninformed, err := experiments.KernelAblation(d, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("kernel ablation at 20%% of budget: informed %s | uninformed %s\n",
			experiments.SummaryAt(informed, 20), experiments.SummaryAt(uninformed, 20))

		plain, warm, err := experiments.RunWarmStartAblation(d, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("warm-start priors (§6): plain %s | warm %s\n",
			experiments.Summary(plain), experiments.Summary(warm))
		return nil
	})
	run("15", func() error {
		fmt.Println("=== Figure 15: hybrid lesion, 179CLASSIFIER ===")
		res, err := experiments.Figure15(cfg)
		if err != nil {
			return err
		}
		experiments.RenderResult(os.Stdout, "Figure 15", res)
		if x, ok := experiments.Crossover(res.Series[0], res.Series[1]); ok {
			fmt.Printf("ROUNDROBIN durably overtakes GREEDY at %.0f%% of runs\n", x)
		} else {
			fmt.Println("no durable GREEDY/ROUNDROBIN crossover at this configuration")
		}
		return nil
	})
}

// printSpeedups reports the §5.2 time-to-quality ratios at a few loss
// targets (the paper quotes the best of these as "up to 9.8×").
func printSpeedups(res experiments.Result) {
	last := len(res.Series[0].Avg) - 1
	targets := []float64{0.20, 0.15, 0.10, res.Series[0].Avg[last] * 1.05}
	for _, target := range targets {
		if s, ok := experiments.Figure9Speedup(res, target); ok {
			fmt.Printf("speedup over best heuristic at avg loss %.3f: %.1f×\n", target, s)
		} else {
			fmt.Printf("speedup at avg loss %.3f: heuristics never reach it within budget\n", target)
		}
	}
}
