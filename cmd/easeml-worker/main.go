// Command easeml-worker is a standalone fleet worker agent: it registers
// with an ease.ml coordinator (easeml-server run with -fleet-addr, or any
// address serving the /fleet/* protocol), polls for leased candidates,
// trains them on the local trainsim substrate, streams heartbeats and
// reports results. Many workers can join and leave at any time; a worker
// killed mid-training simply goes silent and the coordinator re-queues its
// leases once their TTL lapses.
//
// Usage:
//
//	easeml-worker -coordinator http://host:9001 [-name NAME] [-devices 1]
//	              [-alpha 0.9] [-poll 0] [-heartbeat 0] [-speculative]
//	              [-version]
//
// -devices is how many candidates the worker trains concurrently. -poll
// and -heartbeat override the coordinator-advertised cadence (0 adopts
// it). The default executor is the deterministic training simulator seeded
// by the coordinator, so results are identical no matter which worker
// trains a candidate; swap internal/fleet's Executor to run real work.
//
// SIGINT/SIGTERM leave the fleet gracefully: in-flight runs are aborted
// and their leases handed back for immediate re-queueing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:9001", "coordinator base URL (easeml-server -fleet-addr)")
	version := flag.Bool("version", false, "print the build identity and exit")
	name := flag.String("name", "", "worker name shown in the registry (default: hostname)")
	devices := flag.Int("devices", 1, "concurrent training slots")
	alpha := flag.Float64("alpha", 0.9, "advertised multi-device scaling exponent")
	poll := flag.Duration("poll", 0, "lease poll interval (0 = coordinator-advertised)")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat interval (0 = coordinator-advertised)")
	speculative := flag.Bool("speculative", true, "cache posterior surfaces and send speculative lease proposals (false = plain polling)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("easeml-worker"))
		return
	}
	telemetry.SetProcessName("easeml-worker")

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "easeml-worker: %v\n", err)
		os.Exit(1)
	}

	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Coordinator:        *coordinator,
		Name:               *name,
		Devices:            *devices,
		Alpha:              *alpha,
		PollInterval:       *poll,
		HeartbeatInterval:  *heartbeat,
		DisableSpeculative: !*speculative,
		Logger:             logger,
	})
	if err != nil {
		logger.Error("invalid configuration", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Info("leaving the fleet")
		cancel()
	}()

	logger.Info("joining fleet", "coordinator", *coordinator, "devices", *devices)
	start := time.Now()
	if err := agent.Run(ctx); err != nil {
		logger.Error("agent exited", "err", err)
		os.Exit(1)
	}
	logger.Info("worker done",
		"uptime", time.Since(start).Round(time.Millisecond),
		"completed", agent.Completed(), "failed", agent.Failed())
}
