// Command easeml-server runs the ease.ml service: a multi-tenant declarative
// machine-learning platform backed by a simulated GPU pool. Users submit
// jobs, feed examples and query the best model over HTTP (see
// internal/server for the endpoint list, cmd/easeml for the CLI client).
//
// Usage:
//
//	easeml-server [-addr :9000] [-gpus 24] [-seed 1] [-alpha 0.9]
//	              [-workers 0] [-batch 0] [-data-dir DIR]
//	              [-wal-segment-bytes 4194304] [-wal-sync-interval 2ms]
//	              [-fleet-addr ADDR] [-lease-ttl 10s] [-speculative]
//	              [-quota-config FILE] [-max-inflight 0] [-pprof]
//	              [-mutex-profile-fraction 0] [-block-profile-rate 0]
//	              [-log-format text|json] [-log-level info] [-slow-op 100ms]
//	              [-trace-buffer 4096] [-version]
//
// With -workers N > 0 the async execution engine starts at boot: N
// concurrent trainers lease work through the scheduler's two-phase API and
// keep the pool busy, with at most -batch leases in flight (default 2×N).
// The engine is controlled at runtime via POST /admin/start|stop and
// observed via GET /admin/metrics. Without workers, rounds are driven
// explicitly via POST /admin/rounds, serialized across the whole pool.
//
// With -fleet-addr the server becomes a fleet coordinator: remote
// easeml-worker agents register, lease candidates, heartbeat and report
// results over the /fleet/* protocol, served both on the main address and
// on the dedicated fleet address. A leased candidate whose worker goes
// silent for -lease-ttl is re-queued automatically. GET /admin/fleet
// reports the worker registry (join/leave/dead states, in-flight counts,
// failure tallies).
//
// With -data-dir the service is durable: every mutation (job submitted,
// example fed/refined, model recorded) is fsynced to a segmented
// write-ahead log before being acknowledged, and a restarted server
// recovers all jobs, examples and trained models from the directory's
// snapshot + WAL segments, then resumes training — work that was in
// flight at the crash is re-queued. Concurrent mutations are group
// committed: appends arriving within -wal-sync-interval share one fsync
// (0 syncs every append immediately; negative serializes one fsync per
// append). Segments roll at -wal-segment-bytes. POST /admin/snapshot
// compacts the whole log into the snapshot at runtime;
// POST /admin/snapshot?mode=incremental folds just the oldest sealed
// segment, an O(segment) pause.
//
// With -quota-config the server enforces tenant admission control: the
// JSON file declares per-tenant service classes (guaranteed / standard /
// best-effort — weighted fair sharing across classes), concurrent-job
// caps, Submit/Feed rate limits and GPU cost budgets:
//
//	{
//	  "default_class": "standard",
//	  "tenants": {
//	    "alice": {"class": "guaranteed", "max_jobs": 4, "rate_per_sec": 10, "budget": 500},
//	    "carol": {"class": "best-effort", "budget": 40}
//	  }
//	}
//
// Over-quota requests answer 429 {"error", "code": "quota_exceeded"};
// budget-exhausted tenants drain gracefully; GET/POST /admin/quotas read
// and update live quota state. With a fleet, -max-inflight caps the total
// outstanding leases — when saturated, guaranteed-class work preempts an
// outstanding best-effort lease (the displaced candidate is re-queued
// exactly once and the preemption is WAL-logged).
//
// With -pprof the Go profiler is mounted at /debug/pprof/ on the admin mux
// (off by default — profiles expose internals, so only enable it where the
// admin surface is trusted): CPU and heap profiles of the live pick path,
// readable with `go tool pprof`. -pprof also arms the runtime's mutex and
// block profilers (tunable via -mutex-profile-fraction and
// -block-profile-rate) so lock contention shows under /debug/pprof/mutex.
//
// Logs are structured (log/slog): -log-format selects text or json,
// -log-level the verbosity, and operations slower than -slow-op (picks,
// WAL appends, HTTP requests) are logged with their trace IDs. Prometheus
// metrics are exposed on GET /metrics; GET /admin/metrics serves the JSON
// view.
//
// SIGINT/SIGTERM drain the engine gracefully before exit: running trainings
// finish, queued leases are handed back, and (with -data-dir) the log is
// compacted and closed.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/easeml"
	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9000", "listen address")
	version := flag.Bool("version", false, "print the build identity and exit")
	gpus := flag.Int("gpus", 24, "simulated GPU pool size")
	seed := flag.Int64("seed", 1, "training-surface seed")
	alpha := flag.Float64("alpha", 0.9, "pool scaling exponent: g GPUs give one job g^alpha speedup")
	workers := flag.Int("workers", 0, "async engine worker count (0 = serialized rounds via /admin/rounds)")
	batch := flag.Int("batch", 0, "max in-flight leases for the engine (default 2*workers)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots; empty = in-memory)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL segment roll threshold in bytes (with -data-dir)")
	walSyncInterval := flag.Duration("wal-sync-interval", 2*time.Millisecond, "WAL group-commit window: concurrent appends within it share one fsync (0 = fsync every append immediately; negative = serialized fsync per append, no group commit; with -data-dir)")
	fleetAddr := flag.String("fleet-addr", "", "dedicated listen address for the fleet worker protocol (empty = no fleet)")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet lease TTL before silent workers' leases are re-queued (default 10s)")
	quotaConfig := flag.String("quota-config", "", "JSON tenant quota file enabling admission control (classes, caps, rate limits, budgets)")
	maxInFlight := flag.Int("max-inflight", 0, "cap on total outstanding fleet leases; saturated guaranteed work preempts best-effort (0 = no cap)")
	speculative := flag.Bool("speculative", true, "accept speculative lease proposals and ship posterior deltas to fleet workers (false = plain poll protocol)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the admin mux (off by default; exposes profiles to anyone who can reach the server)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "with -pprof: runtime.SetMutexProfileFraction sampling rate (0 = default 100, negative = leave runtime setting)")
	blockRate := flag.Int("block-profile-rate", 0, "with -pprof: runtime.SetBlockProfileRate nanosecond granularity (0 = default 1e6, negative = leave runtime setting)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	slowOp := flag.Duration("slow-op", 100*time.Millisecond, "log operations (picks, WAL appends, HTTP requests) slower than this (0 disables the slow-op log)")
	traceBuffer := flag.Int("trace-buffer", 0, "flight-recorder span capacity per ring (GET /admin/traces; 0 = default 4096)")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("easeml-server"))
		return
	}
	telemetry.SetProcessName("easeml-server")

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "easeml-server: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger) // slow-op and library warnings inherit the process logger
	telemetry.SetSlowOpThreshold(*slowOp)

	if *alpha <= 0 || *alpha > 1 {
		logger.Error("invalid flag", "flag", "-alpha", "value", *alpha, "want", "(0, 1]")
		os.Exit(1)
	}

	cfg := easeml.ServiceConfig{
		GPUs:                     *gpus,
		Seed:                     *seed,
		Addr:                     "http://localhost" + *addr,
		Alpha:                    *alpha,
		Workers:                  *workers,
		Batch:                    *batch,
		DataDir:                  *dataDir,
		WALSegmentBytes:          *walSegmentBytes,
		WALSyncInterval:          *walSyncInterval,
		FleetAddr:                *fleetAddr,
		LeaseTTL:                 *leaseTTL,
		FleetMaxInFlight:         *maxInFlight,
		DisableSpeculativeLeases: !*speculative,
		Pprof:                    *pprofFlag,
		MutexProfileFraction:     *mutexFraction,
		BlockProfileRate:         *blockRate,
		Logger:                   logger,
		TraceBuffer:              *traceBuffer,
	}
	if *pprofFlag {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		logger.Info("pprof profiling mounted",
			"path", "/debug/pprof/", "profile", "http://"+host+"/debug/pprof/profile")
	}
	if *quotaConfig != "" {
		quotas, err := easeml.LoadQuotaFile(*quotaConfig)
		if err != nil {
			logger.Error("loading quota config failed", "file", *quotaConfig, "err", err)
			os.Exit(1)
		}
		cfg.Quotas = quotas.Tenants
		cfg.DefaultClass = quotas.DefaultClass
		if cfg.DefaultClass == "" {
			cfg.DefaultClass = "standard" // enable admission even for a tenants-only file
		}
		logger.Info("admission control enabled",
			"tenants", len(cfg.Quotas), "default_class", cfg.DefaultClass)
	}

	svc, err := easeml.OpenService(cfg)
	if err != nil {
		logger.Error("opening service failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		r := svc.Recovered
		logger.Info("recovered from data dir",
			"dir", *dataDir, "jobs", r.Jobs, "examples", r.Examples, "models", r.Models,
			"wal_events", r.WALEvents, "expired_leases", r.ExpiredLeases)
	}
	if *fleetAddr != "" {
		// The effective TTL comes back from the coordinator itself, so the
		// log line can never disagree with the default it applies.
		ttl := time.Duration(0)
		if fs, ok := svc.FleetStatus(); ok {
			ttl = time.Duration(fs.LeaseTTLMS * float64(time.Millisecond))
		}
		logger.Info("fleet coordinator listening", "addr", svc.FleetAddr(), "lease_ttl", ttl)
	}

	shutdown := func() {
		if *workers > 0 {
			logger.Info("draining engine")
			if err := svc.StopEngine(); err != nil {
				logger.Warn("engine stop failed", "err", err)
			}
		}
		if err := svc.Close(); err != nil {
			logger.Warn("closing data dir failed", "err", err)
		}
		os.Exit(0)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		shutdown()
	}()

	if *workers > 0 {
		if err := svc.StartEngine(); err != nil {
			logger.Error("starting engine failed", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("ease.ml server listening",
		"addr", *addr, "gpus", *gpus, "seed", *seed, "workers", *workers)
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}
