// Command easeml-server runs the ease.ml service: a multi-tenant declarative
// machine-learning platform backed by a simulated GPU pool. Users submit
// jobs, feed examples and query the best model over HTTP (see
// internal/server for the endpoint list, cmd/easeml for the CLI client).
//
// Usage:
//
//	easeml-server [-addr :9000] [-gpus 24] [-seed 1] [-alpha 0.9]
//	              [-workers 0] [-batch 0]
//
// With -workers N > 0 the async execution engine starts at boot: N
// concurrent trainers lease work through the scheduler's two-phase API and
// keep the pool busy, with at most -batch leases in flight (default 2×N).
// The engine is controlled at runtime via POST /admin/start|stop and
// observed via GET /admin/metrics. Without workers, rounds are driven
// explicitly via POST /admin/rounds, serialized across the whole pool.
//
// SIGINT/SIGTERM drain the engine gracefully before exit: running trainings
// finish and queued leases are handed back.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/easeml"
)

func main() {
	addr := flag.String("addr", ":9000", "listen address")
	gpus := flag.Int("gpus", 24, "simulated GPU pool size")
	seed := flag.Int64("seed", 1, "training-surface seed")
	alpha := flag.Float64("alpha", 0.9, "pool scaling exponent: g GPUs give one job g^alpha speedup")
	workers := flag.Int("workers", 0, "async engine worker count (0 = serialized rounds via /admin/rounds)")
	batch := flag.Int("batch", 0, "max in-flight leases for the engine (default 2*workers)")
	flag.Parse()
	if *alpha <= 0 || *alpha > 1 {
		log.Fatalf("-alpha %g outside (0, 1]", *alpha)
	}

	svc := easeml.NewService(easeml.ServiceConfig{
		GPUs:    *gpus,
		Seed:    *seed,
		Addr:    "http://localhost" + *addr,
		Alpha:   *alpha,
		Workers: *workers,
		Batch:   *batch,
	})
	if *workers > 0 {
		if err := svc.StartEngine(); err != nil {
			log.Fatalf("starting engine: %v", err)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Println("draining engine…")
			if err := svc.StopEngine(); err != nil {
				log.Printf("engine stop: %v", err)
			}
			os.Exit(0)
		}()
		fmt.Printf("ease.ml server listening on %s (%d GPUs, seed %d, %d engine workers)\n",
			*addr, *gpus, *seed, *workers)
	} else {
		fmt.Printf("ease.ml server listening on %s (%d GPUs, seed %d, manual rounds)\n",
			*addr, *gpus, *seed)
	}
	log.Fatal(http.ListenAndServe(*addr, svc.Handler()))
}
