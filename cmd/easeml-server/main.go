// Command easeml-server runs the ease.ml service: a multi-tenant declarative
// machine-learning platform backed by a simulated GPU pool. Users submit
// jobs, feed examples and query the best model over HTTP (see
// internal/server for the endpoint list, cmd/easeml for the CLI client).
//
// Usage:
//
//	easeml-server [-addr :9000] [-gpus 24] [-seed 1] [-auto 0]
//
// With -auto N > 0 the server runs one scheduling round every N
// milliseconds in the background; otherwise rounds are driven explicitly
// via POST /admin/rounds.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/easeml"
)

func main() {
	addr := flag.String("addr", ":9000", "listen address")
	gpus := flag.Int("gpus", 24, "simulated GPU pool size")
	seed := flag.Int64("seed", 1, "training-surface seed")
	auto := flag.Int("auto", 0, "run one scheduling round every N ms (0 = manual)")
	flag.Parse()

	svc := easeml.NewService(easeml.ServiceConfig{
		GPUs: *gpus,
		Seed: *seed,
		Addr: "http://localhost" + *addr,
	})
	if *auto > 0 {
		go func() {
			ticker := time.NewTicker(time.Duration(*auto) * time.Millisecond)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := svc.RunRounds(1); err != nil {
					log.Printf("scheduling round failed: %v", err)
				}
			}
		}()
	}
	fmt.Printf("ease.ml server listening on %s (%d GPUs, seed %d)\n", *addr, *gpus, *seed)
	log.Fatal(http.ListenAndServe(*addr, svc.Handler()))
}
