package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/easeml"
	"repro/internal/client"
)

// End-to-end CLI command coverage against a real in-process service.
func newTestClient(t *testing.T) (*client.Client, string) {
	t.Helper()
	svc := easeml.NewService(easeml.ServiceConfig{GPUs: 4, Seed: 5})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), srv.URL
}

func TestCLICommandsHappyPath(t *testing.T) {
	cl, _ := newTestClient(t)
	ctx := context.Background()
	if err := cmdSubmit(ctx, cl, []string{"ts", "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs(ctx, cl); err != nil {
		t.Fatal(err)
	}
	if err := cmdFeed(ctx, cl, []string{"job-0001", "1", "2", "3", "4", ":", "0", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRefine(ctx, cl, []string{"job-0001", "1", "off"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRounds(ctx, cl, []string{"2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStatus(ctx, cl, []string{"job-0001"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfer(ctx, cl, []string{"job-0001", "1", "2", "3", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIArgumentErrors(t *testing.T) {
	cl, _ := newTestClient(t)
	ctx := context.Background()
	cases := map[string]func() error{
		"submit arity":    func() error { return cmdSubmit(ctx, cl, []string{"only-name"}) },
		"feed no colon":   func() error { return cmdFeed(ctx, cl, []string{"j", "1", "2", "3", "4"}) },
		"feed bad float":  func() error { return cmdFeed(ctx, cl, []string{"j", "x", ":", "1"}) },
		"refine bad id":   func() error { return cmdRefine(ctx, cl, []string{"j", "abc", "on"}) },
		"refine bad bool": func() error { return cmdRefine(ctx, cl, []string{"j", "1", "maybe"}) },
		"rounds bad n":    func() error { return cmdRounds(ctx, cl, []string{"x"}) },
		"infer arity":     func() error { return cmdInfer(ctx, cl, []string{"j"}) },
		"status arity":    func() error { return cmdStatus(ctx, cl, nil) },
		"feedimg arity":   func() error { return cmdFeedImg(ctx, cl, []string{"j"}) },
		"feedimg missing": func() error { return cmdFeedImg(ctx, cl, []string{"j", "/nonexistent.png", "1"}) },
	}
	for name, f := range cases {
		if err := f(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats([]string{"1", "-2.5", "3e2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != -2.5 || got[2] != 300 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats([]string{"nope"}); err == nil {
		t.Error("garbage accepted")
	}
}
