package main

import (
	"net/http/httptest"
	"testing"

	"repro/easeml"
	"repro/internal/client"
)

// End-to-end CLI command coverage against a real in-process service.
func newTestClient(t *testing.T) (*client.Client, string) {
	t.Helper()
	svc := easeml.NewService(easeml.ServiceConfig{GPUs: 4, Seed: 5})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), srv.URL
}

func TestCLICommandsHappyPath(t *testing.T) {
	cl, _ := newTestClient(t)
	if err := cmdSubmit(cl, []string{"ts", "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdJobs(cl); err != nil {
		t.Fatal(err)
	}
	if err := cmdFeed(cl, []string{"job-0001", "1", "2", "3", "4", ":", "0", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRefine(cl, []string{"job-0001", "1", "off"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRounds(cl, []string{"2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStatus(cl, []string{"job-0001"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfer(cl, []string{"job-0001", "1", "2", "3", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIArgumentErrors(t *testing.T) {
	cl, _ := newTestClient(t)
	cases := map[string]func() error{
		"submit arity":    func() error { return cmdSubmit(cl, []string{"only-name"}) },
		"feed no colon":   func() error { return cmdFeed(cl, []string{"j", "1", "2", "3", "4"}) },
		"feed bad float":  func() error { return cmdFeed(cl, []string{"j", "x", ":", "1"}) },
		"refine bad id":   func() error { return cmdRefine(cl, []string{"j", "abc", "on"}) },
		"refine bad bool": func() error { return cmdRefine(cl, []string{"j", "1", "maybe"}) },
		"rounds bad n":    func() error { return cmdRounds(cl, []string{"x"}) },
		"infer arity":     func() error { return cmdInfer(cl, []string{"j"}) },
		"status arity":    func() error { return cmdStatus(cl, nil) },
		"feedimg arity":   func() error { return cmdFeedImg(cl, []string{"j"}) },
		"feedimg missing": func() error { return cmdFeedImg(cl, []string{"j", "/nonexistent.png", "1"}) },
	}
	for name, f := range cases {
		if err := f(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats([]string{"1", "-2.5", "3e2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != -2.5 || got[2] != 300 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats([]string{"nope"}); err == nil {
		t.Error("garbage accepted")
	}
}
