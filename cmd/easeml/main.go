// Command easeml is the CLI client for the ease.ml service — the
// command-line counterpart of the generated feed/refine/infer binaries of
// the paper's Figure 3.
//
// Usage:
//
//	easeml [-server http://localhost:9000] <command> [args]
//
// Commands:
//
//	submit <name> <program>      submit a declarative job
//	jobs                         list job ids
//	status <job>                 show trained models and the current best
//	feed <job> <in...> : <out...> feed one example (values separated, ':' splits input/output)
//	feedimg <job> <image> <out...> feed one JPEG/PNG image with its label
//	refine <job> <example> <on|off>
//	infer <job> <in...>          apply the best model
//	rounds <n>                   run n scheduling rounds
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/tensor"
)

func main() {
	serverURL := flag.String("server", "http://localhost:9000", "ease.ml server URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cl := client.New(*serverURL)
	// Ctrl-C cancels the in-flight request instead of leaving it to the
	// client timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(ctx, cl, args[1:])
	case "jobs":
		err = cmdJobs(ctx, cl)
	case "status":
		err = cmdStatus(ctx, cl, args[1:])
	case "feed":
		err = cmdFeed(ctx, cl, args[1:])
	case "feedimg":
		err = cmdFeedImg(ctx, cl, args[1:])
	case "refine":
		err = cmdRefine(ctx, cl, args[1:])
	case "infer":
		err = cmdInfer(ctx, cl, args[1:])
	case "rounds":
		err = cmdRounds(ctx, cl, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "easeml:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: easeml [-server URL] <command>
commands: submit <name> <program> | jobs | status <job> |
          feed <job> <in...> : <out...> | feedimg <job> <image> <out...> |
          refine <job> <example> <on|off> | infer <job> <in...> | rounds <n>`)
}

func cmdSubmit(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("submit needs <name> <program>")
	}
	resp, err := cl.Submit(ctx, args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Printf("job %s (template %s, %d candidate models)\n", resp.ID, resp.Template, len(resp.Candidates))
	for _, c := range resp.Candidates {
		fmt.Println("  ", c)
	}
	return nil
}

func cmdJobs(ctx context.Context, cl *client.Client) error {
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		fmt.Println(j)
	}
	return nil
}

func cmdStatus(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("status needs <job>")
	}
	st, err := cl.Status(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("job %s (%s): %d/%d models trained, %d examples (%d enabled)\n",
		st.ID, st.Template, st.Trained, st.NumCandidates, st.Examples, st.Enabled)
	if st.Best != nil {
		fmt.Printf("best: %s  accuracy %.4f  (round %d)\n", st.Best.Name, st.Best.Accuracy, st.Best.Round)
	}
	for _, m := range st.Models {
		fmt.Printf("  round %3d  %-40s acc %.4f  cost %8.1f\n", m.Round, m.Name, m.Accuracy, m.Cost)
	}
	return nil
}

func cmdFeed(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("feed needs <job> <in...> : <out...>")
	}
	job := args[0]
	sep := -1
	for i, a := range args[1:] {
		if a == ":" {
			sep = i + 1
		}
	}
	if sep < 0 {
		return fmt.Errorf("feed needs a ':' separator between input and output values")
	}
	in, err := parseFloats(args[1:sep])
	if err != nil {
		return err
	}
	out, err := parseFloats(args[sep+1:])
	if err != nil {
		return err
	}
	ids, err := cl.Feed(ctx, job, [][]float64{in}, [][]float64{out})
	if err != nil {
		return err
	}
	fmt.Printf("example %d added\n", ids[0])
	return nil
}

// cmdFeedImg loads a JPEG/PNG through the default image loader (§2:
// "loads JPEG images into Tensor[A,B,3]") and feeds it with its label.
func cmdFeedImg(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("feedimg needs <job> <image> <out...>")
	}
	f, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	img, err := tensor.DecodeImage(f)
	if err != nil {
		return err
	}
	out, err := parseFloats(args[2:])
	if err != nil {
		return err
	}
	ids, err := cl.Feed(ctx, args[0], [][]float64{img.Data()}, [][]float64{out})
	if err != nil {
		return err
	}
	fmt.Printf("example %d added (image %v)\n", ids[0], img.Shape())
	return nil
}

func cmdRefine(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("refine needs <job> <example> <on|off>")
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("example id: %w", err)
	}
	var enabled bool
	switch strings.ToLower(args[2]) {
	case "on", "true", "1":
		enabled = true
	case "off", "false", "0":
		enabled = false
	default:
		return fmt.Errorf("refine state %q: use on or off", args[2])
	}
	if err := cl.Refine(ctx, args[0], id, enabled); err != nil {
		return err
	}
	fmt.Println("ok")
	return nil
}

func cmdInfer(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("infer needs <job> <in...>")
	}
	in, err := parseFloats(args[1:])
	if err != nil {
		return err
	}
	resp, err := cl.Infer(ctx, args[0], in)
	if err != nil {
		return err
	}
	fmt.Printf("model %s → %v\n", resp.Model, resp.Output)
	return nil
}

func cmdRounds(ctx context.Context, cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rounds needs <n>")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("round count: %w", err)
	}
	resp, err := cl.RunRounds(ctx, n)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d rounds (%d total)\n", resp.Ran, resp.Total)
	return nil
}

func parseFloats(args []string) ([]float64, error) {
	out := make([]float64, 0, len(args))
	for _, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", a, err)
		}
		out = append(out, v)
	}
	return out, nil
}
