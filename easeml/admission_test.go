package easeml

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dsl"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/templates"
)

const admTSProgram = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"

// postJSON posts v and decodes the JSON reply into out (nil to discard),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding reply of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// resolveForExecutor rebuilds a job's candidate surface from its logged
// program — exactly what a worker agent does — and registers it with the
// executor.
func resolveForExecutor(t *testing.T, exec *fleet.SimExecutor, baseURL, jobID string) map[string]templates.Candidate {
	t.Helper()
	resp, err := http.Get(baseURL + "/fleet/job?id=" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info fleet.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	prog, err := dsl.Parse(info.Program)
	if err != nil {
		t.Fatal(err)
	}
	cands, _, err := templates.Generate(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RegisterJob(jobID, cands); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]templates.Candidate, len(cands))
	for _, c := range cands {
		byName[c.Name()] = c
	}
	return byName
}

// The PR's acceptance scenario, end to end through the public facade: a
// guaranteed tenant, a second guaranteed tenant arriving late, and a
// best-effort tenant sharing one service.
//
//   - The guaranteed tenant's model trajectory is identical with and
//     without the best-effort tenant present.
//   - The best-effort tenant loses one lease to priority preemption and is
//     then budget-capped; both events are WAL-visible and survive a crash.
//   - An over-quota Feed answers HTTP 429 {"error","code":"quota_exceeded"}.
func TestThreeTenantAdmissionScenario(t *testing.T) {
	const seed = 42

	// Reference run: alice alone (no best-effort tenant anywhere).
	solo := NewService(ServiceConfig{Seed: seed, Quotas: map[string]TenantQuota{
		"alice": {Class: "guaranteed"},
	}})
	soloJob, err := solo.Submit("alice", admTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.RunRounds(1 << 20); err != nil {
		t.Fatal(err)
	}
	soloStatus, err := solo.Status(soloJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if soloStatus.Trained == 0 {
		t.Fatal("reference run trained nothing")
	}

	// Shared run: same seed, same data, plus carol (best-effort) and a
	// late guaranteed tenant driving preemption.
	dir := t.TempDir()
	quotas := map[string]TenantQuota{
		"alice":  {Class: "guaranteed"},
		"alice2": {Class: "guaranteed"},
		"carol":  {Class: "best-effort", RatePerSec: 0.001}, // one-token bucket: the submit spends it
	}
	svc, err := OpenService(ServiceConfig{
		Seed: seed, DataDir: dir, Fleet: true, FleetMaxInFlight: 2, Quotas: quotas,
	})
	if err != nil {
		t.Fatal(err)
	}
	aliceJob, err := svc.Submit("alice", admTSProgram) // job-0001: same id as the solo run
	if err != nil {
		t.Fatal(err)
	}
	carolJob, err := svc.Submit("carol", admTSProgram)
	if err != nil {
		t.Fatal(err)
	}

	// Drain alice while carol trickles along at best-effort weight.
	for i := 0; i < 1000; i++ {
		st, err := svc.Status(aliceJob.Name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Trained == st.NumCandidates {
			break
		}
		if _, err := svc.RunRounds(1); err != nil {
			t.Fatal(err)
		}
	}
	carolMid, err := svc.Status(carolJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if carolMid.Trained >= carolMid.NumCandidates {
		t.Fatalf("best-effort tenant finished (%d/%d) before the scenario needs leases",
			carolMid.Trained, carolMid.NumCandidates)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	exec := fleet.NewSimExecutor(seed)

	// A remote worker takes carol's remaining work, saturating the cap.
	var reg fleet.RegisterResponse
	if code := postJSON(t, srv.URL+"/fleet/register", fleet.RegisterRequest{Name: "w", Devices: 2}, &reg); code != 200 {
		t.Fatalf("register status %d", code)
	}
	var granted fleet.LeaseResponse
	if code := postJSON(t, srv.URL+"/fleet/lease", fleet.LeaseRequest{WorkerID: reg.WorkerID, Max: 2}, &granted); code != 200 {
		t.Fatalf("lease status %d", code)
	}
	if len(granted.Leases) != 2 {
		t.Fatalf("granted %d leases, want 2", len(granted.Leases))
	}
	for _, wl := range granted.Leases {
		if wl.JobID != carolJob.Name {
			t.Fatalf("lease %+v is not carol's", wl)
		}
	}

	// A guaranteed tenant arrives; the saturated next poll preempts
	// carol's newest lease and hands the slot to guaranteed work.
	alice2Job, err := svc.Submit("alice2", admTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	var regrant fleet.LeaseResponse
	if code := postJSON(t, srv.URL+"/fleet/lease", fleet.LeaseRequest{WorkerID: reg.WorkerID, Max: 1}, &regrant); code != 200 {
		t.Fatalf("re-lease status %d", code)
	}
	if len(regrant.Leases) != 1 || regrant.Leases[0].JobID != alice2Job.Name {
		t.Fatalf("post-preemption grant %+v, want alice2 work", regrant.Leases)
	}
	preemptedID := granted.Leases[1].LeaseID

	// The late report for the preempted lease bounces off 409.
	var envelope server.ErrorBody
	code := postJSON(t, srv.URL+"/fleet/complete", fleet.CompleteRequest{
		WorkerID: reg.WorkerID, LeaseID: preemptedID, Accuracy: 0.5, Cost: 1,
	}, &envelope)
	if code != http.StatusConflict || envelope.Code != server.CodeLeaseConflict {
		t.Fatalf("late report: status %d envelope %+v", code, envelope)
	}

	// Cap carol's budget just under her next completion, live.
	carolNow, err := svc.Status(carolJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, srv.URL+"/admin/quotas", map[string]any{
		"tenant": "carol", "class": "best-effort", "rate_per_sec": 0.001,
		"budget": carolNow.CostUsed + 1e-9,
	}, nil); code != 200 {
		t.Fatalf("set quota status %d", code)
	}

	// The worker reports its two surviving runs truthfully (same seed ⇒
	// bit-identical results to the in-process trainer).
	ctx := context.Background()
	for _, wl := range []fleet.WireLease{granted.Leases[0], regrant.Leases[0]} {
		byName := resolveForExecutor(t, exec, srv.URL, wl.JobID)
		cand, ok := byName[wl.Candidate]
		if !ok {
			t.Fatalf("cannot resolve %s/%s", wl.JobID, wl.Candidate)
		}
		acc, cost, err := exec.Execute(ctx, wl.JobID, cand)
		if err != nil {
			t.Fatal(err)
		}
		var comp fleet.CompleteResponse
		if code := postJSON(t, srv.URL+"/fleet/complete", fleet.CompleteRequest{
			WorkerID: reg.WorkerID, LeaseID: wl.LeaseID, Accuracy: acc, Cost: cost,
		}, &comp); code != 200 || comp.Settled != "completed" {
			t.Fatalf("complete %s/%s: status %d settled %q", wl.JobID, wl.Candidate, code, comp.Settled)
		}
	}

	// Carol is over budget now: drained, remaining candidates retired.
	carolAfter, err := svc.Status(carolJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !carolAfter.BudgetExhausted {
		t.Fatal("carol not budget-exhausted after the capped completion")
	}
	if carolAfter.Trained >= carolAfter.NumCandidates {
		t.Fatal("budget exhaustion retired nothing")
	}

	// Over-quota Feed: structured 429.
	envelope = server.ErrorBody{}
	code = postJSON(t, srv.URL+"/jobs/"+carolJob.Name+"/feed", server.FeedRequest{
		Inputs:  [][]float64{{1, 2, 3, 4}},
		Outputs: [][]float64{{0, 1}},
	}, &envelope)
	if code != http.StatusTooManyRequests || envelope.Code != server.CodeQuotaExceeded {
		t.Fatalf("over-quota feed: status %d envelope %+v, want 429 %s", code, envelope, server.CodeQuotaExceeded)
	}

	// Finish the remaining guaranteed work, then crash without Close.
	if _, err := svc.RunRounds(1 << 20); err != nil {
		t.Fatal(err)
	}

	svc2, err := OpenService(ServiceConfig{
		Seed: seed, DataDir: dir, Fleet: true, FleetMaxInFlight: 2, Quotas: quotas,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Recovered.PreemptedLeases != 1 {
		t.Errorf("recovered %d preemption records, want 1", svc2.Recovered.PreemptedLeases)
	}
	if svc2.Recovered.BudgetExhausted != 1 {
		t.Errorf("recovered %d budget-exhausted jobs, want 1", svc2.Recovered.BudgetExhausted)
	}
	carolRec, err := svc2.Status(carolJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !carolRec.BudgetExhausted || carolRec.Trained != carolAfter.Trained {
		t.Fatalf("recovery disagrees on carol: %+v vs trained %d", carolRec, carolAfter.Trained)
	}
	if ran, err := svc2.RunRounds(1 << 20); err != nil || ran != 0 {
		t.Fatalf("recovered service trained %d more rounds (err %v); drained tenants must stay drained", ran, err)
	}

	// The guaranteed tenant's trajectory is identical with and without the
	// best-effort tenant: same models, same accuracies, same order.
	aliceShared, err := svc2.Status(aliceJob.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliceShared.Models) != len(soloStatus.Models) {
		t.Fatalf("alice trained %d models shared vs %d solo", len(aliceShared.Models), len(soloStatus.Models))
	}
	for i := range soloStatus.Models {
		a, b := soloStatus.Models[i], aliceShared.Models[i]
		if a.Name != b.Name || a.Accuracy != b.Accuracy {
			t.Errorf("alice model %d diverged: solo %s@%g vs shared %s@%g",
				i, a.Name, a.Accuracy, b.Name, b.Accuracy)
		}
	}
}
