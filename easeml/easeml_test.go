package easeml

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

const imgProgram = "{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[10]], []}}"

func TestParseJob(t *testing.T) {
	job, err := ParseJob("cifar", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	if job.Template != "image-classification" || job.Workload == "" {
		t.Errorf("job %+v", job)
	}
	if len(job.Candidates) != 35 {
		t.Errorf("%d candidates", len(job.Candidates))
	}
	if job.Julia == "" || job.Python == "" {
		t.Error("missing generated code")
	}
	if _, err := ParseJob("bad", "nope"); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestServiceLifecycle(t *testing.T) {
	svc := NewService(ServiceConfig{GPUs: 4, Seed: 9})
	job, err := svc.Submit("quick", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 32*32*3)
	id, err := svc.Feed(job.Name, in, make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Refine(job.Name, id, false); err != nil {
		t.Fatal(err)
	}
	ran, err := svc.RunRounds(5)
	if err != nil || ran != 5 {
		t.Fatalf("ran %d rounds, err %v", ran, err)
	}
	st, err := svc.Status(job.Name)
	if err != nil || st.Trained != 5 || st.Best == nil {
		t.Fatalf("status %+v err %v", st, err)
	}
	out, model, err := svc.Infer(job.Name, in)
	if err != nil || len(out) != 10 || model == "" {
		t.Fatalf("infer out=%d model=%q err=%v", len(out), model, err)
	}
	if svc.GPUTime() <= 0 {
		t.Error("no GPU time consumed")
	}
	if svc.Handler() == nil {
		t.Error("nil handler")
	}
}

func TestSelectionPolicies(t *testing.T) {
	d := dataset.DeepLearning()
	rng := rand.New(rand.NewSource(4))
	train, test := d.Split(6, rng)
	sub := d.Subset(test)
	for _, policy := range []Policy{PolicyHybrid, PolicyGreedy, PolicyRoundRobin, PolicyRandom, PolicyFCFS, ""} {
		sel, err := NewSelection(SelectionConfig{
			Quality:   sub.Quality,
			Cost:      sub.Cost,
			Features:  d.QualityVectors(train),
			Policy:    policy,
			CostAware: true,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if _, err := sel.RunSteps(0); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if sel.AvgLoss() > 1e-12 {
			t.Errorf("%s: final loss %g", policy, sel.AvgLoss())
		}
		if sel.CumulativeCost() <= 0 || sel.CumulativeRegret() < 0 {
			t.Errorf("%s: accounting broken", policy)
		}
		if len(sel.Trace()) != 6*8 {
			t.Errorf("%s: %d trace points", policy, len(sel.Trace()))
		}
		if _, acc, ok := sel.Best(0); !ok || acc <= 0 {
			t.Errorf("%s: Best(0) = %g, %v", policy, acc, ok)
		}
	}
}

func TestSelectionDefaults(t *testing.T) {
	// nil cost and nil features still work.
	sel, err := NewSelection(SelectionConfig{
		Quality: [][]float64{{0.5, 0.9}, {0.7, 0.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.TotalCost() != 4 {
		t.Errorf("unit costs expected, total %g", sel.TotalCost())
	}
	if _, err := sel.RunBudget(2); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionValidation(t *testing.T) {
	if _, err := NewSelection(SelectionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSelection(SelectionConfig{Quality: [][]float64{{0.5}}, Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := NewSelection(SelectionConfig{
		Quality: [][]float64{{0.5}},
		Cost:    [][]float64{{-1}},
	}); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestSelectionExtensions(t *testing.T) {
	quality := [][]float64{
		{0.3, 0.4, 0.5, 0.6},
		{0.3, 0.4, 0.5, 0.6},
		{0.3, 0.4, 0.5, 0.6},
	}
	// Weighted greedy.
	sel, err := NewSelection(SelectionConfig{Quality: quality, Weights: []float64{1, 4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.RunSteps(0); err != nil {
		t.Fatal(err)
	}
	if sel.AvgLoss() > 1e-12 {
		t.Errorf("weighted selection final loss %g", sel.AvgLoss())
	}
	// Weights are incompatible with non-greedy policies.
	if _, err := NewSelection(SelectionConfig{Quality: quality, Weights: []float64{1}, Policy: PolicyRandom}); err == nil {
		t.Error("weights with random policy accepted")
	}
	// Guarantee window wraps any policy and still completes.
	sel, err = NewSelection(SelectionConfig{Quality: quality, Policy: PolicyFCFS, GuaranteeWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.RunSteps(0); err != nil {
		t.Fatal(err)
	}
	serves := map[int]int{}
	for _, tp := range sel.Trace() {
		serves[tp.User]++
	}
	if len(serves) != 3 {
		t.Errorf("guaranteed FCFS starved tenants: %v", serves)
	}
}
