package easeml

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/server"
)

const imgProgram = "{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[10]], []}}"

func TestParseJob(t *testing.T) {
	job, err := ParseJob("cifar", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	if job.Template != "image-classification" || job.Workload == "" {
		t.Errorf("job %+v", job)
	}
	if len(job.Candidates) != 35 {
		t.Errorf("%d candidates", len(job.Candidates))
	}
	if job.Julia == "" || job.Python == "" {
		t.Error("missing generated code")
	}
	if _, err := ParseJob("bad", "nope"); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestServiceLifecycle(t *testing.T) {
	svc := NewService(ServiceConfig{GPUs: 4, Seed: 9})
	job, err := svc.Submit("quick", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 32*32*3)
	id, err := svc.Feed(job.Name, in, make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Refine(job.Name, id, false); err != nil {
		t.Fatal(err)
	}
	ran, err := svc.RunRounds(5)
	if err != nil || ran != 5 {
		t.Fatalf("ran %d rounds, err %v", ran, err)
	}
	st, err := svc.Status(job.Name)
	if err != nil || st.Trained != 5 || st.Best == nil {
		t.Fatalf("status %+v err %v", st, err)
	}
	out, model, err := svc.Infer(job.Name, in)
	if err != nil || len(out) != 10 || model == "" {
		t.Fatalf("infer out=%d model=%q err=%v", len(out), model, err)
	}
	if svc.GPUTime() <= 0 {
		t.Error("no GPU time consumed")
	}
	if svc.Handler() == nil {
		t.Error("nil handler")
	}
}

func TestSelectionPolicies(t *testing.T) {
	d := dataset.DeepLearning()
	rng := rand.New(rand.NewSource(4))
	train, test := d.Split(6, rng)
	sub := d.Subset(test)
	for _, policy := range []Policy{PolicyHybrid, PolicyGreedy, PolicyRoundRobin, PolicyRandom, PolicyFCFS, ""} {
		sel, err := NewSelection(SelectionConfig{
			Quality:   sub.Quality,
			Cost:      sub.Cost,
			Features:  d.QualityVectors(train),
			Policy:    policy,
			CostAware: true,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if _, err := sel.RunSteps(0); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if sel.AvgLoss() > 1e-12 {
			t.Errorf("%s: final loss %g", policy, sel.AvgLoss())
		}
		if sel.CumulativeCost() <= 0 || sel.CumulativeRegret() < 0 {
			t.Errorf("%s: accounting broken", policy)
		}
		if len(sel.Trace()) != 6*8 {
			t.Errorf("%s: %d trace points", policy, len(sel.Trace()))
		}
		if _, acc, ok := sel.Best(0); !ok || acc <= 0 {
			t.Errorf("%s: Best(0) = %g, %v", policy, acc, ok)
		}
	}
}

func TestSelectionDefaults(t *testing.T) {
	// nil cost and nil features still work.
	sel, err := NewSelection(SelectionConfig{
		Quality: [][]float64{{0.5, 0.9}, {0.7, 0.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.TotalCost() != 4 {
		t.Errorf("unit costs expected, total %g", sel.TotalCost())
	}
	if _, err := sel.RunBudget(2); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionValidation(t *testing.T) {
	if _, err := NewSelection(SelectionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSelection(SelectionConfig{Quality: [][]float64{{0.5}}, Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := NewSelection(SelectionConfig{
		Quality: [][]float64{{0.5}},
		Cost:    [][]float64{{-1}},
	}); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestSelectionExtensions(t *testing.T) {
	quality := [][]float64{
		{0.3, 0.4, 0.5, 0.6},
		{0.3, 0.4, 0.5, 0.6},
		{0.3, 0.4, 0.5, 0.6},
	}
	// Weighted greedy.
	sel, err := NewSelection(SelectionConfig{Quality: quality, Weights: []float64{1, 4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.RunSteps(0); err != nil {
		t.Fatal(err)
	}
	if sel.AvgLoss() > 1e-12 {
		t.Errorf("weighted selection final loss %g", sel.AvgLoss())
	}
	// Weights are incompatible with non-greedy policies.
	if _, err := NewSelection(SelectionConfig{Quality: quality, Weights: []float64{1}, Policy: PolicyRandom}); err == nil {
		t.Error("weights with random policy accepted")
	}
	// Guarantee window wraps any policy and still completes.
	sel, err = NewSelection(SelectionConfig{Quality: quality, Policy: PolicyFCFS, GuaranteeWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.RunSteps(0); err != nil {
		t.Fatal(err)
	}
	serves := map[int]int{}
	for _, tp := range sel.Trace() {
		serves[tp.User]++
	}
	if len(serves) != 3 {
		t.Errorf("guaranteed FCFS starved tenants: %v", serves)
	}
}

func TestServiceEngineDrain(t *testing.T) {
	svc := NewService(ServiceConfig{GPUs: 24, Seed: 3, Alpha: 0.35, Workers: 8})
	total := 0
	for _, name := range []string{"a", "b"} {
		job, err := svc.Submit(name, imgProgram)
		if err != nil {
			t.Fatal(err)
		}
		total += len(job.Candidates)
	}
	sum, err := svc.DrainEngine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rounds != int64(total) {
		t.Errorf("drained %d rounds, want %d", sum.Rounds, total)
	}
	if sum.Speedup < 2 {
		t.Errorf("virtual speedup %.2fx, want ≥2x at 8 workers on α=0.35", sum.Speedup)
	}
	if mk, sd := svc.VirtualTimes(); mk != sum.Makespan || sd != sum.SingleDevice {
		t.Errorf("VirtualTimes (%g, %g) disagrees with summary (%g, %g)", mk, sd, sum.Makespan, sum.SingleDevice)
	}

	// A cancelled drain must not masquerade as a complete summary.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.DrainEngine(cancelled); err == nil {
		t.Error("cancelled DrainEngine should error")
	}

	plain := NewService(ServiceConfig{GPUs: 4})
	if err := plain.StartEngine(); err == nil {
		t.Error("StartEngine without workers should fail")
	}
	if _, err := plain.DrainEngine(context.Background()); err == nil {
		t.Error("DrainEngine without workers should fail")
	}
	if _, ok := plain.EngineMetrics(); ok {
		t.Error("EngineMetrics without workers should report !ok")
	}
}

func TestServiceEngineHTTPAdmin(t *testing.T) {
	svc := NewService(ServiceConfig{GPUs: 8, Seed: 5, Workers: 4})
	if _, err := svc.Submit("a", imgProgram); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	getMetrics := func() server.MetricsResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/admin/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		var m server.MetricsResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	m := getMetrics()
	if m.Jobs != 1 || m.Engine == nil || m.Engine.Running || m.Engine.Workers != 4 {
		t.Fatalf("initial metrics %+v engine %+v", m, m.Engine)
	}

	post := func(path string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/admin/start"); code != http.StatusOK {
		t.Fatalf("start returned %d", code)
	}
	if code := post("/admin/start"); code != http.StatusConflict {
		t.Errorf("double start returned %d, want 409", code)
	}
	// Wait for the engine to finish the job's 35 candidates.
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics().Rounds < 35 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m = getMetrics()
	if m.Rounds != 35 || m.InFlight != 0 {
		t.Errorf("after drain: %+v", m)
	}
	if m.Engine.Completed != 35 || m.Engine.VirtualMakespan <= 0 {
		t.Errorf("engine block %+v", m.Engine)
	}
	if code := post("/admin/stop"); code != http.StatusOK {
		t.Errorf("stop returned %d", code)
	}
	if code := post("/admin/stop"); code != http.StatusConflict {
		t.Errorf("double stop returned %d, want 409", code)
	}

	// A service without an engine: no engine block, start/stop conflict.
	plain := NewService(ServiceConfig{GPUs: 4})
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()
	resp, err := http.Get(plainSrv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var pm server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pm.Engine != nil {
		t.Error("engineless service reports an engine block")
	}
	sr, err := http.Post(plainSrv.URL+"/admin/start", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusConflict {
		t.Errorf("engineless start returned %d, want 409", sr.StatusCode)
	}
}

// A durable service killed mid-training recovers everything from its data
// directory and, after resuming, lands on the same best models as an
// uninterrupted in-memory run with the same seed.
func TestServiceRecoversFromDataDir(t *testing.T) {
	const prog = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	dir := t.TempDir()

	ref := NewService(ServiceConfig{GPUs: 4, Seed: 5})
	refJob, err := ref.Submit("ts", prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RunRounds(10000); err != nil {
		t.Fatal(err)
	}
	refStatus, err := ref.Status(refJob.Name)
	if err != nil {
		t.Fatal(err)
	}

	svc1, err := OpenService(ServiceConfig{GPUs: 4, Seed: 5, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc1.Submit("ts", prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Feed(job.Name, []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	// Crash: svc1 is abandoned without Close — no compaction, no flush
	// beyond the per-append one.

	svc2, err := OpenService(ServiceConfig{GPUs: 4, Seed: 5, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Recovered.Jobs != 1 || svc2.Recovered.Models != 3 || svc2.Recovered.Examples != 1 {
		t.Fatalf("recovered %+v", svc2.Recovered)
	}
	st, err := svc2.Status(job.Name)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trained != 3 || st.Examples != 1 {
		t.Fatalf("recovered status %+v", st)
	}
	if _, err := svc2.RunRounds(10000); err != nil {
		t.Fatal(err)
	}
	got, err := svc2.Status(job.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trained != refStatus.Trained {
		t.Errorf("recovered run trained %d candidates, reference %d", got.Trained, refStatus.Trained)
	}
	if got.Best == nil || refStatus.Best == nil {
		t.Fatal("missing best model")
	}
	if got.Best.Name != refStatus.Best.Name || got.Best.Accuracy != refStatus.Best.Accuracy {
		t.Errorf("recovered best %s@%g, reference %s@%g",
			got.Best.Name, got.Best.Accuracy, refStatus.Best.Name, refStatus.Best.Accuracy)
	}

	// Close compacts; a third boot replays the snapshot with no WAL tail.
	svc3, err := OpenService(ServiceConfig{GPUs: 4, Seed: 5, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	if svc3.Recovered.Jobs != 1 || svc3.Recovered.Models != got.Trained {
		t.Errorf("post-compaction recovery %+v, want %d models", svc3.Recovered, got.Trained)
	}
}

// The WAL tuning knobs flow through ServiceConfig: tiny segments roll
// under a feed workload, CompactStep folds the oldest sealed segment (also
// reachable as POST /admin/snapshot?mode=incremental), and a crash after
// the step still recovers everything.
func TestServiceWALSegmentsAndCompactStep(t *testing.T) {
	const prog = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	dir := t.TempDir()
	cfg := ServiceConfig{GPUs: 4, Seed: 5, DataDir: dir, WALSegmentBytes: 512, WALSyncInterval: time.Millisecond}

	svc1, err := OpenService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc1.Submit("ts", prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := svc1.Feed(job.Name, []float64{1, 2, 3, float64(i)}, []float64{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	folded, err := svc1.CompactStep()
	if err != nil {
		t.Fatal(err)
	}
	if !folded {
		t.Fatal("CompactStep folded nothing; segments did not roll at 512 bytes")
	}
	// The HTTP form of the same step.
	req := httptest.NewRequest(http.MethodPost, "/admin/snapshot?mode=incremental", nil)
	rw := httptest.NewRecorder()
	svc1.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("POST /admin/snapshot?mode=incremental: %d %s", rw.Code, rw.Body)
	}
	if _, err := svc1.Feed(job.Name, []float64{9, 9, 9, 9}, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	// Crash without Close.

	svc2, err := OpenService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st, err := svc2.Status(job.Name)
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != 13 {
		t.Errorf("recovered %d examples after incremental compaction + crash, want 13", st.Examples)
	}
}

// The facade's fleet surface: a service with the coordinator enabled serves
// the /fleet/* protocol (both on Handler and the dedicated fleet address),
// remote agents drain the jobs, and FleetStatus / GET /admin/fleet report
// the registry.
func TestServiceFleet(t *testing.T) {
	const prog = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}" // 4 candidates
	svc, err := OpenService(ServiceConfig{
		GPUs: 4, Seed: 11,
		FleetAddr: "127.0.0.1:0",
		LeaseTTL:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.FleetAddr() == "" {
		t.Fatal("no bound fleet address")
	}
	job, err := svc.Submit("fleet", prog)
	if err != nil {
		t.Fatal(err)
	}

	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Coordinator:  "http://" + svc.FleetAddr(),
		Name:         "facade-worker",
		Devices:      2,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = agent.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := svc.Status(job.Name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Trained == st.NumCandidates {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet worker never drained the job: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	fs, ok := svc.FleetStatus()
	if !ok {
		t.Fatal("FleetStatus reports no coordinator")
	}
	if len(fs.Workers) != 1 || fs.Workers[0].Completed != 4 {
		t.Errorf("fleet status %+v", fs)
	}

	// The same registry over HTTP, through the combined service handler.
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admin/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var adminFS server.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&adminFS); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || adminFS.Left != 1 {
		t.Errorf("GET /admin/fleet: status %d, body %+v (want one departed worker)", resp.StatusCode, adminFS)
	}
	// The worker protocol is mounted on the service handler too.
	reg, err := http.Post(srv.URL+"/fleet/register", "application/json",
		strings.NewReader(`{"name":"h","devices":1,"alpha":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	reg.Body.Close()
	if reg.StatusCode != http.StatusOK {
		t.Errorf("register via service handler: HTTP %d", reg.StatusCode)
	}
}
