// Package easeml is the public API of this ease.ml reproduction — the
// declarative machine-learning service platform with multi-tenant,
// cost-aware model selection of Li et al. (VLDB 2018, arXiv:1708.07308).
//
// Three entry points cover the system's three usage modes:
//
//   - ParseJob turns a declarative program (the Figure 2 DSL) into the
//     matched template, the candidate-model list and the generated code —
//     the front half of the platform, usable standalone.
//
//   - NewService starts an in-process ease.ml service: submitted jobs are
//     trained on a simulated GPU pool under the HYBRID multi-tenant
//     scheduler, with feed/refine/infer and an http.Handler for remote use.
//     With ServiceConfig.Workers > 0 the service gains the asynchronous
//     multi-device execution engine (internal/engine): StartEngine /
//     StopEngine / DrainEngine train candidates concurrently across the
//     pool instead of one at a time. With ServiceConfig.DataDir set (use
//     OpenService), every mutation is written ahead to a log and the
//     whole service state — jobs, examples, trained models — survives a
//     crash and is recovered at the next boot. With ServiceConfig.Fleet
//     (or FleetAddr) the service coordinates remote easeml-worker agents
//     over the internal/fleet lease protocol: elastic workers join, train
//     leased candidates and heartbeat; work on a worker that dies is
//     re-queued when its lease TTL lapses.
//
//   - NewSelection runs the paper's core contribution as a library: given a
//     (quality, cost) environment and per-model kernel features, it drives
//     multi-tenant, cost-aware GP-UCB model selection under any of the
//     paper's scheduling policies.
package easeml

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/gp"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// Job is a parsed declarative job: the validated program, its matched
// template and the generated candidate models and code.
type Job struct {
	Name       string
	Program    string   // normalized concrete syntax
	Template   string   // matched Figure 4 template name
	Workload   string   // human-readable workload class
	Candidates []string // candidate model names (incl. normalization variants)
	Julia      string   // system data types in Julia format (Figure 3)
	Python     string   // importable Python stub (Figure 3)
}

// ParseJob validates a declarative program and produces the candidate
// models and generated code without starting a service.
func ParseJob(name, program string) (*Job, error) {
	prog, err := dsl.ParseCached(program)
	if err != nil {
		return nil, err
	}
	cands, tpl, err := templates.GenerateCached(prog)
	if err != nil {
		return nil, err
	}
	job := &Job{
		Name:     name,
		Program:  prog.String(),
		Template: tpl.Name,
		Workload: tpl.Workload,
		Julia:    codegen.JuliaTypes(prog),
		Python:   codegen.PythonLibrary(name, "http://localhost:9000", prog),
	}
	for _, c := range cands {
		job.Candidates = append(job.Candidates, c.Name())
	}
	return job, nil
}

// Service is an in-process ease.ml service instance.
type Service struct {
	sched   *server.Scheduler
	pool    *cluster.Pool
	trainer *server.SimTrainer
	pprof   bool
	engine  *engine.Engine        // nil unless Workers > 0
	log     *storage.Log          // nil unless DataDir is set
	coord   *fleet.Coordinator    // nil unless Fleet/FleetAddr enabled
	adm     *admission.Controller // nil unless Quotas/DefaultClass set
	fleetLn net.Listener          // nil unless FleetAddr is set
	fleetHS *http.Server
	closed  atomic.Bool // set by Close; flips /readyz to 503 for drain

	// Recovered summarizes what boot-time recovery restored from DataDir:
	// zero values for a fresh directory or an in-memory service.
	Recovered RecoveryInfo
}

// RecoveryInfo reports what OpenService restored from a data directory.
type RecoveryInfo struct {
	Jobs            int // jobs resubmitted from the log
	Models          int // completed training runs replayed into the bandits
	Examples        int // supervision examples restored
	WALEvents       int // WAL events replayed on top of the snapshot
	ExpiredLeases   int // lease-expiry records in the WAL tail (fleet history)
	PreemptedLeases int // lease-preemption records in the WAL tail (fleet history)
	BudgetExhausted int // jobs recovered in the drained, budget-exhausted state
}

// ServiceConfig parameterizes NewService. Zero values select the defaults
// noted per field.
type ServiceConfig struct {
	// GPUs is the simulated pool size (default 24, the paper's deployment).
	GPUs int
	// Seed fixes the simulated training surfaces (default 1).
	Seed int64
	// Addr is the advertised server address baked into generated code
	// (default "http://localhost:9000").
	Addr string
	// Alpha is the pool's scaling exponent in (0, 1]: one job on g GPUs
	// runs g^Alpha times faster (default 0.9, the paper's near-linear
	// InfiniBand setup; values outside the domain panic in cluster.NewPool).
	// Lower values model workloads that scale poorly across devices — the
	// regime where the async engine's multi-device strategy wins.
	Alpha float64
	// Workers, when positive, attaches the async execution engine: that
	// many concurrent trainers, each accounted on its own device slice of
	// the pool (§5.3.2's multi-device strategy). Zero keeps the serialized
	// single-device strategy driven by RunRounds.
	Workers int
	// Batch caps in-flight leases for the engine (default 2×Workers).
	Batch int
	// TrainDelay makes each simulated training take real wall time, so
	// engine concurrency is observable in benchmarks (default instant).
	TrainDelay time.Duration
	// DataDir, when set, makes the service durable: every state mutation
	// is appended to a write-ahead log in this directory before being
	// acknowledged, and OpenService recovers jobs, examples and recorded
	// models from the snapshot + WAL at boot (see internal/storage).
	// In-flight leases of a crashed process are re-queued, not lost.
	// Requires OpenService (NewService panics on a DataDir it cannot
	// open).
	DataDir string
	// WALSegmentBytes is the write-ahead log's segment roll threshold: an
	// append that would push the active wal-<firstseq>.jsonl past it seals
	// the segment and opens the next, giving incremental compaction
	// (CompactStep) its granularity. Zero means the storage default
	// (4 MiB); ignored without DataDir.
	WALSegmentBytes int64
	// WALSyncInterval shapes the WAL's group commit. Zero (the default)
	// fsyncs every append immediately — batching still arises naturally
	// from appends that arrive during the previous batch's fsync. A
	// positive interval makes the committer linger that long so concurrent
	// writers share one fsync (appends are acked within ~interval; the
	// server flag default is 2ms). Negative disables group commit: each
	// append pays its own serialized write+fsync. Every mode fsyncs before
	// acknowledging. Ignored without DataDir.
	WALSyncInterval time.Duration
	// Fleet enables the distributed-worker coordinator (internal/fleet):
	// remote easeml-worker agents register, lease candidates, heartbeat
	// and report results over the /fleet/* endpoints, which are mounted on
	// Handler alongside the service API. Leases gain a TTL: work on a
	// worker that goes silent is re-queued by the expiry sweeper.
	Fleet bool
	// FleetAddr, when set, additionally serves the fleet protocol on a
	// dedicated listen address (e.g. ":9001", or "127.0.0.1:0" for an
	// ephemeral port — read the bound address back with
	// Service.FleetAddr). Setting it implies Fleet.
	FleetAddr string
	// LeaseTTL is the fleet lease time-to-live: how long a leased
	// candidate survives without a worker heartbeat before it is
	// re-queued (default 10s). Ignored without Fleet/FleetAddr — the
	// in-process engine settles its leases synchronously and runs without
	// a TTL.
	LeaseTTL time.Duration
	// FleetMaxInFlight caps the total outstanding leases the fleet
	// coordinator grants (0 = no cap). When the cap is saturated and a
	// guaranteed-class tenant has selectable work, the coordinator
	// preempts an outstanding best-effort lease to make room.
	FleetMaxInFlight int
	// DisableSpeculativeLeases turns off the speculative half of the
	// fleet lease protocol (worker-side posterior caching, batched lease
	// proposals, fast-path grants). The default — zero value — keeps
	// speculation on; wired to easeml-server's -speculative=false.
	DisableSpeculativeLeases bool
	// Quotas enables tenant admission control: per-tenant service classes
	// (guaranteed / standard / best-effort weighted fair sharing),
	// concurrent-job caps, Submit/Feed rate limits and GPU cost budgets.
	// Tenant identity is the name jobs are submitted under. Over-quota
	// operations fail with HTTP 429 {"error", "code": "quota_exceeded"};
	// budget-exhausted tenants have their jobs drained gracefully (WAL
	// logged, so recovery agrees). Leave nil (with DefaultClass empty) to
	// admit everything at standard priority.
	Quotas map[string]TenantQuota
	// DefaultClass is the class of tenants without a Quotas entry
	// ("standard" when empty). Setting it (or Quotas) enables admission
	// control.
	DefaultClass string
	// Pprof mounts net/http/pprof's profiling handlers under /debug/pprof/
	// on the service handler (the admin surface). Off by default: the
	// profiler exposes goroutine dumps and CPU profiles, so enable it only
	// where the admin endpoint is trusted (easeml-server's -pprof flag).
	// Enabling it also arms the runtime's mutex and block profilers (see
	// MutexProfileFraction / BlockProfileRate) so contention shows up under
	// /debug/pprof/mutex and /debug/pprof/block.
	Pprof bool
	// MutexProfileFraction is the runtime.SetMutexProfileFraction sampling
	// rate armed when Pprof is on: 1/N mutex contention events are sampled
	// (default 100; negative leaves the runtime setting untouched).
	MutexProfileFraction int
	// BlockProfileRate is the runtime.SetBlockProfileRate granularity in
	// nanoseconds armed when Pprof is on: one sample per BlockProfileRate
	// nanoseconds blocked (default 1e6, i.e. microsecond-scale events are
	// sampled; negative leaves the runtime setting untouched).
	BlockProfileRate int
	// Logger, when set, receives the fleet coordinator's structured
	// diagnostics (worker churn, lease lifecycle with trace IDs). Nil keeps
	// the coordinator silent — tests stay quiet; easeml-server passes its
	// process logger.
	Logger *slog.Logger
	// TraceBuffer sizes the tracing flight recorder: the span capacity of
	// each in-memory ring (one for recent spans, one for retained
	// slow/failed traces — see GET /admin/traces). Zero keeps the current
	// capacity (telemetry.DefaultTraceBuffer, 4096, unless something
	// resized it); the recorder is process-global, so the last service
	// configured wins. The easeml-server -trace-buffer flag feeds this.
	TraceBuffer int
}

// TenantQuota declares one tenant's admission envelope. Zero fields mean
// "unlimited"; the zero TenantQuota admits everything at standard
// priority. The JSON tags are the -quota-config file schema.
type TenantQuota struct {
	// Class is "guaranteed", "standard" or "best-effort" (default
	// standard). Guaranteed tenants get the largest fair-share weight and
	// may preempt best-effort leases; best-effort leases are preemptible.
	Class string `json:"class,omitempty"`
	// MaxJobs caps the tenant's concurrently unfinished jobs.
	MaxJobs int `json:"max_jobs,omitempty"`
	// RatePerSec rate-limits the tenant's Submit/Feed operations through a
	// token bucket of capacity Burst (default max(1, ⌈RatePerSec⌉)).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	// Budget bounds the total GPU cost the tenant's jobs may pay; once
	// exhausted the jobs drain gracefully (remaining candidates retired).
	Budget float64 `json:"budget,omitempty"`
}

// QuotaFile is the JSON schema of an easeml-server -quota-config file.
type QuotaFile struct {
	DefaultClass string                 `json:"default_class,omitempty"`
	Tenants      map[string]TenantQuota `json:"tenants,omitempty"`
}

// LoadQuotaFile reads and validates a -quota-config JSON file.
func LoadQuotaFile(path string) (QuotaFile, error) {
	cfg, err := admission.LoadConfig(path)
	if err != nil {
		return QuotaFile{}, err
	}
	out := QuotaFile{DefaultClass: string(cfg.DefaultClass)}
	if len(cfg.Tenants) > 0 {
		out.Tenants = make(map[string]TenantQuota, len(cfg.Tenants))
		for tenant, q := range cfg.Tenants {
			out.Tenants[tenant] = TenantQuota{
				Class:      string(q.Class),
				MaxJobs:    q.MaxJobs,
				RatePerSec: q.RatePerSec,
				Burst:      q.Burst,
				Budget:     q.Budget,
			}
		}
	}
	return out, nil
}

// NewService creates a service with a simulated GPU pool and the HYBRID
// multi-tenant scheduler. It panics when OpenService would fail — I/O
// (opening ServiceConfig.DataDir, binding ServiceConfig.FleetAddr) or an
// invalid ServiceConfig.Quotas declaration (unknown class, negative
// bound). The zero-friction constructor stays available for in-memory
// services with statically known-good quotas; deployments setting those
// fields from user input should call OpenService and handle the error.
func NewService(cfg ServiceConfig) *Service {
	s, err := OpenService(cfg)
	if err != nil {
		panic(fmt.Sprintf("easeml: NewService: %v (use OpenService with a DataDir)", err))
	}
	return s
}

// OpenService creates a service with a simulated GPU pool and the HYBRID
// multi-tenant scheduler. With ServiceConfig.DataDir set it opens (or
// creates) the durable data directory, recovers all jobs, examples and
// recorded models from snapshot + WAL, and resumes model selection from
// the recovered posteriors; training then picks up where the previous
// process stopped.
func OpenService(cfg ServiceConfig) (*Service, error) {
	if cfg.GPUs == 0 {
		cfg.GPUs = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.9
	}
	if cfg.TraceBuffer > 0 {
		telemetry.DefaultRecorder().SetCapacity(cfg.TraceBuffer)
	}
	pool := cluster.NewPool(cfg.GPUs, cfg.Alpha)
	trainer := server.NewSimTrainer(pool, cfg.Seed)
	trainer.Delay = cfg.TrainDelay
	sched := server.NewScheduler(trainer, nil, cfg.Addr)
	s := &Service{sched: sched, pool: pool, trainer: trainer, pprof: cfg.Pprof}
	if len(cfg.Quotas) > 0 || cfg.DefaultClass != "" {
		// Admission is installed before recovery, so recovered jobs pick up
		// their tenant's class and re-register with the controller.
		admCfg := admission.Config{DefaultClass: admission.Class(cfg.DefaultClass)}
		if len(cfg.Quotas) > 0 {
			admCfg.Tenants = make(map[string]admission.Quota, len(cfg.Quotas))
			for tenant, q := range cfg.Quotas {
				admCfg.Tenants[tenant] = admission.Quota{
					Class:      admission.Class(q.Class),
					MaxJobs:    q.MaxJobs,
					RatePerSec: q.RatePerSec,
					Burst:      q.Burst,
					Budget:     q.Budget,
				}
			}
		}
		ctrl, err := admission.NewController(admCfg)
		if err != nil {
			return nil, fmt.Errorf("easeml: quota configuration: %w", err)
		}
		sched.SetAdmission(ctrl)
		s.adm = ctrl
	}
	if cfg.DataDir != "" {
		log, rec, err := storage.OpenDirOptions(cfg.DataDir, storage.LogOptions{
			SegmentBytes: cfg.WALSegmentBytes,
			SyncInterval: cfg.WALSyncInterval,
		})
		if err != nil {
			return nil, err
		}
		if err := sched.Recover(rec, log); err != nil {
			log.Close()
			return nil, err
		}
		s.log = log
		s.Recovered.Jobs = len(rec.Jobs)
		s.Recovered.WALEvents = rec.Events
		s.Recovered.ExpiredLeases = len(rec.Expired)
		s.Recovered.PreemptedLeases = len(rec.Preempted)
		s.Recovered.BudgetExhausted = len(rec.BudgetExhausted)
		for _, j := range sched.Jobs() {
			st, serr := sched.Status(j.ID)
			if serr != nil {
				continue
			}
			s.Recovered.Models += st.Trained
			s.Recovered.Examples += st.Examples
		}
	}
	if cfg.Workers > 0 {
		devices := cfg.Workers
		if devices > cfg.GPUs {
			devices = cfg.GPUs
		}
		trainer.Devices = devices
		s.engine = engine.New(sched, trainer, engine.Config{
			Workers:     cfg.Workers,
			MaxInFlight: cfg.Batch,
		})
	}
	if cfg.Pprof {
		// -pprof arms the contention profilers too: without these the mutex
		// and block profiles under /debug/pprof are permanently empty.
		if cfg.MutexProfileFraction >= 0 {
			frac := cfg.MutexProfileFraction
			if frac == 0 {
				frac = 100
			}
			runtime.SetMutexProfileFraction(frac)
		}
		if cfg.BlockProfileRate >= 0 {
			rate := cfg.BlockProfileRate
			if rate == 0 {
				rate = 1_000_000
			}
			runtime.SetBlockProfileRate(rate)
		}
	}
	if cfg.Fleet || cfg.FleetAddr != "" {
		s.coord = fleet.NewCoordinator(sched, fleet.CoordinatorConfig{
			LeaseTTL:           cfg.LeaseTTL,
			Seed:               cfg.Seed,
			MaxInFlight:        cfg.FleetMaxInFlight,
			DisableSpeculative: cfg.DisableSpeculativeLeases,
			Logger:             cfg.Logger,
		})
		s.coord.Start()
		if cfg.FleetAddr != "" {
			ln, err := net.Listen("tcp", cfg.FleetAddr)
			if err != nil {
				s.coord.Stop()
				if s.log != nil {
					s.log.Close()
				}
				return nil, fmt.Errorf("easeml: listening on fleet address %q: %w", cfg.FleetAddr, err)
			}
			s.fleetLn = ln
			s.fleetHS = &http.Server{Handler: s.coord.Handler()}
			go func() { _ = s.fleetHS.Serve(ln) }()
		}
	}
	return s, nil
}

// Compact folds the write-ahead log into the data directory's snapshot,
// bounding boot-time replay. It errors for a service without a DataDir.
func (s *Service) Compact() error { return s.sched.Compact() }

// CompactStep folds only the oldest sealed WAL segment into the snapshot
// — the incremental counterpart to Compact, with an O(segment) pause. It
// reports whether a segment was folded (false when nothing is sealed yet)
// and errors for a service without a DataDir.
func (s *Service) CompactStep() (bool, error) { return s.sched.CompactIncremental() }

// Close shuts the service's background machinery down: the fleet
// coordinator's sweeper and listener stop, then (when durable) the WAL is
// compacted and closed. The service must be quiesced first (StopEngine);
// mutations after Close fail. It is a no-op for a plain in-memory service.
func (s *Service) Close() error {
	s.closed.Store(true) // /readyz answers 503 from here on
	if s.coord != nil {
		s.coord.Stop()
	}
	if s.fleetHS != nil {
		_ = s.fleetHS.Close()
	}
	if s.log == nil {
		return nil
	}
	// Compaction on clean shutdown makes the next boot snapshot-only; if
	// it fails the un-compacted WAL still recovers everything.
	_ = s.sched.Compact()
	return s.log.Close()
}

// Submit registers a declarative job and returns its parsed form with the
// service-assigned id in Name… the returned Job's Name is the job id.
func (s *Service) Submit(name, program string) (*Job, error) {
	j, err := s.sched.Submit(name, program)
	if err != nil {
		return nil, err
	}
	if s.engine != nil {
		s.engine.Kick() // wake an idle engine for the new job
	}
	out := &Job{
		Name:     j.ID,
		Program:  j.Program.String(),
		Template: j.Template,
		Julia:    j.Julia,
		Python:   j.Python,
	}
	for _, c := range j.Candidates {
		out.Candidates = append(out.Candidates, c.Name())
	}
	return out, nil
}

// Feed registers a supervision example and returns its id.
func (s *Service) Feed(jobID string, input, output []float64) (int, error) {
	return s.sched.Feed(jobID, input, output)
}

// Refine toggles a supervision example.
func (s *Service) Refine(jobID string, exampleID int, enabled bool) error {
	return s.sched.Refine(jobID, exampleID, enabled)
}

// Infer applies the best model so far.
func (s *Service) Infer(jobID string, input []float64) (output []float64, model string, err error) {
	return s.sched.Infer(jobID, input)
}

// InferBatch applies the best model to many inputs under one serving
// session: one job lookup, one best-model resolution, one model for every
// output.
func (s *Service) InferBatch(jobID string, inputs [][]float64) (outputs [][]float64, model string, err error) {
	return s.sched.InferBatch(jobID, inputs)
}

// Status reports a job's trained models and current best.
func (s *Service) Status(jobID string) (server.Status, error) { return s.sched.Status(jobID) }

// RunRounds executes up to n multi-tenant scheduling rounds and reports how
// many ran (fewer when all jobs are exhausted).
func (s *Service) RunRounds(n int) (int, error) { return s.sched.RunRounds(n) }

// GPUTime returns the virtual GPU-pool clock: total serialized training
// time consumed so far.
func (s *Service) GPUTime() float64 { return s.pool.Now() }

// Handler exposes the service over HTTP (see internal/server for the
// endpoint list); internal/client provides the matching Go client. When the
// service has an engine, the /admin/metrics and /admin/start|stop endpoints
// control it. With the fleet enabled, the /fleet/* worker protocol is
// mounted alongside the service API and GET /admin/fleet reports the
// worker registry.
func (s *Service) Handler() http.Handler {
	api := server.NewAPI(s.sched).WithReadiness(s.Ready)
	if s.engine != nil {
		api.WithEngine(engineControl{s})
	}
	if s.adm != nil {
		api.WithAdmission(s.adm)
	}
	if s.coord == nil && !s.pprof {
		return api.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	if s.coord != nil {
		api.WithFleet(s.coord)
		mux.Handle("/fleet/", s.coord.Handler())
	}
	if s.pprof {
		// Explicit registrations, not the package's init side effect on
		// http.DefaultServeMux — the service handler never serves the
		// default mux, and profiling must stay strictly opt-in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// SelectionMetrics snapshots the scheduler's pick-path counters: selection
// index epoch/heap/shadow traffic plus the aggregated per-job bandit cache
// tallies (also served under "selection" in GET /admin/metrics).
func (s *Service) SelectionMetrics() server.SelectionStats { return s.sched.SelectionStats() }

// FleetStatus snapshots the fleet's worker registry and lease counters; ok
// is false when the service runs without a fleet coordinator.
func (s *Service) FleetStatus() (server.FleetStatus, bool) {
	if s.coord == nil {
		return server.FleetStatus{}, false
	}
	return s.coord.FleetStatus(), true
}

// Ready reports whether the service can take traffic: OpenService has
// finished (WAL recovery replayed, the fleet listener — when configured —
// bound and accepting) and Close has not begun. GET /readyz serves this;
// /healthz stays 200 regardless, distinguishing "alive" from "ready".
func (s *Service) Ready() bool {
	return !s.closed.Load()
}

// FleetAddr returns the bound address of the dedicated fleet listener
// (empty without ServiceConfig.FleetAddr). With an ephemeral ":0" address
// this is how callers learn the actual port.
func (s *Service) FleetAddr() string {
	if s.fleetLn == nil {
		return ""
	}
	return s.fleetLn.Addr().String()
}

// StartEngine launches the async execution engine in the background: the
// worker pool leases work through the scheduler's two-phase API and keeps
// its device slice busy until StopEngine. It errors when the service was
// built without Workers or the engine is already running.
func (s *Service) StartEngine() error {
	if s.engine == nil {
		return fmt.Errorf("easeml: service has no engine (set ServiceConfig.Workers)")
	}
	return s.engine.Start()
}

// StopEngine gracefully stops the engine: running trainings finish, queued
// leases are handed back, and it returns once every lease is settled.
func (s *Service) StopEngine() error {
	if s.engine == nil {
		return fmt.Errorf("easeml: service has no engine (set ServiceConfig.Workers)")
	}
	return s.engine.Stop()
}

// EngineMetrics snapshots the engine counters; ok is false when the service
// has no engine.
func (s *Service) EngineMetrics() (engine.Metrics, bool) {
	if s.engine == nil {
		return engine.Metrics{}, false
	}
	return s.engine.Metrics(), true
}

// EngineEvents exposes the engine's observability stream (nil without an
// engine).
func (s *Service) EngineEvents() <-chan engine.Event {
	if s.engine == nil {
		return nil
	}
	return s.engine.Events()
}

// VirtualTimes reports the pool's virtual-time accounting: the makespan of
// everything trained so far and what the serialized single-device strategy
// would have taken for the same runs (§5.3.2's comparison).
func (s *Service) VirtualTimes() (makespan, singleDevice float64) {
	return s.pool.Makespan(), s.pool.SingleDeviceTime()
}

// EngineRunSummary reports one DrainEngine batch run.
type EngineRunSummary struct {
	Rounds       int64         // trainings completed by this drain
	Wall         time.Duration // wall-clock duration of the drain
	Makespan     float64       // virtual multi-device completion time (all runs so far)
	SingleDevice float64       // virtual serialized single-device time for the same runs
	Speedup      float64       // SingleDevice / Makespan
	Utilization  float64       // mean worker busy fraction
}

// DrainEngine runs the engine synchronously until every job's candidate
// list is exhausted (batch mode: examples and benchmarks), returning the
// makespan-vs-serialized summary. It shares the background engine's
// running guard, so it errors when the service has no engine or the engine
// is already running — a concurrent StartEngine cannot race onto the same
// scheduler.
func (s *Service) DrainEngine(ctx context.Context) (EngineRunSummary, error) {
	if s.engine == nil {
		return EngineRunSummary{}, fmt.Errorf("easeml: service has no engine (set ServiceConfig.Workers)")
	}
	before := s.engine.Metrics()
	start := time.Now()
	// Drain errors (ErrInterrupted) on any exit before the work ran dry —
	// caller cancellation or a concurrent StopEngine — so a partial drain
	// can never masquerade as a complete summary.
	if err := s.engine.Drain(ctx); err != nil {
		return EngineRunSummary{}, fmt.Errorf("easeml: engine drain aborted: %w", err)
	}
	m := s.engine.Metrics()
	makespan, single := s.VirtualTimes()
	sum := EngineRunSummary{
		Rounds:       m.Completed - before.Completed,
		Wall:         time.Since(start),
		Makespan:     makespan,
		SingleDevice: single,
	}
	// Engine counters are cumulative across runs; the summary reports this
	// drain alone, so utilization comes from the busy/elapsed deltas.
	busyDelta := sumBusy(m.PerWorker) - sumBusy(before.PerWorker)
	if elapsedDelta := m.Elapsed - before.Elapsed; elapsedDelta > 0 && m.Workers > 0 {
		sum.Utilization = float64(busyDelta) / (float64(elapsedDelta) * float64(m.Workers))
	}
	if makespan > 0 {
		sum.Speedup = single / makespan
	}
	return sum, nil
}

func sumBusy(ws []engine.WorkerStats) time.Duration {
	var busy time.Duration
	for _, w := range ws {
		busy += w.Busy
	}
	return busy
}

// engineControl adapts the service's engine to the server admin surface,
// folding in the pool's virtual-time accounting.
type engineControl struct{ s *Service }

func (c engineControl) Start() error { return c.s.StartEngine() }
func (c engineControl) Stop() error  { return c.s.StopEngine() }

func (c engineControl) Status() server.EngineStatus {
	m, _ := c.s.EngineMetrics()
	st := server.EngineStatus{
		Running:     m.Running,
		Workers:     m.Workers,
		Completed:   m.Completed,
		Released:    m.Released,
		Abandoned:   m.Abandoned,
		Errors:      m.Errors,
		InFlight:    m.InFlight,
		QueueDepth:  m.QueueDepth,
		UptimeMS:    float64(m.Elapsed) / float64(time.Millisecond),
		Utilization: m.Utilization,
	}
	for _, w := range m.PerWorker {
		st.PerWorker = append(st.PerWorker, server.EngineWorkerStatus{
			Items:  w.Items,
			BusyMS: float64(w.Busy) / float64(time.Millisecond),
		})
	}
	st.VirtualMakespan, st.VirtualSingleDevice = c.s.VirtualTimes()
	if st.VirtualMakespan > 0 {
		st.VirtualSpeedup = st.VirtualSingleDevice / st.VirtualMakespan
	}
	return st
}

// Policy selects a multi-tenant user-scheduling policy.
type Policy string

// The scheduling policies of the paper.
const (
	PolicyHybrid     Policy = "hybrid"      // §4.4, the ease.ml default
	PolicyGreedy     Policy = "greedy"      // §4.3, Algorithm 2
	PolicyRoundRobin Policy = "round-robin" // §4.2
	PolicyRandom     Policy = "random"      // §5.3 baseline
	PolicyFCFS       Policy = "fcfs"        // §4.1 strawman
)

// SelectionConfig parameterizes a multi-tenant model-selection run over a
// recorded or simulated environment.
type SelectionConfig struct {
	// Quality[user][model] are the observed accuracies; required.
	Quality [][]float64
	// Cost[user][model] are the execution costs; nil means unit costs.
	Cost [][]float64
	// Features[model] are kernel feature vectors (e.g. quality vectors on
	// historical users); nil derives 1-D index features, which disables
	// cross-model generalization but keeps the system functional.
	Features [][]float64
	// Policy is the user-scheduling policy (default PolicyHybrid).
	Policy Policy
	// CostAware enables the §3.2 cost-aware bandit rule.
	CostAware bool
	// Seed drives the random policy (default 1).
	Seed int64
	// Weights optionally switches the user-picking phase to the weighted
	// aggregation extension (§4.5): tenant i's greedy score is scaled by
	// Weights[i]. Only valid with PolicyGreedy or the default PolicyHybrid
	// (which degrades to plain weighted greedy, without freeze detection).
	Weights []float64
	// GuaranteeWindow, when positive, wraps the chosen policy in a hard
	// service rule: no active tenant waits more than this many rounds
	// between serves (§4.5's per-user hard rules).
	GuaranteeWindow int
}

// Selection is a running multi-tenant model-selection instance.
type Selection struct {
	sim *core.Simulation
	env *core.MatrixEnv
}

// NewSelection builds a Selection.
func NewSelection(cfg SelectionConfig) (*Selection, error) {
	if len(cfg.Quality) == 0 {
		return nil, fmt.Errorf("easeml: Quality matrix is required")
	}
	cost := cfg.Cost
	if cost == nil {
		cost = make([][]float64, len(cfg.Quality))
		for i := range cost {
			cost[i] = make([]float64, len(cfg.Quality[i]))
			for j := range cost[i] {
				cost[i][j] = 1
			}
		}
	}
	env := &core.MatrixEnv{Quality: cfg.Quality, Costs: cost}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	maxK := 0
	for i := 0; i < env.NumUsers(); i++ {
		if k := env.NumModels(i); k > maxK {
			maxK = k
		}
	}
	features := cfg.Features
	if features == nil {
		features = make([][]float64, maxK)
		for j := range features {
			features[j] = []float64{float64(j) / float64(maxK)}
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var picker core.UserPicker
	switch cfg.Policy {
	case PolicyHybrid, "":
		picker = core.NewHybridPicker()
	case PolicyGreedy:
		picker = &core.GreedyPicker{}
	case PolicyRoundRobin:
		picker = &core.RoundRobinPicker{}
	case PolicyRandom:
		picker = &core.RandomPicker{Rng: rand.New(rand.NewSource(seed))}
	case PolicyFCFS:
		picker = core.FCFSPicker{}
	default:
		return nil, fmt.Errorf("easeml: unknown policy %q", cfg.Policy)
	}
	if len(cfg.Weights) > 0 {
		switch cfg.Policy {
		case PolicyHybrid, PolicyGreedy, "":
			picker = &core.WeightedGreedyPicker{Weights: cfg.Weights}
		default:
			return nil, fmt.Errorf("easeml: Weights require the greedy or hybrid policy, not %q", cfg.Policy)
		}
	}
	if cfg.GuaranteeWindow > 0 {
		picker = &core.GuaranteedServicePicker{Inner: picker, Window: cfg.GuaranteeWindow}
	}
	var mean float64
	var n float64
	for _, row := range cfg.Quality {
		for _, q := range row {
			mean += q
			n++
		}
	}
	sim, err := core.NewSimulation(core.SimConfig{
		Env:         env,
		UserPicker:  picker,
		ModelPicker: core.UCBModelPicker{},
		Kernel:      gp.RBF{Variance: 0.05, LengthScale: 0.5},
		Features:    features,
		CostAware:   cfg.CostAware,
		PriorMean:   mean / n,
	})
	if err != nil {
		return nil, err
	}
	return &Selection{sim: sim, env: env}, nil
}

// Step runs one scheduling round; it returns false when every user has
// trained every model.
func (s *Selection) Step() (bool, error) { return s.sim.Step() }

// RunSteps runs up to n rounds (all remaining when n ≤ 0).
func (s *Selection) RunSteps(n int) (int, error) { return s.sim.RunSteps(n) }

// RunBudget runs rounds until the cumulative cost reaches budget.
func (s *Selection) RunBudget(budget float64) (int, error) { return s.sim.RunBudget(budget) }

// Best returns the best model found so far for a user and its accuracy;
// ok is false before the user's first serve.
func (s *Selection) Best(user int) (model int, accuracy float64, ok bool) {
	return s.sim.Tenants[user].Bandit.Best()
}

// AvgLoss returns the mean accuracy loss across users (Appendix A).
func (s *Selection) AvgLoss() float64 { return s.sim.AvgLoss() }

// CumulativeCost returns the total execution cost paid.
func (s *Selection) CumulativeCost() float64 { return s.sim.CumulativeCost() }

// CumulativeRegret returns the §4.1 multi-tenant cost-aware regret.
func (s *Selection) CumulativeRegret() float64 { return s.sim.CumulativeRegret() }

// Trace returns the per-round trace (served user, trained model, reward,
// cost, loss).
func (s *Selection) Trace() []core.TracePoint { return s.sim.Trace() }

// TotalCost returns the cost of training everything for everyone.
func (s *Selection) TotalCost() float64 { return s.env.TotalCost() }
