// Package easeml is the public API of this ease.ml reproduction — the
// declarative machine-learning service platform with multi-tenant,
// cost-aware model selection of Li et al. (VLDB 2018, arXiv:1708.07308).
//
// Three entry points cover the system's three usage modes:
//
//   - ParseJob turns a declarative program (the Figure 2 DSL) into the
//     matched template, the candidate-model list and the generated code —
//     the front half of the platform, usable standalone.
//
//   - NewService starts an in-process ease.ml service: submitted jobs are
//     trained on a simulated GPU pool under the HYBRID multi-tenant
//     scheduler, with feed/refine/infer and an http.Handler for remote use.
//
//   - NewSelection runs the paper's core contribution as a library: given a
//     (quality, cost) environment and per-model kernel features, it drives
//     multi-tenant, cost-aware GP-UCB model selection under any of the
//     paper's scheduling policies.
package easeml

import (
	"fmt"
	"math/rand"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/gp"
	"repro/internal/server"
	"repro/internal/templates"
)

// Job is a parsed declarative job: the validated program, its matched
// template and the generated candidate models and code.
type Job struct {
	Name       string
	Program    string   // normalized concrete syntax
	Template   string   // matched Figure 4 template name
	Workload   string   // human-readable workload class
	Candidates []string // candidate model names (incl. normalization variants)
	Julia      string   // system data types in Julia format (Figure 3)
	Python     string   // importable Python stub (Figure 3)
}

// ParseJob validates a declarative program and produces the candidate
// models and generated code without starting a service.
func ParseJob(name, program string) (*Job, error) {
	prog, err := dsl.Parse(program)
	if err != nil {
		return nil, err
	}
	cands, tpl, err := templates.Generate(prog, nil)
	if err != nil {
		return nil, err
	}
	job := &Job{
		Name:     name,
		Program:  prog.String(),
		Template: tpl.Name,
		Workload: tpl.Workload,
		Julia:    codegen.JuliaTypes(prog),
		Python:   codegen.PythonLibrary(name, "http://localhost:9000", prog),
	}
	for _, c := range cands {
		job.Candidates = append(job.Candidates, c.Name())
	}
	return job, nil
}

// Service is an in-process ease.ml service instance.
type Service struct {
	sched *server.Scheduler
	pool  *cluster.Pool
}

// ServiceConfig parameterizes NewService. Zero values select the defaults
// noted per field.
type ServiceConfig struct {
	// GPUs is the simulated pool size (default 24, the paper's deployment).
	GPUs int
	// Seed fixes the simulated training surfaces (default 1).
	Seed int64
	// Addr is the advertised server address baked into generated code
	// (default "http://localhost:9000").
	Addr string
}

// NewService creates a service with a simulated GPU pool and the HYBRID
// multi-tenant scheduler.
func NewService(cfg ServiceConfig) *Service {
	if cfg.GPUs == 0 {
		cfg.GPUs = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pool := cluster.NewPool(cfg.GPUs, 0.9)
	sched := server.NewScheduler(server.NewSimTrainer(pool, cfg.Seed), nil, cfg.Addr)
	return &Service{sched: sched, pool: pool}
}

// Submit registers a declarative job and returns its parsed form with the
// service-assigned id in Name… the returned Job's Name is the job id.
func (s *Service) Submit(name, program string) (*Job, error) {
	j, err := s.sched.Submit(name, program)
	if err != nil {
		return nil, err
	}
	out := &Job{
		Name:     j.ID,
		Program:  j.Program.String(),
		Template: j.Template,
		Julia:    j.Julia,
		Python:   j.Python,
	}
	for _, c := range j.Candidates {
		out.Candidates = append(out.Candidates, c.Name())
	}
	return out, nil
}

// Feed registers a supervision example and returns its id.
func (s *Service) Feed(jobID string, input, output []float64) (int, error) {
	return s.sched.Feed(jobID, input, output)
}

// Refine toggles a supervision example.
func (s *Service) Refine(jobID string, exampleID int, enabled bool) error {
	return s.sched.Refine(jobID, exampleID, enabled)
}

// Infer applies the best model so far.
func (s *Service) Infer(jobID string, input []float64) (output []float64, model string, err error) {
	return s.sched.Infer(jobID, input)
}

// Status reports a job's trained models and current best.
func (s *Service) Status(jobID string) (server.Status, error) { return s.sched.Status(jobID) }

// RunRounds executes up to n multi-tenant scheduling rounds and reports how
// many ran (fewer when all jobs are exhausted).
func (s *Service) RunRounds(n int) (int, error) { return s.sched.RunRounds(n) }

// GPUTime returns the virtual GPU-pool clock: total serialized training
// time consumed so far.
func (s *Service) GPUTime() float64 { return s.pool.Now() }

// Handler exposes the service over HTTP (see internal/server for the
// endpoint list); internal/client provides the matching Go client.
func (s *Service) Handler() http.Handler { return server.NewAPI(s.sched).Handler() }

// Policy selects a multi-tenant user-scheduling policy.
type Policy string

// The scheduling policies of the paper.
const (
	PolicyHybrid     Policy = "hybrid"      // §4.4, the ease.ml default
	PolicyGreedy     Policy = "greedy"      // §4.3, Algorithm 2
	PolicyRoundRobin Policy = "round-robin" // §4.2
	PolicyRandom     Policy = "random"      // §5.3 baseline
	PolicyFCFS       Policy = "fcfs"        // §4.1 strawman
)

// SelectionConfig parameterizes a multi-tenant model-selection run over a
// recorded or simulated environment.
type SelectionConfig struct {
	// Quality[user][model] are the observed accuracies; required.
	Quality [][]float64
	// Cost[user][model] are the execution costs; nil means unit costs.
	Cost [][]float64
	// Features[model] are kernel feature vectors (e.g. quality vectors on
	// historical users); nil derives 1-D index features, which disables
	// cross-model generalization but keeps the system functional.
	Features [][]float64
	// Policy is the user-scheduling policy (default PolicyHybrid).
	Policy Policy
	// CostAware enables the §3.2 cost-aware bandit rule.
	CostAware bool
	// Seed drives the random policy (default 1).
	Seed int64
	// Weights optionally switches the user-picking phase to the weighted
	// aggregation extension (§4.5): tenant i's greedy score is scaled by
	// Weights[i]. Only valid with PolicyGreedy or the default PolicyHybrid
	// (which degrades to plain weighted greedy, without freeze detection).
	Weights []float64
	// GuaranteeWindow, when positive, wraps the chosen policy in a hard
	// service rule: no active tenant waits more than this many rounds
	// between serves (§4.5's per-user hard rules).
	GuaranteeWindow int
}

// Selection is a running multi-tenant model-selection instance.
type Selection struct {
	sim *core.Simulation
	env *core.MatrixEnv
}

// NewSelection builds a Selection.
func NewSelection(cfg SelectionConfig) (*Selection, error) {
	if len(cfg.Quality) == 0 {
		return nil, fmt.Errorf("easeml: Quality matrix is required")
	}
	cost := cfg.Cost
	if cost == nil {
		cost = make([][]float64, len(cfg.Quality))
		for i := range cost {
			cost[i] = make([]float64, len(cfg.Quality[i]))
			for j := range cost[i] {
				cost[i][j] = 1
			}
		}
	}
	env := &core.MatrixEnv{Quality: cfg.Quality, Costs: cost}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	maxK := 0
	for i := 0; i < env.NumUsers(); i++ {
		if k := env.NumModels(i); k > maxK {
			maxK = k
		}
	}
	features := cfg.Features
	if features == nil {
		features = make([][]float64, maxK)
		for j := range features {
			features[j] = []float64{float64(j) / float64(maxK)}
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var picker core.UserPicker
	switch cfg.Policy {
	case PolicyHybrid, "":
		picker = core.NewHybridPicker()
	case PolicyGreedy:
		picker = &core.GreedyPicker{}
	case PolicyRoundRobin:
		picker = &core.RoundRobinPicker{}
	case PolicyRandom:
		picker = &core.RandomPicker{Rng: rand.New(rand.NewSource(seed))}
	case PolicyFCFS:
		picker = core.FCFSPicker{}
	default:
		return nil, fmt.Errorf("easeml: unknown policy %q", cfg.Policy)
	}
	if len(cfg.Weights) > 0 {
		switch cfg.Policy {
		case PolicyHybrid, PolicyGreedy, "":
			picker = &core.WeightedGreedyPicker{Weights: cfg.Weights}
		default:
			return nil, fmt.Errorf("easeml: Weights require the greedy or hybrid policy, not %q", cfg.Policy)
		}
	}
	if cfg.GuaranteeWindow > 0 {
		picker = &core.GuaranteedServicePicker{Inner: picker, Window: cfg.GuaranteeWindow}
	}
	var mean float64
	var n float64
	for _, row := range cfg.Quality {
		for _, q := range row {
			mean += q
			n++
		}
	}
	sim, err := core.NewSimulation(core.SimConfig{
		Env:         env,
		UserPicker:  picker,
		ModelPicker: core.UCBModelPicker{},
		Kernel:      gp.RBF{Variance: 0.05, LengthScale: 0.5},
		Features:    features,
		CostAware:   cfg.CostAware,
		PriorMean:   mean / n,
	})
	if err != nil {
		return nil, err
	}
	return &Selection{sim: sim, env: env}, nil
}

// Step runs one scheduling round; it returns false when every user has
// trained every model.
func (s *Selection) Step() (bool, error) { return s.sim.Step() }

// RunSteps runs up to n rounds (all remaining when n ≤ 0).
func (s *Selection) RunSteps(n int) (int, error) { return s.sim.RunSteps(n) }

// RunBudget runs rounds until the cumulative cost reaches budget.
func (s *Selection) RunBudget(budget float64) (int, error) { return s.sim.RunBudget(budget) }

// Best returns the best model found so far for a user and its accuracy;
// ok is false before the user's first serve.
func (s *Selection) Best(user int) (model int, accuracy float64, ok bool) {
	return s.sim.Tenants[user].Bandit.Best()
}

// AvgLoss returns the mean accuracy loss across users (Appendix A).
func (s *Selection) AvgLoss() float64 { return s.sim.AvgLoss() }

// CumulativeCost returns the total execution cost paid.
func (s *Selection) CumulativeCost() float64 { return s.sim.CumulativeCost() }

// CumulativeRegret returns the §4.1 multi-tenant cost-aware regret.
func (s *Selection) CumulativeRegret() float64 { return s.sim.CumulativeRegret() }

// Trace returns the per-round trace (served user, trained model, reward,
// cost, loss).
func (s *Selection) Trace() []core.TracePoint { return s.sim.Trace() }

// TotalCost returns the cost of training everything for everyone.
func (s *Selection) TotalCost() float64 { return s.env.TotalCost() }
