package easeml

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/fleet"
)

// The race-soak: eight user goroutines hammer every user-facing operation
// (Submit / Feed / Refine / Infer / Status) while the async engine's
// workers and a remote fleet agent concurrently drive PickWork/Complete
// against the same scheduler — the full three-way concurrency the locking
// discipline must survive. Run under -race (the dedicated CI job does, in
// its shortened -short variant); the assertions double as invariants: no
// candidate is recorded twice and no job over-trains, no matter how the
// engine and the fleet interleave.
func TestRaceSoakConcurrentService(t *testing.T) {
	soak := 1500 * time.Millisecond
	if testing.Short() {
		soak = 250 * time.Millisecond
	}

	svc := NewService(ServiceConfig{
		Seed:       7,
		Workers:    4,
		Fleet:      true,
		TrainDelay: 200 * time.Microsecond, // engine runs take wall time, so leases overlap
		Quotas: map[string]TenantQuota{
			"tenant-0": {Class: "guaranteed"},
			"tenant-1": {Class: "standard"},
			"tenant-2": {Class: "best-effort"},
			"tenant-3": {Class: "standard", RatePerSec: 50, Burst: 10}, // some 429s in the mix
		},
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Coordinator:  srv.URL,
		Name:         "soak-agent",
		Devices:      2,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	agentCtx, stopAgent := context.WithCancel(context.Background())
	var agentDone sync.WaitGroup
	agentDone.Add(1)
	go func() {
		defer agentDone.Done()
		if err := agent.Run(agentCtx); err != nil {
			t.Errorf("agent: %v", err)
		}
	}()
	if err := svc.StartEngine(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		maxJobs    = 12
		program    = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	)
	var (
		jobsMu sync.Mutex
		jobIDs []string
	)
	randomJob := func(rng *rand.Rand) string {
		jobsMu.Lock()
		defer jobsMu.Unlock()
		if len(jobIDs) == 0 {
			return ""
		}
		return jobIDs[rng.Intn(len(jobIDs))]
	}

	deadline := time.Now().Add(soak)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			tenant := []string{"tenant-0", "tenant-1", "tenant-2", "tenant-3"}[g%4]
			for time.Now().Before(deadline) {
				switch rng.Intn(6) {
				case 0: // submit, bounded so the soak doesn't balloon
					jobsMu.Lock()
					room := len(jobIDs) < maxJobs
					jobsMu.Unlock()
					if !room {
						continue
					}
					job, err := svc.Submit(tenant, program)
					if err != nil {
						if errors.Is(err, admission.ErrQuotaExceeded) {
							continue // tenant-3's rate limit biting: expected
						}
						t.Errorf("submit: %v", err)
						return
					}
					jobsMu.Lock()
					jobIDs = append(jobIDs, job.Name)
					jobsMu.Unlock()
				case 1: // feed
					id := randomJob(rng)
					if id == "" {
						continue
					}
					if _, err := svc.Feed(id, []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil &&
						!errors.Is(err, admission.ErrQuotaExceeded) {
						t.Errorf("feed: %v", err)
						return
					}
				case 2: // refine (example may not exist yet: tolerated)
					id := randomJob(rng)
					if id == "" {
						continue
					}
					_ = svc.Refine(id, 1+rng.Intn(3), rng.Intn(2) == 0)
				case 3: // infer (no model yet: tolerated)
					id := randomJob(rng)
					if id == "" {
						continue
					}
					_, _, _ = svc.Infer(id, []float64{1, 2, 3, 4})
				case 4, 5: // status
					id := randomJob(rng)
					if id == "" {
						continue
					}
					if _, err := svc.Status(id); err != nil {
						t.Errorf("status: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	stopAgent()
	agentDone.Wait()
	if err := svc.StopEngine(); err != nil {
		t.Fatal(err)
	}

	// Post-soak invariants: however the engine and the agent raced, no
	// candidate was recorded twice and no job trained more than its
	// candidate list.
	jobsMu.Lock()
	ids := append([]string(nil), jobIDs...)
	jobsMu.Unlock()
	if len(ids) == 0 {
		t.Fatal("soak submitted no jobs")
	}
	totalTrained := 0
	for _, id := range ids {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool, len(st.Models))
		for _, m := range st.Models {
			if seen[m.Name] {
				t.Fatalf("job %s recorded candidate %s twice", id, m.Name)
			}
			seen[m.Name] = true
		}
		if st.Trained > st.NumCandidates {
			t.Fatalf("job %s trained %d of %d candidates", id, st.Trained, st.NumCandidates)
		}
		totalTrained += st.Trained
	}
	if totalTrained == 0 {
		t.Error("soak trained nothing; engine/fleet never completed a lease")
	}
}
