package easeml

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The profiler must be mounted only behind the opt-in flag, and the
// selection counters must surface through both the facade and the metrics
// endpoint.
func TestPprofMountAndSelectionMetrics(t *testing.T) {
	const program = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"

	plain := NewService(ServiceConfig{Seed: 5})
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()
	if resp, err := http.Get(plainSrv.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("pprof reachable without ServiceConfig.Pprof")
		}
	}

	svc := NewService(ServiceConfig{Seed: 5, Pprof: true})
	if _, err := svc.Submit("prof", program); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/debug/pprof/symbol")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof symbol: status %d", resp.StatusCode)
	}

	// The service API must still work side by side with the profiler.
	resp, err = http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var metrics struct {
		Selection struct {
			Picks       uint64 `json:"picks"`
			OraclePicks uint64 `json:"oracle_picks"`
			EpochBumps  uint64 `json:"epoch_bumps"`
		} `json:"selection"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Selection.Picks == 0 || metrics.Selection.OraclePicks == 0 || metrics.Selection.EpochBumps == 0 {
		t.Fatalf("selection counters missing from /admin/metrics: %+v", metrics.Selection)
	}

	st := svc.SelectionMetrics()
	if st.Picks != metrics.Selection.Picks {
		t.Fatalf("facade picks %d vs endpoint %d", st.Picks, metrics.Selection.Picks)
	}
	if st.BanditCache.Select.Misses == 0 {
		t.Fatalf("bandit cache counters not aggregated: %+v", st.BanditCache)
	}
}
