package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintSourceFindsViolations(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a

var (
	ok  = telemetry.Default().Counter("easeml_good_total", "fine")
	bad = telemetry.Default().Gauge("Easeml-Bad", "not snake case")
)
`)
	writeFile(t, dir, "b.go", `package a

var dup = telemetry.Default().Counter("easeml_good_total", "claimed twice")

func render(w io.Writer) {
	telemetry.WriteMetricHeader(w, "easeml_dynamic", "scrape-time family", "gauge")
}
`)
	// _test.go files register private names into fresh registries and are
	// out of scope.
	writeFile(t, dir, "a_test.go", `package a

var testOnly = reg.Counter("NOT_CHECKED", "test registry")
`)

	problems, err := lintSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, `"Easeml-Bad" is not lower snake_case`) {
		t.Errorf("missing snake_case violation in:\n%s", joined)
	}
	if !strings.Contains(joined, `"easeml_good_total" already registered`) {
		t.Errorf("missing duplicate-name violation in:\n%s", joined)
	}
	if strings.Contains(joined, "NOT_CHECKED") {
		t.Errorf("lint reached into _test.go files:\n%s", joined)
	}
	if len(problems) != 2 {
		t.Errorf("got %d problems, want 2:\n%s", len(problems), joined)
	}
}

func TestLintSourceSpanOps(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a

var (
	opRun  = telemetry.SpanOp("worker_run")
	opBad  = telemetry.SpanOp("Worker-Run")
	metric = telemetry.Default().Counter("worker_run", "shares the word with the span op: fine")
)
`)
	writeFile(t, dir, "b.go", `package a

var opDup = telemetry.SpanOp("worker_run")
`)
	problems, err := lintSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, `span op "Worker-Run" is not lower snake_case`) {
		t.Errorf("missing span-op snake_case violation in:\n%s", joined)
	}
	if !strings.Contains(joined, `span op "worker_run" already registered`) {
		t.Errorf("missing duplicate span-op violation in:\n%s", joined)
	}
	if len(problems) != 2 {
		t.Errorf("got %d problems, want 2 (metric/span namespaces must not collide):\n%s", len(problems), joined)
	}
}

func TestLintSourceCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `package a

var c = telemetry.Default().CounterVec("easeml_things_total", "fine", "kind")
`)
	problems, err := lintSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("clean tree produced problems: %v", problems)
	}
}

func TestLintExposition(t *testing.T) {
	good := `# HELP easeml_jobs Jobs known.
# TYPE easeml_jobs gauge
easeml_jobs 3
# HELP easeml_wal_append_seconds Append latency.
# TYPE easeml_wal_append_seconds histogram
easeml_wal_append_seconds_bucket{le="0.001"} 10
easeml_wal_append_seconds_bucket{le="+Inf"} 12
easeml_wal_append_seconds_sum 0.5
easeml_wal_append_seconds_count 12
# HELP easeml_http_requests_total Requests.
# TYPE easeml_http_requests_total counter
easeml_http_requests_total{route="/jobs",code="200"} 7
`
	if problems := lintExposition(strings.NewReader(good)); len(problems) != 0 {
		t.Errorf("valid exposition rejected: %v", problems)
	}

	for name, bad := range map[string]string{
		"garbage line":      "# TYPE easeml_x gauge\neaseml_x 1\nthis is not a sample\n",
		"sample sans TYPE":  "easeml_orphan 4\n",
		"malformed TYPE":    "# TYPE easeml_x wibble\neaseml_x 1\n",
		"duplicate TYPE":    "# TYPE easeml_x gauge\n# TYPE easeml_x gauge\neaseml_x 1\n",
		"empty exposition":  "\n",
		"unquoted label":    "# TYPE easeml_x gauge\neaseml_x{a=b} 1\n",
		"non-numeric value": "# TYPE easeml_x gauge\neaseml_x one\n",
	} {
		if problems := lintExposition(strings.NewReader(bad)); len(problems) == 0 {
			t.Errorf("%s: accepted invalid exposition %q", name, bad)
		}
	}
}
