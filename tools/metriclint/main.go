// Command metriclint is CI's metric-naming gate. It has two modes:
//
// Source mode (default) walks a Go source tree and collects every metric
// name registered through the telemetry constructors (Counter, CounterVec,
// Gauge, GaugeVec, Histogram, HistogramVec, ValueHistogram) or declared at
// scrape time via
// telemetry.WriteMetricHeader, then enforces the naming contract:
//
//   - names are lower snake_case ([a-z][a-z0-9_]*),
//   - every name is registered exactly once across the tree (two call
//     sites claiming the same family is a merge accident waiting to
//     produce double-counted series).
//
// The same walk collects span operation names declared through
// telemetry.SpanOp and holds them to the same contract in their own
// namespace: snake_case, registered once. (SpanOp panics on a bad name at
// runtime; the linter catches it before anything boots.)
//
// Exposition mode (-exposition) reads Prometheus text format on stdin and
// validates it parses: well-formed # HELP / # TYPE preambles, sample lines
// of the shape name{labels} value, and no sample without a preceding TYPE.
// CI's scrape smoke pipes a live GET /metrics through it.
//
// Usage:
//
//	go run ./tools/metriclint .             # lint the source tree
//	curl -s host/metrics | go run ./tools/metriclint -exposition
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// constructors maps telemetry registration method names to the index of
// their metric-name argument.
var constructors = map[string]int{
	"Counter": 0, "CounterVec": 0,
	"Gauge": 0, "GaugeVec": 0,
	"Histogram": 0, "HistogramVec": 0, "ValueHistogram": 0,
	"WriteMetricHeader": 1,
}

type site struct {
	name string
	pos  string
}

// lintSource walks root for non-test .go files and returns naming problems.
func lintSource(root string) ([]string, error) {
	var sites, spanSites []site
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if base == ".git" || base == "testdata" || base == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "SpanOp" && len(call.Args) == 1 {
				if name, ok := stringArg(call.Args[0]); ok {
					spanSites = append(spanSites, site{name: name, pos: fset.Position(call.Args[0].Pos()).String()})
				}
				return true
			}
			argIdx, ok := constructors[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			name, ok := stringArg(call.Args[argIdx])
			if !ok {
				return true
			}
			sites = append(sites, site{name: name, pos: fset.Position(call.Args[argIdx].Pos()).String()})
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	seen := make(map[string]string)
	for _, s := range sites {
		if !nameRE.MatchString(s.name) {
			problems = append(problems, fmt.Sprintf("%s: metric name %q is not lower snake_case", s.pos, s.name))
		}
		if prev, dup := seen[s.name]; dup {
			problems = append(problems, fmt.Sprintf("%s: metric %q already registered at %s", s.pos, s.name, prev))
		} else {
			seen[s.name] = s.pos
		}
	}
	// Span ops are their own namespace: a span op may share a word with a
	// metric family, but not with another SpanOp declaration.
	seenOps := make(map[string]string)
	for _, s := range spanSites {
		if !nameRE.MatchString(s.name) {
			problems = append(problems, fmt.Sprintf("%s: span op %q is not lower snake_case", s.pos, s.name))
		}
		if prev, dup := seenOps[s.name]; dup {
			problems = append(problems, fmt.Sprintf("%s: span op %q already registered at %s", s.pos, s.name, prev))
		} else {
			seenOps[s.name] = s.pos
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// stringArg unwraps a call argument that is a string literal.
func stringArg(arg ast.Expr) (string, bool) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return name, true
}

var (
	helpRE = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) `)
	typeRE = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	// sampleRE is one sample line: name{labels} value. Label values may
	// contain escaped quotes; the value is a Go float, NaN or ±Inf.
	sampleRE = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)
)

// lintExposition validates Prometheus text format and returns problems.
func lintExposition(r io.Reader) []string {
	var problems []string
	types := make(map[string]string)
	samples := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Arbitrary comments are legal; malformed HELP/TYPE are not.
			switch {
			case typeRE.MatchString(line):
				m := typeRE.FindStringSubmatch(line)
				if _, dup := types[m[1]]; dup {
					problems = append(problems, fmt.Sprintf("line %d: duplicate # TYPE for %s", lineNo, m[1]))
				}
				types[m[1]] = m[2]
			case strings.HasPrefix(line, "# TYPE"):
				problems = append(problems, fmt.Sprintf("line %d: malformed # TYPE: %q", lineNo, line))
			case strings.HasPrefix(line, "# HELP") && !helpRE.MatchString(line):
				problems = append(problems, fmt.Sprintf("line %d: malformed # HELP: %q", lineNo, line))
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, fmt.Sprintf("line %d: unparseable sample: %q", lineNo, line))
			continue
		}
		samples++
		name := m[1]
		if _, ok := types[name]; ok {
			continue
		}
		// Histogram series carry per-family suffixes.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, suffix); t != name && types[t] == "histogram" {
				base = t
				break
			}
		}
		if _, ok := types[base]; !ok {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no preceding # TYPE", lineNo, name))
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("reading exposition: %v", err))
	}
	if samples == 0 {
		problems = append(problems, "exposition contains no samples")
	}
	return problems
}

func main() {
	exposition := flag.Bool("exposition", false, "validate Prometheus text format on stdin instead of linting source")
	flag.Parse()

	var problems []string
	if *exposition {
		problems = lintExposition(os.Stdin)
	} else {
		root := "."
		if flag.NArg() > 0 {
			root = flag.Arg(0)
		}
		var err error
		problems, err = lintSource(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "metriclint: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("metriclint: ok")
}
