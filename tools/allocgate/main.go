// Command allocgate is CI's allocation-regression gate: it reads `go test
// -bench -benchmem` output on stdin, extracts allocs/op per benchmark, and
// compares them against the committed baseline (BENCH_allocs.json at the
// repository root). A benchmark growing past baseline × max_growth_factor
// fails the gate — the backstop that keeps the pick path's alloc-free
// shadows from silently regressing into per-pick posterior copies again.
//
// Usage:
//
//	go test -run NONE -bench 'BenchmarkPickWorkContention$' -benchmem -benchtime=1x ./internal/server | \
//	    go run ./tools/allocgate -baseline BENCH_allocs.json
//
// The baseline schema:
//
//	{
//	  "max_growth_factor": 2.0,
//	  "benchmarks": {"BenchmarkPosterior": 6, "BenchmarkPickWorkContention/per-job-locks": 8}
//	}
//
// Benchmarks in the baseline that do not appear on stdin fail the gate
// (a renamed or deleted benchmark must update the baseline explicitly);
// benchmarks on stdin without a baseline entry are reported but not
// enforced, so new benchmarks can be added before being pinned.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type baseline struct {
	MaxGrowthFactor float64            `json:"max_growth_factor"`
	Benchmarks      map[string]float64 `json:"benchmarks"`
}

// benchLine matches one -benchmem result row, e.g.
// "BenchmarkPosterior-8  123456  9537 ns/op  5832 B/op  6 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?(\d+(?:\.\d+)?) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_allocs.json", "committed allocs/op baseline")
	flag.Parse()

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: reading baseline: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: parsing baseline: %v\n", err)
		os.Exit(2)
	}
	if base.MaxGrowthFactor <= 1 {
		base.MaxGrowthFactor = 2
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		got[m[1]] = allocs
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: reading stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for name, baseAllocs := range base.Benchmarks {
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: baseline present but benchmark did not run\n", name)
			failed = true
			continue
		}
		limit := baseAllocs * base.MaxGrowthFactor
		if cur > limit {
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: %.0f allocs/op exceeds %.0f (baseline %.0f × %.1f)\n",
				name, cur, limit, baseAllocs, base.MaxGrowthFactor)
			failed = true
			continue
		}
		fmt.Printf("allocgate: ok %s: %.0f allocs/op (limit %.0f)\n", name, cur, limit)
	}
	for name, cur := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("allocgate: note %s: %.0f allocs/op (no baseline, not enforced)\n", name, cur)
		}
	}
	if failed {
		os.Exit(1)
	}
}
