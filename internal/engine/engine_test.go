package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/templates"
)

const imgProgram = "{input: {[Tensor[8, 8, 3]], []}, output: {[Tensor[2]], []}}"
const tsProgram = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"

// newLoadedScheduler builds a scheduler with a SimTrainer and a mixed job
// set, returning the scheduler, its trainer and the total candidate count.
func newLoadedScheduler(t testing.TB, jobs int, delay time.Duration) (*server.Scheduler, *server.SimTrainer, int) {
	t.Helper()
	pool := cluster.NewPool(24, 0.35)
	trainer := server.NewSimTrainer(pool, 42)
	trainer.Devices = 8
	trainer.Delay = delay
	sc := server.NewScheduler(trainer, nil, "")
	total := 0
	for i := 0; i < jobs; i++ {
		prog := imgProgram
		if i%2 == 1 {
			prog = tsProgram
		}
		job, err := sc.Submit(fmt.Sprintf("job-%d", i), prog)
		if err != nil {
			t.Fatal(err)
		}
		total += len(job.Candidates)
	}
	return sc, trainer, total
}

func TestEngineExhaustsAllCandidatesExactlyOnce(t *testing.T) {
	sc, _, total := newLoadedScheduler(t, 4, 0)
	eng := engine.New(sc, sc.Trainer(), engine.Config{Workers: 8, ExitOnIdle: true})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sc.Rounds(); got != total {
		t.Errorf("completed %d rounds, want %d", got, total)
	}
	if sc.InFlight() != 0 {
		t.Errorf("%d leases still outstanding after drain", sc.InFlight())
	}
	m := eng.Metrics()
	if m.Completed != int64(total) || m.InFlight != 0 || m.Running {
		t.Errorf("metrics %+v, want %d completed, idle", m, total)
	}
	var items int64
	for _, w := range m.PerWorker {
		items += w.Items
	}
	if items != int64(total) {
		t.Errorf("per-worker items sum to %d, want %d", items, total)
	}
	// Exactly-once: every job's model records are unique and complete.
	for _, job := range sc.Jobs() {
		st, err := sc.Status(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Trained != st.NumCandidates {
			t.Errorf("job %s trained %d of %d", job.ID, st.Trained, st.NumCandidates)
		}
		seen := map[string]bool{}
		for _, m := range st.Models {
			if seen[m.Name] {
				t.Errorf("job %s trained %q twice", job.ID, m.Name)
			}
			seen[m.Name] = true
		}
	}
}

func TestEngineRerunAfterDrain(t *testing.T) {
	sc, _, total := newLoadedScheduler(t, 2, 0)
	eng := engine.New(sc, sc.Trainer(), engine.Config{Workers: 4, ExitOnIdle: true})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A drained engine can run again: no work, immediate clean exit.
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sc.Rounds() != total {
		t.Errorf("second run changed rounds to %d, want %d", sc.Rounds(), total)
	}
}

func TestEngineMatchesSerialBestRecords(t *testing.T) {
	mk := func(devices int) *server.Scheduler {
		pool := cluster.NewPool(24, 0.35)
		trainer := server.NewSimTrainer(pool, 7)
		trainer.Devices = devices
		sc := server.NewScheduler(trainer, nil, "")
		for _, prog := range []string{imgProgram, tsProgram, imgProgram} {
			if _, err := sc.Submit("j", prog); err != nil {
				t.Fatal(err)
			}
		}
		return sc
	}
	serial := mk(0)
	if _, err := serial.RunRounds(1 << 20); err != nil {
		t.Fatal(err)
	}
	parallel := mk(8)
	eng := engine.New(parallel, parallel.Trainer(), engine.Config{Workers: 8, ExitOnIdle: true})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, job := range serial.Jobs() {
		a, err := serial.Status(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Status(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if a.Best == nil || b.Best == nil {
			t.Fatalf("job %s missing best: %v vs %v", job.ID, a.Best, b.Best)
		}
		if a.Best.Name != b.Best.Name || a.Best.Accuracy != b.Best.Accuracy || a.Best.Cost != b.Best.Cost {
			t.Errorf("job %s best diverged: serial %+v vs engine %+v", job.ID, *a.Best, *b.Best)
		}
	}
}

func TestEngineDrainOnStop(t *testing.T) {
	sc, _, total := newLoadedScheduler(t, 2, 2*time.Millisecond)
	eng := engine.New(sc, sc.Trainer(), engine.Config{Workers: 4})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Error("second Start while running should fail")
	}
	// Let some trainings complete, then stop mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for sc.Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := eng.Stop(); err != nil {
		t.Fatal(err)
	}
	if eng.Running() {
		t.Error("engine still running after Stop")
	}
	if sc.InFlight() != 0 {
		t.Errorf("%d leases leaked by stop", sc.InFlight())
	}
	m := eng.Metrics()
	if int(m.Completed) != sc.Rounds() {
		t.Errorf("engine completed %d vs scheduler rounds %d", m.Completed, sc.Rounds())
	}
	if sc.Rounds() >= total {
		t.Fatalf("stop happened after all %d rounds; delay too short to test drain", total)
	}
	// Resume and finish: released leases must be reschedulable, and nothing
	// may be trained twice (Complete would error, Observe would panic).
	sc.Trainer().(*server.SimTrainer).Delay = 0
	eng2 := engine.New(sc, sc.Trainer(), engine.Config{Workers: 4, ExitOnIdle: true})
	if err := eng2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sc.Rounds() != total {
		t.Errorf("resumed run finished at %d rounds, want %d", sc.Rounds(), total)
	}
}

func TestEngineSnapshotRestoreMidFlight(t *testing.T) {
	mk := func(delay time.Duration) *server.Scheduler {
		pool := cluster.NewPool(24, 0.35)
		trainer := server.NewSimTrainer(pool, 42)
		trainer.Devices = 8
		trainer.Delay = delay
		sc := server.NewScheduler(trainer, nil, "")
		for i := 0; i < 3; i++ {
			prog := imgProgram
			if i%2 == 1 {
				prog = tsProgram
			}
			if _, err := sc.Submit(fmt.Sprintf("job-%d", i), prog); err != nil {
				t.Fatal(err)
			}
		}
		return sc
	}
	sc := mk(time.Millisecond)
	total := 0
	for _, j := range sc.Jobs() {
		total += len(j.Candidates)
	}
	eng := engine.New(sc, sc.Trainer(), engine.Config{Workers: 8})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sc.Rounds() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Snapshot while workers are mid-flight: the snapshot must only contain
	// fully completed rounds and be replayable.
	var buf bytes.Buffer
	if err := sc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snapRounds := sc.Rounds()
	if err := eng.Stop(); err != nil {
		t.Fatal(err)
	}

	fresh := mk(0)
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.InFlight() != 0 {
		t.Errorf("fresh scheduler has %d leases", fresh.InFlight())
	}
	restored := fresh.Rounds()
	if restored < snapRounds-8 || restored > snapRounds {
		t.Errorf("restored %d rounds from a snapshot taken at ~%d", restored, snapRounds)
	}
	// Finish on the restored scheduler with a fresh engine: completed work
	// must not be retrained.
	eng2 := engine.New(fresh, fresh.Trainer(), engine.Config{Workers: 8, ExitOnIdle: true})
	if err := eng2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fresh.Rounds() != total {
		t.Errorf("restored run finished at %d rounds, want %d", fresh.Rounds(), total)
	}
	if got := int(eng2.Metrics().Completed); got != total-restored {
		t.Errorf("fresh engine trained %d, want %d (the un-snapshotted remainder)", got, total-restored)
	}
}

// flakyTrainer fails its first N Train calls, then delegates to an inner
// trainer, exercising the engine's release-and-retry path.
type flakyTrainer struct {
	inner    server.Trainer
	failures atomic.Int64
	budget   int64
}

func (f *flakyTrainer) Train(jobID string, c templates.Candidate) (float64, float64, error) {
	if f.failures.Add(1) <= f.budget {
		return 0, 0, fmt.Errorf("flaky: injected failure for %s/%s", jobID, c.Name())
	}
	return f.inner.Train(jobID, c)
}

func (f *flakyTrainer) EstimateCost(jobID string, c templates.Candidate) (float64, error) {
	return f.inner.EstimateCost(jobID, c)
}

func TestEngineSurvivesTrainerErrors(t *testing.T) {
	sc, trainer, total := newLoadedScheduler(t, 2, 0)
	flaky := &flakyTrainer{inner: trainer, budget: 5}
	eng := engine.New(sc, flaky, engine.Config{Workers: 4, ExitOnIdle: true})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Errors != 5 {
		t.Errorf("expected 5 recorded errors, got %d", m.Errors)
	}
	// Each failure either releases the lease for retry or (at MaxRetries on
	// one arm) abandons the candidate.
	if m.Released < 3 {
		t.Errorf("expected ≥3 released leases, got %d", m.Released)
	}
	if got := sc.Rounds() + int(m.Abandoned); got != total {
		t.Errorf("rounds %d + abandoned %d = %d, want %d", sc.Rounds(), m.Abandoned, got, total)
	}
}

// brokenCandidateTrainer permanently fails one candidate by name.
type brokenCandidateTrainer struct {
	inner  server.Trainer
	broken string
}

func (b *brokenCandidateTrainer) Train(jobID string, c templates.Candidate) (float64, float64, error) {
	if c.Name() == b.broken {
		return 0, 0, fmt.Errorf("broken: %s never trains", b.broken)
	}
	return b.inner.Train(jobID, c)
}

func (b *brokenCandidateTrainer) EstimateCost(jobID string, c templates.Candidate) (float64, error) {
	return b.inner.EstimateCost(jobID, c)
}

// A candidate that always fails must not livelock the engine: after
// MaxRetries it is abandoned — retired from selection with no fabricated
// observation — and the drain finishes without it.
func TestEngineGivesUpOnPermanentlyFailingCandidate(t *testing.T) {
	sc, trainer, total := newLoadedScheduler(t, 1, 0)
	broken := sc.Jobs()[0].Candidates[0].Name()
	eng := engine.New(sc, &brokenCandidateTrainer{inner: trainer, broken: broken},
		engine.Config{Workers: 4, ExitOnIdle: true, MaxRetries: 3})
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine livelocked on a permanently failing candidate")
	}
	if sc.Rounds() != total-1 {
		t.Fatalf("finished at %d rounds, want %d (all but the broken candidate)", sc.Rounds(), total-1)
	}
	m := eng.Metrics()
	if m.Errors != 3 {
		t.Errorf("errors %d, want exactly MaxRetries=3", m.Errors)
	}
	if m.Abandoned != 1 {
		t.Errorf("abandoned %d, want 1", m.Abandoned)
	}
	st, err := sc.Status(sc.Jobs()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	// No fabricated record: the broken candidate is absent from the model
	// history, and every other candidate trained.
	for _, rec := range st.Models {
		if rec.Name == broken {
			t.Errorf("abandoned candidate %q has a model record: %+v", broken, rec)
		}
	}
	if st.Trained != st.NumCandidates-1 {
		t.Errorf("trained %d of %d, want all but the broken one", st.Trained, st.NumCandidates)
	}
	if st.Best == nil || st.Best.Name == broken {
		t.Errorf("best %+v", st.Best)
	}
}

func TestEngineEventsAndVirtualTime(t *testing.T) {
	pool := cluster.NewPool(24, 0.35)
	trainer := server.NewSimTrainer(pool, 42)
	trainer.Devices = 8
	sc := server.NewScheduler(trainer, nil, "")
	if _, err := sc.Submit("a", imgProgram); err != nil {
		t.Fatal(err)
	}
	eng := engine.New(sc, trainer, engine.Config{Workers: 8, ExitOnIdle: true})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var leases, completes, stops int
	for done := false; !done; {
		select {
		case ev := <-eng.Events():
			switch ev.Type {
			case engine.EventLease:
				leases++
			case engine.EventComplete:
				completes++
			case engine.EventStopped:
				stops++
			}
		default:
			done = true
		}
	}
	if leases == 0 || completes == 0 || stops != 1 {
		t.Errorf("event stream: %d leases, %d completes, %d stops", leases, completes, stops)
	}
	// Multi-device accounting: 8 devices overlap, so the makespan must beat
	// the serialized single-device baseline on a pool that scales sublinearly.
	makespan, baseline := pool.Makespan(), pool.SingleDeviceTime()
	if makespan <= 0 || baseline <= 0 {
		t.Fatalf("virtual times %g / %g", makespan, baseline)
	}
	// Typically ~2.3x; the exact figure depends on the nondeterministic
	// completion order (which shapes later picks), so assert with margin.
	if speedup := baseline / makespan; speedup < 1.8 {
		t.Errorf("virtual-time speedup %.2fx, want ≥1.8x at 8 workers on a 24-GPU α=0.35 pool", speedup)
	}
}
