// Package engine implements the asynchronous multi-device execution engine
// that closes the §6 future-work gap: instead of training one candidate at a
// time across the whole GPU pool (the deployed single-device strategy of
// §4.5), a worker pool keeps several devices busy at once, with the
// candidate stream chosen by the multi-tenant scheduler's two-phase API
// (server.Scheduler.PickWork / Complete) under GP-BUCB hallucination so
// concurrent picks diversify.
//
// The engine is a dispatcher plus N workers around a bounded work queue:
//
//	dispatcher ──PickWork──▶ [bounded queue] ──▶ worker 0 ──Train──▶ Complete
//	     ▲                                  └──▶ worker 1 ──Train──▶ Complete
//	     └──────────── kick on completion ◀──────────┘
//
// Leases flow exactly once: every lease the dispatcher obtains is either
// completed (result observed by the scheduler) or released (drain, worker
// failure), never both, never twice. Stopping is graceful: workers finish
// the run they are on, queued-but-unstarted leases are released back to the
// scheduler, and Run returns only when every lease is settled.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// Source is the scheduling surface the engine drains: the two-phase lease
// API of server.Scheduler (the only production implementation; tests
// substitute fakes).
type Source interface {
	PickWork(maxInFlight int) ([]*server.Lease, error)
	// InFlight reports the source-wide outstanding lease count. PickWork's
	// cap is absolute over that shared table, so the engine adds InFlight
	// to its own headroom when polling — otherwise leases held by remote
	// fleet workers would count against the local cap and starve the
	// engine.
	InFlight() int
	// NoteTrainingFailure tallies one failed run for (job, arm) and
	// returns the running count. The tally lives in the source so local
	// and fleet executions of the same candidate share one retry budget.
	NoteTrainingFailure(jobID string, arm int) int
	Complete(l *server.Lease, accuracy, cost float64) error
	Release(l *server.Lease) error
	// Abandon retires a lease's candidate from selection without an
	// observation — the terminal state for runs that keep failing.
	Abandon(l *server.Lease) error
}

// Config parameterizes an Engine. Zero values select the defaults noted per
// field.
type Config struct {
	// Workers is the worker-pool size (default 4). Each worker trains one
	// candidate at a time, so Workers bounds wall-clock concurrency.
	Workers int
	// Queue is the bounded work-queue depth between the dispatcher and the
	// workers (default Workers): enough to hide pick latency, small enough
	// that stale leases don't pile up.
	Queue int
	// MaxInFlight caps outstanding leases — queued plus training (default
	// Workers + Queue). It is the batch size handed to PickWork.
	MaxInFlight int
	// ExitOnIdle makes Run return once no work is available and nothing is
	// in flight (batch mode: examples, benchmarks). The default keeps the
	// engine alive waiting for new jobs (server mode).
	ExitOnIdle bool
	// PollInterval is the idle re-poll period in server mode (default
	// 50ms); Kick wakes the dispatcher sooner.
	PollInterval time.Duration
	// MaxRetries bounds how often a failing (job, candidate) run is
	// retried (default 3). After that many failures the candidate is
	// abandoned — retired from selection with no observation recorded —
	// because without the bound a persistently failing candidate would be
	// released, immediately re-leased (it keeps its top UCB) and retried
	// forever, livelocking the engine.
	MaxRetries int
	// EventBuffer is the capacity of the event stream (default 128).
	// Events are dropped, never blocked on, when no one drains them.
	EventBuffer int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = c.Workers
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = c.Workers + c.Queue
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 128
	}
	return c
}

// EventType labels an engine event.
type EventType string

// The engine event stream.
const (
	EventLease    EventType = "lease"    // a work item was leased and enqueued
	EventComplete EventType = "complete" // a worker finished a run and reported it
	EventRelease  EventType = "release"  // a lease was handed back untrained
	EventAbandon  EventType = "abandon"  // a candidate was retired after MaxRetries failures
	EventError    EventType = "error"    // a training run or report failed
	EventDrained  EventType = "drained"  // batch mode: no work left, engine exiting
	EventStopped  EventType = "stopped"  // the engine run ended
)

// Event is one entry of the engine's event stream.
type Event struct {
	Type      EventType
	JobID     string
	Candidate string
	Worker    int // -1 for dispatcher events
	Accuracy  float64
	Cost      float64
	Err       string
	Rounds    int64 // completed runs at emit time
}

// WorkerStats is the per-worker slice of Metrics.
type WorkerStats struct {
	Items int64         // completed training runs
	Busy  time.Duration // wall time spent inside Train
}

// Metrics is a point-in-time snapshot of the engine counters.
type Metrics struct {
	Running     bool
	Workers     int
	Completed   int64 // scheduling rounds completed through this engine
	Released    int64 // leases handed back untrained
	Abandoned   int64 // candidates retired after MaxRetries failures
	Errors      int64 // failed training runs or reports
	InFlight    int   // leases currently queued or training
	QueueDepth  int   // leases sitting in the bounded queue
	Elapsed     time.Duration
	PerWorker   []WorkerStats
	Utilization float64 // mean busy fraction across workers over Elapsed
}

// ErrRunning is returned by Run/Start when the engine is already running.
var ErrRunning = errors.New("engine: already running")

// ErrInterrupted is returned by Drain when the run ended (context cancelled
// or Stop called) before the work source ran dry.
var ErrInterrupted = errors.New("engine: drain interrupted before the work source ran dry")

// Engine keeps a device pool busy with leased scheduler work. Create with
// New, then either Run (blocking, batch) or Start/Stop (server mode).
// Counters are cumulative across runs.
type Engine struct {
	src  Source
	exec fleet.Executor
	cfg  Config

	kick   chan struct{}
	events chan Event

	completed atomic.Int64
	released  atomic.Int64
	abandoned atomic.Int64
	errs      atomic.Int64
	inFlight  atomic.Int64

	mu           sync.Mutex
	running      bool
	exitOnIdle   bool // effective mode of the current run
	queue        chan *server.Lease
	cancel       context.CancelFunc
	done         chan struct{}
	started      time.Time
	elapsedTotal time.Duration // summed across finished runs
	workers      []WorkerStats
}

// New creates an engine over a work source and a trainer. The trainer is
// wrapped in a fleet.TrainerExecutor: the engine's local workers run
// through the same Executor interface remote fleet agents use, so "local"
// is just the fleet member with zero network in between.
func New(src Source, trainer server.Trainer, cfg Config) *Engine {
	return NewWithExecutor(src, fleet.TrainerExecutor{Trainer: trainer}, cfg)
}

// NewWithExecutor creates an engine whose workers execute leases through
// an arbitrary fleet.Executor.
func NewWithExecutor(src Source, exec fleet.Executor, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		src:     src,
		exec:    exec,
		cfg:     cfg,
		kick:    make(chan struct{}, 1),
		events:  make(chan Event, cfg.EventBuffer),
		workers: make([]WorkerStats, cfg.Workers),
	}
}

// Events returns the engine's event stream. Events are dropped when the
// buffer is full, so the stream is for observability, not control flow.
func (e *Engine) Events() <-chan Event { return e.events }

// Kick wakes an idle dispatcher immediately (e.g. after a job submission)
// instead of waiting for the next poll tick. Safe to call at any time.
func (e *Engine) Kick() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Running reports whether an engine run is active.
func (e *Engine) Running() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Metrics snapshots the engine counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := Metrics{
		Running:   e.running,
		Workers:   e.cfg.Workers,
		Completed: e.completed.Load(),
		Released:  e.released.Load(),
		Abandoned: e.abandoned.Load(),
		Errors:    e.errs.Load(),
		InFlight:  int(e.inFlight.Load()),
		// Busy counters are cumulative across runs, so Elapsed must be too
		// or Utilization would exceed 1 after a restart.
		Elapsed:   e.elapsedTotal,
		PerWorker: append([]WorkerStats(nil), e.workers...),
	}
	if e.queue != nil {
		m.QueueDepth = len(e.queue)
	}
	if e.running {
		m.Elapsed += time.Since(e.started)
	}
	if m.Elapsed > 0 {
		var busy time.Duration
		for _, w := range m.PerWorker {
			busy += w.Busy
		}
		m.Utilization = float64(busy) / (float64(m.Elapsed) * float64(len(m.PerWorker)))
	}
	return m
}

// Run executes the engine until the context is cancelled or — with
// Config.ExitOnIdle — until all work is drained. It returns ErrRunning when
// called while another run is active. On return every lease the engine
// obtained has been completed or released.
func (e *Engine) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := e.begin(cancel, e.cfg.ExitOnIdle); err != nil {
		return err
	}
	_, err := e.execute(ctx)
	return err
}

// Drain runs the engine until no work remains, regardless of the configured
// server mode — Run with ExitOnIdle forced on. Because it shares the
// engine's running guard, a Drain and a Start can never race onto the same
// scheduler. Unlike Run (whose nil-on-cancel is Stop's graceful path), an
// interrupted Drain returns ErrInterrupted: a partial drain must never look
// like a completed one.
func (e *Engine) Drain(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := e.begin(cancel, true); err != nil {
		return err
	}
	drained, err := e.execute(ctx)
	if err == nil && !drained {
		return ErrInterrupted
	}
	return err
}

// Start launches Run in the background (server mode); Stop cancels it and
// waits for the graceful drain.
func (e *Engine) Start() error {
	ctx, cancel := context.WithCancel(context.Background())
	if err := e.begin(cancel, e.cfg.ExitOnIdle); err != nil {
		cancel()
		return err
	}
	go func() {
		defer cancel()
		_, _ = e.execute(ctx)
	}()
	return nil
}

// execute runs the dispatcher and worker pool of an already-begun run; it
// settles every lease before returning and always calls finish. drained
// reports whether the run ended because the work source ran dry (as
// opposed to cancellation).
func (e *Engine) execute(ctx context.Context) (drained bool, err error) {
	defer e.finish()
	e.mu.Lock()
	queue := e.queue
	e.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(ctx, id, queue)
		}(w)
	}
	drained, err = e.dispatch(ctx, queue)
	close(queue)
	wg.Wait()
	return drained, err
}

// Stop cancels the active run and blocks until every worker has settled its
// lease. It errors when the engine is not running.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return errors.New("engine: not running")
	}
	cancel, done := e.cancel, e.done
	e.mu.Unlock()
	cancel()
	<-done
	return nil
}

// begin transitions to running, allocating the per-run queue.
func (e *Engine) begin(cancel context.CancelFunc, exitOnIdle bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	e.running = true
	e.exitOnIdle = exitOnIdle
	e.started = time.Now()
	e.queue = make(chan *server.Lease, e.cfg.Queue)
	e.done = make(chan struct{})
	e.cancel = cancel
	return nil
}

// finish transitions out of running and closes the done latch.
func (e *Engine) finish() {
	e.mu.Lock()
	e.running = false
	e.elapsedTotal += time.Since(e.started)
	done := e.done
	e.mu.Unlock()
	e.emit(Event{Type: EventStopped, Worker: -1, Rounds: e.completed.Load()})
	close(done)
}

// dispatch leases work from the source and feeds the bounded queue until the
// context is cancelled or (exit-on-idle) the source runs dry; drained
// reports which of the two ended the run.
func (e *Engine) dispatch(ctx context.Context, queue chan<- *server.Lease) (drained bool, err error) {
	for {
		if ctx.Err() != nil {
			return false, nil
		}
		// Sample idleness BEFORE polling: a worker settles its lease in the
		// scheduler before decrementing inFlight, so "nothing was in flight
		// and the poll still found nothing" proves the source is dry. The
		// source-wide count folds in leases held by remote fleet workers —
		// their untried arms are invisible to PickWork, so a drain must not
		// declare the source dry while they are outstanding. The reverse
		// order would race with a release landing between the poll and the
		// in-flight check, ending a drain with work left behind.
		local := int(e.inFlight.Load())
		srcInFlight := e.src.InFlight() // whole table: local + fleet-held
		idleBefore := local == 0 && srcInFlight == 0
		var work []*server.Lease
		var err error
		want := e.cfg.MaxInFlight - local
		if want > 0 {
			// MaxInFlight caps this engine's leases, but PickWork's cap is
			// absolute over the shared table — offset by the source-wide
			// count so concurrently held fleet leases don't eat the budget.
			work, err = e.src.PickWork(srcInFlight + want)
		}
		if err != nil {
			e.errs.Add(1)
			e.emit(Event{Type: EventError, Worker: -1, Err: err.Error(), Rounds: e.completed.Load()})
			return false, fmt.Errorf("engine: picking work: %w", err)
		}
		if len(work) > want {
			// A settle that landed between the InFlight sample and the pick
			// inflated the target; hand the excess straight back so the
			// local cap holds.
			for _, l := range work[want:] {
				_ = e.src.Release(l)
			}
			work = work[:want]
		}
		for i, l := range work {
			e.inFlight.Add(1)
			e.emit(Event{Type: EventLease, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: -1, Rounds: e.completed.Load()})
			select {
			case queue <- l:
			case <-ctx.Done():
				// Graceful stop while enqueueing: hand this lease and the
				// rest of the batch straight back.
				e.releaseLease(l, -1)
				for _, rest := range work[i+1:] {
					e.inFlight.Add(1)
					e.releaseLease(rest, -1)
				}
				return false, nil
			}
		}
		if len(work) > 0 {
			continue
		}
		if idleBefore && e.exitOnIdle {
			e.emit(Event{Type: EventDrained, Worker: -1, Rounds: e.completed.Load()})
			return true, nil
		}
		// Nothing to lease right now: wait for a completion (kick), a new
		// job (kick via Kick), a poll tick, or cancellation.
		timer := time.NewTimer(e.cfg.PollInterval)
		select {
		case <-ctx.Done():
			timer.Stop()
			return false, nil
		case <-e.kick:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// worker trains leases from the queue until it closes. After cancellation it
// keeps draining the queue but releases leases instead of training them.
func (e *Engine) worker(ctx context.Context, id int, queue <-chan *server.Lease) {
	for l := range queue {
		if ctx.Err() != nil {
			e.releaseLease(l, id)
			continue
		}
		start := time.Now()
		acc, cost, err := e.exec.Execute(ctx, l.JobID, l.Candidate)
		busy := time.Since(start)

		e.mu.Lock()
		e.workers[id].Busy += busy
		if err == nil {
			e.workers[id].Items++
		}
		e.mu.Unlock()

		if err != nil {
			e.errs.Add(1)
			e.emit(Event{Type: EventError, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: id, Err: err.Error(), Rounds: e.completed.Load()})
			if e.src.NoteTrainingFailure(l.JobID, l.Arm) >= e.cfg.MaxRetries {
				// Give up: retire the candidate so it stops being re-leased
				// (livelock guard) — no observation is fabricated, the GP
				// posterior and model history stay clean.
				if aerr := e.src.Abandon(l); aerr != nil {
					e.errs.Add(1)
					e.emit(Event{Type: EventError, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: id, Err: aerr.Error(), Rounds: e.completed.Load()})
				} else {
					e.abandoned.Add(1)
					e.emit(Event{
						Type: EventAbandon, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: id,
						Err:    fmt.Sprintf("retired after %d failed runs", e.cfg.MaxRetries),
						Rounds: e.completed.Load(),
					})
				}
				e.inFlight.Add(-1)
				e.Kick()
				continue
			}
			e.releaseLease(l, id)
			continue
		}
		if cerr := e.src.Complete(l, acc, cost); cerr != nil {
			e.errs.Add(1)
			e.inFlight.Add(-1)
			e.emit(Event{Type: EventError, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: id, Err: cerr.Error(), Rounds: e.completed.Load()})
			e.Kick()
			continue
		}
		rounds := e.completed.Add(1)
		e.inFlight.Add(-1)
		e.emit(Event{Type: EventComplete, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: id, Accuracy: acc, Cost: cost, Rounds: rounds})
		e.Kick()
	}
}

// releaseLease settles a lease without a result and wakes the dispatcher.
func (e *Engine) releaseLease(l *server.Lease, worker int) {
	if err := e.src.Release(l); err != nil {
		e.errs.Add(1)
		e.emit(Event{Type: EventError, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: worker, Err: err.Error(), Rounds: e.completed.Load()})
	} else {
		e.released.Add(1)
		e.emit(Event{Type: EventRelease, JobID: l.JobID, Candidate: l.Candidate.Name(), Worker: worker, Rounds: e.completed.Load()})
	}
	e.inFlight.Add(-1)
	e.Kick()
}

// emit pushes an event, dropping it when the stream is full.
func (e *Engine) emit(ev Event) {
	select {
	case e.events <- ev:
	default:
	}
}
