// Package client is the Go client for the ease.ml HTTP service — the
// programmable counterpart of the generated feed/refine/infer binaries
// (§2, Figure 3).
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to one ease.ml server.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:9000").
func New(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Submit registers a declarative job and returns the server's reply
// (job id, matched template, generated candidates and code).
func (c *Client) Submit(name, program string) (server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.post("/jobs", server.SubmitRequest{Name: name, Program: program}, &resp)
	return resp, err
}

// Jobs lists all job ids on the server.
func (c *Client) Jobs() ([]string, error) {
	var resp struct {
		Jobs []string `json:"jobs"`
	}
	err := c.get("/jobs", &resp)
	return resp.Jobs, err
}

// Feed registers example pairs and returns their ids.
func (c *Client) Feed(jobID string, inputs, outputs [][]float64) ([]int, error) {
	var resp server.FeedResponse
	err := c.post("/jobs/"+jobID+"/feed", server.FeedRequest{Inputs: inputs, Outputs: outputs}, &resp)
	return resp.IDs, err
}

// Refine enables or disables an example.
func (c *Client) Refine(jobID string, exampleID int, enabled bool) error {
	var resp map[string]bool
	return c.post("/jobs/"+jobID+"/refine", server.RefineRequest{Example: exampleID, Enabled: enabled}, &resp)
}

// Infer applies the best model so far to one input object.
func (c *Client) Infer(jobID string, input []float64) (server.InferResponse, error) {
	var resp server.InferResponse
	err := c.post("/jobs/"+jobID+"/infer", server.InferRequest{Input: input}, &resp)
	return resp, err
}

// Status reports the job's trained models and current best.
func (c *Client) Status(jobID string) (server.Status, error) {
	var resp server.Status
	err := c.get("/jobs/"+jobID+"/status", &resp)
	return resp, err
}

// RunRounds asks the server to execute n scheduling rounds synchronously.
func (c *Client) RunRounds(n int) (server.RoundsResponse, error) {
	var resp server.RoundsResponse
	err := c.post("/admin/rounds", server.RoundsRequest{Count: n}, &resp)
	return resp, err
}

func (c *Client) post(path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: POST %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

func (c *Client) get(path string, dst any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

func decode(path string, resp *http.Response, dst any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s: %s (HTTP %d)", path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}
