// Package client is the Go client for the ease.ml HTTP service — the
// programmable counterpart of the generated feed/refine/infer binaries
// (§2, Figure 3).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to one ease.ml server. Every request method takes a
// context, so callers own cancellation and deadlines; the underlying
// http.Client's timeout (default 30s, see WithTimeout) is the backstop for
// callers passing context.Background().
type Client struct {
	base    string
	http    *http.Client
	timeout *time.Duration
}

// Option customizes a Client at construction.
type Option func(*Client)

// WithTimeout overrides the default 30s transport timeout (0 disables it,
// leaving deadlines entirely to request contexts). It composes with
// WithHTTPClient — the provided client is shallow-copied, never mutated.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = &d }
}

// WithHTTPClient substitutes the transport, e.g. for connection pooling
// limits, proxies or test doubles.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:9000").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.timeout != nil {
		hc := *c.http
		hc.Timeout = *c.timeout
		c.http = &hc
	}
	return c
}

// Submit registers a declarative job and returns the server's reply
// (job id, matched template, generated candidates and code).
func (c *Client) Submit(ctx context.Context, name, program string) (server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.post(ctx, "/jobs", server.SubmitRequest{Name: name, Program: program}, &resp)
	return resp, err
}

// Jobs lists all job ids on the server.
func (c *Client) Jobs(ctx context.Context) ([]string, error) {
	var resp struct {
		Jobs []string `json:"jobs"`
	}
	err := c.get(ctx, "/jobs", &resp)
	return resp.Jobs, err
}

// Feed registers example pairs and returns their ids.
func (c *Client) Feed(ctx context.Context, jobID string, inputs, outputs [][]float64) ([]int, error) {
	var resp server.FeedResponse
	err := c.post(ctx, "/jobs/"+jobID+"/feed", server.FeedRequest{Inputs: inputs, Outputs: outputs}, &resp)
	return resp.IDs, err
}

// Refine enables or disables an example.
func (c *Client) Refine(ctx context.Context, jobID string, exampleID int, enabled bool) error {
	var resp map[string]bool
	return c.post(ctx, "/jobs/"+jobID+"/refine", server.RefineRequest{Example: exampleID, Enabled: enabled}, &resp)
}

// Infer applies the best model so far to one input object.
func (c *Client) Infer(ctx context.Context, jobID string, input []float64) (server.InferResponse, error) {
	var resp server.InferResponse
	err := c.post(ctx, "/jobs/"+jobID+"/infer", server.InferRequest{Input: input}, &resp)
	return resp, err
}

// Status reports the job's trained models and current best.
func (c *Client) Status(ctx context.Context, jobID string) (server.Status, error) {
	var resp server.Status
	err := c.get(ctx, "/jobs/"+jobID+"/status", &resp)
	return resp, err
}

// RunRounds asks the server to execute n scheduling rounds synchronously.
func (c *Client) RunRounds(ctx context.Context, n int) (server.RoundsResponse, error) {
	var resp server.RoundsResponse
	err := c.post(ctx, "/admin/rounds", server.RoundsRequest{Count: n}, &resp)
	return resp, err
}

// FleetStatus reports the fleet worker registry (GET /admin/fleet); it
// errors with HTTP 409 on servers running without a fleet coordinator.
func (c *Client) FleetStatus(ctx context.Context) (server.FleetStatus, error) {
	var resp server.FleetStatus
	err := c.get(ctx, "/admin/fleet", &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: build POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: POST %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("client: build GET %s: %w", path, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

func decode(path string, resp *http.Response, dst any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		var apiErr server.ErrorBody
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s: %s (HTTP %d)", path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}
