// Package client is the Go client for the ease.ml HTTP service — the
// programmable counterpart of the generated feed/refine/infer binaries
// (§2, Figure 3).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to one ease.ml server. Every request method takes a
// context, so callers own cancellation and deadlines; the underlying
// http.Client's timeout (default 30s, see WithTimeout) is the backstop for
// callers passing context.Background().
type Client struct {
	base    string
	http    *http.Client
	timeout *time.Duration
}

// Option customizes a Client at construction.
type Option func(*Client)

// WithTimeout overrides the default 30s transport timeout (0 disables it,
// leaving deadlines entirely to request contexts). It composes with
// WithHTTPClient — the provided client is shallow-copied, never mutated.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = &d }
}

// WithHTTPClient substitutes the transport, e.g. for connection pooling
// limits, proxies or test doubles.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:9000").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.timeout != nil {
		hc := *c.http
		hc.Timeout = *c.timeout
		c.http = &hc
	}
	return c
}

// Submit registers a declarative job and returns the server's reply
// (job id, matched template, generated candidates and code).
func (c *Client) Submit(ctx context.Context, name, program string) (server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.post(ctx, "/jobs", server.SubmitRequest{Name: name, Program: program}, &resp)
	return resp, err
}

// Jobs lists all job ids on the server.
func (c *Client) Jobs(ctx context.Context) ([]string, error) {
	var resp struct {
		Jobs []string `json:"jobs"`
	}
	err := c.get(ctx, "/jobs", &resp)
	return resp.Jobs, err
}

// Feed registers example pairs and returns their ids. A mid-batch server
// failure still returns the IDs of the examples that committed before the
// error (alongside the non-nil error), so callers can resume feeding from
// the first uncommitted pair instead of re-sending duplicates.
func (c *Client) Feed(ctx context.Context, jobID string, inputs, outputs [][]float64) ([]int, error) {
	var resp server.FeedResponse
	err := c.post(ctx, "/jobs/"+jobID+"/feed", server.FeedRequest{Inputs: inputs, Outputs: outputs}, &resp)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return apiErr.CommittedIDs, err
		}
		return nil, err
	}
	return resp.IDs, nil
}

// Refine enables or disables an example.
func (c *Client) Refine(ctx context.Context, jobID string, exampleID int, enabled bool) error {
	var resp map[string]bool
	return c.post(ctx, "/jobs/"+jobID+"/refine", server.RefineRequest{Example: exampleID, Enabled: enabled}, &resp)
}

// Infer applies the best model so far to one input object.
func (c *Client) Infer(ctx context.Context, jobID string, input []float64) (server.InferResponse, error) {
	var resp server.InferResponse
	err := c.post(ctx, "/jobs/"+jobID+"/infer", server.InferRequest{Input: input}, &resp)
	return resp, err
}

// InferBatch applies the best model to many inputs in one request: one
// round trip, one server-side session, one model for every output.
func (c *Client) InferBatch(ctx context.Context, jobID string, inputs [][]float64) (server.InferBatchResponse, error) {
	var resp server.InferBatchResponse
	err := c.post(ctx, "/jobs/"+jobID+"/infer/batch", server.InferBatchRequest{Inputs: inputs}, &resp)
	return resp, err
}

// InferStream posts inputs to the NDJSON streaming endpoint and invokes fn
// for each prediction as the server flushes it. It returns the serving
// model's name. A non-nil error from fn aborts the stream (the connection
// is dropped, which is the protocol's cancellation signal).
func (c *Client) InferStream(ctx context.Context, jobID string, inputs [][]float64, fn func(index int, output []float64) error) (string, error) {
	path := "/jobs/" + jobID + "/infer/stream"
	payload, err := json.Marshal(server.InferBatchRequest{Inputs: inputs})
	if err != nil {
		return "", fmt.Errorf("client: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return "", fmt.Errorf("client: build POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		raw, _ := io.ReadAll(resp.Body)
		return "", apiError(path, resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", fmt.Errorf("client: %s: reading stream header: %w", path, err)
		}
		return "", fmt.Errorf("client: %s: empty stream", path)
	}
	var hdr server.InferStreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return "", fmt.Errorf("client: %s: decode stream header: %w", path, err)
	}
	for sc.Scan() {
		var line server.InferStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return hdr.Model, fmt.Errorf("client: %s: decode stream line: %w", path, err)
		}
		if err := fn(line.Index, line.Output); err != nil {
			return hdr.Model, err
		}
	}
	if err := sc.Err(); err != nil {
		return hdr.Model, fmt.Errorf("client: %s: reading stream: %w", path, err)
	}
	return hdr.Model, nil
}

// Status reports the job's trained models and current best.
func (c *Client) Status(ctx context.Context, jobID string) (server.Status, error) {
	var resp server.Status
	err := c.get(ctx, "/jobs/"+jobID+"/status", &resp)
	return resp, err
}

// RunRounds asks the server to execute n scheduling rounds synchronously.
func (c *Client) RunRounds(ctx context.Context, n int) (server.RoundsResponse, error) {
	var resp server.RoundsResponse
	err := c.post(ctx, "/admin/rounds", server.RoundsRequest{Count: n}, &resp)
	return resp, err
}

// FleetStatus reports the fleet worker registry (GET /admin/fleet); it
// errors with HTTP 409 on servers running without a fleet coordinator.
func (c *Client) FleetStatus(ctx context.Context) (server.FleetStatus, error) {
	var resp server.FleetStatus
	err := c.get(ctx, "/admin/fleet", &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: build POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: POST %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("client: build GET %s: %w", path, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	return decode(path, resp, dst)
}

// APIError is a non-2xx server reply, decoded from the standard error
// envelope. Callers can errors.As for it to branch on Status or Code
// instead of string-matching the message.
type APIError struct {
	Path    string
	Status  int
	Code    string // machine tag, e.g. "lease_conflict", "" when untagged
	Message string // server's error text, "" when the body wasn't an envelope
	// CommittedIDs carries the example IDs a partially-failed feed batch
	// had already durably appended before the error (feed replies only).
	CommittedIDs []int
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("client: %s: HTTP %d", e.Path, e.Status)
	}
	return fmt.Sprintf("client: %s: %s (HTTP %d)", e.Path, e.Message, e.Status)
}

// apiError builds the APIError for one non-2xx reply body.
func apiError(path string, status int, raw []byte) *APIError {
	e := &APIError{Path: path, Status: status}
	var body server.ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		e.Message = body.Error
		e.Code = body.Code
		e.CommittedIDs = body.IDs
	}
	return e
}

func decode(path string, resp *http.Response, dst any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		return apiError(path, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}
