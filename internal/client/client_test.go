package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeServer returns canned JSON for each endpoint so the client's encode/
// decode and error paths are tested independently of the real server (the
// full loop is covered by internal/server's integration tests).
func fakeServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
}

func TestSubmitDecodes(t *testing.T) {
	srv := fakeServer(t, http.StatusCreated,
		`{"id":"job-0001","template":"image-classification","candidates":["AlexNet"],"julia":"","python":""}`)
	defer srv.Close()
	resp, err := New(srv.URL).Submit(context.Background(), "x", "{...}")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "job-0001" || resp.Template != "image-classification" || len(resp.Candidates) != 1 {
		t.Errorf("resp %+v", resp)
	}
}

func TestErrorEnvelopeSurfaces(t *testing.T) {
	srv := fakeServer(t, http.StatusBadRequest, `{"error":"dsl: boom"}`)
	defer srv.Close()
	cl := New(srv.URL)
	_, err := cl.Submit(context.Background(), "x", "bad")
	if err == nil || !strings.Contains(err.Error(), "dsl: boom") {
		t.Errorf("error %v does not surface the server message", err)
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("error %v does not mention the status code", err)
	}
}

func TestNonJSONErrorStillErrors(t *testing.T) {
	srv := fakeServer(t, http.StatusInternalServerError, "tilt")
	defer srv.Close()
	if _, err := New(srv.URL).Jobs(context.Background()); err == nil {
		t.Error("HTTP 500 with non-JSON body did not error")
	}
}

func TestGarbageSuccessBodyErrors(t *testing.T) {
	srv := fakeServer(t, http.StatusOK, "not json")
	defer srv.Close()
	if _, err := New(srv.URL).Status(context.Background(), "j"); err == nil {
		t.Error("garbage body decoded")
	}
}

func TestConnectionRefused(t *testing.T) {
	ctx := context.Background()
	cl := New("http://127.0.0.1:1") // nothing listens on port 1
	if _, err := cl.Jobs(ctx); err == nil {
		t.Error("dead server did not error")
	}
	if err := cl.Refine(ctx, "j", 1, true); err == nil {
		t.Error("dead server Refine did not error")
	}
	if _, err := cl.Feed(ctx, "j", nil, nil); err == nil {
		t.Error("dead server Feed did not error")
	}
	if _, err := cl.Infer(ctx, "j", nil); err == nil {
		t.Error("dead server Infer did not error")
	}
	if _, err := cl.RunRounds(ctx, 1); err == nil {
		t.Error("dead server RunRounds did not error")
	}
	if _, err := cl.FleetStatus(ctx); err == nil {
		t.Error("dead server FleetStatus did not error")
	}
}

func TestBaseURLTrimmed(t *testing.T) {
	srv := fakeServer(t, http.StatusOK, `{"jobs":["a"]}`)
	defer srv.Close()
	jobs, err := New(srv.URL + "///").Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0] != "a" {
		t.Errorf("jobs %v", jobs)
	}
}

// A cancelled context aborts an in-flight request promptly — the caller,
// not the 30s default timeout, owns the deadline.
func TestContextCancelsInFlightRequest(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := New(srv.URL).Jobs(ctx)
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s; the default timeout answered instead", elapsed)
	}
}

// WithTimeout bounds requests made with a background context.
func TestWithTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	cl := New(srv.URL, WithTimeout(30*time.Millisecond))
	start := time.Now()
	if _, err := cl.Jobs(context.Background()); err == nil {
		t.Fatal("request outlived WithTimeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout fired after %s, want ~30ms", elapsed)
	}
}

// WithHTTPClient substitutes the transport; WithTimeout layered on top
// must not mutate the caller's client.
func TestWithHTTPClient(t *testing.T) {
	var sawHeader bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawHeader = r.Header.Get("X-Test") == "yes"
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"jobs":[]}`))
	}))
	defer srv.Close()

	custom := &http.Client{Transport: headerTransport{}}
	cl := New(srv.URL, WithHTTPClient(custom), WithTimeout(time.Second))
	if _, err := cl.Jobs(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sawHeader {
		t.Error("custom transport was not used")
	}
	if custom.Timeout != 0 {
		t.Errorf("WithTimeout mutated the caller's http.Client (timeout %s)", custom.Timeout)
	}
}

// headerTransport stamps a marker header so tests can prove the custom
// client was used.
type headerTransport struct{}

func (headerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r = r.Clone(r.Context())
	r.Header.Set("X-Test", "yes")
	return http.DefaultTransport.RoundTrip(r)
}
