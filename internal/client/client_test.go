package client

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeServer returns canned JSON for each endpoint so the client's encode/
// decode and error paths are tested independently of the real server (the
// full loop is covered by internal/server's integration tests).
func fakeServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
}

func TestSubmitDecodes(t *testing.T) {
	srv := fakeServer(t, http.StatusCreated,
		`{"id":"job-0001","template":"image-classification","candidates":["AlexNet"],"julia":"","python":""}`)
	defer srv.Close()
	resp, err := New(srv.URL).Submit("x", "{...}")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "job-0001" || resp.Template != "image-classification" || len(resp.Candidates) != 1 {
		t.Errorf("resp %+v", resp)
	}
}

func TestErrorEnvelopeSurfaces(t *testing.T) {
	srv := fakeServer(t, http.StatusBadRequest, `{"error":"dsl: boom"}`)
	defer srv.Close()
	cl := New(srv.URL)
	_, err := cl.Submit("x", "bad")
	if err == nil || !strings.Contains(err.Error(), "dsl: boom") {
		t.Errorf("error %v does not surface the server message", err)
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("error %v does not mention the status code", err)
	}
}

func TestNonJSONErrorStillErrors(t *testing.T) {
	srv := fakeServer(t, http.StatusInternalServerError, "tilt")
	defer srv.Close()
	if _, err := New(srv.URL).Jobs(); err == nil {
		t.Error("HTTP 500 with non-JSON body did not error")
	}
}

func TestGarbageSuccessBodyErrors(t *testing.T) {
	srv := fakeServer(t, http.StatusOK, "not json")
	defer srv.Close()
	if _, err := New(srv.URL).Status("j"); err == nil {
		t.Error("garbage body decoded")
	}
}

func TestConnectionRefused(t *testing.T) {
	cl := New("http://127.0.0.1:1") // nothing listens on port 1
	if _, err := cl.Jobs(); err == nil {
		t.Error("dead server did not error")
	}
	if err := cl.Refine("j", 1, true); err == nil {
		t.Error("dead server Refine did not error")
	}
	if _, err := cl.Feed("j", nil, nil); err == nil {
		t.Error("dead server Feed did not error")
	}
	if _, err := cl.Infer("j", nil); err == nil {
		t.Error("dead server Infer did not error")
	}
	if _, err := cl.RunRounds(1); err == nil {
		t.Error("dead server RunRounds did not error")
	}
}

func TestBaseURLTrimmed(t *testing.T) {
	srv := fakeServer(t, http.StatusOK, `{"jobs":["a"]}`)
	defer srv.Close()
	jobs, err := New(srv.URL + "///").Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0] != "a" {
		t.Errorf("jobs %v", jobs)
	}
}
