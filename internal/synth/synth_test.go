package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestSimilarityCovarianceProperties(t *testing.T) {
	f := []float64{0.1, 0.12, 0.9}
	cov := SimilarityCovariance(f, 0.5)
	// Diagonal is 1.
	for i := 0; i < 3; i++ {
		if cov.At(i, i) != 1 {
			t.Errorf("diag[%d] = %g", i, cov.At(i, i))
		}
	}
	// Closer hidden scores ⇒ higher covariance.
	if cov.At(0, 1) <= cov.At(0, 2) {
		t.Errorf("cov(0,1)=%g should exceed cov(0,2)=%g", cov.At(0, 1), cov.At(0, 2))
	}
	// Symmetry.
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Error("asymmetric covariance")
	}
	// Known value: exp(-(0.1-0.9)²/0.25) = exp(-2.56).
	if got, want := cov.At(0, 2), math.Exp(-2.56); math.Abs(got-want) > 1e-12 {
		t.Errorf("cov(0,2) = %g, want %g", got, want)
	}
}

func TestSimilarityCovarianceZeroSigmaIsIdentity(t *testing.T) {
	cov := SimilarityCovariance([]float64{0.3, 0.6, 0.9}, 0)
	if !cov.Equal(linalg.Identity(3), 0) {
		t.Errorf("expected identity, got %v", cov)
	}
}

func TestDatasetShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, err := Dataset(Config{NumUsers: 20, NumModels: 15, SigmaM: 0.5, Alpha: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumUsers != 20 || q.NumModels != 15 {
		t.Fatalf("shape %d×%d", q.NumUsers, q.NumModels)
	}
	if len(q.X) != 20 || len(q.X[0]) != 15 {
		t.Fatalf("matrix shape %d×%d", len(q.X), len(q.X[0]))
	}
	for i, row := range q.X {
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("X[%d][%d] = %g outside [0,1]", i, j, v)
			}
		}
	}
	if len(q.ModelF) != 15 {
		t.Errorf("ModelF length %d", len(q.ModelF))
	}
}

func TestDatasetTwoBaselineGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, err := Dataset(Config{NumUsers: 200, NumModels: 5, SigmaM: 0.5, Alpha: 0.1, SigmaB: 0.02}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Even users ⇒ µ=0.75 group, odd ⇒ µ=0.25 group (round-robin).
	var hi, lo float64
	for i, b := range q.Baselines {
		if i%2 == 0 {
			hi += b
		} else {
			lo += b
		}
	}
	hi /= 100
	lo /= 100
	if math.Abs(hi-0.75) > 0.02 || math.Abs(lo-0.25) > 0.02 {
		t.Errorf("group means %g / %g, want ≈0.75 / ≈0.25", hi, lo)
	}
}

func TestDatasetDeterministicPerSeed(t *testing.T) {
	q1, err := Dataset(Config{NumUsers: 10, NumModels: 8, SigmaM: 0.01, Alpha: 1}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Dataset(Config{NumUsers: 10, NumModels: 8, SigmaM: 0.01, Alpha: 1}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1.X {
		for j := range q1.X[i] {
			if q1.X[i][j] != q2.X[i][j] {
				t.Fatalf("same seed diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestDatasetInvalidConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Dataset(Config{NumUsers: 0, NumModels: 5}, rng); err == nil {
		t.Error("expected error for zero users")
	}
	if _, err := Dataset(Config{NumUsers: 5, NumModels: -1}, rng); err == nil {
		t.Error("expected error for negative models")
	}
}

func TestGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := map[string]*Generator{
		"no groups": {},
		"bad model count": {
			Baselines:   []BaselineGroup{{Mu: 0.5}},
			ModelGroups: []ModelGroup{{SigmaM: 0.5, Count: 0}},
			UserGroups:  []UserGroup{{SigmaU: 0.5, Count: 3}},
		},
		"bad user count": {
			Baselines:   []BaselineGroup{{Mu: 0.5}},
			ModelGroups: []ModelGroup{{SigmaM: 0.5, Count: 3}},
			UserGroups:  []UserGroup{{SigmaU: 0.5, Count: -2}},
		},
		"no baselines": {
			ModelGroups: []ModelGroup{{SigmaM: 0.5, Count: 3}},
			UserGroups:  []UserGroup{{SigmaU: 0.5, Count: 3}},
		},
	}
	for name, g := range cases {
		if _, err := g.Generate(rng); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGeneratorMultipleGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := &Generator{
		Baselines:   []BaselineGroup{{Mu: 0.7, Sigma: 0.05}, {Mu: 0.3, Sigma: 0.05}},
		ModelGroups: []ModelGroup{{SigmaM: 0.5, Count: 10}, {SigmaM: 0.01, Count: 7}},
		UserGroups:  []UserGroup{{SigmaU: 0.3, Count: 12}, {SigmaU: 0.1, Count: 8}},
		SigmaW:      0.01,
		Alpha:       0.5,
		UserAlpha:   0.2,
	}
	q, err := g.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumModels != 17 || q.NumUsers != 20 {
		t.Fatalf("shape %d×%d, want 20×17", q.NumUsers, q.NumModels)
	}
}

// High σM (strong correlation) should produce model columns that are more
// correlated across users than low σM.
func TestModelCorrelationStrength(t *testing.T) {
	avgAbsCorr := func(sigmaM float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		q, err := Dataset(Config{NumUsers: 80, NumModels: 30, SigmaM: sigmaM, Alpha: 1, SigmaW: 0.001, SigmaB: 0.001}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Average |corr| between adjacent-f model columns.
		var total float64
		var count int
		for a := 0; a < q.NumModels; a++ {
			for b := a + 1; b < q.NumModels; b++ {
				if math.Abs(q.ModelF[a]-q.ModelF[b]) < 0.05 {
					total += math.Abs(pearson(col(q.X, a), col(q.X, b)))
					count++
				}
			}
		}
		if count == 0 {
			return 0
		}
		return total / float64(count)
	}
	strong := avgAbsCorr(0.5, 10)
	weak := avgAbsCorr(0.0001, 10)
	if strong <= weak {
		t.Errorf("strong-correlation dataset (%g) should beat weak (%g)", strong, weak)
	}
}

func col(x [][]float64, j int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i][j]
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, sa, sb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		sa += da * da
		sb += db * db
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	return sab / math.Sqrt(sa*sb)
}

func TestUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := UniformCosts(10, 20, rng)
	if len(c) != 10 || len(c[0]) != 20 {
		t.Fatalf("shape %d×%d", len(c), len(c[0]))
	}
	for _, row := range c {
		for _, v := range row {
			if v <= 0 || v >= 1 {
				t.Fatalf("cost %g outside (0,1)", v)
			}
		}
	}
}

// Property: every generated quality is in [0,1] and the similarity covariance
// is PSD for random hidden scores.
func TestQuickGenerateInRange(t *testing.T) {
	f := func(seed int64, usersRaw, modelsRaw uint8, sigmaMRaw, alphaRaw uint8) bool {
		users := int(usersRaw%20) + 2
		models := int(modelsRaw%20) + 2
		sigmaM := 0.01 + float64(sigmaMRaw%100)/100
		alpha := float64(alphaRaw%100) / 100
		rng := rand.New(rand.NewSource(seed))
		q, err := Dataset(Config{NumUsers: users, NumModels: models, SigmaM: sigmaM, Alpha: alpha}, rng)
		if err != nil {
			return false
		}
		for _, row := range q.X {
			for _, v := range row {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimilarityCovariancePSD(t *testing.T) {
	f := func(seed int64, nRaw uint8, sigmaRaw uint8) bool {
		n := int(nRaw%15) + 2
		sigma := 0.01 + float64(sigmaRaw%100)/50
		rng := rand.New(rand.NewSource(seed))
		fs := make([]float64, n)
		for i := range fs {
			fs[i] = rng.Float64()
		}
		cov := SimilarityCovariance(fs, sigma)
		_, _, err := linalg.NewCholeskyJittered(cov, 1e-10, 12)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDataset200x100(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := Dataset(Config{NumUsers: 200, NumModels: 100, SigmaM: 0.5, Alpha: 1}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
