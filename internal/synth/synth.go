// Package synth implements the synthetic data generator of the paper's
// Appendix B. The quality of model j for user i decomposes as
//
//	x[i,j] = b_i + m_j + u_i + ε_{i,j}            (Appendix B, eq. 4)
//
// where b_i is the user's baseline quality (task difficulty), m_j is the
// model-correlation fluctuation, u_i the user-correlation fluctuation and
// ε white noise. Values are clamped to [0, 1].
//
// The main text's two-parameter family SYN(σM, α) (§5.1) is the special case
// x[i,j] = b_i + α·m_j that Dataset generates via Config; the full
// group-structured model of Appendix B is exposed through Generator.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// BaselineGroup parameterizes the distribution of user baseline qualities:
// b ~ N(Mu, Sigma²) (Appendix B.1.1).
type BaselineGroup struct {
	Mu    float64 // expected quality of tasks in this group
	Sigma float64 // within-group variation
}

// ModelGroup parameterizes a group of models whose quality fluctuations are
// correlated through hidden similarity scores f(j) ~ U(0,1) and the
// covariance ΣM[i,j] = exp(−(f(i)−f(j))²/σM²) (Appendix B.1.2).
type ModelGroup struct {
	SigmaM float64 // correlation strength: larger ⇒ stronger correlation
	Count  int     // number of models in this group
}

// UserGroup parameterizes a group of users with correlated fluctuations,
// generated identically to a model group (Appendix B.1.3).
type UserGroup struct {
	SigmaU float64
	Count  int
}

// Generator describes a full Appendix-B synthetic dataset:
// baseline groups × user groups (via PU), model groups (via PM) and i.i.d.
// white noise.
type Generator struct {
	Baselines   []BaselineGroup
	ModelGroups []ModelGroup
	UserGroups  []UserGroup
	SigmaW      float64 // white-noise standard deviation

	// Alpha scales the model-correlation term m_j, as in the main text's
	// SYN(σM, α) datasets. Zero means "no model term"; use 1 for the pure
	// Appendix-B model.
	Alpha float64

	// UserAlpha scales the user-correlation term u_i. The main-text SYN
	// datasets use 0.
	UserAlpha float64

	// PerUserModelDraw controls whether the model fluctuation vector m is
	// redrawn per user ("We sample for each user i: [m1..mK] ~ N(0,ΣM)",
	// §5.1) or drawn once and shared. The paper's §5.1 text redraws per
	// user; Appendix B's eq. 4 shares one draw. Both are supported.
	PerUserModelDraw bool
}

// Quality is a generated quality matrix together with the latent factors
// that produced it, useful for tests and diagnostics.
type Quality struct {
	X         [][]float64 // X[user][model] ∈ [0,1]
	Baselines []float64   // b_i per user
	ModelF    []float64   // hidden similarity scores f(j) per model
	NumUsers  int
	NumModels int
}

// Generate draws one dataset using the given random source.
func (g *Generator) Generate(rng *rand.Rand) (*Quality, error) {
	numModels := 0
	for _, mg := range g.ModelGroups {
		if mg.Count <= 0 {
			return nil, fmt.Errorf("synth: model group with non-positive count %d", mg.Count)
		}
		numModels += mg.Count
	}
	numUsers := 0
	for _, ug := range g.UserGroups {
		if ug.Count <= 0 {
			return nil, fmt.Errorf("synth: user group with non-positive count %d", ug.Count)
		}
		numUsers += ug.Count
	}
	if numModels == 0 || numUsers == 0 {
		return nil, fmt.Errorf("synth: need at least one model group and one user group")
	}
	if len(g.Baselines) == 0 {
		return nil, fmt.Errorf("synth: need at least one baseline group")
	}

	q := &Quality{
		NumUsers:  numUsers,
		NumModels: numModels,
		X:         make([][]float64, numUsers),
		Baselines: make([]float64, numUsers),
		ModelF:    make([]float64, 0, numModels),
	}

	// Baseline per user: users are spread across baseline groups round-robin
	// so every (baseline, user) group combination is populated, mirroring
	// Appendix B.2's pU mapping with equal counts.
	for i := 0; i < numUsers; i++ {
		bg := g.Baselines[i%len(g.Baselines)]
		q.Baselines[i] = bg.Mu + bg.Sigma*rng.NormFloat64()
	}

	// Model hidden-similarity scores and per-group covariance Cholesky
	// factors, drawn once.
	type groupFactor struct {
		start int
		count int
		chol  *linalg.Cholesky
	}
	var modelFactors []groupFactor
	start := 0
	for _, mg := range g.ModelGroups {
		f := make([]float64, mg.Count)
		for j := range f {
			f[j] = rng.Float64()
		}
		q.ModelF = append(q.ModelF, f...)
		cov := SimilarityCovariance(f, mg.SigmaM)
		ch, _, err := linalg.NewCholeskyJittered(cov, 1e-10, 12)
		if err != nil {
			return nil, fmt.Errorf("synth: model covariance: %w", err)
		}
		modelFactors = append(modelFactors, groupFactor{start: start, count: mg.Count, chol: ch})
		start += mg.Count
	}

	// User-correlation draws u_i (one per user, shared across models).
	u := make([]float64, numUsers)
	if g.UserAlpha != 0 {
		start = 0
		for _, ug := range g.UserGroups {
			f := make([]float64, ug.Count)
			for j := range f {
				f[j] = rng.Float64()
			}
			cov := SimilarityCovariance(f, ug.SigmaU)
			ch, _, err := linalg.NewCholeskyJittered(cov, 1e-10, 12)
			if err != nil {
				return nil, fmt.Errorf("synth: user covariance: %w", err)
			}
			draw := sampleMVN(rng, ch)
			copy(u[start:start+ug.Count], draw)
			start += ug.Count
		}
	}

	// Shared model draw when not redrawing per user.
	shared := make([]float64, numModels)
	if !g.PerUserModelDraw {
		for _, gf := range modelFactors {
			copy(shared[gf.start:gf.start+gf.count], sampleMVN(rng, gf.chol))
		}
	}

	for i := 0; i < numUsers; i++ {
		m := shared
		if g.PerUserModelDraw {
			m = make([]float64, numModels)
			for _, gf := range modelFactors {
				copy(m[gf.start:gf.start+gf.count], sampleMVN(rng, gf.chol))
			}
		}
		row := make([]float64, numModels)
		for j := 0; j < numModels; j++ {
			v := q.Baselines[i] + g.Alpha*m[j] + g.UserAlpha*u[i] + g.SigmaW*rng.NormFloat64()
			row[j] = clamp01(v)
		}
		q.X[i] = row
	}
	return q, nil
}

// SimilarityCovariance builds the covariance matrix
// Σ[i,j] = exp(−(f(i)−f(j))²/σ²) over hidden similarity scores f
// (Appendix B.1.2). σ ≤ 0 yields the identity (fully independent).
func SimilarityCovariance(f []float64, sigma float64) *linalg.Matrix {
	n := len(f)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var v float64
			if i == j {
				v = 1
			} else if sigma > 0 {
				d := f[i] - f[j]
				v = math.Exp(-d * d / (sigma * sigma))
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// sampleMVN draws x ~ N(0, A) where chol factorizes A, via x = L·z with
// z ~ N(0, I).
func sampleMVN(rng *rand.Rand, chol *linalg.Cholesky) []float64 {
	n := chol.Size()
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	return chol.L().MulVec(z)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Config describes the main-text SYN(σM, α) family (§5.1): N users whose
// baselines come from the two-group instantiation of Appendix B.2
// (µ ∈ {0.75, 0.25}), M models in a single σM model group, model term scaled
// by α and redrawn per user.
type Config struct {
	NumUsers  int
	NumModels int
	SigmaM    float64 // model-correlation strength
	Alpha     float64 // weight of the model-correlation term
	SigmaB    float64 // baseline within-group std (paper's σB); default 0.05
	SigmaW    float64 // white-noise std; default 0.01
}

// Dataset generates a SYN(σM, α) quality matrix per §5.1.
func Dataset(cfg Config, rng *rand.Rand) (*Quality, error) {
	if cfg.NumUsers <= 0 || cfg.NumModels <= 0 {
		return nil, fmt.Errorf("synth: invalid size %d users × %d models", cfg.NumUsers, cfg.NumModels)
	}
	sigmaB := cfg.SigmaB
	if sigmaB == 0 {
		sigmaB = 0.05
	}
	sigmaW := cfg.SigmaW
	if sigmaW == 0 {
		sigmaW = 0.01
	}
	gen := &Generator{
		Baselines: []BaselineGroup{
			{Mu: 0.75, Sigma: sigmaB},
			{Mu: 0.25, Sigma: sigmaB},
		},
		ModelGroups:      []ModelGroup{{SigmaM: cfg.SigmaM, Count: cfg.NumModels}},
		UserGroups:       []UserGroup{{SigmaU: 0.1, Count: cfg.NumUsers}},
		SigmaW:           sigmaW,
		Alpha:            cfg.Alpha,
		UserAlpha:        0,
		PerUserModelDraw: true,
	}
	return gen.Generate(rng)
}

// UniformCosts draws a cost matrix with entries ~ U(0,1), the cost model the
// paper uses for 179CLASSIFIER and the SYN datasets. Costs are strictly
// positive (resampled away from zero) so cost-aware scores stay finite.
func UniformCosts(numUsers, numModels int, rng *rand.Rand) [][]float64 {
	c := make([][]float64, numUsers)
	for i := range c {
		row := make([]float64, numModels)
		for j := range row {
			v := rng.Float64()
			for v < 1e-6 {
				v = rng.Float64()
			}
			row[j] = v
		}
		c[i] = row
	}
	return c
}
