// Package cluster simulates ease.ml's shared GPU pool (§2 Figure 1, §4.5,
// §5.3.2's single- vs multi-device discussion): 24 TITAN X GPUs connected by
// InfiniBand, with near-linear scaling under low-precision communication.
//
// The pool keeps a virtual clock. In single-device mode (the paper's
// deployed configuration) every job takes the whole pool and runs
// work/speedup(numGPUs) time units; in multi-device mode each job takes one
// GPU and jobs overlap. Both modes account completion times so callers can
// compare accumulated regret between the two strategies.
package cluster

import (
	"fmt"
	"math"
	"sync"
)

// Job is one completed training job with its virtual-time interval.
type Job struct {
	ID    int
	Label string
	Work  float64 // GPU-time units on a single GPU
	GPUs  int     // GPUs the job ran on
	Start float64 // virtual start time
	End   float64 // virtual completion time
}

// Pool is a simulated GPU pool with a virtual clock.
type Pool struct {
	mu sync.Mutex

	numGPUs int
	// alpha is the scaling exponent: g GPUs yield g^alpha speedup. The
	// paper's setup (InfiniBand + low-precision ZipML transfers + the Goyal
	// et al. learning-rate schedule) achieves "significant speed up"; 0.9
	// models near-linear scaling with a mild synchronization tax.
	alpha float64

	clock     float64   // single-device frontier
	gpuFree   []float64 // per-GPU next-free time (multi-device mode)
	nextJobID int
	completed []Job
	horizon   float64 // latest completion time over all jobs
	workTotal float64 // total work submitted, for the serialized baseline
}

// NewPool creates a pool of numGPUs devices with scaling exponent alpha
// (defaults: alpha 0.9). It panics if numGPUs < 1 or alpha ∉ (0, 1].
func NewPool(numGPUs int, alpha float64) *Pool {
	if numGPUs < 1 {
		panic(fmt.Sprintf("cluster: need at least one GPU, got %d", numGPUs))
	}
	if alpha == 0 {
		alpha = 0.9
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("cluster: scaling exponent %g outside (0,1]", alpha))
	}
	return &Pool{numGPUs: numGPUs, alpha: alpha, gpuFree: make([]float64, numGPUs), nextJobID: 1}
}

// NumGPUs returns the pool size.
func (p *Pool) NumGPUs() int { return p.numGPUs }

// Speedup returns the simulated speedup of running one job on g GPUs:
// g^alpha.
func (p *Pool) Speedup(g int) float64 {
	if g < 1 {
		return 0
	}
	return math.Pow(float64(g), p.alpha)
}

// RunSingleDevice executes a job on the whole pool (the deployed ease.ml
// strategy: "use all its GPUs to train a single model"). Jobs serialize on
// the virtual clock. It returns the completed job record.
func (p *Pool) RunSingleDevice(label string, work float64) Job {
	if work <= 0 {
		panic(fmt.Sprintf("cluster: non-positive work %g", work))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	dur := work / p.Speedup(p.numGPUs)
	j := Job{ID: p.nextJobID, Label: label, Work: work, GPUs: p.numGPUs, Start: p.clock, End: p.clock + dur}
	p.nextJobID++
	p.clock = j.End
	// Single-device runs also occupy every GPU.
	for i := range p.gpuFree {
		if p.gpuFree[i] < j.End {
			p.gpuFree[i] = j.End
		}
	}
	p.record(j)
	return j
}

// record appends a finished job and folds it into the running aggregates
// (metrics reads stay O(1) however long the history grows). Callers must
// hold p.mu.
func (p *Pool) record(j Job) {
	p.completed = append(p.completed, j)
	if j.End > p.horizon {
		p.horizon = j.End
	}
	p.workTotal += j.Work
}

// RunOneGPU executes a job on the earliest-available single GPU (the
// multi-device alternative of §5.3.2). Jobs overlap across GPUs.
func (p *Pool) RunOneGPU(label string, work float64) Job {
	return p.RunOneGPUAmong(label, work, p.numGPUs)
}

// RunOneGPUAmong executes a job on the earliest-available single GPU among
// the first limit devices. The execution engine uses this to account runs
// when its worker pool owns only a slice of the cluster: W workers can keep
// at most W devices busy, so packing onto more would under-report the
// virtual makespan. limit ≤ 0 or beyond the pool size means the whole pool.
func (p *Pool) RunOneGPUAmong(label string, work float64, limit int) Job {
	if work <= 0 {
		panic(fmt.Sprintf("cluster: non-positive work %g", work))
	}
	if limit <= 0 || limit > p.numGPUs {
		limit = p.numGPUs
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	g := 0
	for i, free := range p.gpuFree[:limit] {
		if free < p.gpuFree[g] {
			g = i
		}
	}
	start := p.gpuFree[g]
	if p.clock > start {
		start = p.clock
	}
	j := Job{ID: p.nextJobID, Label: label, Work: work, GPUs: 1, Start: start, End: start + work}
	p.nextJobID++
	p.gpuFree[g] = j.End
	p.record(j)
	return j
}

// Now returns the single-device virtual clock.
func (p *Pool) Now() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock
}

// Makespan returns the virtual completion time of the last finished job —
// the multi-device analogue of Now (which only tracks the single-device
// frontier). An idle pool reports 0.
func (p *Pool) Makespan() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.horizon
}

// SingleDeviceTime returns the virtual time the completed job set would
// have taken under the deployed single-device strategy (every job takes the
// whole pool, strictly serialized) — the baseline an engine run's Makespan
// is compared against for the §5.3.2 strategy comparison.
func (p *Pool) SingleDeviceTime() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workTotal / math.Pow(float64(p.numGPUs), p.alpha)
}

// Completed returns a copy of all finished jobs in submission order.
func (p *Pool) Completed() []Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Job(nil), p.completed...)
}

// Utilization returns GPU-time used divided by GPU-time available up to the
// latest completion; 0 for an idle pool.
func (p *Pool) Utilization() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var used, horizon float64
	for _, j := range p.completed {
		// A g-GPU job at speedup s occupies g GPUs for work/s time.
		used += float64(j.GPUs) * (j.End - j.Start)
		if j.End > horizon {
			horizon = j.End
		}
	}
	if horizon == 0 {
		return 0
	}
	return used / (horizon * float64(p.numGPUs))
}
