package cluster

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewPoolValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero gpus": func() { NewPool(0, 0.9) },
		"bad alpha": func() { NewPool(4, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	if p := NewPool(4, 0); p.Speedup(2) != math.Pow(2, 0.9) {
		t.Error("default alpha not applied")
	}
}

func TestSpeedup(t *testing.T) {
	p := NewPool(24, 0.9)
	if got := p.Speedup(1); got != 1 {
		t.Errorf("Speedup(1) = %g", got)
	}
	if got := p.Speedup(24); math.Abs(got-math.Pow(24, 0.9)) > 1e-12 {
		t.Errorf("Speedup(24) = %g", got)
	}
	if p.Speedup(0) != 0 {
		t.Error("Speedup(0) should be 0")
	}
	// Sublinear: doubling GPUs less than doubles speedup.
	if p.Speedup(16) >= 2*p.Speedup(8) {
		t.Error("scaling should be sublinear")
	}
}

func TestSingleDeviceSerializes(t *testing.T) {
	p := NewPool(8, 0.9)
	j1 := p.RunSingleDevice("a", 80)
	j2 := p.RunSingleDevice("b", 40)
	if j1.Start != 0 {
		t.Errorf("first job starts at %g", j1.Start)
	}
	if j2.Start != j1.End {
		t.Errorf("jobs overlap: j2 start %g, j1 end %g", j2.Start, j1.End)
	}
	wantDur := 80 / math.Pow(8, 0.9)
	if math.Abs((j1.End-j1.Start)-wantDur) > 1e-12 {
		t.Errorf("duration %g, want %g", j1.End-j1.Start, wantDur)
	}
	if p.Now() != j2.End {
		t.Errorf("clock %g, want %g", p.Now(), j2.End)
	}
	if j1.GPUs != 8 {
		t.Errorf("single-device job used %d GPUs", j1.GPUs)
	}
}

func TestOneGPUOverlaps(t *testing.T) {
	p := NewPool(2, 0.9)
	j1 := p.RunOneGPU("a", 10)
	j2 := p.RunOneGPU("b", 10)
	j3 := p.RunOneGPU("c", 5)
	if j1.Start != 0 || j2.Start != 0 {
		t.Errorf("first two jobs should start immediately: %g, %g", j1.Start, j2.Start)
	}
	if j3.Start != 10 {
		t.Errorf("third job starts at %g, want 10 (after the earlier finisher)", j3.Start)
	}
	if j1.GPUs != 1 {
		t.Errorf("one-GPU job used %d GPUs", j1.GPUs)
	}
}

// The §5.3.2 claim: single-device returns the first model sooner (lower time
// to first completion) even though total GPU-time is comparable.
func TestSingleDeviceReturnsFirstModelFaster(t *testing.T) {
	single := NewPool(8, 0.9)
	multi := NewPool(8, 0.9)
	work := []float64{100, 100, 100, 100}
	var firstSingle, firstMulti float64
	for i, w := range work {
		j := single.RunSingleDevice("job", w)
		if i == 0 {
			firstSingle = j.End
		}
	}
	for i, w := range work {
		j := multi.RunOneGPU("job", w)
		if i == 0 {
			firstMulti = j.End
		}
	}
	if firstSingle >= firstMulti {
		t.Errorf("single-device first completion %g not before multi-device %g", firstSingle, firstMulti)
	}
}

func TestNonPositiveWorkPanics(t *testing.T) {
	p := NewPool(2, 0.9)
	for name, f := range map[string]func(){
		"single": func() { p.RunSingleDevice("x", 0) },
		"one":    func() { p.RunOneGPU("x", -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCompletedAndUtilization(t *testing.T) {
	p := NewPool(4, 1) // linear scaling for exact accounting
	if p.Utilization() != 0 {
		t.Error("idle pool should report 0 utilization")
	}
	p.RunSingleDevice("a", 40) // occupies 4 GPUs for 10 time units
	jobs := p.Completed()
	if len(jobs) != 1 || jobs[0].Label != "a" {
		t.Fatalf("Completed = %+v", jobs)
	}
	if got := p.Utilization(); math.Abs(got-1) > 1e-12 {
		t.Errorf("utilization %g, want 1 for a fully packed pool", got)
	}
	// IDs are sequential.
	j2 := p.RunSingleDevice("b", 4)
	if j2.ID != 2 {
		t.Errorf("job id %d, want 2", j2.ID)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	p := NewPool(4, 0.9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.RunSingleDevice("j", 1)
				p.RunOneGPU("k", 1)
			}
		}()
	}
	wg.Wait()
	if got := len(p.Completed()); got != 320 {
		t.Errorf("%d jobs completed, want 320", got)
	}
}

func TestRunOneGPUAmongRespectsLimit(t *testing.T) {
	p := NewPool(8, 0.9)
	// Four equal jobs onto two devices: two waves of two.
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, p.RunOneGPUAmong("j", 10, 2))
	}
	if jobs[0].Start != 0 || jobs[1].Start != 0 {
		t.Errorf("first wave starts %g/%g, want 0/0", jobs[0].Start, jobs[1].Start)
	}
	if jobs[2].Start != 10 || jobs[3].Start != 10 {
		t.Errorf("second wave starts %g/%g, want 10/10", jobs[2].Start, jobs[3].Start)
	}
	if p.Makespan() != 20 {
		t.Errorf("makespan %g, want 20", p.Makespan())
	}
	// Out-of-range limits fall back to the whole pool.
	q := NewPool(3, 0.9)
	a := q.RunOneGPUAmong("a", 5, 0)
	b := q.RunOneGPUAmong("b", 5, 99)
	if a.Start != 0 || b.Start != 0 {
		t.Errorf("whole-pool fallback serialized: %g/%g", a.Start, b.Start)
	}
}

func TestMakespanAndSingleDeviceTime(t *testing.T) {
	p := NewPool(4, 1) // linear scaling for exact numbers
	if p.Makespan() != 0 || p.SingleDeviceTime() != 0 {
		t.Error("idle pool should report zero virtual times")
	}
	// Four unit-work jobs, one GPU each: makespan 1. Serialized across the
	// whole 4-GPU pool they would take 4 × (1/4) = 1 as well (linear
	// scaling makes the strategies tie).
	for i := 0; i < 4; i++ {
		p.RunOneGPU("j", 1)
	}
	if math.Abs(p.Makespan()-1) > 1e-12 {
		t.Errorf("makespan %g, want 1", p.Makespan())
	}
	if math.Abs(p.SingleDeviceTime()-1) > 1e-12 {
		t.Errorf("single-device time %g, want 1", p.SingleDeviceTime())
	}
	// Sublinear scaling breaks the tie in favour of one-GPU packing.
	q := NewPool(4, 0.5)
	for i := 0; i < 4; i++ {
		q.RunOneGPU("j", 1)
	}
	if q.Makespan() >= q.SingleDeviceTime() {
		t.Errorf("sublinear pool: makespan %g should beat single-device %g", q.Makespan(), q.SingleDeviceTime())
	}
}

// Property: jobs never overlap in single-device mode and the clock equals
// the sum of durations.
func TestQuickSingleDeviceClock(t *testing.T) {
	f := func(works []uint8) bool {
		p := NewPool(8, 0.9)
		var sum float64
		prevEnd := 0.0
		for _, w := range works {
			work := 1 + float64(w)
			j := p.RunSingleDevice("x", work)
			if j.Start != prevEnd {
				return false
			}
			prevEnd = j.End
			sum += work / p.Speedup(8)
		}
		return math.Abs(p.Now()-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
