package linalg

import (
	"math/rand"
	"testing"
)

// randSPD builds a random symmetric positive definite n×n matrix
// A = BᵀB + n·I.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Transpose().Mul(b).AddDiag(float64(n))
	return a
}

// extRow returns the last row of a's leading (n+1)×(n+1) block, the input
// Extend expects when growing a size-n factor of a's leading block.
func extRow(a *Matrix, n int) []float64 {
	row := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		row[j] = a.At(n, j)
	}
	return row
}

func factorPrefix(t *testing.T, a *Matrix, n int) *Cholesky {
	t.Helper()
	c := &Cholesky{}
	for i := 0; i < n; i++ {
		if err := c.Extend(extRow(a, i)); err != nil {
			t.Fatalf("Extend row %d: %v", i, err)
		}
	}
	return c
}

func sameFactor(t *testing.T, want, got *Cholesky, label string) {
	t.Helper()
	if want.Size() != got.Size() {
		t.Fatalf("%s: size %d vs %d", label, got.Size(), want.Size())
	}
	wl, gl := want.L(), got.L()
	for i := 0; i < want.Size(); i++ {
		for j := 0; j <= i; j++ {
			if wl.At(i, j) != gl.At(i, j) {
				t.Fatalf("%s: L[%d,%d] = %g, want %g (bit-exact)", label, i, j, gl.At(i, j), wl.At(i, j))
			}
		}
	}
}

// A snapshot must be bit-identical to the base at creation, and both sides
// must evolve independently (and bit-identically to from-scratch factors)
// after diverging Extends.
func TestSnapshotSharesPrefixAndDiverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 12
	a := randSPD(rng, n+4)
	base := factorPrefix(t, a, n)
	shadow := base.Snapshot()
	sameFactor(t, base, shadow, "fresh snapshot")

	// Base extends with the true next row; the shadow extends with a
	// diagonal-boosted variant (still PD) — the COW discipline must keep
	// the two fully independent.
	shadowRow := extRow(a, n)
	shadowRow[n] += 10
	if err := base.Extend(extRow(a, n)); err != nil {
		t.Fatal(err)
	}
	if err := shadow.Extend(shadowRow); err != nil {
		t.Fatal(err)
	}
	wantBase := factorPrefix(t, a, n+1)
	sameFactor(t, wantBase, base, "base after divergence")

	wantShadow := factorPrefix(t, a, n)
	if err := wantShadow.Extend(append([]float64(nil), shadowRow...)); err != nil {
		t.Fatal(err)
	}
	sameFactor(t, wantShadow, shadow, "shadow after divergence")
}

// The base growing first must not leak its new rows into a snapshot taken
// earlier, even though the two share backing storage for the prefix.
func TestSnapshotSurvivesBaseExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 10
	a := randSPD(rng, n+6)
	base := factorPrefix(t, a, n)
	shadow := base.Snapshot()
	for i := n; i < n+4; i++ {
		if err := base.Extend(extRow(a, i)); err != nil {
			t.Fatal(err)
		}
	}
	if shadow.Size() != n {
		t.Fatalf("shadow grew to %d with the base", shadow.Size())
	}
	sameFactor(t, factorPrefix(t, a, n), shadow, "snapshot after base extends")

	// And the shadow can still extend on its own afterwards.
	if err := shadow.Extend(extRow(a, n)); err != nil {
		t.Fatal(err)
	}
	sameFactor(t, factorPrefix(t, a, n+1), shadow, "snapshot extend after base extends")
}

func TestTruncateRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 9
	a := randSPD(rng, n)
	c := factorPrefix(t, a, n)
	snap := c.Snapshot()
	c.Truncate(5)
	if c.Size() != 5 {
		t.Fatalf("Size after Truncate = %d", c.Size())
	}
	sameFactor(t, factorPrefix(t, a, 5), c, "truncated factor")
	// Re-extending after the rollback must not corrupt the earlier
	// snapshot's view of the dropped rows. The replacement rows take a's
	// rows with a boosted diagonal (adding a PSD diagonal keeps the matrix
	// PD), so the Extends are guaranteed to succeed while writing different
	// values than the rows Truncate dropped.
	for i := 5; i < n; i++ {
		row := extRow(a, i)
		row[i] += 10
		if err := c.Extend(row); err != nil {
			t.Fatal(err)
		}
	}
	sameFactor(t, factorPrefix(t, a, n), snap, "snapshot after truncate+extend")
}

func TestTruncateOutOfRangePanics(t *testing.T) {
	c := &Cholesky{}
	if err := c.Extend([]float64{4}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Truncate(%d) did not panic", bad)
				}
			}()
			c.Truncate(bad)
		}()
	}
}

// Snapshot creation must not copy the factor: allocations stay constant as
// the factor grows.
func TestSnapshotAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{4, 64} {
		a := randSPD(rng, n)
		c := factorPrefix(t, a, n)
		allocs := testing.AllocsPerRun(100, func() {
			_ = c.Snapshot()
		})
		if allocs > 1 {
			t.Fatalf("Snapshot of size-%d factor allocates %g objects, want ≤1", n, allocs)
		}
	}
}
