// Package linalg provides the small dense linear-algebra kernel that the
// Gaussian-Process machinery in this repository is built on: dense matrices,
// Cholesky factorization, triangular solves and a handful of vector helpers.
//
// The package is deliberately minimal — everything the GP posterior
// (internal/gp) and the synthetic data generator (internal/synth) need, and
// nothing more. Matrices are small (at most a few hundred rows: one row per
// observation or per candidate model), so the implementations favour clarity
// and numerical robustness over blocking or SIMD tricks.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Use NewMatrix or one of the
// constructors to create a sized matrix.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zero-initialized rows×cols matrix.
// It panics if either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
// It panics if the rows are ragged.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %d×%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %d×%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b. It panics on a dimension mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: cannot multiply %d×%d by %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x. It panics if len(x) != Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("linalg: cannot multiply %d×%d by vector of length %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddDiag adds v to every diagonal element in place and returns m.
// It panics if m is not square.
func (m *Matrix) AddDiag(v float64) *Matrix {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: AddDiag on non-square %d×%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// Diag returns a copy of the main diagonal. It panics if m is not square.
func (m *Matrix) Diag() []float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: Diag on non-square %d×%d matrix", m.rows, m.cols))
	}
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		d[i] = m.data[i*m.cols+i]
	}
	return d
}

// Symmetrize replaces m with (m + mᵀ)/2 in place and returns m.
// Useful to clean up tiny asymmetries before a Cholesky factorization.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: Symmetrize on non-square %d×%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
	return m
}

// Submatrix returns the matrix restricted to the given row and column index
// sets (in the given order). Indices may repeat.
func (m *Matrix) Submatrix(rowIdx, colIdx []int) *Matrix {
	out := NewMatrix(len(rowIdx), len(colIdx))
	for i, r := range rowIdx {
		for j, c := range colIdx {
			out.data[i*out.cols+j] = m.At(r, c)
		}
	}
	return out
}

// Equal reports whether m and b have the same shape and all elements are
// within tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d×%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.data[i*m.cols+j])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += a*x in place. It panics on a length mismatch.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
}
