package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %d×%d, want 3×2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Errorf("wrong elements: %v", m)
	}
}

func TestNewMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(%d,%d) = %g, want %g", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestSetAddAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Errorf("got %g, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.At(2, 0)
}

func TestRowColClone(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v", col)
	}
	// Mutating copies must not affect the matrix.
	row[0] = 99
	col[0] = 99
	if m.At(1, 0) != 4 || m.At(0, 2) != 3 {
		t.Error("Row/Col returned aliased storage")
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone returned aliased storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("got %d×%d, want 3×2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 2))
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("got %v, want [-2 -2]", got)
	}
}

func TestScaleAddDiagDiag(t *testing.T) {
	m := Identity(3).Scale(2).AddDiag(0.5)
	d := m.Diag()
	for i, v := range d {
		if v != 2.5 {
			t.Errorf("diag[%d] = %g, want 2.5", i, v)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {4, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("symmetrize failed: %v", m)
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix([]int{2, 0}, []int{1})
	if s.Rows() != 2 || s.Cols() != 1 || s.At(0, 0) != 8 || s.At(1, 0) != 2 {
		t.Errorf("Submatrix = %v", s)
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); got != 25 {
		t.Errorf("SqDist = %g, want 25", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 41 {
		t.Errorf("AXPY = %v", y)
	}
}

// randomSPD builds a random symmetric positive definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Mul(b.Transpose())
	a.AddDiag(float64(n)) // ensure well-conditioned
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 40} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		recon := l.Mul(l.Transpose())
		if !recon.Equal(a, 1e-8) {
			t.Errorf("n=%d: L·Lᵀ does not reconstruct A", n)
		}
	}
}

func TestCholeskyKnown2x2(t *testing.T) {
	// A = [[4,2],[2,3]] ⇒ L = [[2,0],[1,sqrt2]]
	a := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt(2)) > 1e-12 || l.At(0, 1) != 0 {
		t.Errorf("L = %v", l)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCholeskyJittered(t *testing.T) {
	// Rank-deficient PSD matrix: outer product of [1,1].
	a := NewMatrixFromRows([][]float64{{1, 1}, {1, 1}})
	ch, jitter, err := NewCholeskyJittered(a, 1e-10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if jitter <= 0 {
		t.Errorf("expected positive jitter, got %g", jitter)
	}
	if ch.Size() != 2 {
		t.Errorf("Size = %d", ch.Size())
	}
	// A well-conditioned matrix should need no jitter.
	_, jitter, err = NewCholeskyJittered(Identity(3), 1e-10, 5)
	if err != nil || jitter != 0 {
		t.Errorf("identity needed jitter %g, err %v", jitter, err)
	}
}

func TestSolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got := ch.SolveVec(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: solution mismatch at %d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestLogDet(t *testing.T) {
	// diag(2,3,4): logdet = log 24.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	a.Set(2, 2, 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.LogDet(), math.Log(24); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %g, want %g", got, want)
	}
}

func TestQuadForm(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 0}, {0, 4}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// bᵀA⁻¹b for b=[2,2]: 4/2 + 4/4 = 3.
	if got := ch.QuadForm([]float64{2, 2}); math.Abs(got-3) > 1e-12 {
		t.Errorf("QuadForm = %g, want 3", got)
	}
}

// Property: for random SPD matrices, SolveVec inverts MulVec.
func TestQuickCholeskySolveInverts(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := ch.SolveVec(a.MulVec(x))
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		r, c := int(rRaw%8)+1, int(cRaw%8)+1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: QuadForm is always non-negative for SPD matrices.
func TestQuickQuadFormNonNegative(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		return ch.QuadForm(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholesky50(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveVec50(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 50)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, 50)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(v)
	}
}

// ForwardSolveBatch must agree with per-column ForwardSolve exactly.
func TestForwardSolveBatchMatchesPerColumn(t *testing.T) {
	// A symmetric positive definite matrix with non-trivial off-diagonals.
	a := NewMatrixFromRows([][]float64{
		{4, 2, 0.6, 1},
		{2, 5, 1.2, 0.4},
		{0.6, 1.2, 3, 0.2},
		{1, 0.4, 0.2, 2},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	n, cols := 4, 3
	cols64 := []([]float64){
		{1, 0, 0, 0},
		{0.5, -2, 3, 7},
		{1e-3, 4, -5, 0.25},
	}
	b := make([]float64, n*cols)
	for j, col := range cols64 {
		for i := 0; i < n; i++ {
			b[i*cols+j] = col[i]
		}
	}
	z := ch.ForwardSolveBatch(b, cols)
	for j, col := range cols64 {
		want := ch.ForwardSolve(col)
		for i := 0; i < n; i++ {
			if got := z[i*cols+j]; got != want[i] {
				t.Errorf("column %d element %d: batch %g vs solve %g", j, i, got, want[i])
			}
		}
	}
	// Shape violations are programming errors.
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		f()
	}
	mustPanic(func() { ch.ForwardSolveBatch(b, 0) })
	mustPanic(func() { ch.ForwardSolveBatch(b[:5], cols) })
}
