package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A, such that A = L·Lᵀ. The factor is stored as ragged rows
// so that Extend can grow it by one row in O(n²) — the operation that makes
// per-observation Gaussian-Process updates cheap.
type Cholesky struct {
	rows [][]float64 // rows[i] has length i+1 (lower triangle incl. diagonal)
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// Only the lower triangle of a is read. It returns ErrNotPositiveDefinite if
// a pivot is non-positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %d×%d matrix", a.Rows(), a.Cols())
	}
	c := &Cholesky{}
	row := make([]float64, 0, a.Rows())
	for i := 0; i < a.Rows(); i++ {
		row = row[:0]
		for j := 0; j <= i; j++ {
			row = append(row, a.At(i, j))
		}
		if err := c.Extend(row); err != nil {
			return nil, fmt.Errorf("%w (pivot %d)", err, i)
		}
	}
	return c, nil
}

// NewCholeskyJittered tries to factorize a, adding exponentially increasing
// diagonal jitter (starting at startJitter, growing 10× up to maxTries
// times) when the matrix is numerically semi-definite. It returns the
// factorization and the jitter that was finally added.
//
// This mirrors the standard GP implementation trick: covariance matrices
// built from nearly identical quality vectors are often singular to machine
// precision even though they are valid covariances.
func NewCholeskyJittered(a *Matrix, startJitter float64, maxTries int) (*Cholesky, float64, error) {
	if startJitter <= 0 {
		startJitter = 1e-10
	}
	if maxTries <= 0 {
		maxTries = 10
	}
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	jitter := startJitter
	for try := 0; try < maxTries; try++ {
		aj := a.Clone().AddDiag(jitter)
		if ch, err := NewCholesky(aj); err == nil {
			return ch, jitter, nil
		}
		jitter *= 10
	}
	return nil, 0, fmt.Errorf("%w: still singular after jitter %g", ErrNotPositiveDefinite, jitter/10)
}

// Extend grows the factorization by one row: row is the new last row of the
// extended matrix A′ (its length must be Size()+1, ending with the new
// diagonal element). On a non-positive pivot the factorization is left
// unchanged and ErrNotPositiveDefinite is returned. The cost is O(n²).
func (c *Cholesky) Extend(row []float64) error {
	n := c.Size()
	if len(row) != n+1 {
		return fmt.Errorf("linalg: Extend row has %d elements for size-%d factor", len(row), n)
	}
	// Solve L·y = row[:n]; the new factor row is [y..., sqrt(d)].
	y := make([]float64, n+1)
	for i := 0; i < n; i++ {
		s := row[i]
		li := c.rows[i]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	d := row[n]
	for _, v := range y[:n] {
		d -= v * v
	}
	if d <= 0 || math.IsNaN(d) {
		return fmt.Errorf("%w: new pivot is %g", ErrNotPositiveDefinite, d)
	}
	y[n] = math.Sqrt(d)
	c.rows = append(c.rows, y)
	return nil
}

// Size returns the dimension n of the factorized matrix.
func (c *Cholesky) Size() int { return len(c.rows) }

// Row returns factor row i (length i+1) without copying. The returned
// slice is the factor's backing storage — callers must treat it as
// read-only. Rank-1 posterior downdates read the newest row this way
// instead of materializing the whole factor with L().
func (c *Cholesky) Row(i int) []float64 { return c.rows[i] }

// Snapshot returns a prefix-sharing shadow of the factorization in O(1):
// the shadow aliases the base's rows instead of deep-copying the O(n²)
// triangle. Both the base and the shadow may keep calling Extend
// independently afterwards — rows are immutable once appended, and the
// shadow's row-pointer slice is capacity-clamped, so either side's next
// append reallocates its own pointer array (an O(n) pointer copy, never a
// float copy) rather than writing into storage the other can see. This is
// what makes GP-BUCB hallucination shadows O(1) to create: a shadow shares
// the real posterior's factor and only appends hallucinated rows.
func (c *Cholesky) Snapshot() *Cholesky {
	n := len(c.rows)
	return &Cholesky{rows: c.rows[:n:n]}
}

// Truncate rolls the factorization back to its first n rows — the inverse
// of n fewer Extends. Like Snapshot it clamps capacity, so a later Extend
// cannot overwrite rows still visible through an earlier Snapshot. It
// panics when n is negative or exceeds Size.
func (c *Cholesky) Truncate(n int) {
	if n < 0 || n > len(c.rows) {
		panic(fmt.Sprintf("linalg: Truncate to %d rows of a size-%d factor", n, len(c.rows)))
	}
	c.rows = c.rows[:n:n]
}

// L returns a copy of the lower-triangular factor as a dense matrix.
func (c *Cholesky) L() *Matrix {
	n := c.Size()
	l := NewMatrix(n, n)
	for i, row := range c.rows {
		for j, v := range row {
			l.Set(i, j, v)
		}
	}
	return l
}

// SolveVec solves A·x = b for x, where A = L·Lᵀ is the factorized matrix.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.Size() {
		panic(fmt.Sprintf("linalg: SolveVec length %d does not match size %d", len(b), c.Size()))
	}
	y := c.ForwardSolve(b)
	return c.BackwardSolve(y)
}

// ForwardSolve solves L·y = b for y.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	n := c.Size()
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.rows[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	return y
}

// BackwardSolve solves Lᵀ·x = y for x.
func (c *Cholesky) BackwardSolve(y []float64) []float64 {
	n := c.Size()
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.rows[k][i] * x[k]
		}
		x[i] = s / c.rows[i][i]
	}
	return x
}

// LogDet returns log|A| of the factorized matrix A, computed as
// 2·Σ log L[i,i]. This is the quantity the GP log marginal likelihood needs.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i, row := range c.rows {
		s += math.Log(row[i])
	}
	return 2 * s
}

// QuadForm returns bᵀ·A⁻¹·b for the factorized matrix A. It is computed
// stably as ‖L⁻¹b‖² via a single forward solve.
func (c *Cholesky) QuadForm(b []float64) float64 {
	y := c.ForwardSolve(b)
	var s float64
	for _, v := range y {
		s += v * v
	}
	return s
}

// ForwardSolveBatch solves L·Z = B for many right-hand sides in one pass
// over the factor. B is row-major with one column per right-hand side —
// b[i*cols+j] is element i of rhs j — and the result uses the same layout.
// Walking L's rows once with the columns adjacent in the inner loop is
// what makes batched GP posteriors cheap: per-column ForwardSolve calls
// would traverse the factor (and allocate) once per column, while here the
// inner loop is a contiguous AXPY across all columns.
func (c *Cholesky) ForwardSolveBatch(b []float64, cols int) []float64 {
	n := c.Size()
	if cols <= 0 {
		panic(fmt.Sprintf("linalg: ForwardSolveBatch with %d columns", cols))
	}
	if len(b) != n*cols {
		panic(fmt.Sprintf("linalg: ForwardSolveBatch length %d does not match %d×%d", len(b), n, cols))
	}
	z := make([]float64, len(b))
	copy(z, b)
	for i := 0; i < n; i++ {
		row := c.rows[i]
		zi := z[i*cols : (i+1)*cols]
		for k := 0; k < i; k++ {
			coef := row[k]
			if coef == 0 {
				continue
			}
			zk := z[k*cols : (k+1)*cols]
			for j, v := range zk {
				zi[j] -= coef * v
			}
		}
		// Divide (not multiply by a reciprocal): bit-identical to the
		// per-column ForwardSolve, so batched and scalar posteriors agree
		// exactly.
		piv := row[i]
		for j := range zi {
			zi[j] /= piv
		}
	}
	return z
}
