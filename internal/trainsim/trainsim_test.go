package trainsim

import (
	"math"
	"testing"
	"testing/quick"
)

func testSim(t testing.TB) *Simulator {
	t.Helper()
	sim, err := DeepLearningSim([]TaskSpec{
		{Name: "easy", Difficulty: 0.0, SizeFactor: 1},
		{Name: "hard", Difficulty: 0.3, SizeFactor: 2},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewValidation(t *testing.T) {
	model := ModelSpec{Name: "m", Peak: 0.7, Tau: 10, CostPerEpoch: 1, BestLR: 0.01}
	task := TaskSpec{Name: "t", SizeFactor: 1}
	cases := map[string]Config{
		"no models": {Tasks: []TaskSpec{task}},
		"no tasks":  {Models: []ModelSpec{model}},
		"bad peak":  {Models: []ModelSpec{{Name: "m", Peak: 1.5, Tau: 1, CostPerEpoch: 1, BestLR: 0.1}}, Tasks: []TaskSpec{task}},
		"bad tau":   {Models: []ModelSpec{{Name: "m", Peak: 0.5, Tau: 0, CostPerEpoch: 1, BestLR: 0.1}}, Tasks: []TaskSpec{task}},
		"bad size":  {Models: []ModelSpec{model}, Tasks: []TaskSpec{{Name: "t", SizeFactor: 0}}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	sim := testSim(t)
	a := sim.Train(0, 2)
	b := sim.Train(0, 2)
	if a.Accuracy != b.Accuracy || a.Cost != b.Cost || a.BestLR != b.BestLR {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
	// Different pairs use different sub-seeds.
	c := sim.Train(1, 2)
	if c.Accuracy == a.Accuracy {
		t.Error("different tasks produced identical accuracy (suspicious seeding)")
	}
}

func TestTrainAccuracyNearTruth(t *testing.T) {
	sim := testSim(t)
	for task := 0; task < sim.NumTasks(); task++ {
		for model := 0; model < sim.NumModels(); model++ {
			res := sim.Train(task, model)
			truth := sim.TrueQuality(task, model)
			// 100 epochs ≥ ~3τ for every model, so the run should land
			// within noise plus the unconverged tail of the truth.
			if math.Abs(res.Accuracy-truth) > 0.08 {
				t.Errorf("task %d model %s: accuracy %.3f vs truth %.3f",
					task, res.Model, res.Accuracy, truth)
			}
		}
	}
}

func TestHarderTaskLowerAccuracy(t *testing.T) {
	sim := testSim(t)
	for model := 0; model < sim.NumModels(); model++ {
		easy := sim.TrueQuality(0, model)
		hard := sim.TrueQuality(1, model)
		if hard >= easy {
			t.Errorf("model %d: hard task quality %.3f not below easy %.3f", model, hard, easy)
		}
	}
}

func TestCostModel(t *testing.T) {
	sim := testSim(t)
	// Cost = cost/epoch × size × epochs × grid size, deterministic.
	m := sim.Model(6) // VGG-16
	if m.Name != "VGG-16" {
		t.Fatalf("model order changed: %q", m.Name)
	}
	want := m.CostPerEpoch * 2 * 100 * 4
	if got := sim.Cost(1, 6); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", got, want)
	}
	// VGG-16 must dominate SqueezeNet by an order of magnitude.
	if sim.Cost(0, 6) < 10*sim.Cost(0, 7) {
		t.Errorf("VGG cost %g not ≫ SqueezeNet %g", sim.Cost(0, 6), sim.Cost(0, 7))
	}
}

func TestLearningRateGridSearch(t *testing.T) {
	sim := testSim(t)
	res := sim.Train(0, 0)
	found := false
	for _, lr := range DefaultLearningRates {
		if res.BestLR == lr {
			found = true
		}
	}
	if !found {
		t.Errorf("winning LR %g not on the grid", res.BestLR)
	}
}

func TestKeepCurves(t *testing.T) {
	sim, err := New(Config{
		Models:     []ModelSpec{{Name: "m", Peak: 0.8, Tau: 10, CostPerEpoch: 1, BestLR: 0.01}},
		Tasks:      []TaskSpec{{Name: "t", SizeFactor: 1}},
		Epochs:     20,
		KeepCurves: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Train(0, 0)
	if len(res.Curves) != len(DefaultLearningRates) {
		t.Fatalf("%d curves, want %d", len(res.Curves), len(DefaultLearningRates))
	}
	curve := res.Curves[0.01]
	if len(curve) != 20 {
		t.Fatalf("curve has %d points, want 20", len(curve))
	}
	// The curve should broadly increase (saturating exponential + noise).
	if curve[19].Accuracy < curve[0].Accuracy {
		t.Errorf("curve decreased: %.3f → %.3f", curve[0].Accuracy, curve[19].Accuracy)
	}
}

func TestEnvImplementsSchedulerContract(t *testing.T) {
	sim := testSim(t)
	env := NewEnv(sim)
	if env.NumUsers() != 2 || env.NumModels(0) != 8 {
		t.Fatalf("env shape %d×%d", env.NumUsers(), env.NumModels(0))
	}
	r1 := env.Reward(0, 3)
	r2 := env.Reward(0, 3) // cached replay
	if r1 != r2 {
		t.Error("Reward not stable across calls")
	}
	if got := len(env.Runs()); got != 1 {
		t.Errorf("%d runs cached, want 1", got)
	}
	if env.Cost(0, 3) != sim.Cost(0, 3) {
		t.Error("Cost mismatch")
	}
	best := env.BestQuality(0)
	for j := 0; j < 8; j++ {
		if q := sim.TrueQuality(0, j); q > best {
			t.Errorf("BestQuality %g below model %d truth %g", best, j, q)
		}
	}
}

// Property: accuracies and ground truths always live in [0,1], and cost is
// positive, for arbitrary task difficulty.
func TestQuickTrainBounds(t *testing.T) {
	f := func(seed int64, diffRaw, sizeRaw uint8) bool {
		diff := float64(diffRaw) / 255 // [0,1]
		size := 0.1 + float64(sizeRaw)/64
		sim, err := DeepLearningSim([]TaskSpec{{Name: "t", Difficulty: diff, SizeFactor: size}}, seed)
		if err != nil {
			return false
		}
		for j := 0; j < sim.NumModels(); j++ {
			res := sim.Train(0, j)
			if res.Accuracy < 0 || res.Accuracy > 1 || res.Cost <= 0 {
				return false
			}
			tq := sim.TrueQuality(0, j)
			if tq < 0 || tq > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrain(b *testing.B) {
	sim, err := DeepLearningSim([]TaskSpec{{Name: "t", Difficulty: 0.1, SizeFactor: 1}}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Train(0, i%sim.NumModels())
	}
}
