// Package trainsim simulates the GPU training substrate of ease.ml
// (substitution §3 of DESIGN.md): each (task, model) training run follows a
// saturating-exponential learning curve over 100 epochs, grid-searched over
// the initial learning rates {0.1, 0.01, 0.001, 0.0001} with an Adam-style
// optimizer, exactly the training protocol of §5.1.
//
// Runs are deterministic per (task, model) pair — replaying a pair returns
// the same accuracy and cost, mirroring the paper's replay of its training
// log — and the package adapts a Simulator to core.Env so the multi-tenant
// scheduler can drive live (simulated) training instead of a recorded
// matrix.
package trainsim

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultLearningRates is the §5.1 grid.
var DefaultLearningRates = []float64{0.1, 0.01, 0.001, 0.0001}

// DefaultEpochs is the §5.1 per-setting epoch budget.
const DefaultEpochs = 100

// ModelSpec describes one candidate architecture's training behaviour.
type ModelSpec struct {
	Name string
	// Peak is the accuracy the model converges to with its best learning
	// rate on a task of zero difficulty.
	Peak float64
	// Tau is the learning-curve time constant in epochs: accuracy reaches
	// 1−e⁻¹ of its final value after Tau epochs.
	Tau float64
	// CostPerEpoch is the execution cost of one training epoch (scaled by
	// the task's size factor).
	CostPerEpoch float64
	// BestLR is the learning rate at which Peak is reached; other grid
	// points pay a mismatch penalty.
	BestLR float64
}

// TaskSpec describes one user task.
type TaskSpec struct {
	Name string
	// Difficulty is subtracted from every model's peak on this task.
	Difficulty float64
	// SizeFactor scales training cost (bigger datasets train longer).
	SizeFactor float64
}

// EpochPoint is one point of a learning curve.
type EpochPoint struct {
	Epoch    int
	Accuracy float64
}

// Result reports one completed grid-searched training run.
type Result struct {
	Task     string
	Model    string
	Accuracy float64 // best final accuracy across the grid
	BestLR   float64 // grid point that won
	Cost     float64 // total cost: epochs × grid size × cost/epoch × size factor
	Curves   map[float64][]EpochPoint
}

// Config parameterizes a Simulator.
type Config struct {
	Models        []ModelSpec
	Tasks         []TaskSpec
	Epochs        int       // default DefaultEpochs
	LearningRates []float64 // default DefaultLearningRates
	NoiseSD       float64   // per-epoch accuracy noise (default 0.005)
	Seed          int64     // base seed; (task, model) runs derive sub-seeds
	// KeepCurves retains full per-learning-rate curves on results (off by
	// default: curves are large and only examples need them).
	KeepCurves bool
}

// Simulator produces deterministic simulated training runs.
type Simulator struct {
	cfg Config
}

// New validates the configuration and returns a Simulator.
func New(cfg Config) (*Simulator, error) {
	if len(cfg.Models) == 0 || len(cfg.Tasks) == 0 {
		return nil, fmt.Errorf("trainsim: need at least one model and one task")
	}
	for _, m := range cfg.Models {
		if m.Peak < 0 || m.Peak > 1 {
			return nil, fmt.Errorf("trainsim: model %q peak %g outside [0,1]", m.Name, m.Peak)
		}
		if m.Tau <= 0 || m.CostPerEpoch <= 0 || m.BestLR <= 0 {
			return nil, fmt.Errorf("trainsim: model %q has non-positive tau/cost/lr", m.Name)
		}
	}
	for _, t := range cfg.Tasks {
		if t.SizeFactor <= 0 {
			return nil, fmt.Errorf("trainsim: task %q has non-positive size factor", t.Name)
		}
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = DefaultEpochs
	}
	if cfg.LearningRates == nil {
		cfg.LearningRates = DefaultLearningRates
	}
	if cfg.NoiseSD == 0 {
		cfg.NoiseSD = 0.005
	}
	return &Simulator{cfg: cfg}, nil
}

// NumModels returns the number of candidate models.
func (s *Simulator) NumModels() int { return len(s.cfg.Models) }

// NumTasks returns the number of tasks.
func (s *Simulator) NumTasks() int { return len(s.cfg.Tasks) }

// Model returns the spec of model j.
func (s *Simulator) Model(j int) ModelSpec { return s.cfg.Models[j] }

// Task returns the spec of task i.
func (s *Simulator) Task(i int) TaskSpec { return s.cfg.Tasks[i] }

// Cost returns the (deterministic) total cost of training model j on task i:
// the full grid of learning rates for the full epoch budget.
func (s *Simulator) Cost(task, model int) float64 {
	m := s.cfg.Models[model]
	t := s.cfg.Tasks[task]
	return m.CostPerEpoch * t.SizeFactor * float64(s.cfg.Epochs) * float64(len(s.cfg.LearningRates))
}

// Train runs the grid-searched training of model j on task i. The run is
// deterministic: the RNG is seeded from (Seed, task, model).
func (s *Simulator) Train(task, model int) Result {
	m := s.cfg.Models[model]
	t := s.cfg.Tasks[task]
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(task)*1000003 ^ int64(model)*7919))

	res := Result{Task: t.Name, Model: m.Name, Cost: s.Cost(task, model)}
	if s.cfg.KeepCurves {
		res.Curves = make(map[float64][]EpochPoint, len(s.cfg.LearningRates))
	}
	for _, lr := range s.cfg.LearningRates {
		final := s.converged(task, model, lr)
		// Too-large learning rates also diverge occasionally.
		diverged := lr > m.BestLR*50 && rng.Float64() < 0.5
		var last float64
		var curve []EpochPoint
		for e := 1; e <= s.cfg.Epochs; e++ {
			acc := final * (1 - math.Exp(-float64(e)/m.Tau))
			if diverged {
				acc = 0.05 + 0.02*rng.Float64()
			}
			acc += s.cfg.NoiseSD * rng.NormFloat64()
			acc = clamp01(acc)
			last = acc
			if s.cfg.KeepCurves {
				curve = append(curve, EpochPoint{Epoch: e, Accuracy: acc})
			}
		}
		if s.cfg.KeepCurves {
			res.Curves[lr] = curve
		}
		if last > res.Accuracy {
			res.Accuracy = last
			res.BestLR = lr
		}
	}
	return res
}

// converged returns the noise-free converged accuracy of (task, model, lr):
// the model peak, minus the task difficulty, scaled by the learning-rate
// mismatch penalty (one decade off costs ≈ 22% of the achievable headroom).
func (s *Simulator) converged(task, model int, lr float64) float64 {
	m := s.cfg.Models[model]
	t := s.cfg.Tasks[task]
	d := math.Log10(lr) - math.Log10(m.BestLR)
	penalty := math.Exp(-d * d / 2)
	return clamp01((m.Peak - t.Difficulty) * penalty)
}

// TrueQuality returns the noise-free achievable accuracy of (task, model)
// under the best grid point — the ground truth the loss metrics compare
// against.
func (s *Simulator) TrueQuality(task, model int) float64 {
	best := 0.0
	for _, lr := range s.cfg.LearningRates {
		if q := s.converged(task, model, lr); q > best {
			best = q
		}
	}
	return best
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Env adapts a Simulator to core.Env: Reward runs a (cached) simulated
// training and returns its measured accuracy; Cost is the deterministic grid
// cost; BestQuality is the noise-free ground truth.
type Env struct {
	sim   *Simulator
	cache map[[2]int]Result
}

// NewEnv wraps a Simulator as a scheduler environment.
func NewEnv(sim *Simulator) *Env {
	return &Env{sim: sim, cache: make(map[[2]int]Result)}
}

// NumUsers implements core.Env.
func (e *Env) NumUsers() int { return e.sim.NumTasks() }

// NumModels implements core.Env.
func (e *Env) NumModels(int) int { return e.sim.NumModels() }

// Reward implements core.Env by running (or replaying) the simulated
// training of (user, arm).
func (e *Env) Reward(user, arm int) float64 {
	key := [2]int{user, arm}
	res, ok := e.cache[key]
	if !ok {
		res = e.sim.Train(user, arm)
		e.cache[key] = res
	}
	return res.Accuracy
}

// Cost implements core.Env.
func (e *Env) Cost(user, arm int) float64 { return e.sim.Cost(user, arm) }

// BestQuality implements core.Env.
func (e *Env) BestQuality(user int) float64 {
	best := 0.0
	for j := 0; j < e.sim.NumModels(); j++ {
		if q := e.sim.TrueQuality(user, j); q > best {
			best = q
		}
	}
	return best
}

// Runs returns the completed training results in no particular order.
func (e *Env) Runs() []Result {
	out := make([]Result, 0, len(e.cache))
	for _, r := range e.cache {
		out = append(out, r)
	}
	return out
}

// DeepLearningSim builds a Simulator with the eight §5.1 CNN architectures
// and the given synthetic tasks, for examples and the live-training
// integration path.
func DeepLearningSim(tasks []TaskSpec, seed int64) (*Simulator, error) {
	models := []ModelSpec{
		{Name: "NIN", Peak: 0.62, Tau: 22, CostPerEpoch: 1.1, BestLR: 0.01},
		{Name: "GoogLeNet", Peak: 0.70, Tau: 30, CostPerEpoch: 1.6, BestLR: 0.01},
		{Name: "ResNet-50", Peak: 0.75, Tau: 35, CostPerEpoch: 3.9, BestLR: 0.001},
		{Name: "AlexNet", Peak: 0.57, Tau: 15, CostPerEpoch: 0.72, BestLR: 0.01},
		{Name: "BN-AlexNet", Peak: 0.60, Tau: 14, CostPerEpoch: 0.75, BestLR: 0.01},
		{Name: "ResNet-18", Peak: 0.70, Tau: 28, CostPerEpoch: 1.8, BestLR: 0.001},
		{Name: "VGG-16", Peak: 0.71, Tau: 32, CostPerEpoch: 15.5, BestLR: 0.001},
		{Name: "SqueezeNet", Peak: 0.58, Tau: 18, CostPerEpoch: 0.78, BestLR: 0.001},
	}
	return New(Config{Models: models, Tasks: tasks, Seed: seed})
}
