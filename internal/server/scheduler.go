// Package server implements the ease.ml service of §2 Figure 1: users submit
// declarative jobs over HTTP, feed supervision examples, refine them, and
// call infer against the best model found so far, while a multi-tenant
// scheduler (internal/core's HYBRID policy) decides which job's next
// candidate model to train on the shared (simulated) GPU pool.
package server

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/gp"
	"repro/internal/storage"
	"repro/internal/templates"
	"repro/internal/trainsim"
)

// Trainer runs one candidate model for a job and reports its measured
// accuracy plus the execution cost. EstimateCost must be stable and
// strictly positive; the scheduler uses it for cost-aware selection before
// the candidate ever runs.
type Trainer interface {
	Train(jobID string, c templates.Candidate) (accuracy, cost float64)
	EstimateCost(jobID string, c templates.Candidate) float64
}

// SimTrainer trains candidates on the trainsim learning-curve substrate,
// serialized through a simulated GPU pool (the deployed single-device
// strategy of §4.5).
type SimTrainer struct {
	Pool *cluster.Pool
	Seed int64

	mu   sync.Mutex
	sims map[string]*simEntry
}

type simEntry struct {
	sim   *trainsim.Simulator
	index map[string]int // candidate name → model index
}

// NewSimTrainer creates a SimTrainer over the given pool.
func NewSimTrainer(pool *cluster.Pool, seed int64) *SimTrainer {
	return &SimTrainer{Pool: pool, Seed: seed, sims: make(map[string]*simEntry)}
}

// Register builds the per-job simulator for a candidate list. Candidate
// training behaviour is derived deterministically from the job id and the
// candidate name, so restarts reproduce the same quality surface.
func (st *SimTrainer) Register(jobID string, cands []templates.Candidate) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sims[jobID]; ok {
		return fmt.Errorf("server: job %q already registered with trainer", jobID)
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	jobHash := int64(h.Sum64() & 0x7fffffffffff)

	difficulty := 0.05 + 0.30*frac(jobHash, 11)
	entry := &simEntry{index: make(map[string]int, len(cands))}
	models := make([]trainsim.ModelSpec, len(cands))
	for i, c := range cands {
		ch := fnv.New64a()
		ch.Write([]byte(c.Model))
		candHash := int64(ch.Sum64() & 0x7fffffffffff)
		peak := 0.55 + 0.40*frac(candHash, 3)
		if c.Normalizer != nil {
			// Normalization variants perturb the base model's peak: helpful
			// for some (job, k) pairs, harmful for others.
			peak += 0.10 * (frac(jobHash^candHash, 5) - 0.5) * c.Normalizer.K
			peak = clamp(peak, 0.05, 0.99)
		}
		models[i] = trainsim.ModelSpec{
			Name:         c.Name(),
			Peak:         peak,
			Tau:          10 + 30*frac(candHash, 7),
			CostPerEpoch: 0.5 + 15*frac(candHash, 13)*frac(candHash, 17),
			BestLR:       trainsim.DefaultLearningRates[int(candHash)%len(trainsim.DefaultLearningRates)],
		}
		entry.index[c.Name()] = i
	}
	sim, err := trainsim.New(trainsim.Config{
		Models: models,
		Tasks:  []trainsim.TaskSpec{{Name: jobID, Difficulty: difficulty, SizeFactor: 0.5 + 2*frac(jobHash, 19)}},
		Seed:   st.Seed ^ jobHash,
	})
	if err != nil {
		return fmt.Errorf("server: building simulator for %q: %w", jobID, err)
	}
	entry.sim = sim
	st.sims[jobID] = entry
	return nil
}

// Train implements Trainer.
func (st *SimTrainer) Train(jobID string, c templates.Candidate) (float64, float64) {
	st.mu.Lock()
	entry, ok := st.sims[jobID]
	st.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("server: job %q not registered", jobID))
	}
	idx, ok := entry.index[c.Name()]
	if !ok {
		panic(fmt.Sprintf("server: job %q has no candidate %q", jobID, c.Name()))
	}
	res := entry.sim.Train(0, idx)
	if st.Pool != nil {
		st.Pool.RunSingleDevice(jobID+"/"+c.Name(), res.Cost)
	}
	return res.Accuracy, res.Cost
}

// EstimateCost implements Trainer.
func (st *SimTrainer) EstimateCost(jobID string, c templates.Candidate) float64 {
	st.mu.Lock()
	entry, ok := st.sims[jobID]
	st.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("server: job %q not registered", jobID))
	}
	idx, ok := entry.index[c.Name()]
	if !ok {
		panic(fmt.Sprintf("server: job %q has no candidate %q", jobID, c.Name()))
	}
	return entry.sim.Cost(0, idx)
}

func frac(h int64, salt int64) float64 {
	x := uint64(h) * uint64(salt*2654435761+1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1000003) / 1000003
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// Job is one submitted ease.ml task.
type Job struct {
	ID         string
	Name       string
	Program    dsl.Program
	Template   string
	Candidates []templates.Candidate
	Julia      string
	Python     string

	tenant *core.Tenant
	store  *storage.TaskStore
}

// Scheduler owns the job set and drives multi-tenant model selection over
// it. It is the in-process core of the HTTP server and is usable directly
// (examples drive it without HTTP).
type Scheduler struct {
	mu      sync.Mutex
	store   *storage.Store
	trainer Trainer
	picker  core.UserPicker
	jobs    []*Job
	byID    map[string]*Job
	nextID  int
	rounds  int
	server  string // advertised server address for codegen
}

// NewScheduler creates a scheduler with the given trainer and user picker
// (nil picker defaults to ease.ml's HYBRID policy).
func NewScheduler(trainer Trainer, picker core.UserPicker, serverAddr string) *Scheduler {
	if picker == nil {
		picker = core.NewHybridPicker()
	}
	if serverAddr == "" {
		serverAddr = "http://localhost:9000"
	}
	return &Scheduler{
		store:   storage.NewStore(),
		trainer: trainer,
		picker:  picker,
		byID:    make(map[string]*Job),
		server:  serverAddr,
	}
}

// Submit parses and registers a new job: the program is validated, matched
// against the Figure 4 templates, candidates are generated (including
// normalization variants for image-shaped inputs), code is generated, and a
// GP-UCB tenant is created for the scheduler.
func (sc *Scheduler) Submit(name, programSrc string) (*Job, error) {
	prog, err := dsl.Parse(programSrc)
	if err != nil {
		return nil, err
	}
	cands, tpl, err := templates.Generate(prog, nil)
	if err != nil {
		return nil, err
	}

	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.nextID++
	id := fmt.Sprintf("job-%04d", sc.nextID)

	if reg, ok := sc.trainer.(*SimTrainer); ok {
		if err := reg.Register(id, cands); err != nil {
			return nil, err
		}
	}
	ts, err := sc.store.CreateTask(id)
	if err != nil {
		return nil, err
	}

	costs := make([]float64, len(cands))
	features := make([][]float64, len(cands))
	for i, c := range cands {
		costs[i] = sc.trainer.EstimateCost(id, c)
		features[i] = candidateFeature(c)
	}
	process := gp.NewFromFeatures(gp.RBF{Variance: 0.05, LengthScale: 0.5}, features, 1e-4)
	b := bandit.New(process, bandit.Config{
		Costs:     costs,
		CostAware: true,
		BetaArms:  32 * len(cands), // headroom for jobs arriving later
		Mean0:     0.6,
	})
	job := &Job{
		ID:         id,
		Name:       name,
		Program:    prog,
		Template:   tpl.Name,
		Candidates: cands,
		Julia:      codegen.JuliaTypes(prog),
		Python:     codegen.PythonLibrary(id, sc.server, prog),
		tenant:     core.NewTenant(len(sc.jobs), id, b),
		store:      ts,
	}
	sc.jobs = append(sc.jobs, job)
	sc.byID[id] = job
	return job, nil
}

// candidateFeature embeds a candidate for the GP kernel: a hash-derived
// model-family coordinate plus the normalization parameter. Candidates of
// the same base model cluster together, which is what lets one observation
// inform its normalization variants.
func candidateFeature(c templates.Candidate) []float64 {
	h := fnv.New64a()
	h.Write([]byte(c.Model))
	base := float64(h.Sum64()%1000) / 1000
	k := 0.0
	if c.Normalizer != nil {
		k = c.Normalizer.K
	}
	return []float64{base, k * 0.3}
}

// Job returns a job by id.
func (sc *Scheduler) Job(id string) (*Job, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.byID[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (sc *Scheduler) Jobs() []*Job {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]*Job(nil), sc.jobs...)
}

// Rounds returns the number of completed scheduling rounds.
func (sc *Scheduler) Rounds() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.rounds
}

// RunRound executes one multi-tenant scheduling round: pick a job, pick its
// next candidate, train it, and record the result. It returns false when no
// job has untried candidates.
func (sc *Scheduler) RunRound() (bool, error) {
	sc.mu.Lock()
	tenants := make([]*core.Tenant, len(sc.jobs))
	for i, j := range sc.jobs {
		tenants[i] = j.tenant
	}
	idx := sc.picker.Pick(tenants)
	if idx < 0 {
		sc.mu.Unlock()
		return false, nil
	}
	job := sc.jobs[idx]
	arm, ucb := job.tenant.Bandit.SelectArm()
	if arm < 0 {
		sc.mu.Unlock()
		return false, fmt.Errorf("server: picker chose exhausted job %s", job.ID)
	}
	cand := job.Candidates[arm]
	sc.rounds++
	round := sc.rounds
	sc.mu.Unlock()

	// Train outside the lock: this is the long-running part.
	acc, cost := sc.trainer.Train(job.ID, cand)

	sc.mu.Lock()
	job.tenant.Bandit.Observe(arm, acc)
	job.tenant.RecordObservation(ucb, acc)
	sc.mu.Unlock()

	job.store.RecordModel(storage.ModelRecord{
		Name:     cand.Name(),
		Accuracy: acc,
		Cost:     cost,
		Round:    round,
	})
	return true, nil
}

// RunRounds executes up to n rounds, stopping early when all jobs are
// exhausted. It returns the number of rounds that ran.
func (sc *Scheduler) RunRounds(n int) (int, error) {
	ran := 0
	for ran < n {
		ok, err := sc.RunRound()
		if err != nil {
			return ran, err
		}
		if !ok {
			break
		}
		ran++
	}
	return ran, nil
}

// Feed stores a supervision example for a job.
func (sc *Scheduler) Feed(jobID string, input, output []float64) (int, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return 0, fmt.Errorf("server: no job %q", jobID)
	}
	if want := job.Program.Input.TotalElements(); len(input) != want {
		return 0, fmt.Errorf("server: input has %d elements, schema wants %d", len(input), want)
	}
	if want := job.Program.Output.TotalElements(); len(output) != want {
		return 0, fmt.Errorf("server: output has %d elements, schema wants %d", len(output), want)
	}
	return job.store.Feed(input, output), nil
}

// Refine toggles a supervision example for a job.
func (sc *Scheduler) Refine(jobID string, exampleID int, enabled bool) error {
	job, ok := sc.Job(jobID)
	if !ok {
		return fmt.Errorf("server: no job %q", jobID)
	}
	return job.store.Refine(exampleID, enabled)
}

// Infer applies the best model so far to an input. The simulated model
// produces a deterministic pseudo-prediction whose entries depend on the
// input and the model name; it returns an error before the first model
// completes (the user has no model yet).
func (sc *Scheduler) Infer(jobID string, input []float64) ([]float64, string, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return nil, "", fmt.Errorf("server: no job %q", jobID)
	}
	if want := job.Program.Input.TotalElements(); len(input) != want {
		return nil, "", fmt.Errorf("server: input has %d elements, schema wants %d", len(input), want)
	}
	best, ok := job.store.Best()
	if !ok {
		return nil, "", fmt.Errorf("server: job %q has no trained model yet", jobID)
	}
	out := make([]float64, job.Program.Output.TotalElements())
	h := fnv.New64a()
	h.Write([]byte(best.Name))
	seed := float64(h.Sum64()%997) / 997
	var acc float64
	for _, v := range input {
		acc += v
	}
	for i := range out {
		out[i] = math.Abs(math.Sin(acc*seed + float64(i)))
	}
	return out, best.Name, nil
}

// Status summarizes a job for the status endpoint.
type Status struct {
	ID            string                `json:"id"`
	Name          string                `json:"name"`
	Template      string                `json:"template"`
	NumCandidates int                   `json:"num_candidates"`
	Trained       int                   `json:"trained"`
	Examples      int                   `json:"examples"`
	Enabled       int                   `json:"enabled"`
	Best          *storage.ModelRecord  `json:"best,omitempty"`
	Models        []storage.ModelRecord `json:"models"`
}

// Snapshot checkpoints the shared storage (fed examples, refine state and
// completed model records for every job) as JSON. Scheduler state (bandit
// posteriors) is reconstructable by replaying the recorded model results;
// job definitions are the users' programs and are resubmitted on restart.
func (sc *Scheduler) Snapshot(w io.Writer) error {
	return sc.store.Snapshot(w)
}

// Restore replays a storage snapshot into this scheduler: for every job id
// present in both the snapshot and the current job set (jobs are resubmitted
// from their programs on restart, which reproduces the same ids and
// candidate surfaces), the recorded examples and model results are loaded
// and each completed run is fed back into the job's bandit so the GP
// posterior resumes where the previous process stopped.
//
// It must be called before any scheduling round; it returns an error when a
// snapshot record does not match the job's candidate set.
func (sc *Scheduler) Restore(r io.Reader) error {
	snap, err := storage.LoadStore(r)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.rounds != 0 {
		return fmt.Errorf("server: Restore after %d rounds; restore into a fresh scheduler", sc.rounds)
	}
	for _, id := range snap.TaskIDs() {
		job, ok := sc.byID[id]
		if !ok {
			return fmt.Errorf("server: snapshot contains unknown job %q (resubmit jobs before restoring)", id)
		}
		candidateIdx := make(map[string]int, len(job.Candidates))
		for i, c := range job.Candidates {
			candidateIdx[c.Name()] = i
		}
		ts, _ := snap.Task(id)
		// Re-feed examples preserving ids and refine state.
		for _, ex := range ts.Examples() {
			newID := job.store.Feed(ex.Input, ex.Output)
			if err := job.store.Refine(newID, ex.Enabled); err != nil {
				return fmt.Errorf("server: restoring example %d of %q: %w", ex.ID, id, err)
			}
		}
		// Replay completed runs into the bandit and the model records.
		for _, m := range ts.Models() {
			arm, ok := candidateIdx[m.Name]
			if !ok {
				return fmt.Errorf("server: snapshot run %q does not match a candidate of %q", m.Name, id)
			}
			if job.tenant.Bandit.Tried(arm) {
				return fmt.Errorf("server: snapshot replays candidate %q of %q twice", m.Name, id)
			}
			ucb := job.tenant.Bandit.UCB(arm)
			job.tenant.Bandit.Observe(arm, m.Accuracy)
			job.tenant.RecordObservation(ucb, m.Accuracy)
			job.store.RecordModel(m)
			if m.Round > sc.rounds {
				sc.rounds = m.Round
			}
		}
	}
	return nil
}

// Status reports a job's current state.
func (sc *Scheduler) Status(jobID string) (Status, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return Status{}, fmt.Errorf("server: no job %q", jobID)
	}
	st := Status{
		ID:            job.ID,
		Name:          job.Name,
		Template:      job.Template,
		NumCandidates: len(job.Candidates),
		Models:        job.store.Models(),
		Examples:      len(job.store.Examples()),
		Enabled:       job.store.EnabledCount(),
	}
	st.Trained = len(st.Models)
	if best, ok := job.store.Best(); ok {
		st.Best = &best
	}
	return st, nil
}
