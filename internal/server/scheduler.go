// Package server implements the ease.ml service of §2 Figure 1: users submit
// declarative jobs over HTTP, feed supervision examples, refine them, and
// call infer against the best model found so far, while a multi-tenant
// scheduler (internal/core's HYBRID policy) decides which job's next
// candidate model to train on the shared (simulated) GPU pool.
//
// Scheduling is a two-phase API: PickWork leases (job, candidate) pairs —
// chosen by the user picker with in-flight arms hallucinated GP-BUCB style —
// and Complete feeds results back. RunRound drives it serialized (the
// deployed single-device strategy); internal/engine drives it with a
// concurrent worker pool. The HTTP surface (see API in http.go) adds
// /admin/metrics and /admin/start|stop for engine control.
//
// # Locking discipline
//
// State is guarded by three lock tiers instead of one global mutex, so
// user-facing operations on one job never wait behind scheduling decisions
// or bandit updates for another:
//
//   - jobsMu (RWMutex) guards the job set (jobs, byID, nextID). Write-held
//     only during Submit and recovery; every other path takes the read side
//     for a map lookup.
//   - coordMu is the cross-job coordinator: picker decisions, the lease
//     table and the round counter. It is never held across training, store
//     writes or WAL appends.
//   - each Job has its own mu guarding the tenant (bandit posterior, σ̃
//     recurrence), its failure flag and its abandoned list. Complete's
//     O(t²) posterior update runs under the job lock only, so completions
//     for different jobs proceed in parallel.
//
// Lock order: jobsMu before coordMu before job locks; job locks are always
// acquired in sc.jobs slice order (the cross-job picker holds all of them
// for the duration of one decision). Feed/Refine/Infer/Status take none of
// coordMu or the job locks — they touch only the per-task storage, which
// does its own locking.
//
// # Durability
//
// With a write-ahead log attached (SetLog / Recover), every state mutation
// appends a WAL event before the operation acknowledges: job submissions,
// fed and refined examples, recorded models and abandoned candidates all
// survive a crash. A failed append surfaces as an error from the mutating
// call; the in-memory state may then be ahead of the log (there is no
// transactional rollback) — treat the process as failing and restart it,
// at which point recovery reflects exactly the acknowledged operations.
// Leases are volatile — an in-flight lease of a crashed process leaves its
// arm untried in the recovered state and is re-queued by the next process's
// first scheduling pass. (Lease *expiries* are logged, though: when a fleet
// worker goes silent and its lease times out, the expiry event is appended
// so the operational history survives a coordinator crash.)
//
// # Lease TTL and expiry
//
// With SetLeaseTTL the scheduler supports remote workers that can die
// mid-training: every lease carries an expiry deadline refreshed by
// HeartbeatLease, and ExpireLeases (driven by the fleet coordinator's
// sweeper) removes leases whose holder went silent, making their arms
// selectable again — the candidate re-enters GP-BUCB selection exactly
// once, because a late Complete/Release for an expired lease fails with
// ErrLeaseConflict. A zero TTL (the default, and what the in-process
// engine uses) means leases never expire.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/gp"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/templates"
	"repro/internal/trainsim"
)

// Trainer runs one candidate model for a job and reports its measured
// accuracy plus the execution cost. EstimateCost must be stable and
// strictly positive; the scheduler uses it for cost-aware selection before
// the candidate ever runs. Implementations must be safe for concurrent use:
// the execution engine calls Train from many workers at once, and a failed
// run must surface as an error, never a panic (a panic inside an engine
// worker would take down the whole server).
type Trainer interface {
	Train(jobID string, c templates.Candidate) (accuracy, cost float64, err error)
	EstimateCost(jobID string, c templates.Candidate) (float64, error)
}

// SimTrainer trains candidates on the trainsim learning-curve substrate,
// accounted through a simulated GPU pool. By default every run takes the
// whole pool (the deployed single-device strategy of §4.5); with Devices > 0
// runs are packed one-GPU-each onto that many devices instead (the
// multi-device strategy of §5.3.2, used by the execution engine).
type SimTrainer struct {
	Pool *cluster.Pool
	Seed int64

	// Devices selects the pool-accounting mode: 0 serializes every run
	// across the whole pool; N > 0 packs runs one GPU each onto the first N
	// devices, overlapping in virtual time.
	Devices int

	// Delay, when positive, makes every Train call sleep that long. The
	// simulated substrate is otherwise instantaneous; benchmarks use Delay
	// to surface the engine's wall-clock concurrency.
	Delay time.Duration

	// mu is an RWMutex because the sims map is read-mostly: registration
	// writes once per job, while every Train/EstimateCost from every
	// concurrent engine worker only reads, so lookups proceed in parallel.
	mu   sync.RWMutex
	sims map[string]*simEntry
}

type simEntry struct {
	sim   *trainsim.Simulator
	index map[string]int // candidate name → model index
}

// NewSimTrainer creates a SimTrainer over the given pool.
func NewSimTrainer(pool *cluster.Pool, seed int64) *SimTrainer {
	return &SimTrainer{Pool: pool, Seed: seed, sims: make(map[string]*simEntry)}
}

// Register builds the per-job simulator for a candidate list. Candidate
// training behaviour is derived deterministically from the job id and the
// candidate name, so restarts reproduce the same quality surface.
func (st *SimTrainer) Register(jobID string, cands []templates.Candidate) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sims[jobID]; ok {
		return fmt.Errorf("server: job %q already registered with trainer", jobID)
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	jobHash := int64(h.Sum64() & 0x7fffffffffff)

	difficulty := 0.05 + 0.30*frac(jobHash, 11)
	entry := &simEntry{index: make(map[string]int, len(cands))}
	models := make([]trainsim.ModelSpec, len(cands))
	for i, c := range cands {
		ch := fnv.New64a()
		ch.Write([]byte(c.Model))
		candHash := int64(ch.Sum64() & 0x7fffffffffff)
		peak := 0.55 + 0.40*frac(candHash, 3)
		if c.Normalizer != nil {
			// Normalization variants perturb the base model's peak: helpful
			// for some (job, k) pairs, harmful for others.
			peak += 0.10 * (frac(jobHash^candHash, 5) - 0.5) * c.Normalizer.K
			peak = clamp(peak, 0.05, 0.99)
		}
		models[i] = trainsim.ModelSpec{
			Name:         c.Name(),
			Peak:         peak,
			Tau:          10 + 30*frac(candHash, 7),
			CostPerEpoch: 0.5 + 15*frac(candHash, 13)*frac(candHash, 17),
			BestLR:       trainsim.DefaultLearningRates[int(candHash)%len(trainsim.DefaultLearningRates)],
		}
		entry.index[c.Name()] = i
	}
	sim, err := trainsim.New(trainsim.Config{
		Models: models,
		Tasks:  []trainsim.TaskSpec{{Name: jobID, Difficulty: difficulty, SizeFactor: 0.5 + 2*frac(jobHash, 19)}},
		Seed:   st.Seed ^ jobHash,
	})
	if err != nil {
		return fmt.Errorf("server: building simulator for %q: %w", jobID, err)
	}
	entry.sim = sim
	st.sims[jobID] = entry
	return nil
}

// lookup resolves a (job, candidate) pair to its simulator and model index.
func (st *SimTrainer) lookup(jobID string, c templates.Candidate) (*simEntry, int, error) {
	st.mu.RLock()
	entry, ok := st.sims[jobID]
	st.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("server: job %q not registered", jobID)
	}
	idx, ok := entry.index[c.Name()]
	if !ok {
		return nil, 0, fmt.Errorf("server: job %q has no candidate %q", jobID, c.Name())
	}
	return entry, idx, nil
}

// Train implements Trainer. It is safe for concurrent use: simulator runs
// are deterministic pure functions of (job, candidate) and the pool does its
// own locking.
func (st *SimTrainer) Train(jobID string, c templates.Candidate) (float64, float64, error) {
	entry, idx, err := st.lookup(jobID, c)
	if err != nil {
		return 0, 0, err
	}
	res := entry.sim.Train(0, idx)
	if st.Delay > 0 {
		time.Sleep(st.Delay)
	}
	if st.Pool != nil {
		if st.Devices > 0 {
			st.Pool.RunOneGPUAmong(jobID+"/"+c.Name(), res.Cost, st.Devices)
		} else {
			st.Pool.RunSingleDevice(jobID+"/"+c.Name(), res.Cost)
		}
	}
	return res.Accuracy, res.Cost, nil
}

// EstimateCost implements Trainer.
func (st *SimTrainer) EstimateCost(jobID string, c templates.Candidate) (float64, error) {
	entry, idx, err := st.lookup(jobID, c)
	if err != nil {
		return 0, err
	}
	return entry.sim.Cost(0, idx), nil
}

func frac(h int64, salt int64) float64 {
	x := uint64(h) * uint64(salt*2654435761+1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1000003) / 1000003
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// Job is one submitted ease.ml task. The submitting user's name (Name) is
// the job's tenant identity for admission control: quotas, rate limits and
// budgets aggregate over all jobs sharing a name.
type Job struct {
	ID         string
	Name       string
	Program    dsl.Program
	Template   string
	Candidates []templates.Candidate
	Julia      string
	Python     string

	// Class is the tenant's admission service class, fixed at submission
	// (standard when no admission controller is configured). It drives
	// weighted fair sharing and the preemption rules.
	Class admission.Class

	// mu is the per-job lock: it guards the tenant (bandit posterior and
	// σ̃ recurrence), the failure flag, the abandoned list and the budget /
	// done markers. See the package comment for the lock order.
	mu        sync.Mutex
	tenant    *core.Tenant
	failed    string   // non-empty: the job is failed and excluded from scheduling
	abandoned []string // candidate names retired after repeated training failures
	// budgetExhausted marks a job drained because its tenant's GPU budget
	// ran out: every untried arm was retired and late lease settlements
	// bounce off ErrLeaseConflict.
	budgetExhausted bool
	// doneNotified dedupes the admission controller's JobDone callback: a
	// job frees its concurrent-job slot exactly once, whether it drained,
	// failed or was budget-exhausted.
	doneNotified bool

	store *storage.TaskStore
}

// Scheduler owns the job set and drives multi-tenant model selection over
// it. It is the in-process core of the HTTP server and is usable directly
// (examples drive it without HTTP). See the package comment for the locking
// discipline.
type Scheduler struct {
	store   *storage.Store
	trainer Trainer
	picker  core.UserPicker
	server  string // advertised server address for codegen

	// jobsMu guards the job set. jobs is append-only.
	jobsMu sync.RWMutex
	jobs   []*Job
	byID   map[string]*Job
	nextID int

	// coordMu is the cross-job coordinator lock.
	coordMu   sync.Mutex
	leases    map[int]*Lease
	nextLease int
	rounds    int

	// selIdx is the cross-job selection index (see selindex.go): per-job
	// dirty epochs, the lazily-repaired gap heap and the persistent
	// hallucination shadows. Guarded by coordMu. legacySelection switches
	// PickWork back to the deep-clone-per-batch baseline — kept for the
	// pick-path benchmarks and equivalence tests.
	selIdx          selectionIndex
	legacySelection bool

	// leaseTTL makes leases expire when their holder goes silent (0 = never,
	// the in-process engine's mode); now is the injectable clock expiry runs
	// on. Both are set before serving traffic and read under coordMu.
	leaseTTL time.Duration
	now      func() time.Time

	// failCounts tallies failed training runs per (job, arm). It lives here
	// — not in the engine or the fleet coordinator — because both execute
	// against the same scheduler: the abandon-after-MaxRetries livelock
	// guard must count a candidate's failures across every execution path,
	// or a candidate alternating between local and remote workers would get
	// double the retry budget. Guarded by coordMu.
	failCounts map[string]int

	// adm is the optional admission controller (SetAdmission): quota,
	// rate-limit and budget decisions for every tenant. Set before serving
	// traffic; nil means everything is admitted at standard priority.
	adm *admission.Controller

	log *storage.Log // nil: in-memory only

	// decisions is the decision-provenance ring (see provenance.go). The
	// zero value is ready; it does its own leaf locking.
	decisions decisionRing
}

// NewScheduler creates a scheduler with the given trainer and user picker
// (nil picker defaults to ease.ml's HYBRID policy).
func NewScheduler(trainer Trainer, picker core.UserPicker, serverAddr string) *Scheduler {
	if picker == nil {
		picker = core.NewHybridPicker()
	}
	if serverAddr == "" {
		serverAddr = "http://localhost:9000"
	}
	return &Scheduler{
		store:      storage.NewStore(),
		trainer:    trainer,
		picker:     picker,
		byID:       make(map[string]*Job),
		server:     serverAddr,
		leases:     make(map[int]*Lease),
		failCounts: make(map[string]int),
		now:        time.Now,
	}
}

// NoteTrainingFailure records one failed training run for a (job, arm)
// pair and returns the running count. The engine and the fleet coordinator
// both feed it, so the abandon-after-N-failures decision sees every
// execution path's failures.
func (sc *Scheduler) NoteTrainingFailure(jobID string, arm int) int {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	key := failKey(jobID, arm)
	sc.failCounts[key]++
	return sc.failCounts[key]
}

// TrainingFailures returns the recorded failed-run count for a (job, arm)
// pair — a peek for callers that must decide release-vs-abandon before
// settling (and only count the failure once the settle succeeds).
func (sc *Scheduler) TrainingFailures(jobID string, arm int) int {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	return sc.failCounts[failKey(jobID, arm)]
}

func failKey(jobID string, arm int) string { return fmt.Sprintf("%s#%d", jobID, arm) }

// SetLeaseTTL makes every subsequently picked lease expire unless its
// holder heartbeats within d (0 restores never-expiring leases). Set it
// before serving remote workers; the in-process engine settles its leases
// synchronously and runs without a TTL.
func (sc *Scheduler) SetLeaseTTL(d time.Duration) {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	sc.leaseTTL = d
}

// LeaseTTL returns the configured lease TTL (0 = leases never expire).
func (sc *Scheduler) LeaseTTL() time.Duration {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	return sc.leaseTTL
}

// SetClock replaces the clock lease expiry runs on — tests drive expiry
// deterministically instead of sleeping. Set before serving traffic.
func (sc *Scheduler) SetClock(now func() time.Time) {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	sc.now = now
}

// AssignLease records which worker holds an outstanding lease, so expiry
// can attribute the reclaimed work. It errors (ErrLeaseConflict) on a lease
// that is not outstanding or already settling.
func (sc *Scheduler) AssignLease(l *Lease, worker string) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	stored, ok := sc.leases[l.ID]
	if !ok || stored != l || stored.settling {
		return fmt.Errorf("server: assigning lease %d (%s/%s): %w", l.ID, l.JobID, l.Candidate.Name(), ErrLeaseConflict)
	}
	stored.Worker = worker
	return nil
}

// HeartbeatLease refreshes an outstanding lease's expiry deadline. It
// errors (ErrLeaseConflict) on an unknown lease id — the holder learns its
// lease was reclaimed and should abort the run.
func (sc *Scheduler) HeartbeatLease(id int) error {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	stored, ok := sc.leases[id]
	if !ok {
		return fmt.Errorf("server: heartbeat for lease %d: %w", id, ErrLeaseConflict)
	}
	now := sc.now()
	stored.LastHeartbeat = now
	if sc.leaseTTL > 0 {
		stored.Expires = now.Add(sc.leaseTTL)
	}
	return nil
}

// ExpireLeases reclaims every worker-assigned lease whose deadline has
// passed: the lease leaves the table, so its arm re-enters GP-BUCB
// selection — exactly once, because any late Complete/Release for it now
// fails with ErrLeaseConflict. Leases mid-settlement are left alone (their
// result is landing), as are unassigned leases — the in-process engine
// settles its leases synchronously and has no heartbeat to keep them
// alive, so expiry must never reclaim under a local worker mid-training.
// With a WAL attached each expiry is logged, so the operational history
// survives a crash. It returns the expired leases for registry
// bookkeeping.
func (sc *Scheduler) ExpireLeases() ([]*Lease, error) {
	sc.coordMu.Lock()
	var expired []*Lease
	if sc.leaseTTL > 0 {
		now := sc.now()
		for id, l := range sc.leases {
			if !l.settling && l.Worker != "" && !l.Expires.IsZero() && l.Expires.Before(now) {
				delete(sc.leases, id)
				expired = append(expired, l)
			}
		}
	}
	sc.coordMu.Unlock()
	for _, l := range expired {
		finishLeaseSpan(l, "expired", nil)
	}
	if sc.log != nil {
		for _, l := range expired {
			if err := sc.log.AppendLeaseExpired(l.JobID, l.Candidate.Name(), l.Worker); err != nil {
				return expired, fmt.Errorf("server: logging expiry of %s/%s: %w", l.JobID, l.Candidate.Name(), err)
			}
		}
	}
	return expired, nil
}

// Trainer returns the trainer the scheduler was built with, so an execution
// engine can run the work it leases.
func (sc *Scheduler) Trainer() Trainer { return sc.trainer }

// SetLog attaches a write-ahead log: every subsequent state mutation
// appends an event before acknowledging. Attach before serving traffic
// (there is no synchronization with in-flight operations).
func (sc *Scheduler) SetLog(l *storage.Log) { sc.log = l }

// Persistent reports whether a write-ahead log is attached.
func (sc *Scheduler) Persistent() bool { return sc.log != nil }

// Submit parses and registers a new job: the submission passes tenant
// admission (rate limit and concurrent-job cap, when a controller is
// configured), the program is validated, matched against the Figure 4
// templates, candidates are generated (including normalization variants
// for image-shaped inputs), code is generated, and a GP-UCB tenant is
// created for the scheduler. With a WAL attached the submission is logged
// before it becomes visible. Over-quota submissions fail with an error
// wrapping admission.ErrQuotaExceeded (HTTP 429).
func (sc *Scheduler) Submit(name, programSrc string) (*Job, error) {
	// Admission before the expensive build: a tenant over its rate limit
	// must not be able to burn candidate generation and cost estimation.
	// The job slot is refunded on any later failure.
	if sc.adm != nil {
		// A budget-exhausted tenant cannot buy more training by submitting
		// fresh jobs: Budget bounds the tenant's *total* cost, and
		// enforceBudget only drains at completion time — without this gate
		// each new job would train up to the in-flight concurrency worth of
		// candidates before the drain caught up.
		if budget := sc.adm.Budget(name); budget > 0 && sc.TenantCost(name) >= budget {
			err := fmt.Errorf("server: submitting for tenant %q: GPU budget %g exhausted: %w",
				name, budget, admission.ErrQuotaExceeded)
			sc.emitAdmissionDecision(name, "rejected", err)
			return nil, err
		}
		if err := sc.adm.AdmitJob(name); err != nil {
			err = fmt.Errorf("server: submitting for tenant %q: %w", name, err)
			sc.emitAdmissionDecision(name, "rejected", err)
			return nil, err
		}
	}
	job, err := sc.submitAdmitted(name, programSrc)
	if err != nil && sc.adm != nil {
		sc.adm.JobDone(name) // refund the slot of a submission that never published
	}
	if err == nil && sc.adm != nil {
		sc.emitAdmissionDecision(name, "granted", nil)
	}
	return job, err
}

// submitAdmitted is Submit past the admission gate.
func (sc *Scheduler) submitAdmitted(name, programSrc string) (*Job, error) {
	prog, err := dsl.ParseCached(programSrc)
	if err != nil {
		return nil, err
	}

	// Reserve the id briefly, then build outside the lock: candidate
	// generation, codegen and per-candidate cost estimation are the
	// expensive part of a submission, and holding jobsMu through them
	// would stall every concurrent job lookup. Ids are never reused, so a
	// failed build just skips one.
	sc.jobsMu.Lock()
	sc.nextID++
	id := fmt.Sprintf("job-%04d", sc.nextID)
	sc.jobsMu.Unlock()

	job, err := sc.buildJob(id, name, prog)
	if err != nil {
		return nil, err
	}

	sc.jobsMu.Lock()
	defer sc.jobsMu.Unlock()
	job.tenant.ID = len(sc.jobs)
	if sc.log != nil {
		// Log before publishing, inside jobsMu: a submission that cannot
		// be made durable is not acknowledged, and compaction's capture
		// (which reads the job set) can never observe a published job
		// whose event it is about to truncate. The leaked trainer entry
		// of a failed append is harmless.
		if err := sc.log.AppendJobSubmitted(id, name, prog.String()); err != nil {
			return nil, fmt.Errorf("server: logging submission of %q: %w", id, err)
		}
	}
	sc.jobs = append(sc.jobs, job)
	sc.byID[id] = job
	return job, nil
}

// buildJob constructs a Job for an already-parsed program under a fixed id:
// trainer registration, task storage, cost estimation and the GP-UCB
// tenant (its index is fixed at publish time). It takes no scheduler
// locks; the trainer and store do their own locking.
func (sc *Scheduler) buildJob(id, name string, prog dsl.Program) (*Job, error) {
	cands, tpl, err := templates.GenerateCached(prog)
	if err != nil {
		return nil, err
	}
	if reg, ok := sc.trainer.(*SimTrainer); ok {
		if err := reg.Register(id, cands); err != nil {
			return nil, err
		}
	}
	ts, ok := sc.store.Task(id)
	if !ok {
		if ts, err = sc.store.CreateTask(id); err != nil {
			return nil, err
		}
	}

	costs := make([]float64, len(cands))
	features := make([][]float64, len(cands))
	for i, c := range cands {
		cost, err := sc.trainer.EstimateCost(id, c)
		if err != nil {
			return nil, fmt.Errorf("server: estimating cost of %q: %w", c.Name(), err)
		}
		costs[i] = cost
		features[i] = candidateFeature(c)
	}
	process := gp.NewFromFeatures(gp.RBF{Variance: 0.05, LengthScale: 0.5}, features, 1e-4)
	b := bandit.New(process, bandit.Config{
		Costs:     costs,
		CostAware: true,
		BetaArms:  32 * len(cands), // headroom for jobs arriving later
		Mean0:     0.6,
	})
	class := admission.ClassStandard
	if sc.adm != nil {
		class = sc.adm.ClassOf(name)
	}
	tenant := core.NewTenant(0, id, b) // index assigned at publish
	tenant.Class = string(class)
	tenant.Weight = class.Weight()
	return &Job{
		ID:         id,
		Name:       name,
		Program:    prog,
		Template:   tpl.Name,
		Candidates: cands,
		Julia:      codegen.JuliaTypes(prog),
		Python:     codegen.PythonLibrary(id, sc.server, prog),
		Class:      class,
		tenant:     tenant,
		store:      ts,
	}, nil
}

// candidateFeature embeds a candidate for the GP kernel: a hash-derived
// model-family coordinate plus the normalization parameter. Candidates of
// the same base model cluster together, which is what lets one observation
// inform its normalization variants.
func candidateFeature(c templates.Candidate) []float64 {
	h := fnv.New64a()
	h.Write([]byte(c.Model))
	base := float64(h.Sum64()%1000) / 1000
	k := 0.0
	if c.Normalizer != nil {
		k = c.Normalizer.K
	}
	return []float64{base, k * 0.3}
}

// Job returns a job by id.
func (sc *Scheduler) Job(id string) (*Job, bool) {
	sc.jobsMu.RLock()
	defer sc.jobsMu.RUnlock()
	j, ok := sc.byID[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (sc *Scheduler) Jobs() []*Job {
	sc.jobsMu.RLock()
	defer sc.jobsMu.RUnlock()
	return append([]*Job(nil), sc.jobs...)
}

// jobsSnapshot returns the current job slice (append-only, so the returned
// slice is immutable) for a scheduling pass.
func (sc *Scheduler) jobsSnapshot() []*Job {
	sc.jobsMu.RLock()
	defer sc.jobsMu.RUnlock()
	return sc.jobs
}

// Rounds returns the number of completed scheduling rounds.
func (sc *Scheduler) Rounds() int {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	return sc.rounds
}

// ErrLeaseConflict marks lease-lifecycle conflicts: settling or releasing a
// lease that is no longer outstanding (double Complete, Complete after
// Release or after expiry) or one whose settlement is already in progress
// (workers racing on retries). HTTP surfaces map it to 409 Conflict so a
// retrying worker can tell "my result lost a race" from a server fault.
var ErrLeaseConflict = errors.New("lease conflict")

// ErrNoJob marks lookups of a job ID the scheduler does not know. HTTP
// surfaces map it to 404 Not Found so clients can tell a missing job from
// a malformed request.
var ErrNoJob = errors.New("no such job")

// errNoJob builds the canonical missing-job error for one ID.
func errNoJob(jobID string) error {
	return fmt.Errorf("server: no job %q: %w", jobID, ErrNoJob)
}

// Lease is one unit of leased work: a (job, candidate) pair the scheduler
// has picked but whose result has not been reported yet. A lease's arm is
// excluded from further selection until Complete or Release is called with
// it, so concurrent workers never train the same candidate twice.
type Lease struct {
	ID        int
	JobID     string
	Arm       int
	Candidate templates.Candidate
	// UCB is the (hallucinated-posterior) upper confidence bound the arm was
	// selected at; Complete feeds it into the σ̃ recurrence.
	UCB float64

	// Worker is the fleet worker the lease is assigned to (empty for the
	// in-process engine); AssignLease sets it. Guarded by coordMu while the
	// lease is outstanding.
	Worker string
	// Expires is the deadline after which ExpireLeases reclaims the lease;
	// zero means the lease never expires. Stamped at pick time when a TTL
	// is configured and refreshed by HeartbeatLease. Guarded by coordMu.
	Expires time.Time
	// LastHeartbeat is the last time the lease holder was heard from (pick
	// time, then every HeartbeatLease). Guarded by coordMu.
	LastHeartbeat time.Time

	// Trace is the lease's lifecycle trace ID, minted at pick time. It
	// travels with the lease through the fleet protocol (the wire lease
	// and the X-Easeml-Trace header) so coordinator and worker logs for
	// one lease correlate. Immutable after pick.
	Trace string

	// span is the lease's root lifecycle span, opened at selection and
	// closed with the terminal outcome (completed / released / abandoned /
	// expired / preempted / conflict). The pointer is set once before the
	// lease is published and never reassigned; Span itself is
	// concurrency-safe.
	span *telemetry.Span

	// settling marks a lease whose Complete/Abandon is in progress: the
	// lease stays in the table — keeping its arm excluded from selection —
	// until the bandit update lands, closing the window in which the arm
	// would be neither leased nor tried and could be leased twice. Guarded
	// by coordMu.
	settling bool
}

// RootSpanID returns the ID of the lease's root lifecycle span ("" for
// leases that predate span instrumentation). It ships over the fleet wire
// so a worker's run span parents into the coordinator's tree.
func (l *Lease) RootSpanID() string {
	if l.span == nil {
		return ""
	}
	return l.span.ID()
}

// InFlight returns the number of outstanding leases.
func (sc *Scheduler) InFlight() int {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	return len(sc.leases)
}

// PickWork is the first phase of the scheduler's two-phase API: it leases
// new (job, candidate) work items until maxInFlight leases are outstanding
// or no more work is available, and returns the newly created leases. Jobs
// are chosen by the configured core.UserPicker over the tenants that still
// have unleased untried candidates; within a job the candidate is chosen by
// GP-BUCB with the job's in-flight arms hallucinated (bandit.SelectBatch's
// scheme, applied incrementally), so parallel picks diversify.
//
// Every returned lease must eventually be handed back via Complete (with
// the training result) or Release (on failure or drain).
func (sc *Scheduler) PickWork(maxInFlight int) ([]*Lease, error) {
	if maxInFlight <= 0 {
		return nil, fmt.Errorf("server: maxInFlight %d must be positive", maxInFlight)
	}
	jobs := sc.jobsSnapshot()
	t0 := time.Now()
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	coordAcquired := time.Now()

	inFlight := sc.inFlightArmsLocked()
	var shadows map[string]*bandit.GPUCB
	if sc.legacySelection {
		shadows = make(map[string]*bandit.GPUCB)
	}
	sweepT0 := time.Now()
	tenants, unlock := sc.lockForPicking(jobs, inFlight)
	defer unlock()
	// Lock wait is coordMu acquisition plus the per-job lock sweep —
	// the two places a pick batch can stall behind other work.
	lockWait := coordAcquired.Sub(t0) + time.Since(sweepT0)
	pickStageLockWait.Observe(lockWait)
	var picked []*Lease
	for len(sc.leases) < maxInFlight {
		l, err := sc.pickNextLocked(jobs, tenants, inFlight, shadows)
		if err != nil {
			return picked, err
		}
		if l == nil {
			break
		}
		picked = append(picked, l)
	}
	if len(picked) > 0 {
		// The batch's lock wait precedes every pick; attribute it to the
		// first lease's tree (once per batch, like the histogram).
		lw := telemetry.NewSpanAt(picked[0].Trace, picked[0].RootSpanID(), opPickLockWait, t0)
		lw.EndAt(t0.Add(lockWait))
	}
	telemetry.SlowOp("pick_work", time.Since(t0), "leases", len(picked), "jobs", len(jobs))
	return picked, nil
}

// lockForPicking acquires every job lock (in slice order, per the lock
// discipline) and builds the tenant slice with current leased counts —
// once per PickWork batch, not once per pick, so the O(J) lock sweep
// amortizes over the whole batch. Callers hold coordMu and must call
// unlock when the batch is done.
func (sc *Scheduler) lockForPicking(jobs []*Job, inFlight map[string][]int) ([]*core.Tenant, func()) {
	for _, j := range jobs {
		j.mu.Lock()
	}
	tenants := make([]*core.Tenant, len(jobs))
	for i, j := range jobs {
		j.tenant.SetLeased(len(inFlight[j.ID]))
		tenants[i] = j.tenant
	}
	return tenants, func() {
		for _, j := range jobs {
			j.mu.Unlock()
		}
	}
}

// SetLegacySelection toggles the deep-clone selection baseline: every
// PickWork batch rebuilds its hallucination shadows with full posterior
// clones (bandit.CloneShadow) and every pick runs the linear picker scan,
// exactly like the pre-index implementation. The selection index is
// dropped on every call, so the two modes can be compared on one scheduler
// (the benchmarks and equivalence tests do). Selection is bit-identical
// between the modes; only the cost differs.
func (sc *Scheduler) SetLegacySelection(legacy bool) {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	sc.legacySelection = legacy
	sc.selIdx.reset()
}

// SelectionStats snapshots the pick-path counters: the selection index's
// epoch/heap/shadow traffic plus the per-job bandit cache counters
// aggregated across the job set.
func (sc *Scheduler) SelectionStats() SelectionStats {
	sc.coordMu.Lock()
	stats := sc.selIdx.stats
	sc.coordMu.Unlock()
	for _, job := range sc.jobsSnapshot() {
		job.mu.Lock()
		bs := job.tenant.Bandit.CacheStats()
		job.mu.Unlock()
		stats.BanditCache.Select.Hits += bs.Select.Hits
		stats.BanditCache.Select.Misses += bs.Select.Misses
		stats.BanditCache.Select.Invalidations += bs.Select.Invalidations
		stats.BanditCache.Posterior.Hits += bs.Posterior.Hits
		stats.BanditCache.Posterior.Misses += bs.Posterior.Misses
		stats.BanditCache.Posterior.Invalidations += bs.Posterior.Invalidations
	}
	return stats
}

// inFlightArmsLocked collects the in-flight arms per job from the
// outstanding leases, each job's list ordered by lease grant time (lease
// ids are monotone). Grant order — not map iteration order — makes the
// hallucination sequence deterministic, and it is exactly the order in
// which a persistent index shadow applied its hallucinations, so a shadow
// rebuilt from this list reproduces a revived shadow bit for bit (the two
// selection modes, and reruns of the same seed, stay bit-identical).
// Callers must hold coordMu.
func (sc *Scheduler) inFlightArmsLocked() map[string][]int {
	byJob := make(map[string][]*Lease)
	for _, l := range sc.leases {
		byJob[l.JobID] = append(byJob[l.JobID], l)
	}
	inFlight := make(map[string][]int, len(byJob))
	for id, leases := range byJob {
		sort.Slice(leases, func(i, j int) bool { return leases[i].ID < leases[j].ID })
		arms := make([]int, len(leases))
		for i, l := range leases {
			arms[i] = l.Arm
		}
		inFlight[id] = arms
	}
	return inFlight
}

// pickNextLocked leases the next single work item, updating inFlight (and
// the picked tenant's leased count) in place. It returns (nil, nil) when
// no job has an untried, unleased arm, and an error when the picker
// violates its contract by choosing a blocked tenant. Callers hold coordMu
// and every job lock, with tenants built by lockForPicking — the picker
// reads scheduling state (σ̃, UCB gaps) across all tenants, while
// user-facing operations take none of these locks and stay responsive.
//
// With shadows == nil (the default, index mode) the pick runs through the
// cross-job selection index: oracle-capable pickers answer the greedy
// argmax from the lazily-repaired gap heap, re-scoring only jobs whose
// dirty epoch moved, and hallucination shadows persist on the index across
// calls — revived, checkpoint-rolled-back or extended to match the lease
// set, rebuilt only after an observation (an O(1) prefix-sharing snapshot,
// never a deep clone). A non-nil shadows map selects the legacy baseline:
// a per-batch map of deep posterior clones (bandit.CloneShadow) and the
// linear picker scan, exactly the pre-index behaviour. Both modes pick
// bit-identical arms.
func (sc *Scheduler) pickNextLocked(jobs []*Job, tenants []*core.Tenant, inFlight map[string][]int, shadows map[string]*bandit.GPUCB) (*Lease, error) {
	// The picker always sees the full tenant slice — stateful pickers
	// (HYBRID's freeze signature, round-robin's rotation) depend on stable
	// indices. Jobs whose untried arms are all leased out are excluded via
	// the tenants' leased counts, which Tenant.Active folds in. Failed
	// jobs had all their arms retired, so they read as exhausted.
	anyActive := false
	for _, t := range tenants {
		if t.Active() {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return nil, nil
	}
	selectT0 := time.Now()
	defer pickStageSelect.ObserveSince(selectT0)
	indexed := shadows == nil
	var idx int
	if op, ok := sc.picker.(core.OraclePicker); indexed && ok {
		sc.selIdx.ensure(jobs)
		sc.selIdx.stats.OraclePicks++
		idx = op.PickWithOracle(tenants, sc.selIdx.oracle())
	} else {
		sc.selIdx.stats.LegacyPicks++
		idx = sc.picker.Pick(tenants)
	}
	repairDur := sc.selIdx.takeLastRepair()
	if idx < 0 || idx >= len(jobs) {
		return nil, fmt.Errorf("server: picker %s returned index %d with active tenants remaining", sc.picker.Name(), idx)
	}
	job := jobs[idx]
	if !job.tenant.Active() {
		// A silent nil here would let a faulty picker end scheduling with
		// untried candidates looking like a clean drain.
		return nil, fmt.Errorf("server: picker %s chose job %s, which has no selectable candidate", sc.picker.Name(), job.ID)
	}
	// With nothing in flight for the job, the hallucinated pick equals the
	// real bandit's (cached) SelectArm — the serialized hot path builds no
	// shadow at all. Otherwise the pick goes through a GP-BUCB shadow with
	// the in-flight arms hallucinated.
	var arm int
	var ucb float64
	var hallStart time.Time
	var hallDur time.Duration
	switch {
	case !indexed:
		if shadow, ok := shadows[job.ID]; ok {
			hallStart = time.Now()
			arm, ucb = shadow.SelectArm()
			shadow.Hallucinate(arm)
			hallDur = time.Since(hallStart)
			pickStageHallucinate.Observe(hallDur)
		} else if len(inFlight[job.ID]) == 0 {
			arm, ucb = job.tenant.Bandit.SelectArm()
		} else {
			hallStart = time.Now()
			shadow = job.tenant.Bandit.CloneShadow(inFlight[job.ID])
			shadows[job.ID] = shadow
			arm, ucb = shadow.SelectArm()
			shadow.Hallucinate(arm)
			hallDur = time.Since(hallStart)
			pickStageHallucinate.Observe(hallDur)
		}
	case len(inFlight[job.ID]) == 0:
		arm, ucb = job.tenant.Bandit.SelectArm()
	default:
		sc.selIdx.ensure(jobs)
		entry := &sc.selIdx.entries[idx]
		hallStart = time.Now()
		shadow := sc.selIdx.shadowFor(entry, job.tenant.Bandit, inFlight[job.ID])
		arm, ucb = shadow.SelectArm()
		sc.selIdx.hallucinate(entry, []int{arm})
		hallDur = time.Since(hallStart)
		pickStageHallucinate.Observe(hallDur)
	}
	if arm < 0 {
		// Cannot happen for an Active tenant; surface it rather than loop.
		return nil, fmt.Errorf("server: job %s reported active but selected no arm", job.ID)
	}
	leasedBefore := len(inFlight[job.ID])
	inFlight[job.ID] = append(inFlight[job.ID], arm)
	job.tenant.SetLeased(len(inFlight[job.ID]))
	sc.nextLease++
	l := &Lease{ID: sc.nextLease, JobID: job.ID, Arm: arm, Candidate: job.Candidates[arm], UCB: ucb,
		Trace: telemetry.NewTraceID()}
	leaseTraces.Inc()
	if sc.leaseTTL > 0 {
		now := sc.now()
		l.LastHeartbeat = now
		l.Expires = now.Add(sc.leaseTTL)
	}
	sc.emitPickProvenance(l, job, job.tenant.Bandit.UCBSurface(), leasedBefore, len(jobs), selectT0, hallStart, hallDur, repairDur)
	sc.leases[l.ID] = l
	sc.selIdx.stats.Picks++
	return l, nil
}

// beginSettle marks an outstanding lease as settling, erroring on a lease
// that is not outstanding (double completion, or completion after Release)
// or already settling. The lease stays in the table so its arm remains
// excluded from PickWork until endSettle.
func (sc *Scheduler) beginSettle(l *Lease) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	stored, ok := sc.leases[l.ID]
	if !ok || stored != l {
		return fmt.Errorf("server: lease %d (%s/%s) is not outstanding: %w", l.ID, l.JobID, l.Candidate.Name(), ErrLeaseConflict)
	}
	if stored.settling {
		return fmt.Errorf("server: lease %d (%s/%s) is already being settled: %w", l.ID, l.JobID, l.Candidate.Name(), ErrLeaseConflict)
	}
	stored.settling = true
	return nil
}

// endSettle drops a settling lease from the table and dirties the job's
// selection-index entry (the lease set — and possibly the bandit, on the
// abandon/failure paths that call this — changed).
func (sc *Scheduler) endSettle(l *Lease) {
	sc.coordMu.Lock()
	delete(sc.leases, l.ID)
	sc.selIdx.markDirty(l.JobID)
	sc.coordMu.Unlock()
}

// Complete is the second phase of the two-phase API: it reports the training
// result for a leased work item, feeding the observation into the job's
// bandit and σ̃ recurrence and recording the model (durably, when a WAL is
// attached). The global round counter advances in completion order. It
// errors on a lease that is not outstanding, and a posterior update that
// fails on an ill-conditioned covariance fails the job — retiring it from
// scheduling — instead of killing the server.
func (sc *Scheduler) Complete(l *Lease, accuracy, cost float64) error {
	settleT0 := time.Now()
	if err := sc.beginSettle(l); err != nil {
		// A conflicting settle still leaves evidence: a zero-length settle
		// span (the root span, if any, was closed by the terminal path that
		// won the race).
		if l != nil && l.Trace != "" {
			s := telemetry.NewSpanAt(l.Trace, l.RootSpanID(), opSettle, settleT0)
			s.SetAttr("outcome", "conflict")
			s.Fail(err)
			s.End()
		}
		return err
	}
	settle := telemetry.NewSpanAt(l.Trace, l.RootSpanID(), opSettle, settleT0)
	fail := func(outcome string, err error) error {
		settle.SetAttr("outcome", outcome)
		settle.Fail(err)
		settle.End()
		finishLeaseSpan(l, outcome, err)
		return err
	}
	job, ok := sc.Job(l.JobID)
	if !ok {
		sc.endSettle(l)
		return fail("error", fmt.Errorf("server: lease %d refers to unknown job %s", l.ID, l.JobID))
	}

	job.mu.Lock()
	if job.failed != "" {
		job.mu.Unlock()
		sc.endSettle(l)
		return fail("failed", fmt.Errorf("server: job %s is failed (%s); dropping result for %s", l.JobID, job.failed, l.Candidate.Name()))
	}
	if job.budgetExhausted {
		// Graceful drain: the tenant's budget ran out while this run was in
		// flight. The arm is already retired; the late result bounces off
		// the same conflict surface as an expired lease, so workers drop it.
		job.mu.Unlock()
		sc.endSettle(l)
		return fail("conflict", fmt.Errorf("server: job %s drained on budget exhaustion; dropping result for %s: %w",
			l.JobID, l.Candidate.Name(), ErrLeaseConflict))
	}
	if job.tenant.Bandit.Tried(l.Arm) {
		job.mu.Unlock()
		sc.endSettle(l)
		return fail("conflict", fmt.Errorf("server: lease %d arm %d of %s already observed: %w", l.ID, l.Arm, l.JobID, ErrLeaseConflict))
	}
	if err := job.tenant.Bandit.Observe(l.Arm, accuracy); err != nil {
		sc.failJobLocked(job, err)
		job.mu.Unlock()
		sc.endSettle(l)
		return fail("failed", fmt.Errorf("server: job %s failed: %w", l.JobID, err))
	}
	job.tenant.RecordObservation(l.UCB, accuracy)
	if job.tenant.Bandit.Exhausted() {
		sc.markJobDoneLocked(job) // every candidate tried: the job drained
	}
	job.mu.Unlock()

	// The arm is Tried now, so the lease can be dropped without the arm
	// ever being selectable in between; claim the round in the same
	// critical section. The observation moved the job's posterior and σ̃,
	// so its selection-index entry is dirtied here too.
	sc.coordMu.Lock()
	delete(sc.leases, l.ID)
	sc.rounds++
	round := sc.rounds
	sc.selIdx.markDirty(l.JobID)
	sc.coordMu.Unlock()

	rec := storage.ModelRecord{
		Name:     l.Candidate.Name(),
		Accuracy: accuracy,
		Cost:     cost,
		Round:    round,
	}
	job.store.RecordModel(rec)
	if sc.log != nil {
		walT0 := time.Now()
		wspan := telemetry.NewSpanAt(l.Trace, settle.ID(), opWALAppend, walT0)
		if err := sc.log.AppendModelRecorded(l.JobID, rec); err != nil {
			wspan.Fail(err)
			wspan.End()
			return fail("error", fmt.Errorf("server: logging result for %s/%s: %w", l.JobID, rec.Name, err))
		}
		if st := sc.log.Stats(); st.Seq > 0 {
			wspan.SetAttr("wal_seq", strconv.FormatUint(st.Seq, 10))
		}
		wspan.End()
		pickStageWALAppend.ObserveSince(walT0)
	}
	settle.SetAttr("outcome", "completed")
	settle.End()
	finishLeaseSpan(l, "completed", nil)
	// The observation paid its arm's cost into the bandit; check the
	// tenant's budget after the result is durable, so a budget-drained job
	// never loses an acknowledged model record.
	if err := sc.enforceBudget(job.Name); err != nil {
		return fmt.Errorf("server: completing %s/%s: %w", l.JobID, rec.Name, err)
	}
	return nil
}

// failJobLocked marks a job as failed and retires all its untried arms, so
// pickers see it as exhausted and it drops out of scheduling. One
// ill-conditioned job must never take the whole service down. Callers hold
// job.mu.
func (sc *Scheduler) failJobLocked(job *Job, cause error) {
	job.failed = cause.Error()
	for arm := 0; arm < job.tenant.Bandit.NumArms(); arm++ {
		job.tenant.Bandit.Retire(arm) // no-op for tried arms
	}
	sc.markJobDoneLocked(job)
}

// markJobDoneLocked releases the job's admission slot exactly once — the
// job will never train another candidate (drained, failed, or
// budget-exhausted). Callers hold job.mu; the admission controller's
// mutex is a leaf, so calling into it under the job lock is safe.
func (sc *Scheduler) markJobDoneLocked(job *Job) {
	if job.doneNotified {
		return
	}
	job.doneNotified = true
	if sc.adm != nil {
		sc.adm.JobDone(job.Name)
	}
}

// Abandon settles a lease for a candidate that cannot be trained (e.g. it
// failed repeatedly): the arm is retired from selection without recording
// an observation, so neither the GP posterior nor the job's model history
// is polluted with a fabricated result. The round counter does not
// advance. It errors on a lease that is not outstanding.
func (sc *Scheduler) Abandon(l *Lease) error {
	if err := sc.beginSettle(l); err != nil {
		return err
	}
	job, ok := sc.Job(l.JobID)
	if !ok {
		sc.endSettle(l)
		return fmt.Errorf("server: lease %d refers to unknown job %s", l.ID, l.JobID)
	}
	job.mu.Lock()
	fresh := !job.tenant.Bandit.Tried(l.Arm)
	if fresh {
		job.tenant.Bandit.Retire(l.Arm)
		job.abandoned = append(job.abandoned, l.Candidate.Name())
		if job.tenant.Bandit.Exhausted() {
			sc.markJobDoneLocked(job)
		}
	}
	job.mu.Unlock()
	sc.endSettle(l) // the arm is retired (Tried) now, never re-selectable
	finishLeaseSpan(l, "abandoned", nil)
	if fresh && sc.log != nil {
		if err := sc.log.AppendCandidateAbandoned(l.JobID, l.Candidate.Name()); err != nil {
			return fmt.Errorf("server: logging abandonment of %s/%s: %w", l.JobID, l.Candidate.Name(), err)
		}
	}
	return nil
}

// Release hands a lease back untrained (worker failure or engine drain);
// the arm becomes selectable again. It errors on a lease that is not
// outstanding or mid-settlement.
func (sc *Scheduler) Release(l *Lease) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	stored, ok := sc.leases[l.ID]
	if !ok || stored != l {
		return fmt.Errorf("server: lease %d (%s/%s) is not outstanding: %w", l.ID, l.JobID, l.Candidate.Name(), ErrLeaseConflict)
	}
	if stored.settling {
		return fmt.Errorf("server: lease %d (%s/%s) is being settled: %w", l.ID, l.JobID, l.Candidate.Name(), ErrLeaseConflict)
	}
	// No selection-index invalidation: a release changes only the lease
	// set, which the next pick absorbs by rolling the job's shadow back to
	// the matching checkpoint — the bandit (and so the cached gap score)
	// is untouched.
	delete(sc.leases, l.ID)
	finishLeaseSpan(l, "released", nil)
	return nil
}

// RunRound executes one multi-tenant scheduling round: pick a job, pick its
// next candidate, train it, and record the result — the serialized
// single-device path, built on the same two-phase API the engine drives
// concurrently. It returns false when no job has untried candidates.
func (sc *Scheduler) RunRound() (bool, error) {
	jobs := sc.jobsSnapshot()
	sc.coordMu.Lock()
	var shadows map[string]*bandit.GPUCB
	if sc.legacySelection {
		shadows = make(map[string]*bandit.GPUCB)
	}
	inFlight := sc.inFlightArmsLocked()
	tenants, unlock := sc.lockForPicking(jobs, inFlight)
	l, err := sc.pickNextLocked(jobs, tenants, inFlight, shadows)
	unlock()
	sc.coordMu.Unlock()
	if err != nil {
		return false, err
	}
	if l == nil {
		return false, nil
	}

	// Train outside all locks: this is the long-running part.
	acc, cost, err := sc.trainer.Train(l.JobID, l.Candidate)
	if err != nil {
		_ = sc.Release(l)
		return false, fmt.Errorf("server: training %s/%s: %w", l.JobID, l.Candidate.Name(), err)
	}
	return true, sc.Complete(l, acc, cost)
}

// RunRounds executes up to n rounds, stopping early when all jobs are
// exhausted. It returns the number of rounds that ran.
func (sc *Scheduler) RunRounds(n int) (int, error) {
	ran := 0
	for ran < n {
		ok, err := sc.RunRound()
		if err != nil {
			return ran, err
		}
		if !ok {
			break
		}
		ran++
	}
	return ran, nil
}

// Feed stores a supervision example for a job (durably, when a WAL is
// attached). It takes no scheduler-wide lock: schema validation reads
// immutable job fields and the example lands in the per-task store. With
// an admission controller configured, the tenant's rate limit applies;
// over-quota feeds fail with an error wrapping admission.ErrQuotaExceeded
// (HTTP 429).
func (sc *Scheduler) Feed(jobID string, input, output []float64) (int, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return 0, errNoJob(jobID)
	}
	if sc.adm != nil {
		if err := sc.adm.AdmitOp(job.Name); err != nil {
			return 0, fmt.Errorf("server: feeding %q: %w", jobID, err)
		}
	}
	if want := job.Program.Input.TotalElements(); len(input) != want {
		return 0, fmt.Errorf("server: input has %d elements, schema wants %d", len(input), want)
	}
	if want := job.Program.Output.TotalElements(); len(output) != want {
		return 0, fmt.Errorf("server: output has %d elements, schema wants %d", len(output), want)
	}
	id := job.store.Feed(input, output)
	if sc.log != nil {
		if err := sc.log.AppendExampleFed(jobID, id, input, output); err != nil {
			return 0, fmt.Errorf("server: logging example for %q: %w", jobID, err)
		}
	}
	return id, nil
}

// Refine toggles a supervision example for a job (durably, when a WAL is
// attached).
func (sc *Scheduler) Refine(jobID string, exampleID int, enabled bool) error {
	job, ok := sc.Job(jobID)
	if !ok {
		return errNoJob(jobID)
	}
	if err := job.store.Refine(exampleID, enabled); err != nil {
		return err
	}
	if sc.log != nil {
		if err := sc.log.AppendExampleRefined(jobID, exampleID, enabled); err != nil {
			return fmt.Errorf("server: logging refine for %q: %w", jobID, err)
		}
	}
	return nil
}

// Infer applies the best model so far to an input. The simulated model
// produces a deterministic pseudo-prediction whose entries depend on the
// input and the model name; it returns an error before the first model
// completes (the user has no model yet). Batched and streaming serving
// live in serving.go on the same InferSession.
func (sc *Scheduler) Infer(jobID string, input []float64) ([]float64, string, error) {
	sess, err := sc.NewInferSession(jobID)
	if err != nil {
		return nil, "", err
	}
	inferRequests.With("single").Inc()
	out, err := sess.Apply(input)
	if err != nil {
		return nil, "", err
	}
	return out, sess.Model, nil
}

// Status summarizes a job for the status endpoint.
type Status struct {
	ID            string `json:"id"`
	Name          string `json:"name"`
	Template      string `json:"template"`
	Class         string `json:"class,omitempty"` // admission service class
	NumCandidates int    `json:"num_candidates"`
	Trained       int    `json:"trained"`
	Examples      int    `json:"examples"`
	Enabled       int    `json:"enabled"`
	// CostUsed is the total GPU cost this job's bandit has paid.
	CostUsed float64 `json:"cost_used"`
	// BudgetExhausted marks a job drained because its tenant's budget ran
	// out; remaining candidates were retired.
	BudgetExhausted bool                  `json:"budget_exhausted,omitempty"`
	Failed          string                `json:"failed,omitempty"` // non-empty: job retired with this cause
	Abandoned       []string              `json:"abandoned,omitempty"`
	Best            *storage.ModelRecord  `json:"best,omitempty"`
	Models          []storage.ModelRecord `json:"models"`
}

// Snapshot checkpoints the shared storage (fed examples, refine state and
// completed model records for every job) as JSON — the legacy manual
// checkpoint surface. With a WAL attached, prefer Compact, which folds the
// log into the on-disk snapshot.
func (sc *Scheduler) Snapshot(w io.Writer) error {
	return sc.store.Snapshot(w)
}

// Restore replays a storage snapshot into this scheduler: for every job id
// present in both the snapshot and the current job set (jobs are resubmitted
// from their programs on restart, which reproduces the same ids and
// candidate surfaces), the recorded examples and model results are loaded
// and each completed run is fed back into the job's bandit so the GP
// posterior resumes where the previous process stopped. (The WAL path —
// OpenDir + Recover — supersedes this for -data-dir deployments: it also
// restores the job definitions themselves.)
//
// It must be called before any scheduling round; it returns an error when a
// snapshot record does not match the job's candidate set.
func (sc *Scheduler) Restore(r io.Reader) error {
	snap, err := storage.LoadStore(r)
	if err != nil {
		return err
	}
	// Resolve jobs before taking coordMu, honouring the jobsMu→coordMu
	// lock order.
	jobsByID := make(map[string]*Job, len(snap.TaskIDs()))
	for _, id := range snap.TaskIDs() {
		job, ok := sc.Job(id)
		if !ok {
			return fmt.Errorf("server: snapshot contains unknown job %q (resubmit jobs before restoring)", id)
		}
		jobsByID[id] = job
	}
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if sc.rounds != 0 {
		return fmt.Errorf("server: Restore after %d rounds; restore into a fresh scheduler", sc.rounds)
	}
	if len(sc.leases) != 0 {
		return fmt.Errorf("server: Restore with %d leases outstanding; drain the engine first", len(sc.leases))
	}
	// The replay rewrites every bandit; any selection-index state built by
	// earlier (empty) picks is stale wholesale.
	sc.selIdx.reset()
	for _, id := range snap.TaskIDs() {
		job := jobsByID[id]
		ts, _ := snap.Task(id)
		job.mu.Lock()
		err := sc.replayTaskLocked(job, ts)
		job.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// replayTaskLocked loads a task's examples and model records into a job and
// feeds each completed run back into its bandit. Callers hold job.mu and
// coordMu (for the round counter).
func (sc *Scheduler) replayTaskLocked(job *Job, ts *storage.TaskStore) error {
	candidateIdx := make(map[string]int, len(job.Candidates))
	for i, c := range job.Candidates {
		candidateIdx[c.Name()] = i
	}
	// Re-feed examples preserving ids and refine state. In the WAL
	// recovery path the job was built over the recovered store, so ts IS
	// job.store and the examples are already in place.
	if ts != job.store {
		for _, ex := range ts.Examples() {
			job.store.PutExample(ex)
		}
	}
	// Replay completed runs into the bandit and the model records. A
	// posterior update that fails mid-replay (the job is ill-conditioned
	// on replay too) retires the job but keeps recording its model
	// history — recorded results must never silently vanish.
	failed := job.failed != ""
	for _, m := range ts.Models() {
		arm, ok := candidateIdx[m.Name]
		if !ok {
			return fmt.Errorf("server: snapshot run %q does not match a candidate of %q", m.Name, job.ID)
		}
		if !failed {
			if job.tenant.Bandit.Tried(arm) {
				return fmt.Errorf("server: snapshot replays candidate %q of %q twice", m.Name, job.ID)
			}
			ucb := job.tenant.Bandit.UCB(arm)
			if err := job.tenant.Bandit.Observe(arm, m.Accuracy); err != nil {
				sc.failJobLocked(job, err)
				failed = true
			} else {
				job.tenant.RecordObservation(ucb, m.Accuracy)
			}
		}
		if !job.store.HasModel(m.Name) {
			job.store.RecordModel(m)
		}
		if m.Round > sc.rounds {
			sc.rounds = m.Round
		}
	}
	return nil
}

// Status reports a job's current state.
func (sc *Scheduler) Status(jobID string) (Status, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return Status{}, errNoJob(jobID)
	}
	st := Status{
		ID:            job.ID,
		Name:          job.Name,
		Template:      job.Template,
		Class:         string(job.Class),
		NumCandidates: len(job.Candidates),
		Models:        job.store.Models(),
		Examples:      len(job.store.Examples()),
		Enabled:       job.store.EnabledCount(),
	}
	job.mu.Lock()
	st.Failed = job.failed
	st.Abandoned = append([]string(nil), job.abandoned...)
	st.CostUsed = job.tenant.Bandit.CumulativeCost()
	st.BudgetExhausted = job.budgetExhausted
	job.mu.Unlock()
	st.Trained = len(st.Models)
	if best, ok := job.store.Best(); ok {
		st.Best = &best
	}
	return st, nil
}
