// Package server implements the ease.ml service of §2 Figure 1: users submit
// declarative jobs over HTTP, feed supervision examples, refine them, and
// call infer against the best model found so far, while a multi-tenant
// scheduler (internal/core's HYBRID policy) decides which job's next
// candidate model to train on the shared (simulated) GPU pool.
//
// Scheduling is a two-phase API: PickWork leases (job, candidate) pairs —
// chosen by the user picker with in-flight arms hallucinated GP-BUCB style —
// and Complete feeds results back. RunRound drives it serialized (the
// deployed single-device strategy); internal/engine drives it with a
// concurrent worker pool. The HTTP surface (see API in http.go) adds
// /admin/metrics and /admin/start|stop for engine control.
package server

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/gp"
	"repro/internal/storage"
	"repro/internal/templates"
	"repro/internal/trainsim"
)

// Trainer runs one candidate model for a job and reports its measured
// accuracy plus the execution cost. EstimateCost must be stable and
// strictly positive; the scheduler uses it for cost-aware selection before
// the candidate ever runs. Implementations must be safe for concurrent use:
// the execution engine calls Train from many workers at once, and a failed
// run must surface as an error, never a panic (a panic inside an engine
// worker would take down the whole server).
type Trainer interface {
	Train(jobID string, c templates.Candidate) (accuracy, cost float64, err error)
	EstimateCost(jobID string, c templates.Candidate) (float64, error)
}

// SimTrainer trains candidates on the trainsim learning-curve substrate,
// accounted through a simulated GPU pool. By default every run takes the
// whole pool (the deployed single-device strategy of §4.5); with Devices > 0
// runs are packed one-GPU-each onto that many devices instead (the
// multi-device strategy of §5.3.2, used by the execution engine).
type SimTrainer struct {
	Pool *cluster.Pool
	Seed int64

	// Devices selects the pool-accounting mode: 0 serializes every run
	// across the whole pool; N > 0 packs runs one GPU each onto the first N
	// devices, overlapping in virtual time.
	Devices int

	// Delay, when positive, makes every Train call sleep that long. The
	// simulated substrate is otherwise instantaneous; benchmarks use Delay
	// to surface the engine's wall-clock concurrency.
	Delay time.Duration

	mu   sync.Mutex
	sims map[string]*simEntry
}

type simEntry struct {
	sim   *trainsim.Simulator
	index map[string]int // candidate name → model index
}

// NewSimTrainer creates a SimTrainer over the given pool.
func NewSimTrainer(pool *cluster.Pool, seed int64) *SimTrainer {
	return &SimTrainer{Pool: pool, Seed: seed, sims: make(map[string]*simEntry)}
}

// Register builds the per-job simulator for a candidate list. Candidate
// training behaviour is derived deterministically from the job id and the
// candidate name, so restarts reproduce the same quality surface.
func (st *SimTrainer) Register(jobID string, cands []templates.Candidate) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sims[jobID]; ok {
		return fmt.Errorf("server: job %q already registered with trainer", jobID)
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	jobHash := int64(h.Sum64() & 0x7fffffffffff)

	difficulty := 0.05 + 0.30*frac(jobHash, 11)
	entry := &simEntry{index: make(map[string]int, len(cands))}
	models := make([]trainsim.ModelSpec, len(cands))
	for i, c := range cands {
		ch := fnv.New64a()
		ch.Write([]byte(c.Model))
		candHash := int64(ch.Sum64() & 0x7fffffffffff)
		peak := 0.55 + 0.40*frac(candHash, 3)
		if c.Normalizer != nil {
			// Normalization variants perturb the base model's peak: helpful
			// for some (job, k) pairs, harmful for others.
			peak += 0.10 * (frac(jobHash^candHash, 5) - 0.5) * c.Normalizer.K
			peak = clamp(peak, 0.05, 0.99)
		}
		models[i] = trainsim.ModelSpec{
			Name:         c.Name(),
			Peak:         peak,
			Tau:          10 + 30*frac(candHash, 7),
			CostPerEpoch: 0.5 + 15*frac(candHash, 13)*frac(candHash, 17),
			BestLR:       trainsim.DefaultLearningRates[int(candHash)%len(trainsim.DefaultLearningRates)],
		}
		entry.index[c.Name()] = i
	}
	sim, err := trainsim.New(trainsim.Config{
		Models: models,
		Tasks:  []trainsim.TaskSpec{{Name: jobID, Difficulty: difficulty, SizeFactor: 0.5 + 2*frac(jobHash, 19)}},
		Seed:   st.Seed ^ jobHash,
	})
	if err != nil {
		return fmt.Errorf("server: building simulator for %q: %w", jobID, err)
	}
	entry.sim = sim
	st.sims[jobID] = entry
	return nil
}

// lookup resolves a (job, candidate) pair to its simulator and model index.
func (st *SimTrainer) lookup(jobID string, c templates.Candidate) (*simEntry, int, error) {
	st.mu.Lock()
	entry, ok := st.sims[jobID]
	st.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("server: job %q not registered", jobID)
	}
	idx, ok := entry.index[c.Name()]
	if !ok {
		return nil, 0, fmt.Errorf("server: job %q has no candidate %q", jobID, c.Name())
	}
	return entry, idx, nil
}

// Train implements Trainer. It is safe for concurrent use: simulator runs
// are deterministic pure functions of (job, candidate) and the pool does its
// own locking.
func (st *SimTrainer) Train(jobID string, c templates.Candidate) (float64, float64, error) {
	entry, idx, err := st.lookup(jobID, c)
	if err != nil {
		return 0, 0, err
	}
	res := entry.sim.Train(0, idx)
	if st.Delay > 0 {
		time.Sleep(st.Delay)
	}
	if st.Pool != nil {
		if st.Devices > 0 {
			st.Pool.RunOneGPUAmong(jobID+"/"+c.Name(), res.Cost, st.Devices)
		} else {
			st.Pool.RunSingleDevice(jobID+"/"+c.Name(), res.Cost)
		}
	}
	return res.Accuracy, res.Cost, nil
}

// EstimateCost implements Trainer.
func (st *SimTrainer) EstimateCost(jobID string, c templates.Candidate) (float64, error) {
	entry, idx, err := st.lookup(jobID, c)
	if err != nil {
		return 0, err
	}
	return entry.sim.Cost(0, idx), nil
}

func frac(h int64, salt int64) float64 {
	x := uint64(h) * uint64(salt*2654435761+1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1000003) / 1000003
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// Job is one submitted ease.ml task.
type Job struct {
	ID         string
	Name       string
	Program    dsl.Program
	Template   string
	Candidates []templates.Candidate
	Julia      string
	Python     string

	tenant *core.Tenant
	store  *storage.TaskStore
}

// Scheduler owns the job set and drives multi-tenant model selection over
// it. It is the in-process core of the HTTP server and is usable directly
// (examples drive it without HTTP).
type Scheduler struct {
	mu        sync.Mutex
	store     *storage.Store
	trainer   Trainer
	picker    core.UserPicker
	jobs      []*Job
	byID      map[string]*Job
	nextID    int
	rounds    int
	server    string // advertised server address for codegen
	leases    map[int]*Lease
	nextLease int
}

// NewScheduler creates a scheduler with the given trainer and user picker
// (nil picker defaults to ease.ml's HYBRID policy).
func NewScheduler(trainer Trainer, picker core.UserPicker, serverAddr string) *Scheduler {
	if picker == nil {
		picker = core.NewHybridPicker()
	}
	if serverAddr == "" {
		serverAddr = "http://localhost:9000"
	}
	return &Scheduler{
		store:   storage.NewStore(),
		trainer: trainer,
		picker:  picker,
		byID:    make(map[string]*Job),
		server:  serverAddr,
		leases:  make(map[int]*Lease),
	}
}

// Trainer returns the trainer the scheduler was built with, so an execution
// engine can run the work it leases.
func (sc *Scheduler) Trainer() Trainer { return sc.trainer }

// Submit parses and registers a new job: the program is validated, matched
// against the Figure 4 templates, candidates are generated (including
// normalization variants for image-shaped inputs), code is generated, and a
// GP-UCB tenant is created for the scheduler.
func (sc *Scheduler) Submit(name, programSrc string) (*Job, error) {
	prog, err := dsl.Parse(programSrc)
	if err != nil {
		return nil, err
	}
	cands, tpl, err := templates.Generate(prog, nil)
	if err != nil {
		return nil, err
	}

	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.nextID++
	id := fmt.Sprintf("job-%04d", sc.nextID)

	if reg, ok := sc.trainer.(*SimTrainer); ok {
		if err := reg.Register(id, cands); err != nil {
			return nil, err
		}
	}
	ts, err := sc.store.CreateTask(id)
	if err != nil {
		return nil, err
	}

	costs := make([]float64, len(cands))
	features := make([][]float64, len(cands))
	for i, c := range cands {
		cost, err := sc.trainer.EstimateCost(id, c)
		if err != nil {
			return nil, fmt.Errorf("server: estimating cost of %q: %w", c.Name(), err)
		}
		costs[i] = cost
		features[i] = candidateFeature(c)
	}
	process := gp.NewFromFeatures(gp.RBF{Variance: 0.05, LengthScale: 0.5}, features, 1e-4)
	b := bandit.New(process, bandit.Config{
		Costs:     costs,
		CostAware: true,
		BetaArms:  32 * len(cands), // headroom for jobs arriving later
		Mean0:     0.6,
	})
	job := &Job{
		ID:         id,
		Name:       name,
		Program:    prog,
		Template:   tpl.Name,
		Candidates: cands,
		Julia:      codegen.JuliaTypes(prog),
		Python:     codegen.PythonLibrary(id, sc.server, prog),
		tenant:     core.NewTenant(len(sc.jobs), id, b),
		store:      ts,
	}
	sc.jobs = append(sc.jobs, job)
	sc.byID[id] = job
	return job, nil
}

// candidateFeature embeds a candidate for the GP kernel: a hash-derived
// model-family coordinate plus the normalization parameter. Candidates of
// the same base model cluster together, which is what lets one observation
// inform its normalization variants.
func candidateFeature(c templates.Candidate) []float64 {
	h := fnv.New64a()
	h.Write([]byte(c.Model))
	base := float64(h.Sum64()%1000) / 1000
	k := 0.0
	if c.Normalizer != nil {
		k = c.Normalizer.K
	}
	return []float64{base, k * 0.3}
}

// Job returns a job by id.
func (sc *Scheduler) Job(id string) (*Job, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	j, ok := sc.byID[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (sc *Scheduler) Jobs() []*Job {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]*Job(nil), sc.jobs...)
}

// Rounds returns the number of completed scheduling rounds.
func (sc *Scheduler) Rounds() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.rounds
}

// Lease is one unit of leased work: a (job, candidate) pair the scheduler
// has picked but whose result has not been reported yet. A lease's arm is
// excluded from further selection until Complete or Release is called with
// it, so concurrent workers never train the same candidate twice.
type Lease struct {
	ID        int
	JobID     string
	Arm       int
	Candidate templates.Candidate
	// UCB is the (hallucinated-posterior) upper confidence bound the arm was
	// selected at; Complete feeds it into the σ̃ recurrence.
	UCB float64
}

// InFlight returns the number of outstanding leases.
func (sc *Scheduler) InFlight() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.leases)
}

// PickWork is the first phase of the scheduler's two-phase API: it leases
// new (job, candidate) work items until maxInFlight leases are outstanding
// or no more work is available, and returns the newly created leases. Jobs
// are chosen by the configured core.UserPicker over the tenants that still
// have unleased untried candidates; within a job the candidate is chosen by
// GP-BUCB with the job's in-flight arms hallucinated (bandit.SelectBatch's
// scheme, applied incrementally), so parallel picks diversify.
//
// Every returned lease must eventually be handed back via Complete (with
// the training result) or Release (on failure or drain).
func (sc *Scheduler) PickWork(maxInFlight int) ([]*Lease, error) {
	if maxInFlight <= 0 {
		return nil, fmt.Errorf("server: maxInFlight %d must be positive", maxInFlight)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()

	inFlight := sc.inFlightArmsLocked()
	shadows := make(map[string]*bandit.GPUCB)
	var picked []*Lease
	for len(sc.leases) < maxInFlight {
		l, err := sc.pickNextLocked(inFlight, shadows)
		if err != nil {
			return picked, err
		}
		if l == nil {
			break
		}
		picked = append(picked, l)
	}
	return picked, nil
}

// inFlightArmsLocked collects the in-flight arms per job from the
// outstanding leases. Callers must hold sc.mu.
func (sc *Scheduler) inFlightArmsLocked() map[string][]int {
	inFlight := make(map[string][]int, len(sc.jobs))
	for _, l := range sc.leases {
		inFlight[l.JobID] = append(inFlight[l.JobID], l.Arm)
	}
	return inFlight
}

// pickNextLocked leases the next single work item, updating inFlight and
// the per-job hallucination shadows in place so a batch of picks pays one
// bandit clone per job instead of one per lease. It returns (nil, nil)
// when no job has an untried, unleased arm, and an error when the picker
// violates its contract by choosing a blocked tenant. Callers must hold
// sc.mu.
func (sc *Scheduler) pickNextLocked(inFlight map[string][]int, shadows map[string]*bandit.GPUCB) (*Lease, error) {
	// The picker always sees the full tenant slice — stateful pickers
	// (HYBRID's freeze signature, round-robin's rotation) depend on stable
	// indices. Jobs whose untried arms are all leased out are excluded via
	// the tenants' leased counts, which Tenant.Active folds in.
	tenants := make([]*core.Tenant, len(sc.jobs))
	anyActive := false
	for i, j := range sc.jobs {
		j.tenant.SetLeased(len(inFlight[j.ID]))
		tenants[i] = j.tenant
		anyActive = anyActive || j.tenant.Active()
	}
	if !anyActive {
		return nil, nil
	}
	idx := sc.picker.Pick(tenants)
	if idx < 0 || idx >= len(sc.jobs) {
		return nil, fmt.Errorf("server: picker %s returned index %d with active tenants remaining", sc.picker.Name(), idx)
	}
	job := sc.jobs[idx]
	if !job.tenant.Active() {
		// A silent nil here would let a faulty picker end scheduling with
		// untried candidates looking like a clean drain.
		return nil, fmt.Errorf("server: picker %s chose job %s, which has no selectable candidate", sc.picker.Name(), job.ID)
	}
	// With nothing in flight for the job, the hallucinated pick equals the
	// real bandit's (cached) SelectArm — the serialized hot path pays no
	// posterior clone. A shadow is built lazily on the first concurrent
	// pick and reused for the rest of the batch.
	var arm int
	var ucb float64
	if shadow, ok := shadows[job.ID]; ok {
		arm, ucb = shadow.SelectArm()
		shadow.Hallucinate(arm)
	} else if len(inFlight[job.ID]) == 0 {
		arm, ucb = job.tenant.Bandit.SelectArm()
	} else {
		shadow = job.tenant.Bandit.NewShadow(inFlight[job.ID])
		shadows[job.ID] = shadow
		arm, ucb = shadow.SelectArm()
		shadow.Hallucinate(arm)
	}
	if arm < 0 {
		// Cannot happen for an Active tenant; surface it rather than loop.
		return nil, fmt.Errorf("server: job %s reported active but selected no arm", job.ID)
	}
	inFlight[job.ID] = append(inFlight[job.ID], arm)
	sc.nextLease++
	l := &Lease{ID: sc.nextLease, JobID: job.ID, Arm: arm, Candidate: job.Candidates[arm], UCB: ucb}
	sc.leases[l.ID] = l
	return l, nil
}

// Complete is the second phase of the two-phase API: it reports the training
// result for a leased work item, feeding the observation into the job's
// bandit and σ̃ recurrence and recording the model. The global round counter
// advances in completion order. It errors on a lease that is not
// outstanding (double completion, or completion after Release).
func (sc *Scheduler) Complete(l *Lease, accuracy, cost float64) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if stored, ok := sc.leases[l.ID]; !ok || stored != l {
		return fmt.Errorf("server: lease %d (%s/%s) is not outstanding", l.ID, l.JobID, l.Candidate.Name())
	}
	delete(sc.leases, l.ID)
	job := sc.byID[l.JobID]
	if job.tenant.Bandit.Tried(l.Arm) {
		return fmt.Errorf("server: lease %d arm %d of %s already observed", l.ID, l.Arm, l.JobID)
	}
	job.tenant.Bandit.Observe(l.Arm, accuracy)
	job.tenant.RecordObservation(l.UCB, accuracy)
	sc.rounds++
	job.store.RecordModel(storage.ModelRecord{
		Name:     l.Candidate.Name(),
		Accuracy: accuracy,
		Cost:     cost,
		Round:    sc.rounds,
	})
	return nil
}

// Abandon settles a lease for a candidate that cannot be trained (e.g. it
// failed repeatedly): the arm is retired from selection without recording
// an observation, so neither the GP posterior nor the job's model history
// is polluted with a fabricated result. The round counter does not
// advance. It errors on a lease that is not outstanding.
func (sc *Scheduler) Abandon(l *Lease) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if stored, ok := sc.leases[l.ID]; !ok || stored != l {
		return fmt.Errorf("server: lease %d (%s/%s) is not outstanding", l.ID, l.JobID, l.Candidate.Name())
	}
	delete(sc.leases, l.ID)
	sc.byID[l.JobID].tenant.Bandit.Retire(l.Arm)
	return nil
}

// Release hands a lease back untrained (worker failure or engine drain);
// the arm becomes selectable again. It errors on a lease that is not
// outstanding.
func (sc *Scheduler) Release(l *Lease) error {
	if l == nil {
		return fmt.Errorf("server: nil lease")
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if stored, ok := sc.leases[l.ID]; !ok || stored != l {
		return fmt.Errorf("server: lease %d (%s/%s) is not outstanding", l.ID, l.JobID, l.Candidate.Name())
	}
	delete(sc.leases, l.ID)
	return nil
}

// RunRound executes one multi-tenant scheduling round: pick a job, pick its
// next candidate, train it, and record the result — the serialized
// single-device path, built on the same two-phase API the engine drives
// concurrently. It returns false when no job has untried candidates.
func (sc *Scheduler) RunRound() (bool, error) {
	sc.mu.Lock()
	l, err := sc.pickNextLocked(sc.inFlightArmsLocked(), make(map[string]*bandit.GPUCB))
	sc.mu.Unlock()
	if err != nil {
		return false, err
	}
	if l == nil {
		return false, nil
	}

	// Train outside the lock: this is the long-running part.
	acc, cost, err := sc.trainer.Train(l.JobID, l.Candidate)
	if err != nil {
		_ = sc.Release(l)
		return false, fmt.Errorf("server: training %s/%s: %w", l.JobID, l.Candidate.Name(), err)
	}
	return true, sc.Complete(l, acc, cost)
}

// RunRounds executes up to n rounds, stopping early when all jobs are
// exhausted. It returns the number of rounds that ran.
func (sc *Scheduler) RunRounds(n int) (int, error) {
	ran := 0
	for ran < n {
		ok, err := sc.RunRound()
		if err != nil {
			return ran, err
		}
		if !ok {
			break
		}
		ran++
	}
	return ran, nil
}

// Feed stores a supervision example for a job.
func (sc *Scheduler) Feed(jobID string, input, output []float64) (int, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return 0, fmt.Errorf("server: no job %q", jobID)
	}
	if want := job.Program.Input.TotalElements(); len(input) != want {
		return 0, fmt.Errorf("server: input has %d elements, schema wants %d", len(input), want)
	}
	if want := job.Program.Output.TotalElements(); len(output) != want {
		return 0, fmt.Errorf("server: output has %d elements, schema wants %d", len(output), want)
	}
	return job.store.Feed(input, output), nil
}

// Refine toggles a supervision example for a job.
func (sc *Scheduler) Refine(jobID string, exampleID int, enabled bool) error {
	job, ok := sc.Job(jobID)
	if !ok {
		return fmt.Errorf("server: no job %q", jobID)
	}
	return job.store.Refine(exampleID, enabled)
}

// Infer applies the best model so far to an input. The simulated model
// produces a deterministic pseudo-prediction whose entries depend on the
// input and the model name; it returns an error before the first model
// completes (the user has no model yet).
func (sc *Scheduler) Infer(jobID string, input []float64) ([]float64, string, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return nil, "", fmt.Errorf("server: no job %q", jobID)
	}
	if want := job.Program.Input.TotalElements(); len(input) != want {
		return nil, "", fmt.Errorf("server: input has %d elements, schema wants %d", len(input), want)
	}
	best, ok := job.store.Best()
	if !ok {
		return nil, "", fmt.Errorf("server: job %q has no trained model yet", jobID)
	}
	out := make([]float64, job.Program.Output.TotalElements())
	h := fnv.New64a()
	h.Write([]byte(best.Name))
	seed := float64(h.Sum64()%997) / 997
	var acc float64
	for _, v := range input {
		acc += v
	}
	for i := range out {
		out[i] = math.Abs(math.Sin(acc*seed + float64(i)))
	}
	return out, best.Name, nil
}

// Status summarizes a job for the status endpoint.
type Status struct {
	ID            string                `json:"id"`
	Name          string                `json:"name"`
	Template      string                `json:"template"`
	NumCandidates int                   `json:"num_candidates"`
	Trained       int                   `json:"trained"`
	Examples      int                   `json:"examples"`
	Enabled       int                   `json:"enabled"`
	Best          *storage.ModelRecord  `json:"best,omitempty"`
	Models        []storage.ModelRecord `json:"models"`
}

// Snapshot checkpoints the shared storage (fed examples, refine state and
// completed model records for every job) as JSON. Scheduler state (bandit
// posteriors) is reconstructable by replaying the recorded model results;
// job definitions are the users' programs and are resubmitted on restart.
func (sc *Scheduler) Snapshot(w io.Writer) error {
	return sc.store.Snapshot(w)
}

// Restore replays a storage snapshot into this scheduler: for every job id
// present in both the snapshot and the current job set (jobs are resubmitted
// from their programs on restart, which reproduces the same ids and
// candidate surfaces), the recorded examples and model results are loaded
// and each completed run is fed back into the job's bandit so the GP
// posterior resumes where the previous process stopped.
//
// It must be called before any scheduling round; it returns an error when a
// snapshot record does not match the job's candidate set.
func (sc *Scheduler) Restore(r io.Reader) error {
	snap, err := storage.LoadStore(r)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.rounds != 0 {
		return fmt.Errorf("server: Restore after %d rounds; restore into a fresh scheduler", sc.rounds)
	}
	if len(sc.leases) != 0 {
		return fmt.Errorf("server: Restore with %d leases outstanding; drain the engine first", len(sc.leases))
	}
	for _, id := range snap.TaskIDs() {
		job, ok := sc.byID[id]
		if !ok {
			return fmt.Errorf("server: snapshot contains unknown job %q (resubmit jobs before restoring)", id)
		}
		candidateIdx := make(map[string]int, len(job.Candidates))
		for i, c := range job.Candidates {
			candidateIdx[c.Name()] = i
		}
		ts, _ := snap.Task(id)
		// Re-feed examples preserving ids and refine state.
		for _, ex := range ts.Examples() {
			newID := job.store.Feed(ex.Input, ex.Output)
			if err := job.store.Refine(newID, ex.Enabled); err != nil {
				return fmt.Errorf("server: restoring example %d of %q: %w", ex.ID, id, err)
			}
		}
		// Replay completed runs into the bandit and the model records.
		for _, m := range ts.Models() {
			arm, ok := candidateIdx[m.Name]
			if !ok {
				return fmt.Errorf("server: snapshot run %q does not match a candidate of %q", m.Name, id)
			}
			if job.tenant.Bandit.Tried(arm) {
				return fmt.Errorf("server: snapshot replays candidate %q of %q twice", m.Name, id)
			}
			ucb := job.tenant.Bandit.UCB(arm)
			job.tenant.Bandit.Observe(arm, m.Accuracy)
			job.tenant.RecordObservation(ucb, m.Accuracy)
			job.store.RecordModel(m)
			if m.Round > sc.rounds {
				sc.rounds = m.Round
			}
		}
	}
	return nil
}

// Status reports a job's current state.
func (sc *Scheduler) Status(jobID string) (Status, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return Status{}, fmt.Errorf("server: no job %q", jobID)
	}
	st := Status{
		ID:            job.ID,
		Name:          job.Name,
		Template:      job.Template,
		NumCandidates: len(job.Candidates),
		Models:        job.store.Models(),
		Examples:      len(job.store.Examples()),
		Enabled:       job.store.EnabledCount(),
	}
	st.Trained = len(st.Models)
	if best, ok := job.store.Best(); ok {
		st.Best = &best
	}
	return st, nil
}
