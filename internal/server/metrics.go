package server

import (
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Pick-path stage histograms: the per-stage breakdown of where a pick
// spends its time. lock_wait is PickWork's coordinator-lock acquisition
// plus the O(J) job-lock sweep (once per batch); index_repair is the
// selection index catching up on dirty jobs before the oracle argmax
// (once per oracle pick); select is one full pickNextLocked decision;
// hallucinate is the GP-BUCB shadow work inside it (only picks with
// in-flight arms pay it). The WAL half of the settle path is
// pick_stage_wal_append (the model-record append in Complete) plus the
// storage-level wal_append/wal_fsync families.
var (
	pickStageLockWait = telemetry.Default().Histogram("easeml_pick_stage_lock_wait_seconds",
		"Pick-path lock wait: coordMu acquisition plus the per-job lock sweep, once per PickWork batch.")
	pickStageIndexRepair = telemetry.Default().Histogram("easeml_pick_stage_index_repair_seconds",
		"Selection-index repair: re-scoring jobs whose dirty epoch moved, before an oracle argmax answers. Only repairs with dirty work observe.")
	pickStageSelect = telemetry.Default().Histogram("easeml_pick_stage_select_seconds",
		"One pickNextLocked decision end to end: picker argmax, candidate selection, lease creation.")
	pickStageHallucinate = telemetry.Default().Histogram("easeml_pick_stage_hallucinate_seconds",
		"GP-BUCB hallucination-shadow work within a pick (shadow revive/build, SelectArm, Hallucinate).")
	pickStageWALAppend = telemetry.Default().Histogram("easeml_pick_stage_wal_append_seconds",
		"The settle path's WAL append: logging the model record during Complete.")
	leaseTraces = telemetry.Default().Counter("easeml_lease_traces_minted_total",
		"Trace IDs minted for leases at pick time.")
)

// adminRoutes is the closed set of admin paths RouteLabel passes through
// verbatim. Anything else under /admin/ collapses (trace IDs to a {id}
// placeholder, unknown paths to "other"), so the per-route counters stay
// bounded no matter what IDs or junk a client requests.
var adminRoutes = map[string]bool{
	"/admin/rounds": true, "/admin/snapshot": true, "/admin/metrics": true,
	"/admin/start": true, "/admin/stop": true, "/admin/fleet": true,
	"/admin/quotas": true, "/admin/traces": true, "/admin/decisions": true,
}

// fleetRoutes is the closed set of fleet-protocol paths (see
// fleet.Handler); unknown /fleet/ paths collapse to "other" like any
// other 404.
var fleetRoutes = map[string]bool{
	"/fleet/register": true, "/fleet/lease": true, "/fleet/heartbeat": true,
	"/fleet/complete": true, "/fleet/leave": true, "/fleet/job": true,
}

// RouteLabel normalizes a request path to a bounded metric label: job IDs
// and trace IDs collapse to {id}, unknown paths to "other". Used by the
// HTTP middleware so per-route counters cannot explode on hostile paths.
func RouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/jobs", p == "/metrics", p == "/healthz", p == "/readyz":
		return p
	case adminRoutes[p], fleetRoutes[p]:
		return p
	case strings.HasPrefix(p, "/admin/traces/"):
		return "/admin/traces/{id}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	case strings.HasPrefix(p, "/jobs/"):
		rest := strings.TrimPrefix(p, "/jobs/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return "/jobs/{id}/" + rest[i+1:]
		}
		return "/jobs/{id}"
	default:
		return "other"
	}
}

// handlePrometheus serves GET /metrics: the process-global telemetry
// registry (histograms, counters minted at observation sites) followed by
// gauges computed from live scheduler/engine/fleet/admission state at
// scrape time — scrape-time reads rather than registered GaugeFuncs, so
// the exposition always reflects *this* API's scheduler even when tests
// build several.
func (a *API) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.Default().WritePrometheus(w)
	a.writeDynamicMetrics(w)
}

func (a *API) writeDynamicMetrics(w io.Writer) {
	telemetry.WriteMetricHeader(w, "easeml_build_info",
		"Build identity (constant 1; the info rides the labels).", "gauge")
	telemetry.WriteGauge(w, "easeml_build_info",
		`{version="`+telemetry.EscapeLabelValue(buildinfo.Version)+
			`",commit="`+telemetry.EscapeLabelValue(buildinfo.Commit)+
			`",go_version="`+telemetry.EscapeLabelValue(runtime.Version())+`"}`, 1)

	telemetry.WriteMetricHeader(w, "easeml_jobs", "Jobs known to the scheduler.", "gauge")
	telemetry.WriteGauge(w, "easeml_jobs", "", float64(len(a.sched.Jobs())))
	telemetry.WriteMetricHeader(w, "easeml_rounds_total", "Scheduling rounds completed.", "counter")
	telemetry.WriteGauge(w, "easeml_rounds_total", "", float64(a.sched.Rounds()))
	telemetry.WriteMetricHeader(w, "easeml_leases_in_flight", "Outstanding leases.", "gauge")
	telemetry.WriteGauge(w, "easeml_leases_in_flight", "", float64(a.sched.InFlight()))

	sel := a.sched.SelectionStats()
	telemetry.WriteMetricHeader(w, "easeml_selection_events_total",
		"Selection-index traffic by event (picks, re-scores, heap pops, shadow lifecycle).", "counter")
	for _, row := range []struct {
		event string
		v     uint64
	}{
		{"picks", sel.Picks}, {"speculative_grants", sel.SpeculativeGrants},
		{"oracle_picks", sel.OraclePicks}, {"legacy_picks", sel.LegacyPicks},
		{"jobs_rescored", sel.JobsRescored}, {"heap_pops", sel.HeapPops}, {"epoch_bumps", sel.EpochBumps},
		{"shadows_built", sel.ShadowsBuilt}, {"shadows_reused", sel.ShadowsReused}, {"shadow_rollbacks", sel.ShadowRollbacks},
	} {
		telemetry.WriteGauge(w, "easeml_selection_events_total", `{event="`+row.event+`"}`, float64(row.v))
	}
	telemetry.WriteMetricHeader(w, "easeml_bandit_cache_events_total",
		"GP/bandit cache traffic by cache (select, posterior) and event.", "counter")
	for _, row := range []struct {
		cache, event string
		v            uint64
	}{
		{"select", "hits", sel.BanditCache.Select.Hits},
		{"select", "misses", sel.BanditCache.Select.Misses},
		{"select", "invalidations", sel.BanditCache.Select.Invalidations},
		{"posterior", "hits", sel.BanditCache.Posterior.Hits},
		{"posterior", "misses", sel.BanditCache.Posterior.Misses},
		{"posterior", "invalidations", sel.BanditCache.Posterior.Invalidations},
	} {
		telemetry.WriteGauge(w, "easeml_bandit_cache_events_total",
			`{cache="`+row.cache+`",event="`+row.event+`"}`, float64(row.v))
	}

	if a.engine != nil {
		st := a.engine.Status()
		telemetry.WriteMetricHeader(w, "easeml_engine_runs_total",
			"In-process engine lease settlements by outcome.", "counter")
		telemetry.WriteGauge(w, "easeml_engine_runs_total", `{outcome="completed"}`, float64(st.Completed))
		telemetry.WriteGauge(w, "easeml_engine_runs_total", `{outcome="released"}`, float64(st.Released))
		telemetry.WriteGauge(w, "easeml_engine_runs_total", `{outcome="abandoned"}`, float64(st.Abandoned))
		telemetry.WriteGauge(w, "easeml_engine_runs_total", `{outcome="error"}`, float64(st.Errors))
		telemetry.WriteMetricHeader(w, "easeml_engine_utilization", "Engine worker utilization (0-1).", "gauge")
		telemetry.WriteGauge(w, "easeml_engine_utilization", "", st.Utilization)
	}

	if a.fleet != nil {
		fs := a.fleet.FleetStatus()
		telemetry.WriteMetricHeader(w, "easeml_fleet_workers", "Fleet workers by registry state.", "gauge")
		telemetry.WriteGauge(w, "easeml_fleet_workers", `{state="alive"}`, float64(fs.Alive))
		telemetry.WriteGauge(w, "easeml_fleet_workers", `{state="dead"}`, float64(fs.Dead))
		telemetry.WriteGauge(w, "easeml_fleet_workers", `{state="left"}`, float64(fs.Left))
		telemetry.WriteMetricHeader(w, "easeml_fleet_remote_leases", "Leases held by fleet workers.", "gauge")
		telemetry.WriteGauge(w, "easeml_fleet_remote_leases", "", float64(fs.RemoteLeases))
	}

	if a.adm != nil {
		costs := a.sched.TenantCosts()
		telemetry.WriteMetricHeader(w, "easeml_tenant_active_jobs", "Unfinished jobs per tenant.", "gauge")
		telemetry.WriteMetricHeader(w, "easeml_tenant_cost_used", "GPU cost paid per tenant (budget currency).", "gauge")
		for _, ts := range a.adm.Snapshot() {
			label := `{tenant="` + telemetry.EscapeLabelValue(ts.Tenant) + `"}`
			telemetry.WriteGauge(w, "easeml_tenant_active_jobs", label, float64(ts.ActiveJobs))
			telemetry.WriteGauge(w, "easeml_tenant_cost_used", label, costs[ts.Tenant])
		}
	}

	if stats, ok := a.sched.WALStats(); ok {
		telemetry.WriteMetricHeader(w, "easeml_wal_seq", "WAL sequence horizon (last assigned event seq).", "gauge")
		telemetry.WriteGauge(w, "easeml_wal_seq", "", float64(stats.Seq))
	}
}

// WALStats reports the attached WAL's operation tallies; ok is false for
// an in-memory scheduler.
func (sc *Scheduler) WALStats() (storage.LogStats, bool) {
	if sc.log == nil {
		return storage.LogStats{}, false
	}
	return sc.log.Stats(), true
}
