package server

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/admission"
	"repro/internal/cluster"
)

// equivScheduler builds a scheduler with n jobs over the simulated trainer.
// withQuotas additionally installs an admission controller cycling the
// three service classes, putting the class-weighted picker (and its tenant
// masking) on the pick path.
func equivScheduler(t *testing.T, n int, withQuotas bool) *Scheduler {
	t.Helper()
	sc := NewScheduler(NewSimTrainer(cluster.NewPool(8, 0.9), 99), nil, "http://test:9000")
	if withQuotas {
		classes := []admission.Class{admission.ClassGuaranteed, admission.ClassStandard, admission.ClassBestEffort}
		tenants := make(map[string]admission.Quota, n)
		for i := 0; i < n; i++ {
			tenants[fmt.Sprintf("equiv-%d", i)] = admission.Quota{Class: classes[i%len(classes)]}
		}
		ctrl, err := admission.NewController(admission.Config{Tenants: tenants})
		if err != nil {
			t.Fatal(err)
		}
		sc.SetAdmission(ctrl)
	}
	for i := 0; i < n; i++ {
		if _, err := sc.Submit(fmt.Sprintf("equiv-%d", i), recoveryTSProgram); err != nil {
			t.Fatal(err)
		}
	}
	return sc
}

// driveEquivalence runs an identical randomized lease-lifecycle interleaving
// (picks, completions, releases, abandons) against the indexed scheduler A
// and the legacy deep-clone scheduler B, asserting every decision matches.
func driveEquivalence(t *testing.T, seed int64, withQuotas bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(5)
	a := equivScheduler(t, n, withQuotas)
	b := equivScheduler(t, n, withQuotas)
	b.SetLegacySelection(true)

	var outA, outB []*Lease
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // lease a batch
			n := len(a.InFlightLeases()) + 1 + rng.Intn(3)
			la, errA := a.PickWork(n)
			lb, errB := b.PickWork(n)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d step %d: pick errors diverged: %v vs %v", seed, step, errA, errB)
			}
			if len(la) != len(lb) {
				t.Fatalf("seed %d step %d: picked %d vs %d leases", seed, step, len(la), len(lb))
			}
			for i := range la {
				if la[i].JobID != lb[i].JobID || la[i].Arm != lb[i].Arm || la[i].UCB != lb[i].UCB {
					t.Fatalf("seed %d step %d: pick %d diverged: %s/%d@%v vs %s/%d@%v",
						seed, step, i, la[i].JobID, la[i].Arm, la[i].UCB, lb[i].JobID, lb[i].Arm, lb[i].UCB)
				}
			}
			outA = append(outA, la...)
			outB = append(outB, lb...)
		case op < 7 && len(outA) > 0: // complete with the same result
			i := rng.Intn(len(outA))
			acc, cost := 0.3+0.6*rng.Float64(), 1+rng.Float64()
			errA := a.Complete(outA[i], acc, cost)
			errB := b.Complete(outB[i], acc, cost)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d step %d: complete errors diverged: %v vs %v", seed, step, errA, errB)
			}
			outA = append(outA[:i], outA[i+1:]...)
			outB = append(outB[:i], outB[i+1:]...)
		case op < 9 && len(outA) > 0: // hand a lease back untrained
			i := rng.Intn(len(outA))
			if err := a.Release(outA[i]); err != nil {
				t.Fatal(err)
			}
			if err := b.Release(outB[i]); err != nil {
				t.Fatal(err)
			}
			outA = append(outA[:i], outA[i+1:]...)
			outB = append(outB[:i], outB[i+1:]...)
		case len(outA) > 0: // abandon (retire the candidate)
			i := rng.Intn(len(outA))
			if err := a.Abandon(outA[i]); err != nil {
				t.Fatal(err)
			}
			if err := b.Abandon(outB[i]); err != nil {
				t.Fatal(err)
			}
			outA = append(outA[:i], outA[i+1:]...)
			outB = append(outB[:i], outB[i+1:]...)
		}
	}
	// Settle stragglers and drain both schedulers to exhaustion through
	// the serialized path; every round must keep matching.
	for i := range outA {
		_ = a.Release(outA[i])
		_ = b.Release(outB[i])
	}
	for {
		la, errA := a.PickWork(1)
		lb, errB := b.PickWork(1)
		if (errA == nil) != (errB == nil) || len(la) != len(lb) {
			t.Fatalf("seed %d drain: diverged (%v/%d vs %v/%d)", seed, errA, len(la), errB, len(lb))
		}
		if len(la) == 0 {
			break
		}
		if la[0].JobID != lb[0].JobID || la[0].Arm != lb[0].Arm {
			t.Fatalf("seed %d drain: %s/%d vs %s/%d", seed, la[0].JobID, la[0].Arm, lb[0].JobID, lb[0].Arm)
		}
		acc := 0.2 + 0.7*rng.Float64()
		if err := a.Complete(la[0], acc, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.Complete(lb[0], acc, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Final state must agree exactly.
	jobsA, jobsB := a.Jobs(), b.Jobs()
	for i := range jobsA {
		sa, err := a.Status(jobsA[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Status(jobsB[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("seed %d: job %s status diverged:\nindexed: %+v\nlegacy:  %+v", seed, jobsA[i].ID, sa, sb)
		}
	}
	if a.Rounds() != b.Rounds() {
		t.Fatalf("seed %d: rounds %d vs %d", seed, a.Rounds(), b.Rounds())
	}
}

// TestIndexedSelectionMatchesDeepCloneBaseline is the end-to-end
// bit-identity guarantee of the selection-index refactor: the heap-backed,
// epoch-cached, shadow-reusing pick path must make exactly the decisions
// of the legacy deep-clone implementation under randomized lease
// lifecycles — with the default hybrid picker and with the class-weighted
// wrapper (masked tenants) in front of it.
func TestIndexedSelectionMatchesDeepCloneBaseline(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= seeds; seed++ {
		driveEquivalence(t, seed, false)
		driveEquivalence(t, seed, true)
	}
}

// InFlightLeases is a test helper counting outstanding leases.
func (sc *Scheduler) InFlightLeases() []int {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	ids := make([]int, 0, len(sc.leases))
	for id := range sc.leases {
		ids = append(ids, id)
	}
	return ids
}

// The selection index must actually be exercised on the default path:
// oracle picks, epoch bumps, rescoring bounded by dirt, and shadow reuse
// within a lease batch.
func TestSelectionStatsCounters(t *testing.T) {
	sc := equivScheduler(t, 8, false)
	leases, err := sc.PickWork(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 6 {
		t.Fatalf("picked %d leases", len(leases))
	}
	st := sc.SelectionStats()
	if st.OraclePicks == 0 {
		t.Fatalf("no oracle picks: %+v", st)
	}
	if st.Picks != 6 {
		t.Fatalf("picks = %d, want 6", st.Picks)
	}
	if st.JobsRescored == 0 {
		t.Fatalf("dirty-epoch machinery idle: %+v", st)
	}
	// Leases alone never dirty a job (the greedy gap reads the real
	// bandit, which leases don't touch); only the completion below may.
	if st.EpochBumps != 0 {
		t.Fatalf("picks bumped epochs: %+v", st)
	}
	// Completing dirties exactly one job; the next batch must re-score
	// only it — not all 8.
	if err := sc.Complete(leases[0], 0.8, 1); err != nil {
		t.Fatal(err)
	}
	if got := sc.SelectionStats().EpochBumps; got == 0 {
		t.Fatal("completion did not bump the job's dirty epoch")
	}
	before := sc.SelectionStats().JobsRescored
	if _, err := sc.PickWork(7); err != nil {
		t.Fatal(err)
	}
	after := sc.SelectionStats().JobsRescored
	if delta := after - before; delta > 1 {
		t.Fatalf("pick after one completion re-scored %d jobs, want ≤1 of 8 (the dirtied job only)", delta)
	}

	// A deep batch leases several arms per job: shadows must be built once
	// per (job, batch) and revived for the follow-up picks.
	if _, err := sc.PickWork(24); err != nil {
		t.Fatal(err)
	}
	st = sc.SelectionStats()
	if st.ShadowsBuilt == 0 || st.ShadowsReused == 0 {
		t.Fatalf("shadow cache idle after deep batch: %+v", st)
	}

	// Legacy mode must not touch the index.
	sc.SetLegacySelection(true)
	legacyBefore := sc.SelectionStats()
	if _, err := sc.PickWork(8); err != nil {
		t.Fatal(err)
	}
	legacyAfter := sc.SelectionStats()
	if legacyAfter.OraclePicks != legacyBefore.OraclePicks {
		t.Fatal("legacy mode still used the oracle")
	}
}
