package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/storage"
)

// The randomized invariant suite: N seeds of adversarial interleavings over
// the full lease lifecycle — picks, completions, double-completion races,
// releases, heartbeats, worker kills (lease expiry), priority preemption
// and budget exhaustion — each followed by a crash and WAL recovery. Three
// invariants must hold on every seed:
//
//  1. no candidate is ever trained (observed) twice;
//  2. no lease is ever double-completed — the second settle always fails
//     with ErrLeaseConflict;
//  3. post-crash WAL replay reproduces the live scheduler's durable state
//     bit-for-bit: per-job Status (models, rounds, costs, abandon/budget
//     markers) and the round counter are equal, and draining the recovered
//     scheduler to exhaustion never re-trains a recorded candidate.
//
// The seed count scales with the environment: 4 under -short (the race CI
// job), 12 by default, and INVARIANT_SEEDS overrides both — the nightly CI
// schedule runs 10× the default.
func TestRandomizedInvariants(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	if s := os.Getenv("INVARIANT_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("INVARIANT_SEEDS=%q is not a positive integer", s)
		}
		seeds = n
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			runInvariantSeed(t, int64(seed))
		})
	}
}

// invariantHarness is one seed's world: a durable scheduler under a fake
// clock, its admission controller, and the test's mirror of outstanding
// leases.
type invariantHarness struct {
	t    *testing.T
	rng  *rand.Rand
	sc   *server.Scheduler
	ctrl *admission.Controller

	mu  sync.Mutex
	now time.Time

	outstanding []*server.Lease
	trained     map[string]int // "job/candidate" → completed observations
	settled     map[int]bool   // lease id → already completed once
}

func (h *invariantHarness) clock() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

func (h *invariantHarness) advance(d time.Duration) {
	h.mu.Lock()
	h.now = h.now.Add(d)
	h.mu.Unlock()
}

func (h *invariantHarness) dropOutstanding(id int) {
	for i, l := range h.outstanding {
		if l.ID == id {
			h.outstanding = append(h.outstanding[:i], h.outstanding[i+1:]...)
			return
		}
	}
}

func runInvariantSeed(t *testing.T, seed int64) {
	dir := t.TempDir()
	quotas := admission.Config{Tenants: map[string]admission.Quota{
		"alice": {Class: admission.ClassGuaranteed},
		"bob":   {Class: admission.ClassStandard},
		"carol": {Class: admission.ClassBestEffort},
	}}
	open := func() (*server.Scheduler, *admission.Controller, *storage.Log) {
		sc := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), 42), nil, "")
		ctrl, err := admission.NewController(quotas)
		if err != nil {
			t.Fatal(err)
		}
		sc.SetAdmission(ctrl)
		log, rec, err := storage.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Recover(rec, log); err != nil {
			t.Fatal(err)
		}
		return sc, ctrl, log
	}

	sc, ctrl, _ := open()
	h := &invariantHarness{
		t:       t,
		rng:     rand.New(rand.NewSource(seed)),
		sc:      sc,
		ctrl:    ctrl,
		now:     time.Unix(10_000, 0),
		trained: make(map[string]int),
		settled: make(map[int]bool),
	}
	sc.SetClock(h.clock)
	sc.SetLeaseTTL(time.Second)

	jobs := make(map[string]string) // tenant → job id
	for _, tenant := range []string{"alice", "bob", "carol"} {
		job, err := sc.Submit(tenant, tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		jobs[tenant] = job.ID
	}

	key := func(l *server.Lease) string { return l.JobID + "/" + l.Candidate.Name() }

	complete := func(l *server.Lease) {
		err := h.sc.Complete(l, 0.2+0.6*h.rng.Float64(), 1+10*h.rng.Float64())
		h.dropOutstanding(l.ID)
		if err == nil {
			if h.settled[l.ID] {
				t.Fatalf("lease %d (%s) completed twice", l.ID, key(l))
			}
			h.settled[l.ID] = true
			h.trained[key(l)]++
			if h.trained[key(l)] > 1 {
				t.Fatalf("candidate %s trained %d times", key(l), h.trained[key(l)])
			}
			return
		}
		// A failed completion must never have recorded an observation; the
		// only acceptable failure in this workload is a lease-lifecycle
		// conflict (expired, preempted, budget-drained, double-settled).
		if !errors.Is(err, server.ErrLeaseConflict) {
			t.Fatalf("complete of %s failed outside the conflict protocol: %v", key(l), err)
		}
	}

	const ops = 160
	for op := 0; op < ops; op++ {
		switch h.rng.Intn(10) {
		case 0, 1, 2: // lease new work, mostly onto named workers
			batch, err := h.sc.PickWork(1 + h.rng.Intn(4))
			if err != nil {
				t.Fatalf("op %d PickWork: %v", op, err)
			}
			for _, l := range batch {
				if h.rng.Intn(4) > 0 {
					worker := fmt.Sprintf("worker-%d", 1+h.rng.Intn(3))
					if err := h.sc.AssignLease(l, worker); err != nil {
						t.Fatalf("op %d assign: %v", op, err)
					}
				}
				h.outstanding = append(h.outstanding, l)
			}
		case 3, 4, 5: // complete a random outstanding lease
			if len(h.outstanding) == 0 {
				continue
			}
			complete(h.outstanding[h.rng.Intn(len(h.outstanding))])
		case 6: // double-completion race: settle, then settle again
			if len(h.outstanding) == 0 {
				continue
			}
			l := h.outstanding[h.rng.Intn(len(h.outstanding))]
			complete(l)
			if err := h.sc.Complete(l, 0.9, 1); !errors.Is(err, server.ErrLeaseConflict) {
				t.Fatalf("second completion of lease %d did not conflict: %v", l.ID, err)
			}
		case 7: // release a lease untrained (drain / engine shutdown)
			if len(h.outstanding) == 0 {
				continue
			}
			l := h.outstanding[h.rng.Intn(len(h.outstanding))]
			if err := h.sc.Release(l); err != nil && !errors.Is(err, server.ErrLeaseConflict) {
				t.Fatalf("release: %v", err)
			}
			h.dropOutstanding(l.ID)
		case 8: // worker kill: heartbeat a surviving subset, expire the rest
			for _, l := range h.outstanding {
				if l.Worker != "" && h.rng.Intn(2) == 0 {
					_ = h.sc.HeartbeatLease(l.ID) // may already be gone; fine
				}
			}
			h.advance(time.Duration(600+h.rng.Intn(900)) * time.Millisecond)
			expired, err := h.sc.ExpireLeases()
			if err != nil {
				t.Fatalf("expire: %v", err)
			}
			for _, l := range expired {
				if l.Worker == "" {
					t.Fatalf("unassigned lease %d expired", l.ID)
				}
				h.dropOutstanding(l.ID)
			}
		case 9: // priority preemption, and sometimes a budget cliff for carol
			if h.rng.Intn(3) == 0 {
				cost := h.sc.TenantCost("carol")
				if cost > 0 && h.ctrl.Budget("carol") == 0 {
					if err := h.ctrl.SetQuota("carol", admission.Quota{
						Class: admission.ClassBestEffort, Budget: cost + 1e-9,
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			victim, err := h.sc.PreemptForPriority()
			if err != nil {
				t.Fatalf("preempt: %v", err)
			}
			if victim != nil {
				if victim.JobID != jobs["carol"] {
					t.Fatalf("preempted %s; only best-effort leases are preemptible", victim.JobID)
				}
				h.dropOutstanding(victim.ID)
				// The late report must bounce.
				if err := h.sc.Complete(victim, 0.5, 1); !errors.Is(err, server.ErrLeaseConflict) {
					t.Fatalf("completion after preemption did not conflict: %v", err)
				}
			}
		}
		// Sprinkle user-path traffic through the same WAL.
		if h.rng.Intn(5) == 0 {
			id := jobs[[]string{"alice", "bob", "carol"}[h.rng.Intn(3)]]
			if _, err := h.sc.Feed(id, []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil &&
				!errors.Is(err, admission.ErrQuotaExceeded) {
				t.Fatalf("feed: %v", err)
			}
		}
	}

	// Crash: abandon the scheduler and its log mid-flight, leases
	// outstanding, no Close, no Compact.
	liveRounds := sc.Rounds()
	liveCosts := sc.TenantCosts()
	liveStatus := make(map[string]server.Status)
	for tenant, id := range jobs {
		st, err := sc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		liveStatus[tenant] = st
	}

	sc2, _, _ := open()
	if got := sc2.Rounds(); got != liveRounds {
		t.Fatalf("recovered %d rounds, live had %d", got, liveRounds)
	}
	if got := sc2.TenantCosts(); !reflect.DeepEqual(got, liveCosts) {
		t.Fatalf("recovered tenant costs %v, live %v", got, liveCosts)
	}
	if sc2.InFlight() != 0 {
		t.Fatalf("recovered scheduler has %d leases in flight", sc2.InFlight())
	}
	for tenant, id := range jobs {
		st, err := sc2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(st, liveStatus[tenant]) {
			t.Fatalf("recovered status of %s diverged:\nlive: %+v\nrec:  %+v", tenant, liveStatus[tenant], st)
		}
	}

	// Drain the recovered scheduler to exhaustion: every remaining
	// candidate trains at most once, and nothing already recorded trains
	// again.
	if _, err := sc2.RunRounds(1 << 20); err != nil {
		t.Fatalf("post-recovery drain: %v", err)
	}
	for tenant, id := range jobs {
		st, err := sc2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]int)
		for _, m := range st.Models {
			seen[m.Name]++
			if seen[m.Name] > 1 {
				t.Fatalf("%s candidate %s recorded %d times after recovery+drain", tenant, m.Name, seen[m.Name])
			}
		}
		if st.BudgetExhausted && st.Trained != liveStatus[tenant].Trained {
			t.Fatalf("%s budget-drained job trained %d more candidates after recovery",
				tenant, st.Trained-liveStatus[tenant].Trained)
		}
	}
}
