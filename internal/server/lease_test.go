package server_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
)

// A lease batch makes many picker calls with no observation in between;
// HYBRID's freeze detector must count rounds, not leases, or a single
// PickWork would latch it into round-robin before training starts.
func TestPickWorkDoesNotFreezeHybrid(t *testing.T) {
	hybrid := core.NewHybridPicker()
	sc := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), 42), hybrid, "")
	if _, err := sc.Submit("a", imgProgram); err != nil {
		t.Fatal(err)
	}
	work, err := sc.PickWork(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) != 16 {
		t.Fatalf("leased %d, want 16", len(work))
	}
	if hybrid.Frozen() {
		t.Error("one lease batch froze the HYBRID picker into round-robin")
	}
}

func TestPickWorkLeasesDistinctArms(t *testing.T) {
	sc := newScheduler(t)
	job, err := sc.Submit("a", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	work, err := sc.PickWork(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) != 8 {
		t.Fatalf("leased %d items, want 8", len(work))
	}
	seen := map[int]bool{}
	for _, l := range work {
		if l.JobID != job.ID {
			t.Errorf("lease for unknown job %q", l.JobID)
		}
		if seen[l.Arm] {
			t.Errorf("arm %d leased twice in one batch", l.Arm)
		}
		seen[l.Arm] = true
		if l.Candidate.Name() != job.Candidates[l.Arm].Name() {
			t.Errorf("lease arm %d carries candidate %q", l.Arm, l.Candidate.Name())
		}
	}
	if sc.InFlight() != 8 {
		t.Errorf("in-flight %d, want 8", sc.InFlight())
	}
	// Already at the cap: no new leases.
	more, err := sc.PickWork(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 0 {
		t.Errorf("PickWork above cap leased %d more", len(more))
	}
}

func TestPickWorkSpreadsAcrossJobs(t *testing.T) {
	sc := newScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Submit("b", tsProgram); err != nil {
		t.Fatal(err)
	}
	// 8 candidates total across two 4-candidate jobs: a full lease-out must
	// cover both jobs and every arm exactly once.
	work, err := sc.PickWork(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) != 8 {
		t.Fatalf("leased %d items, want all 8", len(work))
	}
	perJob := map[string]int{}
	for _, l := range work {
		perJob[l.JobID]++
	}
	if len(perJob) != 2 {
		t.Errorf("leases cover %d jobs, want 2", len(perJob))
	}
}

func TestCompleteAndReleaseLifecycle(t *testing.T) {
	sc := newScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	work, err := sc.PickWork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(work) != 2 {
		t.Fatalf("leased %d", len(work))
	}
	if err := sc.Complete(work[0], 0.8, 10); err != nil {
		t.Fatal(err)
	}
	if sc.Rounds() != 1 || sc.InFlight() != 1 {
		t.Errorf("rounds %d in-flight %d after one completion", sc.Rounds(), sc.InFlight())
	}
	// Double-complete and complete-after-release must error.
	if err := sc.Complete(work[0], 0.8, 10); err == nil {
		t.Error("double Complete accepted")
	}
	if err := sc.Release(work[1]); err != nil {
		t.Fatal(err)
	}
	if err := sc.Complete(work[1], 0.5, 10); err == nil {
		t.Error("Complete after Release accepted")
	}
	if err := sc.Release(work[1]); err == nil {
		t.Error("double Release accepted")
	}
	// The released arm is selectable again.
	again, err := sc.PickWork(4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range again {
		if l.Arm == work[1].Arm {
			found = true
		}
	}
	if !found {
		t.Errorf("released arm %d never re-leased (got %v)", work[1].Arm, again)
	}

	if _, err := sc.PickWork(0); err == nil {
		t.Error("non-positive maxInFlight accepted")
	}
	if err := sc.Complete(nil, 0, 0); err == nil {
		t.Error("nil lease accepted by Complete")
	}
	if err := sc.Release(nil); err == nil {
		t.Error("nil lease accepted by Release")
	}
}

func TestRestoreRejectsOutstandingLeases(t *testing.T) {
	mk := func() *server.Scheduler {
		return server.NewScheduler(server.NewSimTrainer(cluster.NewPool(2, 0.9), 1), nil, "")
	}
	old := mk()
	if _, err := old.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := old.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := mk()
	if _, err := fresh.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.PickWork(1); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&buf); err == nil {
		t.Error("Restore with outstanding leases accepted")
	}
}
