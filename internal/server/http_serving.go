package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
)

// HTTP surface of the serving path: POST /jobs/{id}/infer/batch answers
// many inputs with one lock acquisition and one JSON body; POST
// /jobs/{id}/infer/stream answers the same request shape as NDJSON over a
// chunked response, flushing as it goes so slow readers exert backpressure
// on the encoder instead of buffering the whole result set.

// InferBatchRequest is the POST /jobs/{id}/infer/batch (and infer/stream)
// payload.
type InferBatchRequest struct {
	Inputs [][]float64 `json:"inputs"`
}

// InferBatchResponse is the batched infer reply: Outputs[i] predicts
// Inputs[i], all from the single model named Model.
type InferBatchResponse struct {
	Outputs [][]float64 `json:"outputs"`
	Model   string      `json:"model"`
}

// InferStreamHeader is the first NDJSON line of an infer/stream response.
// The model and count are fixed for the whole stream (one session), so
// they are sent once instead of per line.
type InferStreamHeader struct {
	Model string `json:"model"`
	Count int    `json:"count"`
}

// InferStreamLine is one per-input NDJSON line of an infer/stream
// response: the prediction for Inputs[Index].
type InferStreamLine struct {
	Index  int       `json:"index"`
	Output []float64 `json:"output"`
}

func (a *API) handleInferBatch(w http.ResponseWriter, r *http.Request, id string) {
	var req InferBatchRequest
	if !requirePost(w, r) || !ReadJSON(w, r, &req) {
		return
	}
	outs, model, err := a.sched.InferBatch(id, req.Inputs)
	if err != nil {
		WriteError(w, userErrStatus(err), err)
		return
	}
	if outs == nil {
		outs = [][]float64{}
	}
	WriteJSON(w, http.StatusOK, InferBatchResponse{Outputs: outs, Model: model})
}

// handleInferStream serves the NDJSON streaming variant. The whole batch
// is validated before the first byte of the 200 is written — after that
// the computation is pure, so the stream cannot fail mid-flight for any
// reason but the client going away. Lines are flushed individually: the
// session holds no job lock, so a slow consumer stalls only its own
// connection.
func (a *API) handleInferStream(w http.ResponseWriter, r *http.Request, id string) {
	var req InferBatchRequest
	if !requirePost(w, r) || !ReadJSON(w, r, &req) {
		return
	}
	sess, err := a.sched.NewInferSession(id)
	if err != nil {
		WriteError(w, userErrStatus(err), err)
		return
	}
	for i, in := range req.Inputs {
		if err := sess.checkInput(in); err != nil {
			WriteError(w, userErrStatus(err), fmt.Errorf("input %d: %w", i, err))
			return
		}
	}
	inferRequests.With("stream").Inc()
	inferBatchSize.Observe(uint64(len(req.Inputs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flush := func() bool {
		if bw.Flush() != nil {
			return false // client gone; stop computing for a dead socket
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	_ = enc.Encode(InferStreamHeader{Model: sess.Model, Count: len(req.Inputs)})
	if !flush() {
		return
	}
	var out []float64
	for i, in := range req.Inputs {
		out = sess.apply(in, out)
		_ = enc.Encode(InferStreamLine{Index: i, Output: out})
		if !flush() {
			return
		}
	}
}
