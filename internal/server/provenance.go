package server

import (
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/telemetry"
)

// Decision provenance: every scheduling choice the paper's multi-tenant
// scheduler makes — which tenant's arm to lease, who is admitted, who is
// preempted, whose budget drained their jobs — emits a compact
// DecisionRecord into a bounded in-memory ring, queryable via
// GET /admin/decisions and linked (where one exists) to the lease's trace
// ID, so "why did the scheduler do that" is answerable per decision
// instead of by grepping aggregate metrics.

// Decision kinds.
const (
	DecisionPick            = "pick"
	DecisionAdmission       = "admission"
	DecisionPreemption      = "preemption"
	DecisionBudgetExhausted = "budget_exhausted"
)

// ArmScore is one row of a pick decision's top-K UCB table: an arm that
// competed and the upper confidence bound it held at decision time.
type ArmScore struct {
	Arm int     `json:"arm"`
	UCB float64 `json:"ucb"`
}

// DecisionRecord is one scheduler decision, compact enough to emit on the
// pick hot path. Fields beyond Seq/Kind/Time are kind-specific.
type DecisionRecord struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	TimeNS int64  `json:"time_unix_nano"`
	// Trace links the decision to a lease's span tree ("" when the
	// decision is not about one lease, e.g. admission verdicts).
	Trace  string `json:"trace,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Job    string `json:"job,omitempty"`

	// Pick: the winning arm, its (hallucinated) UCB, the top-K real-
	// posterior UCBs it competed against, and the candidate-set sizes.
	Candidate  string     `json:"candidate,omitempty"`
	Arm        int        `json:"arm"`
	UCB        float64    `json:"ucb,omitempty"`
	TopUCB     []ArmScore `json:"top_ucb,omitempty"`
	Candidates int        `json:"candidate_set,omitempty"` // selectable arms in the winning job
	Jobs       int        `json:"jobs,omitempty"`          // jobs in the pick's snapshot

	// Quota / budget state at decision time.
	Class        string             `json:"class,omitempty"`
	ClassWeights map[string]float64 `json:"class_weights,omitempty"`
	BudgetLimit  float64            `json:"budget_limit,omitempty"`
	BudgetUsed   float64            `json:"budget_used,omitempty"`

	// Outcome ("granted"/"rejected" for admission, "preempted", …) and a
	// free-form detail (rejection reason, demanding job, …).
	Outcome string `json:"outcome,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// decisionBufferCap bounds the decision ring. Decisions are ~two orders
// of magnitude rarer than spans (one per lease, not one per stage), so a
// fixed cap needs no flag.
const decisionBufferCap = 1024

var decisionsEmitted = telemetry.Default().CounterVec("easeml_decisions_total",
	"Scheduler decision records emitted, by kind.", "kind")

// decisionRing is a bounded mutex-guarded ring of decision records. The
// zero value is ready to use (the buffer is allocated on first add), so
// Scheduler embeds it without constructor changes.
type decisionRing struct {
	mu   sync.Mutex
	buf  []*DecisionRecord
	head uint64 // records ever added; buf[(head-1)%cap] is newest
	seq  uint64
}

func (r *decisionRing) add(d *DecisionRecord) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]*DecisionRecord, decisionBufferCap)
	}
	r.seq++
	d.Seq = r.seq
	if d.TimeNS == 0 {
		d.TimeNS = time.Now().UnixNano()
	}
	r.buf[r.head%uint64(len(r.buf))] = d
	r.head++
	r.mu.Unlock()
	decisionsEmitted.With(d.Kind).Inc()
}

// snapshot returns the live records newest-first.
func (r *decisionRing) snapshot() []*DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.head
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]*DecisionRecord, 0, n)
	for i := uint64(1); i <= n; i++ {
		out = append(out, r.buf[(r.head-i)%uint64(len(r.buf))])
	}
	return out
}

// DecisionFilter narrows a Decisions listing; zero values match everything.
type DecisionFilter struct {
	Job    string
	Tenant string
	Kind   string
	Trace  string
	Limit  int
}

// Decisions lists recorded scheduler decisions newest-first, filtered.
func (sc *Scheduler) Decisions(f DecisionFilter) []DecisionRecord {
	var out []DecisionRecord
	for _, d := range sc.decisions.snapshot() {
		if f.Job != "" && d.Job != f.Job {
			continue
		}
		if f.Tenant != "" && d.Tenant != f.Tenant {
			continue
		}
		if f.Kind != "" && d.Kind != f.Kind {
			continue
		}
		if f.Trace != "" && d.Trace != f.Trace {
			continue
		}
		out = append(out, *d)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// emitAdmissionDecision records an admission verdict for a tenant's job
// submission. Called from Submit with no scheduler locks held.
func (sc *Scheduler) emitAdmissionDecision(tenant, outcome string, cause error) {
	d := &DecisionRecord{
		Kind:         DecisionAdmission,
		Tenant:       tenant,
		Outcome:      outcome,
		ClassWeights: classWeights,
	}
	if sc.adm != nil {
		d.Class = string(sc.adm.ClassOf(tenant))
		d.BudgetLimit = sc.adm.Budget(tenant)
		d.BudgetUsed = sc.TenantCost(tenant)
	}
	if cause != nil {
		d.Detail = cause.Error()
	}
	sc.decisions.add(d)
}

// classWeights is the static fair-share weight table recorded on pick
// decisions, built once from the admission class constants.
var classWeights = map[string]float64{
	string(admission.ClassGuaranteed): admission.ClassGuaranteed.Weight(),
	string(admission.ClassStandard):   admission.ClassStandard.Weight(),
	string(admission.ClassBestEffort): admission.ClassBestEffort.Weight(),
}

// Span operations of the lease lifecycle. The root "lease" span opens at
// selection and closes at the lease's terminal outcome (completed /
// released / abandoned / expired / preempted / conflict); the pick_* and
// settle children share the exact stage boundaries the PR-6 histograms
// observe, so the span tree and the latency histograms always agree.
var (
	opLease           = telemetry.SpanOp("lease")
	opPickSelect      = telemetry.SpanOp("pick_select")
	opPickLockWait    = telemetry.SpanOp("pick_lock_wait")
	opPickHallucinate = telemetry.SpanOp("pick_hallucinate")
	opPickIndexRepair = telemetry.SpanOp("pick_index_repair")
	opSettle          = telemetry.SpanOp("settle")
	opWALAppend       = telemetry.SpanOp("wal_append")
)

// finishLeaseSpan closes a lease's root span with its terminal outcome.
// Safe on leases that predate span instrumentation (recovered fixtures)
// and idempotent across racing terminal paths — only the first End
// records.
func finishLeaseSpan(l *Lease, outcome string, err error) {
	if l == nil || l.span == nil {
		return
	}
	l.span.SetAttr("outcome", outcome)
	l.span.Fail(err)
	l.span.End()
}

// emitPickProvenance records one pick's spans and DecisionRecord. Called
// from pickNextLocked with every scheduler lock held: it only reads the
// already-extracted decision state and touches leaf mutexes (the decision
// ring, the flight recorder).
//
// topUCB extracts the top-K entries of the job's real-posterior UCB
// surface by partial selection — no sort, no extra allocation beyond the
// K-row table — so the record stays cheap at bench arm counts.
func (sc *Scheduler) emitPickProvenance(l *Lease, job *Job, surface []float64, leasedBefore, jobsInSnapshot int, selectT0, hallStart time.Time, hallDur, repairDur time.Duration) {
	root := telemetry.NewSpanAt(l.Trace, "", opLease, selectT0)
	root.SetAttr("job", l.JobID)
	root.SetAttr("tenant", job.Name)
	root.SetAttr("candidate", l.Candidate.Name())
	l.span = root

	now := time.Now()
	sel := telemetry.NewSpanAt(l.Trace, root.ID(), opPickSelect, selectT0)
	sel.EndAt(now)
	if hallDur > 0 {
		h := telemetry.NewSpanAt(l.Trace, root.ID(), opPickHallucinate, hallStart)
		h.EndAt(hallStart.Add(hallDur))
	}
	if repairDur > 0 {
		rep := telemetry.NewSpanAt(l.Trace, root.ID(), opPickIndexRepair, now.Add(-repairDur))
		rep.EndAt(now)
	}

	const topK = 3
	var top [topK]ArmScore
	nTop, selectable := 0, 0
	for arm, ucb := range surface {
		if ucb != ucb { // NaN: tried or retired
			continue
		}
		selectable++
		if nTop < topK {
			top[nTop] = ArmScore{Arm: arm, UCB: ucb}
			nTop++
			continue
		}
		low := 0
		for i := 1; i < topK; i++ {
			if top[i].UCB < top[low].UCB {
				low = i
			}
		}
		if ucb > top[low].UCB {
			top[low] = ArmScore{Arm: arm, UCB: ucb}
		}
	}

	d := &DecisionRecord{
		Kind:         DecisionPick,
		TimeNS:       now.UnixNano(),
		Trace:        l.Trace,
		Tenant:       job.Name,
		Job:          l.JobID,
		Candidate:    l.Candidate.Name(),
		Arm:          l.Arm,
		UCB:          l.UCB,
		TopUCB:       append([]ArmScore(nil), top[:nTop]...),
		Candidates:   selectable - leasedBefore,
		Jobs:         jobsInSnapshot,
		Class:        string(job.Class),
		ClassWeights: classWeights,
		BudgetUsed:   job.tenant.Bandit.CumulativeCost(),
	}
	if sc.adm != nil {
		d.BudgetLimit = sc.adm.Budget(job.Name)
	}
	sc.decisions.add(d)
}
