package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dsl"
	"repro/internal/storage"
)

// Boot-time recovery and log compaction: the wiring between the scheduler
// and internal/storage's write-ahead log. A -data-dir deployment calls
// storage.OpenDir at boot (snapshot load + WAL tail replay), hands the
// result to Recover, and triggers Compact from POST /admin/snapshot or on
// graceful shutdown.

// Recover rebuilds a fresh scheduler from a recovered data directory and
// attaches the log for future appends. Every job is resubmitted from its
// logged program (reproducing the same id and candidate surface
// deterministically), examples and refine state land in the per-task
// stores, completed runs are fed back into each job's bandit so the GP
// posterior resumes where the crashed process stopped, and abandoned
// candidates stay retired. Leases of the previous process are deliberately
// not restored: their arms are simply untried in the recovered state, so
// the first scheduling pass re-queues that work instead of losing it.
//
// rec may be nil (a brand-new data directory): only the log is attached.
func (sc *Scheduler) Recover(rec *storage.RecoveredState, log *storage.Log) error {
	sc.jobsMu.Lock()
	defer sc.jobsMu.Unlock()
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if len(sc.jobs) != 0 || sc.rounds != 0 || len(sc.leases) != 0 {
		return fmt.Errorf("server: Recover requires a fresh scheduler (have %d jobs, %d rounds, %d leases)",
			len(sc.jobs), sc.rounds, len(sc.leases))
	}
	if rec != nil {
		// Adopt the recovered store wholesale: the jobs built below attach
		// to its task stores, so examples and model records are already in
		// place and only the bandit replay remains.
		sc.store = rec.Store
		for _, meta := range rec.Jobs {
			prog, err := dsl.ParseCached(meta.Program)
			if err != nil {
				return fmt.Errorf("server: recovering job %s: parsing logged program: %w", meta.ID, err)
			}
			job, err := sc.buildJob(meta.ID, meta.Name, prog)
			if err != nil {
				return fmt.Errorf("server: recovering job %s: %w", meta.ID, err)
			}
			if n := jobNumber(meta.ID); n > sc.nextID {
				sc.nextID = n
			}
			job.tenant.ID = len(sc.jobs)
			sc.jobs = append(sc.jobs, job)
			sc.byID[meta.ID] = job
		}
		for _, job := range sc.jobs {
			job.mu.Lock()
			err := sc.replayTaskLocked(job, job.store)
			if err == nil {
				err = sc.retireAbandonedLocked(job, rec.Abandoned[job.ID])
			}
			if err == nil && rec.BudgetExhausted[job.ID] {
				// The previous process drained this job on budget
				// exhaustion; a recovered process must agree rather than
				// resume training it. Remaining arms are re-retired — the
				// replayed observations already restored the cumulative
				// cost, so status and the WAL tell one story.
				job.budgetExhausted = true
				for arm := 0; arm < job.tenant.Bandit.NumArms(); arm++ {
					job.tenant.Bandit.Retire(arm)
				}
			}
			if err == nil && sc.adm != nil {
				// Re-register surviving jobs with the admission controller
				// (without gating: they were admitted by a previous
				// process). Finished jobs only mark themselves notified, so
				// they never free a slot they no longer hold.
				if job.failed != "" || job.budgetExhausted || job.tenant.Bandit.Exhausted() {
					job.doneNotified = true
				} else {
					sc.adm.NoteJob(job.Name)
				}
			}
			job.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	sc.log = log
	return nil
}

// retireAbandonedLocked re-retires the candidates a previous process
// abandoned after repeated training failures. Callers hold job.mu.
func (sc *Scheduler) retireAbandonedLocked(job *Job, names []string) error {
	if len(names) == 0 {
		return nil
	}
	candidateIdx := make(map[string]int, len(job.Candidates))
	for i, c := range job.Candidates {
		candidateIdx[c.Name()] = i
	}
	for _, name := range names {
		arm, ok := candidateIdx[name]
		if !ok {
			return fmt.Errorf("server: abandoned candidate %q does not match a candidate of %q", name, job.ID)
		}
		job.tenant.Bandit.Retire(arm)
		job.abandoned = append(job.abandoned, name)
	}
	return nil
}

// jobNumber extracts the numeric suffix of a "job-NNNN" id (0 when the id
// has a different shape — foreign ids simply don't advance the counter).
func jobNumber(id string) int {
	suffix, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(suffix)
	if err != nil {
		return 0
	}
	return n
}

// Compact folds the write-ahead log into the data directory's snapshot and
// drops the covered prefix, bounding boot-time replay. It errors without an
// attached log. Safe to call while the service is running: the sequence
// horizon is read *before* the job registry and abandoned sets are
// captured, so any event racing the capture stays in the WAL tail (every
// mutation lands in memory before its append, hence an event at or below
// the horizon is always reflected in the capture), and replay idempotency
// absorbs the overlap.
func (sc *Scheduler) Compact() error {
	if sc.log == nil {
		return fmt.Errorf("server: no write-ahead log attached (start with a data dir)")
	}
	through := sc.log.Seq()
	metas, abandoned, budgetExhausted := sc.captureState()
	return sc.log.Compact(metas, abandoned, budgetExhausted, sc.store, through)
}

// CompactIncremental folds only the oldest sealed WAL segment into the
// snapshot — an O(segment) pause instead of Compact's O(log) one, suited
// to being called periodically under sustained ingest. It reports whether
// a segment was folded (false when the log has no sealed segments yet).
// The captured state may run ahead of the folded segment's horizon; as
// with Compact, every mutation lands in memory before its WAL append, so
// the capture covers the horizon and replay idempotency absorbs the rest.
func (sc *Scheduler) CompactIncremental() (bool, error) {
	if sc.log == nil {
		return false, fmt.Errorf("server: no write-ahead log attached (start with a data dir)")
	}
	metas, abandoned, budgetExhausted := sc.captureState()
	return sc.log.CompactOldest(metas, abandoned, budgetExhausted, sc.store)
}

// captureState snapshots the durable scheduler state a compaction writes:
// job metas, abandoned candidates and budget-exhausted jobs.
func (sc *Scheduler) captureState() (metas []storage.JobMeta, abandoned map[string][]string, budgetExhausted []string) {
	jobs := sc.Jobs()
	metas = make([]storage.JobMeta, len(jobs))
	abandoned = make(map[string][]string)
	for i, job := range jobs {
		metas[i] = storage.JobMeta{ID: job.ID, Name: job.Name, Program: job.Program.String()}
		job.mu.Lock()
		if len(job.abandoned) > 0 {
			abandoned[job.ID] = append([]string(nil), job.abandoned...)
		}
		if job.budgetExhausted {
			budgetExhausted = append(budgetExhausted, job.ID)
		}
		job.mu.Unlock()
	}
	return metas, abandoned, budgetExhausted
}
