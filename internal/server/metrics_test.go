package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleValue finds the exposition sample whose name-plus-labels prefix
// matches exactly and returns its value; it fails the test when absent.
func sampleValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
		if err != nil {
			t.Fatalf("sample %s has unparseable value in %q: %v", sample, line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q", sample)
	return 0
}

// sampleLineRE is the shape of one Prometheus text-format sample:
// name{labels} value. Values are Go floats (formatFloat) or integers.
var sampleLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// GET /metrics must serve a parseable Prometheus exposition with the
// pick-stage and WAL histograms populated (non-zero p99) after real picks
// flow through a durable scheduler — the issue's acceptance scrape.
func TestPrometheusExpositionEndToEnd(t *testing.T) {
	sc, wal := newDurableScheduler(t, t.TempDir())
	defer wal.Close()
	if _, err := sc.Submit("metrics", recoveryTSProgram); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		work, err := sc.PickWork(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range work {
			if l.Trace == "" {
				t.Error("pick minted a lease without a trace ID")
			}
			if err := sc.Complete(l, 0.5, 1); err != nil {
				t.Fatal(err)
			}
		}
	}

	srv := httptest.NewServer(NewAPI(sc).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type %q, want Prometheus text v0.0.4", ct)
	}
	if resp.Header.Get("X-Easeml-Trace") == "" {
		t.Error("response is missing the X-Easeml-Trace header")
	}

	exposition := string(body)
	// Every non-comment line must parse as a sample — the CI smoke step
	// runs the same check via tools/metriclint -exposition.
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLineRE.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}

	// The acceptance histograms: populated with non-zero p99.
	for _, name := range []string{
		"easeml_pick_stage_select_seconds_p99",
		"easeml_pick_stage_lock_wait_seconds_p99",
		"easeml_pick_stage_wal_append_seconds_p99",
		"easeml_wal_append_seconds_p99",
	} {
		if v := sampleValue(t, exposition, name); v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	if v := sampleValue(t, exposition, "easeml_wal_append_seconds_count"); v <= 0 {
		t.Errorf("easeml_wal_append_seconds_count = %g, want > 0", v)
	}
	if v := sampleValue(t, exposition, "easeml_wal_seq"); v <= 0 {
		t.Errorf("easeml_wal_seq = %g, want > 0", v)
	}
	if v := sampleValue(t, exposition, "easeml_jobs"); v != 1 {
		t.Errorf("easeml_jobs = %g, want 1", v)
	}

	// A second scrape sees the first one's own HTTP traffic counted.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if v := sampleValue(t, string(body2), `easeml_http_requests_total{route="/metrics",code="200"}`); v < 1 {
		t.Errorf("easeml_http_requests_total for /metrics = %g, want >= 1", v)
	}
}

type stubFleet struct{}

func (stubFleet) FleetStatus() FleetStatus {
	return FleetStatus{Alive: 2, Dead: 1, Left: 3, RemoteLeases: 4, ExpiredLeases: 5, PreemptedLeases: 6}
}

// GET /admin/metrics keeps its JSON shape and gains the fleet and WAL
// sections when those subsystems are attached.
func TestAdminMetricsExtendedSections(t *testing.T) {
	sc, wal := newDurableScheduler(t, t.TempDir())
	defer wal.Close()
	if _, err := sc.Submit("sections", recoveryTSProgram); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(sc).WithFleet(stubFleet{}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Fleet == nil {
		t.Fatal("metrics response has no fleet section")
	}
	if m.Fleet.WorkersByState["alive"] != 2 || m.Fleet.WorkersByState["left"] != 3 {
		t.Errorf("fleet workers by state = %v", m.Fleet.WorkersByState)
	}
	if m.Fleet.ExpiredLeases != 5 || m.Fleet.PreemptedLeases != 6 {
		t.Errorf("fleet lease counters = %+v", m.Fleet)
	}
	if m.WAL == nil {
		t.Fatal("metrics response has no WAL section for a durable scheduler")
	}
	if m.WAL.Appends == 0 || m.WAL.Seq == 0 {
		t.Errorf("WAL stats not populated: %+v", m.WAL)
	}
	if m.Admission != nil {
		t.Error("admission section present without an admission controller")
	}
}
