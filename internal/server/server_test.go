package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/storage"
)

const imgProgram = "{input: {[Tensor[8, 8, 3]], []}, output: {[Tensor[2]], []}}"
const tsProgram = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"

func newScheduler(t testing.TB) *server.Scheduler {
	t.Helper()
	pool := cluster.NewPool(8, 0.9)
	return server.NewScheduler(server.NewSimTrainer(pool, 42), nil, "http://test:9000")
}

func TestSubmitGeneratesEverything(t *testing.T) {
	sc := newScheduler(t)
	job, err := sc.Submit("dogs-vs-cats", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	if job.Template != "image-classification" {
		t.Errorf("template %q", job.Template)
	}
	if len(job.Candidates) != 35 { // 7 models × (1 + 4 normalizations)
		t.Errorf("%d candidates, want 35", len(job.Candidates))
	}
	if !strings.Contains(job.Julia, "type Input") {
		t.Error("missing Julia codegen")
	}
	if !strings.Contains(job.Python, job.ID) {
		t.Error("python stub does not embed task id")
	}
}

func TestSubmitRejectsBadProgram(t *testing.T) {
	sc := newScheduler(t)
	if _, err := sc.Submit("bad", "{not a program}"); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestFeedRefineLifecycle(t *testing.T) {
	sc := newScheduler(t)
	job, err := sc.Submit("ts", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sc.Feed(job.ID, []float64{1, 2, 3, 4}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Schema enforcement.
	if _, err := sc.Feed(job.ID, []float64{1}, []float64{0, 1}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := sc.Feed(job.ID, []float64{1, 2, 3, 4}, []float64{0}); err == nil {
		t.Error("short output accepted")
	}
	if err := sc.Refine(job.ID, id, false); err != nil {
		t.Fatal(err)
	}
	st, err := sc.Status(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != 1 || st.Enabled != 0 {
		t.Errorf("status %+v", st)
	}
	if err := sc.Refine("nope", id, false); err == nil {
		t.Error("unknown job accepted")
	}
}

func TestSchedulingRoundsProduceModels(t *testing.T) {
	sc := newScheduler(t)
	jobA, err := sc.Submit("a", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := sc.Submit("b", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	ran, err := sc.RunRounds(10)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("ran %d rounds, want 10", ran)
	}
	stA, _ := sc.Status(jobA.ID)
	stB, _ := sc.Status(jobB.ID)
	if stA.Trained+stB.Trained != 10 {
		t.Errorf("trained %d+%d models, want 10", stA.Trained, stB.Trained)
	}
	// Multi-tenancy: both jobs must have been served (hybrid init sweep).
	if stA.Trained == 0 || stB.Trained == 0 {
		t.Errorf("a tenant starved: %d vs %d", stA.Trained, stB.Trained)
	}
	if stA.Best == nil || stA.Best.Accuracy <= 0 {
		t.Errorf("no best model: %+v", stA.Best)
	}
	// Best must be the max over trained models.
	for _, m := range stA.Models {
		if m.Accuracy > stA.Best.Accuracy {
			t.Errorf("best %g below trained model %g", stA.Best.Accuracy, m.Accuracy)
		}
	}
}

func TestRunRoundsExhausts(t *testing.T) {
	sc := newScheduler(t)
	job, err := sc.Submit("ts", tsProgram) // 4 candidates only
	if err != nil {
		t.Fatal(err)
	}
	ran, err := sc.RunRounds(100)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 4 {
		t.Errorf("ran %d rounds, want 4 (candidate count)", ran)
	}
	st, _ := sc.Status(job.ID)
	if st.Trained != 4 {
		t.Errorf("trained %d", st.Trained)
	}
}

func TestInfer(t *testing.T) {
	sc := newScheduler(t)
	job, err := sc.Submit("ts", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Infer(job.ID, []float64{1, 2, 3, 4}); err == nil {
		t.Error("infer before any training should fail")
	}
	if _, err := sc.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	out, model, err := sc.Infer(job.ID, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || model == "" {
		t.Errorf("infer = %v via %q", out, model)
	}
	// Deterministic for the same input and model.
	out2, _, err := sc.Infer(job.ID, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != out2[0] || out[1] != out2[1] {
		t.Error("infer is not deterministic")
	}
	if _, _, err := sc.Infer(job.ID, []float64{1}); err == nil {
		t.Error("wrong input arity accepted")
	}
}

func TestTrainerDeterministicAcrossSchedulers(t *testing.T) {
	run := func() float64 {
		sc := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), 42), nil, "")
		job, err := sc.Submit("a", imgProgram)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.RunRounds(5); err != nil {
			t.Fatal(err)
		}
		st, _ := sc.Status(job.ID)
		return st.Best.Accuracy
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different best accuracies %g vs %g", a, b)
	}
}

// Full integration over HTTP: submit → feed → rounds → status → infer,
// exercised through the typed client.
func TestHTTPEndToEnd(t *testing.T) {
	sc := newScheduler(t)
	srv := httptest.NewServer(server.NewAPI(sc).Handler())
	defer srv.Close()
	cl := client.New(srv.URL)
	ctx := context.Background()

	sub, err := cl.Submit(ctx, "dogs", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Template != "image-classification" || len(sub.Candidates) != 35 {
		t.Fatalf("submit response %+v", sub)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0] != sub.ID {
		t.Fatalf("jobs = %v, err %v", jobs, err)
	}

	in := make([]float64, 8*8*3)
	ids, err := cl.Feed(ctx, sub.ID, [][]float64{in}, [][]float64{{1, 0}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("feed: ids=%v err=%v", ids, err)
	}
	if err := cl.Refine(ctx, sub.ID, ids[0], false); err != nil {
		t.Fatal(err)
	}

	rr, err := cl.RunRounds(ctx, 3)
	if err != nil || rr.Ran != 3 {
		t.Fatalf("rounds: %+v err=%v", rr, err)
	}
	st, err := cl.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trained != 3 || st.Best == nil || st.Enabled != 0 || st.Examples != 1 {
		t.Fatalf("status %+v", st)
	}
	inf, err := cl.Infer(ctx, sub.ID, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Output) != 2 || inf.Model != st.Best.Name {
		t.Errorf("infer %+v", inf)
	}
}

func TestHTTPErrors(t *testing.T) {
	sc := newScheduler(t)
	srv := httptest.NewServer(server.NewAPI(sc).Handler())
	defer srv.Close()
	cl := client.New(srv.URL)
	ctx := context.Background()

	if _, err := cl.Submit(ctx, "bad", "nope"); err == nil {
		t.Error("bad program accepted over HTTP")
	}
	if _, err := cl.Status(ctx, "missing"); err == nil {
		t.Error("missing job status should error")
	}
	if _, err := cl.Feed(ctx, "missing", [][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Error("feed to missing job should error")
	}
	if _, err := cl.RunRounds(ctx, -1); err == nil {
		t.Error("negative round count accepted")
	}
	if _, err := cl.Feed(ctx, "missing", [][]float64{{1}, {2}}, [][]float64{{1}}); err == nil {
		t.Error("mismatched feed arity accepted")
	}
}

func TestSimTrainerCostsPositiveAndStable(t *testing.T) {
	st := server.NewSimTrainer(cluster.NewPool(4, 0.9), 7)
	sc := server.NewScheduler(st, nil, "")
	job, err := sc.Submit("a", imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range job.Candidates {
		c1, err1 := st.EstimateCost(job.ID, c)
		c2, err2 := st.EstimateCost(job.ID, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("candidate %q cost errors %v/%v", c.Name(), err1, err2)
		}
		if c1 <= 0 || c1 != c2 {
			t.Fatalf("candidate %q cost %g/%g", c.Name(), c1, c2)
		}
	}
	// Unknown jobs and candidates surface as errors, not panics: engine
	// workers must never be able to crash the server.
	if _, _, err := st.Train("missing", job.Candidates[0]); err == nil {
		t.Error("Train on unregistered job should error")
	}
	if _, err := st.EstimateCost("missing", job.Candidates[0]); err == nil {
		t.Error("EstimateCost on unregistered job should error")
	}
	// Training advances the shared pool's clock.
	before := st.Pool.Now()
	if _, err := sc.RunRounds(1); err != nil {
		t.Fatal(err)
	}
	if st.Pool.Now() <= before {
		t.Error("training did not consume GPU time")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	sc := newScheduler(t)
	srv := httptest.NewServer(server.NewAPI(sc).Handler())
	defer srv.Close()

	cl := client.New(srv.URL)
	ctx := context.Background()
	sub, err := cl.Submit(ctx, "snap", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Feed(ctx, sub.ID, [][]float64{{1, 2, 3, 4}}, [][]float64{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunRounds(ctx, 2); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/admin/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	restored, err := storage.LoadStore(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := restored.Task(sub.ID)
	if !ok {
		t.Fatalf("restored store missing task %s", sub.ID)
	}
	if len(ts.Examples()) != 1 || len(ts.Models()) != 2 {
		t.Errorf("restored %d examples, %d models", len(ts.Examples()), len(ts.Models()))
	}
	best, ok := ts.Best()
	if !ok || best.Accuracy <= 0 {
		t.Errorf("restored best %+v", best)
	}
	// POST is the compaction trigger; without a data dir it answers 409.
	postResp, err := http.Post(srv.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusConflict {
		t.Errorf("POST snapshot without a data dir returned %d, want 409", postResp.StatusCode)
	}
	// Other methods are rejected.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/admin/snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE snapshot returned %d", delResp.StatusCode)
	}
}

// Crash-restart path: snapshot a running service, build a fresh scheduler,
// resubmit the same jobs, restore — the best model, the model history and
// the bandit's tried set must survive, and scheduling must continue without
// retraining completed candidates.
func TestRestoreResumesService(t *testing.T) {
	mk := func() *server.Scheduler {
		return server.NewScheduler(server.NewSimTrainer(cluster.NewPool(4, 0.9), 42), nil, "")
	}
	old := mk()
	if _, err := old.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Submit("b", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Feed("job-0001", []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := old.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := old.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	oldStatus, _ := old.Status("job-0001")

	fresh := mk()
	if _, err := fresh.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Submit("b", tsProgram); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := fresh.Status("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	if st.Trained != oldStatus.Trained || st.Examples != 1 {
		t.Errorf("restored status %+v, want %d trained", st, oldStatus.Trained)
	}
	if oldStatus.Best != nil && (st.Best == nil || st.Best.Name != oldStatus.Best.Name) {
		t.Errorf("restored best %+v, want %+v", st.Best, oldStatus.Best)
	}
	// Continuing must not retrain completed candidates: total across both
	// jobs is 8 candidates, 3 already done ⇒ at most 5 more rounds.
	ran, err := fresh.RunRounds(100)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Errorf("ran %d more rounds after restore, want 5", ran)
	}
}

func TestRestoreRejectsUnknownJob(t *testing.T) {
	old := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(2, 0.9), 1), nil, "")
	if _, err := old.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := old.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(2, 0.9), 1), nil, "")
	if err := fresh.Restore(&buf); err == nil {
		t.Error("restore without resubmitted jobs accepted")
	}
}

// fakeEngine is a minimal EngineControl for exercising the admin endpoints
// without a real engine.
type fakeEngine struct{ running bool }

func (f *fakeEngine) Start() error {
	if f.running {
		return errors.New("engine: already running")
	}
	f.running = true
	return nil
}

func (f *fakeEngine) Stop() error {
	if !f.running {
		return errors.New("engine: not running")
	}
	f.running = false
	return nil
}

func (f *fakeEngine) Status() server.EngineStatus {
	return server.EngineStatus{Running: f.running, Workers: 3}
}

func TestAdminMetricsEndpoint(t *testing.T) {
	sc := newScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunRounds(2); err != nil {
		t.Fatal(err)
	}

	// Without an engine the endpoint still reports the scheduler counters.
	srv := httptest.NewServer(server.NewAPI(sc).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || m.Jobs != 1 || m.Rounds != 2 || m.Engine != nil {
		t.Errorf("metrics without engine: status %d, %+v", resp.StatusCode, m)
	}
	// Wrong method is rejected.
	post, err := http.Post(srv.URL+"/admin/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST metrics returned %d, want 405", post.StatusCode)
	}

	// With an engine the reply grows the engine block.
	srv2 := httptest.NewServer(server.NewAPI(sc).WithEngine(&fakeEngine{running: true}).Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m2 server.MetricsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if m2.Engine == nil || !m2.Engine.Running || m2.Engine.Workers != 3 {
		t.Errorf("metrics with engine: %+v", m2.Engine)
	}
}

func TestAdminStartStopEndpoints(t *testing.T) {
	sc := newScheduler(t)
	post := func(srvURL, path string) int {
		t.Helper()
		resp, err := http.Post(srvURL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Without an engine, start/stop answer 409 (nothing to control).
	bare := httptest.NewServer(server.NewAPI(sc).Handler())
	defer bare.Close()
	if got := post(bare.URL, "/admin/start"); got != http.StatusConflict {
		t.Errorf("start without engine: %d, want 409", got)
	}
	if got := post(bare.URL, "/admin/stop"); got != http.StatusConflict {
		t.Errorf("stop without engine: %d, want 409", got)
	}
	getResp, err := http.Get(bare.URL + "/admin/start")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET start: %d, want 405", getResp.StatusCode)
	}

	// With an engine: start once, double-start conflicts, stop mirrors it.
	eng := &fakeEngine{}
	srv := httptest.NewServer(server.NewAPI(sc).WithEngine(eng).Handler())
	defer srv.Close()
	if got := post(srv.URL, "/admin/start"); got != http.StatusOK {
		t.Errorf("start: %d, want 200", got)
	}
	if got := post(srv.URL, "/admin/start"); got != http.StatusConflict {
		t.Errorf("double start: %d, want 409", got)
	}
	if got := post(srv.URL, "/admin/stop"); got != http.StatusOK {
		t.Errorf("stop: %d, want 200", got)
	}
	if got := post(srv.URL, "/admin/stop"); got != http.StatusConflict {
		t.Errorf("double stop: %d, want 409", got)
	}
	if eng.running {
		t.Error("engine still running after stop")
	}
}

// fakeFleet is a canned FleetControl for the admin surface.
type fakeFleet struct{}

func (fakeFleet) FleetStatus() server.FleetStatus {
	return server.FleetStatus{Alive: 2, Workers: []server.FleetWorkerStatus{
		{ID: "worker-0001", State: "alive"}, {ID: "worker-0002", State: "alive"},
	}}
}

func TestAdminFleetEndpoint(t *testing.T) {
	sc := newScheduler(t)
	bare := httptest.NewServer(server.NewAPI(sc).Handler())
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/admin/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || body.Error == "" {
		t.Errorf("fleet without coordinator: status %d, body %+v", resp.StatusCode, body)
	}

	srv := httptest.NewServer(server.NewAPI(sc).WithFleet(fakeFleet{}).Handler())
	defer srv.Close()
	resp2, err := http.Get(srv.URL + "/admin/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fs server.FleetStatus
	if err := json.NewDecoder(resp2.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || fs.Alive != 2 || len(fs.Workers) != 2 {
		t.Errorf("fleet status: %d %+v", resp2.StatusCode, fs)
	}
}

// Lease-lifecycle races are typed: double Complete, Release-after-settle
// and stale assignment all wrap ErrLeaseConflict, the signal HTTP surfaces
// map to 409 for retrying workers.
func TestLeaseConflictsAreTyped(t *testing.T) {
	sc := newScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	work, err := sc.PickWork(1)
	if err != nil || len(work) != 1 {
		t.Fatalf("PickWork: %v %v", work, err)
	}
	if err := sc.Complete(work[0], 0.7, 5); err != nil {
		t.Fatal(err)
	}
	if err := sc.Complete(work[0], 0.7, 5); !errors.Is(err, server.ErrLeaseConflict) {
		t.Errorf("double Complete: %v, want ErrLeaseConflict", err)
	}
	if err := sc.Release(work[0]); !errors.Is(err, server.ErrLeaseConflict) {
		t.Errorf("Release after Complete: %v, want ErrLeaseConflict", err)
	}
	if err := sc.AssignLease(work[0], "w"); !errors.Is(err, server.ErrLeaseConflict) {
		t.Errorf("AssignLease after Complete: %v, want ErrLeaseConflict", err)
	}
	if err := sc.HeartbeatLease(work[0].ID); !errors.Is(err, server.ErrLeaseConflict) {
		t.Errorf("HeartbeatLease after Complete: %v, want ErrLeaseConflict", err)
	}
}
