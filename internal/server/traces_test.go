package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func newTestScheduler(t testing.TB) *Scheduler {
	t.Helper()
	return NewScheduler(NewSimTrainer(cluster.NewPool(8, 0.9), 42), nil, "")
}

// RouteLabel must map every conceivable path to a bounded label set: IDs
// collapse to {id} placeholders and junk collapses to "other", so hostile
// or buggy clients cannot mint unbounded per-route series.
func TestRouteLabelCardinality(t *testing.T) {
	cases := map[string]string{
		"/jobs":    "/jobs",
		"/metrics": "/metrics",
		"/healthz": "/healthz",
		"/readyz":  "/readyz",

		"/admin/rounds":    "/admin/rounds",
		"/admin/traces":    "/admin/traces",
		"/admin/decisions": "/admin/decisions",
		"/fleet/lease":     "/fleet/lease",
		"/fleet/complete":  "/fleet/complete",

		// IDs collapse.
		"/jobs/job-17":              "/jobs/{id}",
		"/jobs/job-17/feed":         "/jobs/{id}/feed",
		"/admin/traces/cafe0123":    "/admin/traces/{id}",
		"/admin/traces/anything/at": "/admin/traces/{id}",
		"/debug/pprof/":             "/debug/pprof",
		"/debug/pprof/profile":      "/debug/pprof",

		// 404s and unknown subtrees collapse to one label.
		"/":                  "other",
		"/favicon.ico":       "other",
		"/admin/unknown":     "other",
		"/fleet/unknown":     "other",
		"/jobs.txt":          "other",
		"/..%2fadmin/quotas": "other",
	}
	for path, want := range cases {
		r := &http.Request{URL: &url.URL{Path: path}}
		if got := RouteLabel(r); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", path, got, want)
		}
	}

	// Sweep: a flood of distinct hostile paths must land on a small fixed
	// label set no matter what the attacker appends.
	labels := map[string]bool{}
	for _, prefix := range []string{"/jobs/", "/admin/traces/", "/admin/", "/fleet/", "/x/", "/debug/pprof/"} {
		for _, suffix := range []string{"a", "b/c", "d?e=f", strings.Repeat("z", 200)} {
			r := &http.Request{URL: &url.URL{Path: prefix + suffix}}
			labels[RouteLabel(r)] = true
		}
	}
	if len(labels) > 6 {
		t.Errorf("hostile sweep minted %d labels, want a bounded handful: %v", len(labels), labels)
	}
}

// An invalid inbound X-Easeml-Trace header must be re-minted, not echoed:
// junk IDs would poison log correlation and the flight recorder's keying.
func TestInvalidTraceHeaderReminted(t *testing.T) {
	sc := newTestScheduler(t)
	srv := httptest.NewServer(NewAPI(sc).Handler())
	defer srv.Close()

	for _, junk := range []string{"", "not hex!", "<script>", strings.Repeat("a", 65)} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/jobs", nil)
		if junk != "" {
			req.Header.Set(telemetry.TraceHeader, junk)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(telemetry.TraceHeader)
		if !telemetry.ValidTraceID(got) {
			t.Errorf("inbound %q: response trace %q is not a valid ID", junk, got)
		}
		if junk != "" && got == junk {
			t.Errorf("invalid inbound trace %q echoed instead of re-minted", junk)
		}
	}

	// A valid inbound ID propagates untouched.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/jobs", nil)
	req.Header.Set(telemetry.TraceHeader, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.TraceHeader); got != "cafe0123cafe0123" {
		t.Errorf("valid trace header not propagated: got %q", got)
	}
}

func TestHealthAndReadinessProbes(t *testing.T) {
	sc := newTestScheduler(t)

	// Without a readiness hook both probes answer 200 — a hand-wired API
	// has no boot sequence to wait out.
	srv := httptest.NewServer(NewAPI(sc).Handler())
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// A readiness hook gates /readyz only; /healthz stays 200 (alive but
	// not ready is exactly the drain state).
	ready := false
	gated := httptest.NewServer(NewAPI(sc).WithReadiness(func() bool { return ready }).Handler())
	defer gated.Close()
	resp, err := http.Get(gated.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz while not ready = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(gated.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz while not ready = %d, want 200", resp.StatusCode)
	}
	ready = true
	resp, err = http.Get(gated.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body["ready"] {
		t.Errorf("GET /readyz once ready = %d %v, want 200 ready", resp.StatusCode, body)
	}
}

// One completed lease must be queryable end to end over the admin API:
// the listing filters by job, the tree endpoint returns the lease's span
// tree with the pick stages and settle under the lease root, and the
// decisions endpoint links the pick's provenance record to the same trace.
func TestAdminTracesAndDecisionsEndpoints(t *testing.T) {
	sc := newTestScheduler(t)
	job, err := sc.Submit("traces-api", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	work, err := sc.PickWork(1)
	if err != nil || len(work) != 1 {
		t.Fatalf("PickWork: %v (%d leases)", err, len(work))
	}
	l := work[0]
	if err := sc.Complete(l, 0.5, 1); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewAPI(sc).Handler())
	defer srv.Close()

	var listing TracesResponse
	getJSON(t, srv.URL+"/admin/traces?job="+job.ID, &listing)
	if listing.Capacity < 1 {
		t.Errorf("listing capacity = %d, want the ring size", listing.Capacity)
	}
	var sum *telemetry.TraceSummary
	for i := range listing.Traces {
		if listing.Traces[i].TraceID == l.Trace {
			sum = &listing.Traces[i]
		}
	}
	if sum == nil {
		t.Fatalf("lease trace %s missing from job-filtered listing %+v", l.Trace, listing.Traces)
	}
	if sum.RootOp != "lease" || sum.Outcome != "completed" || sum.Job != job.ID {
		t.Errorf("trace summary wrong: %+v", sum)
	}

	var tree TraceResponse
	getJSON(t, srv.URL+"/admin/traces/"+l.Trace, &tree)
	if tree.TraceID != l.Trace || tree.Spans < 3 {
		t.Fatalf("tree response: %+v", tree)
	}
	var root *telemetry.SpanNode
	for _, n := range tree.Tree {
		if n.Op == "lease" {
			root = n
		}
	}
	if root == nil {
		t.Fatalf("no lease root in tree: %+v", tree.Tree)
	}
	childOps := map[string]bool{}
	for _, c := range root.Children {
		childOps[c.Op] = true
	}
	for _, op := range []string{"pick_select", "settle"} {
		if !childOps[op] {
			t.Errorf("lease root missing %s child; has %v", op, childOps)
		}
	}

	var decisions DecisionsResponse
	getJSON(t, srv.URL+"/admin/decisions?job="+job.ID, &decisions)
	var pick *DecisionRecord
	for i := range decisions.Decisions {
		if decisions.Decisions[i].Kind == DecisionPick {
			pick = &decisions.Decisions[i]
		}
	}
	if pick == nil {
		t.Fatalf("no pick decision for job %s: %+v", job.ID, decisions.Decisions)
	}
	if pick.Trace != l.Trace {
		t.Errorf("pick decision trace %q not linked to lease trace %q", pick.Trace, l.Trace)
	}
	if pick.Arm != l.Arm || pick.UCB != l.UCB {
		t.Errorf("pick decision (arm %d, ucb %g) disagrees with lease (arm %d, ucb %g)",
			pick.Arm, pick.UCB, l.Arm, l.UCB)
	}
	if len(pick.TopUCB) == 0 {
		t.Error("pick decision has no top-K UCB scores")
	}

	// Filters that match nothing return empty slices, not null.
	var empty DecisionsResponse
	getJSON(t, srv.URL+"/admin/decisions?job=no-such-job", &empty)
	if empty.Decisions == nil || len(empty.Decisions) != 0 {
		t.Errorf("no-match decisions = %#v, want empty non-nil slice", empty.Decisions)
	}

	// Error surfaces: unknown trace 404, malformed filters 400.
	for path, want := range map[string]int{
		"/admin/traces/feedfeedfeedfeed":   http.StatusNotFound,
		"/admin/traces?min_duration=bogus": http.StatusBadRequest,
		"/admin/traces?limit=-3":           http.StatusBadRequest,
		"/admin/decisions?limit=zero":      http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
