package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/dsl"
	"repro/internal/server"
	"repro/internal/templates"
)

// newServingFixture boots an HTTP API with one trained job and returns the
// test server plus the job's ID.
func newServingFixture(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	sc := newScheduler(t)
	job, err := sc.Submit("ts", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewAPI(sc).Handler())
	t.Cleanup(srv.Close)
	return srv, job.ID
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Regression: infer and refine on a missing job must be 404, not 400 —
// they used to hardcode StatusBadRequest for every scheduler error.
func TestInferMissingJobIs404(t *testing.T) {
	srv, _ := newServingFixture(t)
	for _, op := range []string{"infer", "infer/batch", "infer/stream"} {
		body := any(server.InferRequest{Input: []float64{1, 2, 3, 4}})
		if op != "infer" {
			body = server.InferBatchRequest{Inputs: [][]float64{{1, 2, 3, 4}}}
		}
		resp := postJSON(t, srv.URL+"/jobs/job-9999/"+op, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on missing job: HTTP %d, want 404", op, resp.StatusCode)
		}
	}
}

func TestRefineMissingJobIs404(t *testing.T) {
	srv, id := newServingFixture(t)
	resp := postJSON(t, srv.URL+"/jobs/job-9999/refine", server.RefineRequest{Example: 0, Enabled: false})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("refine on missing job: HTTP %d, want 404", resp.StatusCode)
	}
	// A bad example on an existing job stays a 400: only unknown jobs 404.
	resp = postJSON(t, srv.URL+"/jobs/"+id+"/refine", server.RefineRequest{Example: 12345, Enabled: false})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("refine of unknown example: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestFeedMissingJobIs404(t *testing.T) {
	srv, _ := newServingFixture(t)
	resp := postJSON(t, srv.URL+"/jobs/job-9999/feed", server.FeedRequest{
		Inputs:  [][]float64{{1, 2, 3, 4}},
		Outputs: [][]float64{{1, 0}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("feed on missing job: HTTP %d, want 404", resp.StatusCode)
	}
}

// Regression: NaN/±Inf inputs used to flow through the pseudo-model and
// come back as garbage predictions with HTTP 200.
func TestInferRejectsNonFiniteInputs(t *testing.T) {
	srv, id := newServingFixture(t)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		sc := newScheduler(t)
		job, err := sc.Submit("ts", tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.RunRounds(1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sc.Infer(job.ID, []float64{1, bad, 3, 4}); err == nil {
			t.Errorf("Infer accepted %v", bad)
		}
		if _, _, err := sc.InferBatch(job.ID, [][]float64{{1, 2, 3, 4}, {1, bad, 3, 4}}); err == nil {
			t.Errorf("InferBatch accepted %v", bad)
		}
	}
	// JSON has no NaN/Inf literal, so over HTTP the decoder already rejects
	// them — assert the envelope is a 400 either way.
	resp := postJSON(t, srv.URL+"/jobs/"+id+"/infer", map[string]any{"input": []any{1, "NaN", 3, 4}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("string NaN: HTTP %d, want 400", resp.StatusCode)
	}
}

// Regression: a mid-batch feed failure used to discard the IDs of examples
// already durably appended in the same request.
func TestFeedPartialFailureReturnsCommittedIDs(t *testing.T) {
	srv, id := newServingFixture(t)
	resp := postJSON(t, srv.URL+"/jobs/"+id+"/feed", server.FeedRequest{
		Inputs:  [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 9}}, // third pair violates the schema
		Outputs: [][]float64{{1, 0}, {0, 1}, {1, 0}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
	var body server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.IDs) != 2 {
		t.Fatalf("error envelope carries %d committed IDs (%v), want 2", len(body.IDs), body.IDs)
	}
	// The committed examples are really there: feeding one more pair gets
	// the next consecutive ID.
	var ok server.FeedResponse
	resp2 := postJSON(t, srv.URL+"/jobs/"+id+"/feed", server.FeedRequest{
		Inputs:  [][]float64{{2, 2, 2, 2}},
		Outputs: [][]float64{{1, 0}},
	})
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	if len(ok.IDs) != 1 || ok.IDs[0] != body.IDs[1]+1 {
		t.Fatalf("follow-up feed got IDs %v after committed %v", ok.IDs, body.IDs)
	}

	// The client surfaces the same partial IDs alongside the error.
	cl := client.New(srv.URL)
	ids, err := cl.Feed(context.Background(), id,
		[][]float64{{1, 1, 1, 1}, {3, 3}}, [][]float64{{1, 0}, {0, 1}})
	if err == nil {
		t.Fatal("client.Feed succeeded on a schema violation")
	}
	if len(ids) != 1 {
		t.Fatalf("client.Feed returned %d committed IDs (%v), want 1", len(ids), ids)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("client error %v is not a 400 APIError", err)
	}
}

func TestInferBatchMatchesSingleInfer(t *testing.T) {
	srv, id := newServingFixture(t)
	cl := client.New(srv.URL)
	ctx := context.Background()
	inputs := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}, {0, 0, 0, 0}}
	batch, err := cl.InferBatch(ctx, id, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Outputs) != len(inputs) {
		t.Fatalf("%d outputs, want %d", len(batch.Outputs), len(inputs))
	}
	for i, in := range inputs {
		single, err := cl.Infer(ctx, id, in)
		if err != nil {
			t.Fatal(err)
		}
		if single.Model != batch.Model {
			t.Fatalf("model drifted between single (%q) and batch (%q)", single.Model, batch.Model)
		}
		if !reflect.DeepEqual(single.Output, batch.Outputs[i]) {
			t.Fatalf("input %d: batch output %v != single output %v", i, batch.Outputs[i], single.Output)
		}
	}
	// Whole-batch validation: one bad input fails the batch with no output.
	if _, err := cl.InferBatch(ctx, id, [][]float64{{1, 2, 3, 4}, {1}}); err == nil {
		t.Fatal("short input accepted in batch")
	}
}

func TestInferStreamContract(t *testing.T) {
	srv, id := newServingFixture(t)
	inputs := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}, {7, 7, 7, 7}}
	payload, _ := json.Marshal(server.InferBatchRequest{Inputs: inputs})
	resp, err := http.Post(srv.URL+"/jobs/"+id+"/infer/stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr server.InferStreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Model == "" || hdr.Count != len(inputs) {
		t.Fatalf("header %+v", hdr)
	}
	cl := client.New(srv.URL)
	var lines int
	for sc.Scan() {
		var line server.InferStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Index != lines {
			t.Fatalf("line %d has index %d", lines, line.Index)
		}
		single, err := cl.Infer(context.Background(), id, inputs[line.Index])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(line.Output, single.Output) {
			t.Fatalf("stream output %v != single output %v", line.Output, single.Output)
		}
		lines++
	}
	if lines != len(inputs) {
		t.Fatalf("%d stream lines, want %d", lines, len(inputs))
	}

	// The client-side iterator sees the same stream.
	got := make(map[int][]float64)
	model, err := cl.InferStream(context.Background(), id, inputs, func(i int, out []float64) error {
		got[i] = append([]float64(nil), out...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if model != hdr.Model || len(got) != len(inputs) {
		t.Fatalf("client stream: model %q, %d lines", model, len(got))
	}

	// Pre-stream validation: a bad input is a clean 400, not a broken stream.
	if _, err := cl.InferStream(context.Background(), id, [][]float64{{math.MaxFloat64, 1, 2, 3}, {1}}, func(int, []float64) error { return nil }); err == nil {
		t.Fatal("short input accepted in stream")
	}
}

// Acceptance: repeated-program workloads hit the plan cache >90% of the
// time across Submit, facade parses and candidate generation.
func TestPlanCacheHitRateOnRepeatedPrograms(t *testing.T) {
	dsl.ResetPlanCache()
	templates.ResetCandidateCache()
	sc := newScheduler(t)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := sc.Submit("tenant", tsProgram); err != nil {
			t.Fatal(err)
		}
	}
	prog := dsl.PlanCacheStats()
	if prog.Hits+prog.Misses < n {
		t.Fatalf("plan cache saw %d lookups, want ≥ %d", prog.Hits+prog.Misses, n)
	}
	if hr := prog.HitRate(); hr <= 0.9 {
		t.Fatalf("program cache hit rate %.2f, want > 0.90 (%+v)", hr, prog)
	}
	cands := templates.CandidateCacheStats()
	if hr := cands.HitRate(); hr <= 0.9 {
		t.Fatalf("candidate cache hit rate %.2f, want > 0.90 (%+v)", hr, cands)
	}
}

// The /admin/metrics JSON surfaces both cache sections.
func TestAdminMetricsReportsPlanCache(t *testing.T) {
	dsl.ResetPlanCache()
	templates.ResetCandidateCache()
	srv, _ := newServingFixture(t)
	resp, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.PlanCache == nil {
		t.Fatal("metrics response has no plan_cache section")
	}
	if m.PlanCache.Program.Hits+m.PlanCache.Program.Misses == 0 {
		t.Fatalf("program cache saw no lookups: %+v", m.PlanCache)
	}
	if m.PlanCache.Candidates.Hits+m.PlanCache.Candidates.Misses == 0 {
		t.Fatalf("candidate cache saw no lookups: %+v", m.PlanCache)
	}
}
