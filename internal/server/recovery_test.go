package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bandit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/linalg"
	"repro/internal/storage"
)

const (
	recoveryTSProgram  = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	recoveryImgProgram = "{input: {[Tensor[8, 8, 3]], []}, output: {[Tensor[2]], []}}"
)

func newDurableScheduler(t testing.TB, dir string) (*Scheduler, *storage.Log) {
	return newDurableSchedulerOpts(t, dir, storage.LogOptions{})
}

func newDurableSchedulerOpts(t testing.TB, dir string, opts storage.LogOptions) (*Scheduler, *storage.Log) {
	t.Helper()
	pool := cluster.NewPool(8, 0.9)
	sc := NewScheduler(NewSimTrainer(pool, 42), nil, "http://test:9000")
	log, rec, err := storage.OpenDirOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Recover(rec, log); err != nil {
		t.Fatal(err)
	}
	return sc, log
}

func drain(t testing.TB, sc *Scheduler) int {
	t.Helper()
	ran, err := sc.RunRounds(10000)
	if err != nil {
		t.Fatal(err)
	}
	return ran
}

func bestByJob(t testing.TB, sc *Scheduler) map[string]storage.ModelRecord {
	t.Helper()
	out := make(map[string]storage.ModelRecord)
	for _, j := range sc.Jobs() {
		st, err := sc.Status(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Best != nil {
			out[j.ID] = *st.Best
		}
	}
	return out
}

// The acceptance test of the durability refactor: a scheduler killed
// mid-round — with leases in flight and no clean shutdown — must recover
// all jobs, examples and recorded models from WAL + snapshot, re-queue the
// in-flight work, and end up (after draining) with exactly the best models
// an uninterrupted run finds.
func TestCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference run (same trainer seed, no persistence).
	ref := NewScheduler(NewSimTrainer(cluster.NewPool(8, 0.9), 42), nil, "http://test:9000")
	refA, err := ref.Submit("a", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Submit("b", recoveryTSProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Feed(refA.ID, []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	refRounds := drain(t, ref)
	refBest := bestByJob(t, ref)

	// Durable run, crashed mid-round.
	sc1, _ := newDurableScheduler(t, dir)
	jobA, err := sc1.Submit("a", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := sc1.Submit("b", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	exID, err := sc1.Feed(jobA.ID, []float64{1, 2, 3, 4}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	if err := sc1.Refine(jobA.ID, exID, false); err != nil {
		t.Fatal(err)
	}
	// Leases in flight at the moment of the crash: their results are lost,
	// but the work itself must be re-queued after recovery.
	inFlight, err := sc1.PickWork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inFlight) == 0 {
		t.Fatal("no leases picked before crash")
	}
	// Crash: sc1 and its log are abandoned without Close or Compact.

	sc2, _ := newDurableScheduler(t, dir)
	jobs := sc2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != jobA.ID || jobs[1].ID != jobB.ID {
		t.Fatalf("recovered jobs %v", jobs)
	}
	if got := len(jobs[0].Candidates); got != len(jobA.Candidates) {
		t.Fatalf("recovered %d candidates, want %d", got, len(jobA.Candidates))
	}
	stA, err := sc2.Status(jobA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Examples != 1 || stA.Enabled != 0 {
		t.Errorf("recovered example state %+v", stA)
	}
	if sc2.Rounds() != 3 {
		t.Errorf("recovered %d rounds, want 3", sc2.Rounds())
	}
	if sc2.InFlight() != 0 {
		t.Errorf("recovered %d in-flight leases, want 0 (re-queued)", sc2.InFlight())
	}
	// The crashed process's in-flight arms are selectable again.
	relisted, err := sc2.PickWork(len(inFlight))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range relisted {
		if err := sc2.Release(l); err != nil {
			t.Fatal(err)
		}
	}
	if len(relisted) != len(inFlight) {
		t.Errorf("re-leased %d work items, want %d", len(relisted), len(inFlight))
	}

	// A fresh submission after recovery must not collide with recovered ids.
	jobC, err := sc2.Submit("c", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	if jobC.ID == jobA.ID || jobC.ID == jobB.ID {
		t.Fatalf("recovered scheduler reused id %s", jobC.ID)
	}

	// Resume to exhaustion: jobs a and b must land on the reference bests.
	resumed := drain(t, sc2)
	if got := 3 + resumed; got < refRounds {
		t.Errorf("crashed+resumed run trained %d candidates, reference %d", got, refRounds)
	}
	gotBest := bestByJob(t, sc2)
	for id, want := range refBest {
		got, ok := gotBest[id]
		if !ok {
			t.Errorf("job %s has no best model after recovery", id)
			continue
		}
		if got.Name != want.Name || got.Accuracy != want.Accuracy {
			t.Errorf("job %s best = %s@%g after recovery, want %s@%g",
				id, got.Name, got.Accuracy, want.Name, want.Accuracy)
		}
	}
}

// A crash after compaction recovers from snapshot + WAL tail.
func TestRecoveryAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	sc1, _ := newDurableScheduler(t, dir)
	jobA, err := sc1.Submit("a", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.Feed(jobA.ID, []float64{1, 2, 3, 4}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if err := sc1.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction mutations live only in the WAL tail.
	if _, err := sc1.Feed(jobA.ID, []float64{5, 6, 7, 8}, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	// Crash without Close.

	sc2, _ := newDurableScheduler(t, dir)
	st, err := sc2.Status(jobA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != 2 {
		t.Errorf("recovered %d examples, want 2", st.Examples)
	}
	if st.Trained != 4 {
		t.Errorf("recovered %d trained models, want 4", st.Trained)
	}
	if sc2.Rounds() != 4 {
		t.Errorf("recovered %d rounds, want 4", sc2.Rounds())
	}
}

// Crash-recovery equivalence across segment rolls: the same workload on a
// log forced through many tiny segments must recover to exactly the state
// a single-segment (default) run recovers to.
func TestCrashRecoveryAcrossSegmentRoll(t *testing.T) {
	tiny := storage.LogOptions{SegmentBytes: 512}
	workload := func(t *testing.T, sc *Scheduler) string {
		t.Helper()
		job, err := sc.Submit("a", recoveryTSProgram)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if _, err := sc.Feed(job.ID, []float64{1, 2, 3, float64(i)}, []float64{0, 1}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sc.RunRounds(3); err != nil {
			t.Fatal(err)
		}
		return job.ID
	}

	refDir, tinyDir := t.TempDir(), t.TempDir()
	refSC, _ := newDurableScheduler(t, refDir)
	refID := workload(t, refSC)
	tinySC, tinyLog := newDurableSchedulerOpts(t, tinyDir, tiny)
	tinyID := workload(t, tinySC)
	if st := tinyLog.Stats(); st.Segments < 2 {
		t.Fatalf("workload stayed in %d segment(s); raise the event count", st.Segments)
	}
	// Crash both without Close.

	refSC2, _ := newDurableScheduler(t, refDir)
	tinySC2, _ := newDurableSchedulerOpts(t, tinyDir, tiny)
	refSt, err := refSC2.Status(refID)
	if err != nil {
		t.Fatal(err)
	}
	tinySt, err := tinySC2.Status(tinyID)
	if err != nil {
		t.Fatal(err)
	}
	if refSt.Examples != tinySt.Examples || refSt.Trained != tinySt.Trained || refSt.Enabled != tinySt.Enabled {
		t.Errorf("segmented recovery diverged: tiny %+v vs reference %+v", tinySt, refSt)
	}
	if refSC2.Rounds() != tinySC2.Rounds() {
		t.Errorf("recovered rounds %d (tiny) vs %d (reference)", tinySC2.Rounds(), refSC2.Rounds())
	}
	refBest, tinyBest := bestByJob(t, refSC2), bestByJob(t, tinySC2)
	if rb, ok := refBest[refID]; ok {
		tb := tinyBest[tinyID]
		if tb.Name != rb.Name || tb.Accuracy != rb.Accuracy {
			t.Errorf("best after segmented recovery %s@%g, want %s@%g", tb.Name, tb.Accuracy, rb.Name, rb.Accuracy)
		}
	}
}

// A crash right after an incremental compaction step recovers from the
// stepped snapshot plus the remaining segments' tail.
func TestRecoveryAfterIncrementalCompaction(t *testing.T) {
	dir := t.TempDir()
	tiny := storage.LogOptions{SegmentBytes: 512}
	sc1, log1 := newDurableSchedulerOpts(t, dir, tiny)
	job, err := sc1.Submit("a", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := sc1.Feed(job.ID, []float64{1, 2, 3, float64(i)}, []float64{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc1.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if log1.Stats().Segments < 2 {
		t.Fatalf("workload stayed in one segment; raise the event count")
	}
	folded, err := sc1.CompactIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !folded {
		t.Fatal("incremental compaction folded nothing despite sealed segments")
	}
	// Mutations after the step live in the surviving segments only.
	if _, err := sc1.Feed(job.ID, []float64{9, 9, 9, 9}, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	// Crash without Close.

	sc2, _ := newDurableSchedulerOpts(t, dir, tiny)
	st, err := sc2.Status(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != 13 {
		t.Errorf("recovered %d examples, want 13", st.Examples)
	}
	if st.Trained != 4 {
		t.Errorf("recovered %d trained models, want 4", st.Trained)
	}
	if sc2.Rounds() != 4 {
		t.Errorf("recovered %d rounds, want 4", sc2.Rounds())
	}
}

// An ill-conditioned posterior update fails the one job, not the server:
// the job is retired from scheduling, other jobs keep training.
func TestObserveFailureRetiresJobOnly(t *testing.T) {
	pool := cluster.NewPool(8, 0.9)
	sc := NewScheduler(NewSimTrainer(pool, 42), nil, "http://test:9000")
	sick, err := sc.Submit("sick", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := sc.Submit("healthy", recoveryTSProgram)
	if err != nil {
		t.Fatal(err)
	}

	// Replace the sick job's bandit with one whose prior is grossly
	// indefinite: the first observation factorizes (1×1), the second
	// cannot, even after jitter escalation.
	bad := linalg.NewMatrixFromRows([][]float64{{1, 100}, {100, 1}})
	process := gp.New(bad, 1e-6)
	b := bandit.New(process, bandit.Config{Costs: []float64{1, 1}})
	sick.mu.Lock()
	sick.tenant = core.NewTenant(0, sick.ID, b)
	sick.mu.Unlock()

	// Lease every selectable arm at once, keep one for the target job and
	// hand the rest back (a batch-of-one would spin: deterministic pickers
	// re-pick the same other-job arm after a release).
	completeOne := func(jobID string) error {
		leases, err := sc.PickWork(100)
		if err != nil {
			return err
		}
		var target *Lease
		for _, l := range leases {
			if l.JobID == jobID && target == nil {
				target = l
				continue
			}
			if err := sc.Release(l); err != nil {
				return err
			}
		}
		if target == nil {
			return fmt.Errorf("no work for %s", jobID)
		}
		return sc.Complete(target, 0.5, 1)
	}
	if err := completeOne(sick.ID); err != nil {
		t.Fatalf("first observation should succeed: %v", err)
	}
	if err := completeOne(sick.ID); err == nil {
		t.Fatal("second observation on an indefinite prior should fail the job")
	}
	st, err := sc.Status(sick.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed == "" {
		t.Error("failed job not marked in status")
	}
	// The failed job is out of the rotation; the healthy one drains fully.
	ran := drain(t, sc)
	if ran == 0 {
		t.Fatal("healthy job did not continue after sibling failure")
	}
	hst, err := sc.Status(healthy.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hst.Trained != hst.NumCandidates {
		t.Errorf("healthy job trained %d of %d candidates", hst.Trained, hst.NumCandidates)
	}
	if hst.Failed != "" {
		t.Errorf("healthy job marked failed: %s", hst.Failed)
	}
}

// lockedScheduler reproduces the pre-refactor locking discipline — one
// global mutex across every scheduler entry point — as the benchmark
// baseline for BenchmarkPickWorkContention.
type lockedScheduler struct {
	mu sync.Mutex
	sc *Scheduler
}

func (g *lockedScheduler) Feed(jobID string, in, out []float64) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sc.Feed(jobID, in, out)
}

func (g *lockedScheduler) PickWork(n int) ([]*Lease, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sc.PickWork(n)
}

func (g *lockedScheduler) Release(l *Lease) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sc.Release(l)
}

// schedulerOps is the surface the contention benchmark drives.
type schedulerOps interface {
	Feed(jobID string, in, out []float64) (int, error)
	PickWork(n int) ([]*Lease, error)
	Release(l *Lease) error
}

// BenchmarkPickWorkContention measures the throughput of the user-facing
// Feed/Status paths while a scheduler loop continuously leases and
// releases work — the mixed workload the per-job locking discipline
// exists for. Under the old global mutex every Feed waits behind the
// picker's GP posterior math; with per-job locks the two sides share no
// lock at all. Leases are released, not completed, so the candidate pool
// never exhausts and every picker pass pays full price.
func BenchmarkPickWorkContention(b *testing.B) {
	setup := func(b *testing.B) (*Scheduler, []string) {
		b.Helper()
		pool := cluster.NewPool(8, 0.9)
		sc := NewScheduler(NewSimTrainer(pool, 42), nil, "http://test:9000")
		var ids []string
		for i := 0; i < 4; i++ {
			job, err := sc.Submit(fmt.Sprintf("bench-%d", i), recoveryTSProgram)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, job.ID)
		}
		return sc, ids
	}
	run := func(b *testing.B, ops schedulerOps, ids []string) {
		b.Helper()
		// Background scheduler side: picker passes at a fixed cadence, so
		// both locking disciplines do the same scheduling work and the
		// measured difference is purely how much that work blocks the
		// user side. (An unpaced hot loop would instead measure mutex
		// starvation: under one global mutex the feed goroutines barge
		// and the picker hardly runs at all.)
		stop := make(chan struct{})
		var passes atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				leases, err := ops.PickWork(8)
				if err != nil {
					b.Error(err)
					return
				}
				for _, l := range leases {
					if err := ops.Release(l); err != nil {
						b.Error(err)
						return
					}
				}
				passes.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}()

		// The measured side is the O(1) user write path: anything heavier
		// (Status copies all examples) would measure store growth, not
		// lock contention.
		var ctr atomic.Int64
		in := []float64{1, 2, 3, 4}
		out := []float64{0, 1}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := ctr.Add(1)
				id := ids[int(n)%len(ids)]
				if _, err := ops.Feed(id, in, out); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(passes.Load())/secs, "picks/s")
		}
	}
	b.Run("global-lock", func(b *testing.B) {
		sc, ids := setup(b)
		run(b, &lockedScheduler{sc: sc}, ids)
	})
	b.Run("per-job-locks", func(b *testing.B) {
		sc, ids := setup(b)
		run(b, sc, ids)
	})
}
