package server

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Fleet-side posterior scoring: the scheduler exports each job's cached
// posterior surface (µ, σ, UCB) tagged with its selection-index dirty epoch,
// and accepts speculative lease grants for (job, arm, epoch) proposals that
// workers pre-scored locally against that surface. Validation is one epoch
// comparison plus a lease-table scan — no picker sweep over all J jobs, no
// per-pick σ̃ fold, no heap traffic — so the steady-state pick cost moves
// from the coordinator to the fleet's edges (ROADMAP direction 3).
//
// Correctness note: a speculative grant changes which arm runs next, never
// what its result is. Training results are pure functions of (job,
// candidate) and a full drain trains every candidate exactly once, so final
// models are bit-identical to a speculation-off run; only completion order
// (round numbering) may differ. The equivalence suite in internal/fleet
// asserts exactly that.

// opPickSpeculative is the selection-stage span of a speculatively granted
// lease — it replaces opPickSelect in the lease's span tree, so traces make
// the grant path explicit.
var opPickSpeculative = telemetry.SpanOp("pick_speculative")

// PosteriorDelta is one job's selection surface as shipped to fleet
// workers: the posterior mean/std and real (unhallucinated) UCB per arm,
// stamped with the job's selection-index dirty epoch. Tried lists arms that
// are observed or retired (their UCB entries are zeroed — the wire format
// is JSON, which cannot carry the NaN markers UCBSurface uses); Leased
// lists arms currently held by outstanding leases. Workers propose only
// arms in neither list. Done marks a job that will never train another
// candidate (drained, failed or budget-exhausted) — its slices are omitted.
type PosteriorDelta struct {
	JobID  string    `json:"job"`
	Epoch  uint64    `json:"epoch"`
	Mu     []float64 `json:"mu,omitempty"`
	Sigma  []float64 `json:"sigma,omitempty"`
	UCB    []float64 `json:"ucb,omitempty"`
	Tried  []int     `json:"tried,omitempty"`
	Leased []int     `json:"leased,omitempty"`
	Done   bool      `json:"done,omitempty"`
}

// PosteriorDeltas exports the posterior surface of every job whose dirty
// epoch differs from the caller's known map (job id → last seen epoch; jobs
// absent from the map are always sent). It returns nil in legacy-selection
// mode, which is what disables speculation end to end there. The epoch and
// the surface are read under one critical section, so a delta is always
// internally consistent; a worker holding epoch E can propose any untried,
// unleased arm and the grant validates iff the job's bandit has not moved
// since E.
func (sc *Scheduler) PosteriorDeltas(known map[string]uint64) []PosteriorDelta {
	jobs := sc.jobsSnapshot()
	if len(jobs) == 0 {
		return nil
	}
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if sc.legacySelection {
		return nil
	}
	sc.selIdx.ensure(jobs)
	var leasedByJob map[string][]int
	var out []PosteriorDelta
	for i, job := range jobs {
		if v, ok := known[job.ID]; ok && v == sc.selIdx.entries[i].epoch {
			continue
		}
		if leasedByJob == nil {
			leasedByJob = sc.leasedArmsLocked()
		}
		out = append(out, sc.posteriorDeltaLocked(i, job, leasedByJob[job.ID]))
	}
	return out
}

// PosteriorVersion returns the global selection-surface version: it
// advances whenever any job's dirty epoch bumps or a new job arrives, so a
// caller whose last full PosteriorDeltas sync happened at this exact
// version holds a current surface for every job and can skip the per-job
// epoch diff entirely. Returns 0 in legacy-selection mode (speculation is
// disabled end to end there).
func (sc *Scheduler) PosteriorVersion() uint64 {
	jobs := sc.jobsSnapshot()
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if sc.legacySelection {
		return 0
	}
	sc.selIdx.ensure(jobs)
	return sc.selIdx.version
}

// PosteriorDeltaFor exports one job's current surface (the settle path uses
// it to hand the refreshed posterior back with a completion, so the worker
// that just moved the epoch can keep proposing without a resync round
// trip). ok is false for unknown jobs and in legacy-selection mode.
func (sc *Scheduler) PosteriorDeltaFor(jobID string) (PosteriorDelta, bool) {
	job, ok := sc.Job(jobID)
	if !ok {
		return PosteriorDelta{}, false
	}
	jobs := sc.jobsSnapshot()
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if sc.legacySelection {
		return PosteriorDelta{}, false
	}
	sc.selIdx.ensure(jobs)
	i, ok := sc.selIdx.byID[jobID]
	if !ok {
		return PosteriorDelta{}, false
	}
	return sc.posteriorDeltaLocked(i, job, sc.leasedArmsLocked()[jobID]), true
}

// leasedArmsLocked groups the outstanding leases' arms by job, sorted
// ascending (settling leases included — their arms are still excluded from
// selection). Callers hold coordMu.
func (sc *Scheduler) leasedArmsLocked() map[string][]int {
	byJob := make(map[string][]int)
	for _, l := range sc.leases {
		byJob[l.JobID] = append(byJob[l.JobID], l.Arm)
	}
	for _, arms := range byJob {
		sort.Ints(arms)
	}
	return byJob
}

// posteriorDeltaLocked builds one job's wire delta. Callers hold coordMu
// (epoch, lease set) and i indexes both jobs and the selection index; the
// job lock is taken here so the surface is consistent with the epoch — an
// observation cannot land in between, because Complete's bandit update
// holds the job lock and its markDirty needs coordMu.
func (sc *Scheduler) posteriorDeltaLocked(i int, job *Job, leased []int) PosteriorDelta {
	d := PosteriorDelta{JobID: job.ID, Epoch: sc.selIdx.entries[i].epoch, Leased: leased}
	job.mu.Lock()
	defer job.mu.Unlock()
	b := job.tenant.Bandit
	if job.failed != "" || job.budgetExhausted || b.Exhausted() {
		d.Done = true
		d.Leased = nil
		return d
	}
	d.Mu, d.Sigma = b.Posterior() // fresh copies: safe to hand to the encoder
	surface := b.UCBSurface()
	d.UCB = make([]float64, len(surface))
	for k, v := range surface {
		if math.IsNaN(v) { // tried or retired
			d.Tried = append(d.Tried, k)
			continue
		}
		d.UCB[k] = v
	}
	return d
}

// SpeculativeGrant validates one worker proposal and, when it holds, leases
// (jobID, arm) without running the pick path: the only checks are the dirty-
// epoch comparison, a lease-table scan (an epoch match says nothing about
// the lease set — lease churn deliberately does not bump epochs) and the
// job's own terminal flags, and the only bandit work is the hallucination
// update on the job's persistent shadow. It returns (nil, nil) when the
// proposal is stale — wrong epoch, arm already leased/tried, job done —
// which callers treat as "fall back to the normal pick path and resync the
// worker". Malformed proposals (unknown arm index) are an error.
//
// The fast path intentionally skips the cross-job picker, so it is blind to
// class weights and σ̃ fair sharing; fairness is preserved by the fallback
// path (every stale or rejected proposal goes through the full picker) and
// by preemption, which treats speculative leases like any other.
func (sc *Scheduler) SpeculativeGrant(jobID string, arm int, epoch uint64) (*Lease, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return nil, nil // e.g. a proposal that outlived a coordinator restart
	}
	if arm < 0 || arm >= len(job.Candidates) {
		return nil, fmt.Errorf("server: speculative proposal for %s: arm %d out of range [0,%d)", jobID, arm, len(job.Candidates))
	}
	jobs := sc.jobsSnapshot()
	t0 := time.Now()
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	if sc.legacySelection {
		return nil, nil
	}
	sc.selIdx.ensure(jobs)
	i, ok := sc.selIdx.byID[jobID]
	if !ok {
		return nil, nil
	}
	entry := &sc.selIdx.entries[i]
	if entry.epoch != epoch {
		return nil, nil
	}
	// The job's in-flight arms in lease-grant order (ids are monotone) —
	// the same sequence inFlightArmsLocked feeds the pick path, so the
	// shadow extended here is bit-identical to the one the next PickWork
	// would have built.
	var held []*Lease
	for _, l := range sc.leases {
		if l.JobID == jobID {
			if l.Arm == arm {
				return nil, nil
			}
			held = append(held, l)
		}
	}
	var cur []int
	if len(held) > 0 {
		sort.Slice(held, func(a, b int) bool { return held[a].ID < held[b].ID })
		cur = make([]int, len(held))
		for k, l := range held {
			cur[k] = l.Arm
		}
	}

	job.mu.Lock()
	defer job.mu.Unlock()
	if job.failed != "" || job.budgetExhausted || job.tenant.Bandit.Tried(arm) {
		return nil, nil
	}
	// The lease's UCB (fed into the σ̃ recurrence at settle) prices the arm
	// on the same hallucinated posterior the pick path would have used.
	var ucb float64
	var hallStart time.Time
	var hallDur time.Duration
	if len(cur) == 0 {
		ucb = job.tenant.Bandit.UCB(arm)
	} else {
		hallStart = time.Now()
		shadow := sc.selIdx.shadowFor(entry, job.tenant.Bandit, cur)
		ucb = shadow.UCB(arm)
		sc.selIdx.hallucinate(entry, []int{arm})
		hallDur = time.Since(hallStart)
		pickStageHallucinate.Observe(hallDur)
	}
	sc.nextLease++
	l := &Lease{ID: sc.nextLease, JobID: jobID, Arm: arm, Candidate: job.Candidates[arm], UCB: ucb,
		Trace: telemetry.NewTraceID()}
	leaseTraces.Inc()
	if sc.leaseTTL > 0 {
		now := sc.now()
		l.LastHeartbeat = now
		l.Expires = now.Add(sc.leaseTTL)
	}
	sc.emitSpeculativeProvenance(l, job, len(jobs), t0, hallStart, hallDur)
	sc.leases[l.ID] = l
	sc.selIdx.stats.Picks++
	sc.selIdx.stats.SpeculativeGrants++
	return l, nil
}

// emitSpeculativeProvenance records a speculative grant's spans and
// DecisionRecord: the lease root span carries path=speculative and the
// selection-stage child is opPickSpeculative (not opPickSelect), so span
// trees distinguish the two grant paths; the pick decision's Detail says
// "speculative" for the same reason. No TopUCB table — the whole point of
// the fast path is not touching the UCB surface. Called with coordMu and
// the job lock held; it only touches leaf mutexes.
func (sc *Scheduler) emitSpeculativeProvenance(l *Lease, job *Job, jobsInSnapshot int, t0, hallStart time.Time, hallDur time.Duration) {
	name := l.Candidate.Name() // renders once: the fast path is hot
	root := telemetry.NewSpanAt(l.Trace, "", opLease, t0)
	root.SetAttr("job", l.JobID)
	root.SetAttr("tenant", job.Name)
	root.SetAttr("candidate", name)
	root.SetAttr("path", "speculative")
	l.span = root

	now := time.Now()
	sel := telemetry.NewSpanAt(l.Trace, root.ID(), opPickSpeculative, t0)
	sel.EndAt(now)
	if hallDur > 0 {
		h := telemetry.NewSpanAt(l.Trace, root.ID(), opPickHallucinate, hallStart)
		h.EndAt(hallStart.Add(hallDur))
	}

	d := &DecisionRecord{
		Kind:         DecisionPick,
		TimeNS:       now.UnixNano(),
		Trace:        l.Trace,
		Tenant:       job.Name,
		Job:          l.JobID,
		Candidate:    name,
		Arm:          l.Arm,
		UCB:          l.UCB,
		Jobs:         jobsInSnapshot,
		Class:        string(job.Class),
		ClassWeights: classWeights,
		BudgetUsed:   job.tenant.Bandit.CumulativeCost(),
		Detail:       "speculative",
	}
	if sc.adm != nil {
		d.BudgetLimit = sc.adm.Budget(job.Name)
	}
	sc.decisions.add(d)
}
