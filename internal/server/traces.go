package server

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Admin surface of the observability layer: the flight recorder's trace
// listing and span trees (GET /admin/traces, /admin/traces/{id}), the
// scheduler's decision-provenance ring (GET /admin/decisions), and the
// health probes (/healthz, /readyz).

// TracesResponse is the GET /admin/traces reply.
type TracesResponse struct {
	Traces []telemetry.TraceSummary `json:"traces"`
	// Capacity is the flight recorder's per-ring span capacity
	// (-trace-buffer), so an operator reading an incomplete listing knows
	// the retention window.
	Capacity int `json:"capacity"`
}

// TraceResponse is the GET /admin/traces/{id} reply: the assembled span
// tree plus the WAL sequence horizon at read time, so span-level wal_seq
// attributes can be cross-referenced against what recovery would replay.
type TraceResponse struct {
	TraceID string                `json:"trace"`
	Spans   int                   `json:"spans"`
	Tree    []*telemetry.SpanNode `json:"tree"`
	WAL     *storage.LogStats     `json:"wal,omitempty"`
}

// DecisionsResponse is the GET /admin/decisions reply.
type DecisionsResponse struct {
	Decisions []DecisionRecord `json:"decisions"`
}

func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	rec := telemetry.DefaultRecorder()
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/admin/traces"), "/")
	if id == "" {
		q := r.URL.Query()
		f := telemetry.TraceFilter{
			Tenant:  q.Get("tenant"),
			Job:     q.Get("job"),
			Outcome: q.Get("outcome"),
			Limit:   100,
		}
		if v := q.Get("min_duration"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				WriteError(w, http.StatusBadRequest, errors.New("min_duration: use a Go duration like 50ms"))
				return
			}
			f.MinDuration = d
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				WriteError(w, http.StatusBadRequest, errors.New("limit: use a positive integer"))
				return
			}
			f.Limit = n
		}
		traces := rec.Traces(f)
		if traces == nil {
			traces = []telemetry.TraceSummary{}
		}
		WriteJSON(w, http.StatusOK, TracesResponse{Traces: traces, Capacity: rec.Capacity()})
		return
	}
	spans, ok := rec.Trace(id)
	if !ok {
		WriteError(w, http.StatusNotFound, errors.New("trace not recorded (never seen, or overwritten in the ring)"))
		return
	}
	resp := TraceResponse{TraceID: id, Spans: len(spans), Tree: telemetry.BuildSpanTree(spans)}
	if stats, ok := a.sched.WALStats(); ok {
		resp.WAL = &stats
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (a *API) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	q := r.URL.Query()
	f := DecisionFilter{
		Job:    q.Get("job"),
		Tenant: q.Get("tenant"),
		Kind:   q.Get("kind"),
		Trace:  q.Get("trace"),
		Limit:  100,
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			WriteError(w, http.StatusBadRequest, errors.New("limit: use a positive integer"))
			return
		}
		f.Limit = n
	}
	decisions := a.sched.Decisions(f)
	if decisions == nil {
		decisions = []DecisionRecord{}
	}
	WriteJSON(w, http.StatusOK, DecisionsResponse{Decisions: decisions})
}

// WithReadiness attaches the readiness probe GET /readyz answers from
// (nil, the default, reports ready — an API wired by hand in tests has no
// boot sequence to wait out). The easeml facade wires a check for "WAL
// recovery finished and the fleet listener is accepting".
func (a *API) WithReadiness(ready func() bool) *API {
	a.ready = ready
	return a
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if a.ready != nil && !a.ready() {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	WriteJSON(w, http.StatusOK, map[string]bool{"ready": true})
}
