package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/admission"
	"repro/internal/dsl"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// API wraps a Scheduler with the HTTP surface of the ease.ml service:
//
//	POST /jobs                     submit a declarative job
//	GET  /jobs                     list job ids
//	GET  /jobs/{id}/status         job status and best model
//	POST /jobs/{id}/feed           register example pairs
//	POST /jobs/{id}/refine         toggle an example
//	POST /jobs/{id}/infer          apply the best model
//	POST /jobs/{id}/infer/batch    apply the best model to many inputs at once
//	POST /jobs/{id}/infer/stream   same request, NDJSON streaming reply
//	GET  /metrics                  Prometheus text exposition of all telemetry
//	POST /admin/rounds             run scheduling rounds synchronously
//	GET  /admin/snapshot           checkpoint the shared storage as JSON
//	POST /admin/snapshot           compact the WAL into the on-disk snapshot
//	GET  /admin/metrics            scheduler counters + engine metrics
//	POST /admin/start              start the async execution engine
//	POST /admin/stop               stop the engine (graceful drain)
//	GET  /admin/fleet              worker registry + lease/expiry counters
//	GET  /admin/quotas             tenant admission state (classes, caps, budgets)
//	POST /admin/quotas             install or replace one tenant's quota live
//	GET  /admin/traces             flight-recorder trace listing (tenant/job/outcome/min-duration filters)
//	GET  /admin/traces/{id}        one trace's full span tree + WAL seq horizon
//	GET  /admin/decisions          scheduler decision provenance (job/tenant/kind/trace filters)
//	GET  /healthz                  liveness probe
//	GET  /readyz                   readiness probe (WAL recovered, fleet listener up)
//
// The three /admin engine endpoints operate on the optional EngineControl
// wired in with WithEngine (the easeml facade does this when the service is
// configured with workers). Without one, /admin/metrics still reports the
// scheduler counters and start/stop answer 409 Conflict. /admin/fleet
// likewise reports the optional FleetControl wired in with WithFleet, and
// /admin/quotas the admission controller wired in with WithAdmission.
//
// Errors are JSON envelopes {"error": "...", "code": "..."}; code
// "lease_conflict" (HTTP 409) marks lease-lifecycle races — a worker
// double-reporting a result, or reporting after its lease expired — which
// retrying workers should drop, not escalate. Code "quota_exceeded"
// (HTTP 429) marks admission rejections — a tenant over its rate limit or
// concurrent-job cap — which clients should back off from.
type API struct {
	sched  *Scheduler
	engine EngineControl
	fleet  FleetControl
	adm    *admission.Controller
	// ready is the optional readiness probe behind GET /readyz (see
	// WithReadiness in traces.go); nil reports ready.
	ready func() bool
}

// EngineControl is the engine surface the admin endpoints drive. It is an
// interface so the server layer stays independent of the engine package
// (which imports this one for the lease API); the easeml facade adapts
// engine.Engine to it.
type EngineControl interface {
	// Start launches the engine; it errors when already running.
	Start() error
	// Stop gracefully drains and stops the engine; it errors when not
	// running.
	Stop() error
	// Status snapshots the engine counters.
	Status() EngineStatus
}

// EngineWorkerStatus is the per-worker slice of EngineStatus.
type EngineWorkerStatus struct {
	Items  int64   `json:"items"`
	BusyMS float64 `json:"busy_ms"`
}

// EngineStatus is the engine block of the metrics endpoint.
type EngineStatus struct {
	Running     bool                 `json:"running"`
	Workers     int                  `json:"workers"`
	Completed   int64                `json:"completed"`
	Released    int64                `json:"released"`
	Abandoned   int64                `json:"abandoned"`
	Errors      int64                `json:"errors"`
	InFlight    int                  `json:"in_flight"`
	QueueDepth  int                  `json:"queue_depth"`
	UptimeMS    float64              `json:"uptime_ms"`
	Utilization float64              `json:"utilization"`
	PerWorker   []EngineWorkerStatus `json:"per_worker,omitempty"`
	// Virtual-time accounting of the simulated pool: the multi-device
	// makespan of everything trained so far versus what the serialized
	// single-device strategy would have taken (§5.3.2).
	VirtualMakespan     float64 `json:"virtual_makespan"`
	VirtualSingleDevice float64 `json:"virtual_single_device"`
	VirtualSpeedup      float64 `json:"virtual_speedup"`
}

// FleetWorkerStatus is the per-worker slice of FleetStatus.
type FleetWorkerStatus struct {
	ID            string  `json:"id"`
	Name          string  `json:"name"`
	Devices       int     `json:"devices"`
	Alpha         float64 `json:"alpha"`
	State         string  `json:"state"` // alive | dead | left
	InFlight      int     `json:"in_flight"`
	Completed     int64   `json:"completed"`
	Failures      int64   `json:"failures"`
	ExpiredLeases int64   `json:"expired_leases"`
	// PreemptedLeases counts leases reclaimed from this worker by priority
	// preemption (guaranteed work displacing best-effort runs).
	PreemptedLeases int64 `json:"preempted_leases"`
	// LastHeartbeatAgeMS is how long the worker has been silent
	// (registration counts as contact).
	LastHeartbeatAgeMS float64 `json:"last_heartbeat_age_ms"`
}

// FleetStatus is the GET /admin/fleet reply: the worker registry and the
// coordinator's lease counters.
type FleetStatus struct {
	LeaseTTLMS    float64 `json:"lease_ttl_ms"`
	HeartbeatMS   float64 `json:"heartbeat_ms"`
	Alive         int     `json:"alive"`
	Dead          int     `json:"dead"`
	Left          int     `json:"left"`
	RemoteLeases  int     `json:"remote_leases"`
	ExpiredLeases int64   `json:"expired_leases"`
	// PreemptedLeases counts leases reclaimed fleet-wide by priority
	// preemption.
	PreemptedLeases int64               `json:"preempted_leases"`
	Workers         []FleetWorkerStatus `json:"workers,omitempty"`
}

// FleetControl is the coordinator surface the admin endpoint reads. It is
// an interface so the server layer stays independent of internal/fleet
// (which imports this package for the lease API).
type FleetControl interface {
	// FleetStatus snapshots the worker registry and lease counters.
	FleetStatus() FleetStatus
}

// NewAPI wraps a scheduler.
func NewAPI(sched *Scheduler) *API { return &API{sched: sched} }

// WithEngine attaches an engine control to the admin surface and returns
// the API for chaining.
func (a *API) WithEngine(ctrl EngineControl) *API {
	a.engine = ctrl
	return a
}

// WithFleet attaches a fleet coordinator to the admin surface and returns
// the API for chaining.
func (a *API) WithFleet(ctrl FleetControl) *API {
	a.fleet = ctrl
	return a
}

// WithAdmission attaches an admission controller to the admin surface
// (GET/POST /admin/quotas) and returns the API for chaining. The same
// controller must be installed on the scheduler via SetAdmission.
func (a *API) WithAdmission(ctrl *admission.Controller) *API {
	a.adm = ctrl
	return a
}

// Handler returns the HTTP handler for the service: the API routes plus
// GET /metrics (Prometheus exposition), the whole surface wrapped in the
// telemetry middleware — per-route latency histograms, status-code
// counters and X-Easeml-Trace propagation.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", a.handleJobs)
	mux.HandleFunc("/jobs/", a.handleJobOp)
	mux.HandleFunc("/metrics", a.handlePrometheus)
	mux.HandleFunc("/admin/rounds", a.handleRounds)
	mux.HandleFunc("/admin/snapshot", a.handleSnapshot)
	mux.HandleFunc("/admin/metrics", a.handleMetrics)
	mux.HandleFunc("/admin/start", a.handleEngineStart)
	mux.HandleFunc("/admin/stop", a.handleEngineStop)
	mux.HandleFunc("/admin/fleet", a.handleFleet)
	mux.HandleFunc("/admin/quotas", a.handleQuotas)
	mux.HandleFunc("/admin/traces", a.handleTraces)
	mux.HandleFunc("/admin/traces/", a.handleTraces)
	mux.HandleFunc("/admin/decisions", a.handleDecisions)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	return telemetry.InstrumentHTTP(telemetry.Default(), RouteLabel, mux)
}

// SubmitRequest is the POST /jobs payload.
type SubmitRequest struct {
	Name    string `json:"name"`
	Program string `json:"program"`
}

// SubmitResponse is the POST /jobs reply.
type SubmitResponse struct {
	ID         string   `json:"id"`
	Template   string   `json:"template"`
	Candidates []string `json:"candidates"`
	Julia      string   `json:"julia"`
	Python     string   `json:"python"`
}

// FeedRequest is the POST /jobs/{id}/feed payload.
type FeedRequest struct {
	Inputs  [][]float64 `json:"inputs"`
	Outputs [][]float64 `json:"outputs"`
}

// FeedResponse is the feed reply.
type FeedResponse struct {
	IDs []int `json:"ids"`
}

// RefineRequest is the POST /jobs/{id}/refine payload.
type RefineRequest struct {
	Example int  `json:"example"`
	Enabled bool `json:"enabled"`
}

// InferRequest is the POST /jobs/{id}/infer payload.
type InferRequest struct {
	Input []float64 `json:"input"`
}

// InferResponse is the infer reply.
type InferResponse struct {
	Output []float64 `json:"output"`
	Model  string    `json:"model"`
}

// RoundsRequest is the POST /admin/rounds payload.
type RoundsRequest struct {
	Count int `json:"count"`
}

// RoundsResponse is the rounds reply.
type RoundsResponse struct {
	Ran   int `json:"ran"`
	Total int `json:"total"`
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var ids []string
		for _, j := range a.sched.Jobs() {
			ids = append(ids, j.ID)
		}
		WriteJSON(w, http.StatusOK, map[string][]string{"jobs": ids})
	case http.MethodPost:
		var req SubmitRequest
		if !ReadJSON(w, r, &req) {
			return
		}
		job, err := a.sched.Submit(req.Name, req.Program)
		if err != nil {
			WriteError(w, userErrStatus(err), err)
			return
		}
		resp := SubmitResponse{ID: job.ID, Template: job.Template, Julia: job.Julia, Python: job.Python}
		for _, c := range job.Candidates {
			resp.Candidates = append(resp.Candidates, c.Name())
		}
		WriteJSON(w, http.StatusCreated, resp)
	default:
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func (a *API) handleJobOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[0] == "" {
		WriteError(w, http.StatusNotFound, errors.New("use /jobs/{id}/{op}"))
		return
	}
	id, op := parts[0], parts[1]
	switch op {
	case "status":
		if r.Method != http.MethodGet {
			WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
			return
		}
		st, err := a.sched.Status(id)
		if err != nil {
			WriteError(w, http.StatusNotFound, err)
			return
		}
		WriteJSON(w, http.StatusOK, st)
	case "feed":
		var req FeedRequest
		if !requirePost(w, r) || !ReadJSON(w, r, &req) {
			return
		}
		if len(req.Inputs) != len(req.Outputs) {
			WriteError(w, http.StatusBadRequest,
				fmt.Errorf("%d inputs vs %d outputs", len(req.Inputs), len(req.Outputs)))
			return
		}
		var resp FeedResponse
		for i := range req.Inputs {
			exID, err := a.sched.Feed(id, req.Inputs[i], req.Outputs[i])
			if err != nil {
				// Examples before i are already durably appended; the error
				// envelope carries their IDs so the client knows what
				// committed and can resume from input i.
				body := errorBody(err)
				body.IDs = resp.IDs
				WriteJSON(w, userErrStatus(err), body)
				return
			}
			resp.IDs = append(resp.IDs, exID)
		}
		WriteJSON(w, http.StatusOK, resp)
	case "refine":
		var req RefineRequest
		if !requirePost(w, r) || !ReadJSON(w, r, &req) {
			return
		}
		if err := a.sched.Refine(id, req.Example, req.Enabled); err != nil {
			WriteError(w, userErrStatus(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case "infer":
		var req InferRequest
		if !requirePost(w, r) || !ReadJSON(w, r, &req) {
			return
		}
		out, model, err := a.sched.Infer(id, req.Input)
		if err != nil {
			WriteError(w, userErrStatus(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, InferResponse{Output: out, Model: model})
	case "infer/batch":
		a.handleInferBatch(w, r, id)
	case "infer/stream":
		a.handleInferStream(w, r, id)
	default:
		WriteError(w, http.StatusNotFound, fmt.Errorf("unknown operation %q", op))
	}
}

func (a *API) handleRounds(w http.ResponseWriter, r *http.Request) {
	var req RoundsRequest
	if !requirePost(w, r) || !ReadJSON(w, r, &req) {
		return
	}
	if req.Count <= 0 {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("count %d must be positive", req.Count))
		return
	}
	ran, err := a.sched.RunRounds(req.Count)
	if err != nil {
		// A lease conflict is a settle race (e.g. workers double-reporting),
		// not a server fault: 409 tells the caller to drop the retry.
		if errors.Is(err, ErrLeaseConflict) {
			WriteError(w, http.StatusConflict, err)
			return
		}
		WriteError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, RoundsResponse{Ran: ran, Total: a.sched.Rounds()})
}

// QuotaStatus is one tenant's row in the GET /admin/quotas reply: the
// declared quota plus the scheduler's live usage.
type QuotaStatus struct {
	admission.TenantStatus
	// CostUsed is the total GPU cost the tenant's jobs have paid — the
	// quantity Budget is enforced against.
	CostUsed float64 `json:"cost_used"`
	// BudgetExhausted marks tenants whose jobs were drained because the
	// budget ran out.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// QuotasResponse is the GET /admin/quotas reply.
type QuotasResponse struct {
	DefaultClass admission.Class `json:"default_class"`
	Tenants      []QuotaStatus   `json:"tenants"`
}

// SetQuotaRequest is the POST /admin/quotas payload: one tenant's new
// quota, applied live (class changes affect jobs submitted from then on;
// rate, cap and budget changes apply immediately).
type SetQuotaRequest struct {
	Tenant string `json:"tenant"`
	admission.Quota
}

// quotaRows builds the per-tenant status rows shared by GET /admin/quotas
// and the admission section of GET /admin/metrics: the declared quota,
// live usage and cost, and the budget-exhausted flag.
func (a *API) quotaRows() []QuotaStatus {
	costs := a.sched.TenantCosts()
	exhausted := make(map[string]bool)
	for _, job := range a.sched.Jobs() {
		if a.sched.BudgetExhausted(job.ID) {
			exhausted[job.Name] = true
		}
	}
	var rows []QuotaStatus
	for _, ts := range a.adm.Snapshot() {
		rows = append(rows, QuotaStatus{
			TenantStatus:    ts,
			CostUsed:        costs[ts.Tenant],
			BudgetExhausted: exhausted[ts.Tenant],
		})
	}
	return rows
}

func (a *API) handleQuotas(w http.ResponseWriter, r *http.Request) {
	if a.adm == nil {
		WriteError(w, http.StatusConflict, errors.New("no admission controller configured (run the server with -quota-config)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		WriteJSON(w, http.StatusOK, QuotasResponse{DefaultClass: a.adm.DefaultClass(), Tenants: a.quotaRows()})
	case http.MethodPost:
		var req SetQuotaRequest
		if !ReadJSON(w, r, &req) {
			return
		}
		if err := a.adm.SetQuota(req.Tenant, req.Quota); err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func (a *API) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if a.fleet == nil {
		WriteError(w, http.StatusConflict, errors.New("no fleet coordinator configured (run the server with a fleet address)"))
		return
	}
	WriteJSON(w, http.StatusOK, a.fleet.FleetStatus())
}

// MetricsResponse is the GET /admin/metrics reply. Selection reports the
// pick-path counters: selection-index epoch/heap/shadow traffic plus the
// aggregated per-job bandit cache hit/miss/invalidation tallies. The
// admission, fleet and WAL sections appear when the corresponding
// subsystem is configured; GET /metrics carries the same state as
// Prometheus exposition.
type MetricsResponse struct {
	Jobs      int            `json:"jobs"`
	Rounds    int            `json:"rounds"`
	InFlight  int            `json:"in_flight"`
	Selection SelectionStats `json:"selection"`
	Engine    *EngineStatus  `json:"engine,omitempty"`
	// Admission is the per-tenant view: slots (active vs. max jobs),
	// budgets with live cost, and admitted/rejected verdict tallies
	// (rejected == 429s served).
	Admission *AdmissionMetrics `json:"admission,omitempty"`
	// Fleet condenses the worker registry: workers by state plus the
	// lease expiry/preemption counters.
	Fleet *FleetMetrics `json:"fleet,omitempty"`
	// WAL reports the durability layer's operation tallies and sequence
	// horizon (nil for an in-memory scheduler).
	WAL *storage.LogStats `json:"wal,omitempty"`
	// PlanCache reports the process-wide DSL program cache and the
	// candidate-grid cache behind Submit, recovery and agent job fetches.
	PlanCache *PlanCacheMetrics `json:"plan_cache,omitempty"`
}

// AdmissionMetrics is the admission section of MetricsResponse.
type AdmissionMetrics struct {
	DefaultClass admission.Class `json:"default_class"`
	Tenants      []QuotaStatus   `json:"tenants"`
}

// FleetMetrics is the fleet section of MetricsResponse: the registry
// grouped by worker state plus fleet-wide lease reclaim counters.
type FleetMetrics struct {
	WorkersByState  map[string]int `json:"workers_by_state"`
	RemoteLeases    int            `json:"remote_leases"`
	ExpiredLeases   int64          `json:"expired_leases"`
	PreemptedLeases int64          `json:"preempted_leases"`
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	resp := MetricsResponse{
		Jobs:      len(a.sched.Jobs()),
		Rounds:    a.sched.Rounds(),
		InFlight:  a.sched.InFlight(),
		Selection: a.sched.SelectionStats(),
	}
	if a.engine != nil {
		st := a.engine.Status()
		resp.Engine = &st
	}
	if a.adm != nil {
		resp.Admission = &AdmissionMetrics{DefaultClass: a.adm.DefaultClass(), Tenants: a.quotaRows()}
	}
	if a.fleet != nil {
		fs := a.fleet.FleetStatus()
		resp.Fleet = &FleetMetrics{
			WorkersByState:  map[string]int{"alive": fs.Alive, "dead": fs.Dead, "left": fs.Left},
			RemoteLeases:    fs.RemoteLeases,
			ExpiredLeases:   fs.ExpiredLeases,
			PreemptedLeases: fs.PreemptedLeases,
		}
	}
	if stats, ok := a.sched.WALStats(); ok {
		resp.WAL = &stats
	}
	resp.PlanCache = &PlanCacheMetrics{
		Program:    dsl.PlanCacheStats(),
		Candidates: templates.CandidateCacheStats(),
	}
	WriteJSON(w, http.StatusOK, resp)
}

// PlanCacheMetrics is the plan-cache section of MetricsResponse: the
// parsed-program cache and the candidate-grid cache, both process-wide.
type PlanCacheMetrics struct {
	Program    dsl.CacheStats `json:"program"`
	Candidates dsl.CacheStats `json:"candidates"`
}

func (a *API) handleEngineStart(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if a.engine == nil {
		WriteError(w, http.StatusConflict, errors.New("no engine configured (run the server with workers)"))
		return
	}
	if err := a.engine.Start(); err != nil {
		WriteError(w, http.StatusConflict, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]bool{"running": true})
}

func (a *API) handleEngineStop(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if a.engine == nil {
		WriteError(w, http.StatusConflict, errors.New("no engine configured (run the server with workers)"))
		return
	}
	if err := a.engine.Stop(); err != nil {
		WriteError(w, http.StatusConflict, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]bool{"running": false})
}

func (a *API) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		if err := a.sched.Snapshot(w); err != nil {
			// Headers are already sent; the truncated body signals the failure.
			return
		}
	case http.MethodPost:
		// With a data directory, a snapshot request is a compaction
		// trigger: fold the write-ahead log into the on-disk snapshot.
		// ?mode=incremental folds only the oldest sealed WAL segment
		// (an O(segment) pause; "compacted" is false when there was
		// nothing sealed to fold).
		if !a.sched.Persistent() {
			WriteError(w, http.StatusConflict, errors.New("no data dir configured (run the server with -data-dir)"))
			return
		}
		switch mode := r.URL.Query().Get("mode"); mode {
		case "", "full":
			if err := a.sched.Compact(); err != nil {
				WriteError(w, http.StatusInternalServerError, err)
				return
			}
			WriteJSON(w, http.StatusOK, map[string]bool{"compacted": true})
		case "incremental":
			folded, err := a.sched.CompactIncremental()
			if err != nil {
				WriteError(w, http.StatusInternalServerError, err)
				return
			}
			WriteJSON(w, http.StatusOK, map[string]bool{"compacted": folded})
		default:
			WriteError(w, http.StatusBadRequest, fmt.Errorf("unknown compaction mode %q (use full or incremental)", mode))
		}
	default:
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	return true
}

// ReadJSON decodes a request body strictly (unknown fields rejected),
// answering 400 with the standard error envelope on failure. It is shared
// with the fleet coordinator's handlers so every HTTP surface speaks one
// envelope.
func ReadJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return false
	}
	return true
}

// WriteJSON writes v as the JSON response body under the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorBody is the JSON error envelope of every non-2xx reply. Code
// machine-tags the error class so clients can branch without parsing the
// message; CodeLeaseConflict and CodeQuotaExceeded are the codes so far.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// IDs carries the example IDs a partially-failed feed batch had
	// already durably committed before the error — set only by the feed
	// handler, so clients can resume instead of re-feeding duplicates.
	IDs []int `json:"ids,omitempty"`
}

// CodeLeaseConflict tags HTTP 409 replies caused by ErrLeaseConflict.
const CodeLeaseConflict = "lease_conflict"

// CodeQuotaExceeded tags HTTP 429 replies caused by
// admission.ErrQuotaExceeded (rate limit, concurrent-job cap, budget).
const CodeQuotaExceeded = "quota_exceeded"

// userErrStatus maps a user-facing mutation error onto its HTTP status:
// admission rejections are 429 Too Many Requests, unknown job IDs are 404
// Not Found, everything else is the caller's fault (400).
func userErrStatus(err error) int {
	switch {
	case errors.Is(err, admission.ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoJob):
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// WriteError writes the standard error envelope, tagging ErrLeaseConflict
// chains with CodeLeaseConflict and admission.ErrQuotaExceeded chains with
// CodeQuotaExceeded. Shared with the fleet handlers, so the conflict
// mapping cannot drift between the two HTTP surfaces.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, errorBody(err))
}

// errorBody builds the envelope for err, tagging the known error classes.
// Split from WriteError so handlers that enrich the envelope (feed's
// partial-commit IDs) keep the same code mapping.
func errorBody(err error) ErrorBody {
	body := ErrorBody{Error: err.Error()}
	switch {
	case errors.Is(err, ErrLeaseConflict):
		body.Code = CodeLeaseConflict
	case errors.Is(err, admission.ErrQuotaExceeded):
		body.Code = CodeQuotaExceeded
	}
	return body
}
