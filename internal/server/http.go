package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// API wraps a Scheduler with the HTTP surface of the ease.ml service:
//
//	POST /jobs                     submit a declarative job
//	GET  /jobs                     list job ids
//	GET  /jobs/{id}/status         job status and best model
//	POST /jobs/{id}/feed           register example pairs
//	POST /jobs/{id}/refine         toggle an example
//	POST /jobs/{id}/infer          apply the best model
//	POST /admin/rounds             run scheduling rounds synchronously
//	GET  /admin/snapshot           checkpoint the shared storage as JSON
//	POST /admin/snapshot           compact the WAL into the on-disk snapshot
//	GET  /admin/metrics            scheduler counters + engine metrics
//	POST /admin/start              start the async execution engine
//	POST /admin/stop               stop the engine (graceful drain)
//
// The three /admin engine endpoints operate on the optional EngineControl
// wired in with WithEngine (the easeml facade does this when the service is
// configured with workers). Without one, /admin/metrics still reports the
// scheduler counters and start/stop answer 409 Conflict.
type API struct {
	sched  *Scheduler
	engine EngineControl
}

// EngineControl is the engine surface the admin endpoints drive. It is an
// interface so the server layer stays independent of the engine package
// (which imports this one for the lease API); the easeml facade adapts
// engine.Engine to it.
type EngineControl interface {
	// Start launches the engine; it errors when already running.
	Start() error
	// Stop gracefully drains and stops the engine; it errors when not
	// running.
	Stop() error
	// Status snapshots the engine counters.
	Status() EngineStatus
}

// EngineWorkerStatus is the per-worker slice of EngineStatus.
type EngineWorkerStatus struct {
	Items  int64   `json:"items"`
	BusyMS float64 `json:"busy_ms"`
}

// EngineStatus is the engine block of the metrics endpoint.
type EngineStatus struct {
	Running     bool                 `json:"running"`
	Workers     int                  `json:"workers"`
	Completed   int64                `json:"completed"`
	Released    int64                `json:"released"`
	Abandoned   int64                `json:"abandoned"`
	Errors      int64                `json:"errors"`
	InFlight    int                  `json:"in_flight"`
	QueueDepth  int                  `json:"queue_depth"`
	UptimeMS    float64              `json:"uptime_ms"`
	Utilization float64              `json:"utilization"`
	PerWorker   []EngineWorkerStatus `json:"per_worker,omitempty"`
	// Virtual-time accounting of the simulated pool: the multi-device
	// makespan of everything trained so far versus what the serialized
	// single-device strategy would have taken (§5.3.2).
	VirtualMakespan     float64 `json:"virtual_makespan"`
	VirtualSingleDevice float64 `json:"virtual_single_device"`
	VirtualSpeedup      float64 `json:"virtual_speedup"`
}

// NewAPI wraps a scheduler.
func NewAPI(sched *Scheduler) *API { return &API{sched: sched} }

// WithEngine attaches an engine control to the admin surface and returns
// the API for chaining.
func (a *API) WithEngine(ctrl EngineControl) *API {
	a.engine = ctrl
	return a
}

// Handler returns the HTTP handler for the service.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", a.handleJobs)
	mux.HandleFunc("/jobs/", a.handleJobOp)
	mux.HandleFunc("/admin/rounds", a.handleRounds)
	mux.HandleFunc("/admin/snapshot", a.handleSnapshot)
	mux.HandleFunc("/admin/metrics", a.handleMetrics)
	mux.HandleFunc("/admin/start", a.handleEngineStart)
	mux.HandleFunc("/admin/stop", a.handleEngineStop)
	return mux
}

// SubmitRequest is the POST /jobs payload.
type SubmitRequest struct {
	Name    string `json:"name"`
	Program string `json:"program"`
}

// SubmitResponse is the POST /jobs reply.
type SubmitResponse struct {
	ID         string   `json:"id"`
	Template   string   `json:"template"`
	Candidates []string `json:"candidates"`
	Julia      string   `json:"julia"`
	Python     string   `json:"python"`
}

// FeedRequest is the POST /jobs/{id}/feed payload.
type FeedRequest struct {
	Inputs  [][]float64 `json:"inputs"`
	Outputs [][]float64 `json:"outputs"`
}

// FeedResponse is the feed reply.
type FeedResponse struct {
	IDs []int `json:"ids"`
}

// RefineRequest is the POST /jobs/{id}/refine payload.
type RefineRequest struct {
	Example int  `json:"example"`
	Enabled bool `json:"enabled"`
}

// InferRequest is the POST /jobs/{id}/infer payload.
type InferRequest struct {
	Input []float64 `json:"input"`
}

// InferResponse is the infer reply.
type InferResponse struct {
	Output []float64 `json:"output"`
	Model  string    `json:"model"`
}

// RoundsRequest is the POST /admin/rounds payload.
type RoundsRequest struct {
	Count int `json:"count"`
}

// RoundsResponse is the rounds reply.
type RoundsResponse struct {
	Ran   int `json:"ran"`
	Total int `json:"total"`
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var ids []string
		for _, j := range a.sched.Jobs() {
			ids = append(ids, j.ID)
		}
		writeJSON(w, http.StatusOK, map[string][]string{"jobs": ids})
	case http.MethodPost:
		var req SubmitRequest
		if !readJSON(w, r, &req) {
			return
		}
		job, err := a.sched.Submit(req.Name, req.Program)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := SubmitResponse{ID: job.ID, Template: job.Template, Julia: job.Julia, Python: job.Python}
		for _, c := range job.Candidates {
			resp.Candidates = append(resp.Candidates, c.Name())
		}
		writeJSON(w, http.StatusCreated, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func (a *API) handleJobOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[0] == "" {
		writeError(w, http.StatusNotFound, errors.New("use /jobs/{id}/{op}"))
		return
	}
	id, op := parts[0], parts[1]
	switch op {
	case "status":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
			return
		}
		st, err := a.sched.Status(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case "feed":
		var req FeedRequest
		if !requirePost(w, r) || !readJSON(w, r, &req) {
			return
		}
		if len(req.Inputs) != len(req.Outputs) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%d inputs vs %d outputs", len(req.Inputs), len(req.Outputs)))
			return
		}
		var resp FeedResponse
		for i := range req.Inputs {
			exID, err := a.sched.Feed(id, req.Inputs[i], req.Outputs[i])
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			resp.IDs = append(resp.IDs, exID)
		}
		writeJSON(w, http.StatusOK, resp)
	case "refine":
		var req RefineRequest
		if !requirePost(w, r) || !readJSON(w, r, &req) {
			return
		}
		if err := a.sched.Refine(id, req.Example, req.Enabled); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case "infer":
		var req InferRequest
		if !requirePost(w, r) || !readJSON(w, r, &req) {
			return
		}
		out, model, err := a.sched.Infer(id, req.Input)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, InferResponse{Output: out, Model: model})
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown operation %q", op))
	}
}

func (a *API) handleRounds(w http.ResponseWriter, r *http.Request) {
	var req RoundsRequest
	if !requirePost(w, r) || !readJSON(w, r, &req) {
		return
	}
	if req.Count <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("count %d must be positive", req.Count))
		return
	}
	ran, err := a.sched.RunRounds(req.Count)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, RoundsResponse{Ran: ran, Total: a.sched.Rounds()})
}

// MetricsResponse is the GET /admin/metrics reply.
type MetricsResponse struct {
	Jobs     int           `json:"jobs"`
	Rounds   int           `json:"rounds"`
	InFlight int           `json:"in_flight"`
	Engine   *EngineStatus `json:"engine,omitempty"`
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	resp := MetricsResponse{
		Jobs:     len(a.sched.Jobs()),
		Rounds:   a.sched.Rounds(),
		InFlight: a.sched.InFlight(),
	}
	if a.engine != nil {
		st := a.engine.Status()
		resp.Engine = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleEngineStart(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if a.engine == nil {
		writeError(w, http.StatusConflict, errors.New("no engine configured (run the server with workers)"))
		return
	}
	if err := a.engine.Start(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"running": true})
}

func (a *API) handleEngineStop(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if a.engine == nil {
		writeError(w, http.StatusConflict, errors.New("no engine configured (run the server with workers)"))
		return
	}
	if err := a.engine.Stop(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"running": false})
}

func (a *API) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		if err := a.sched.Snapshot(w); err != nil {
			// Headers are already sent; the truncated body signals the failure.
			return
		}
	case http.MethodPost:
		// With a data directory, a snapshot request is a compaction
		// trigger: fold the write-ahead log into the on-disk snapshot.
		if !a.sched.Persistent() {
			writeError(w, http.StatusConflict, errors.New("no data dir configured (run the server with -data-dir)"))
			return
		}
		if err := a.sched.Compact(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"compacted": true})
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	return true
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
