package server

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/telemetry"
)

// Online serving: the read path next to training. An InferSession resolves
// everything that needs job state — the best model under the store's lock,
// the schema, the pseudo-model seed — exactly once; Apply is then pure
// arithmetic on immutable fields, so a batched or streaming request holds
// no per-job lock while computing or encoding thousands of outputs.

var (
	inferRequests = telemetry.Default().CounterVec(
		"easeml_infer_requests_total",
		"Inference requests by mode (single, batch, stream).",
		"mode")
	inferOutputs = telemetry.Default().Counter(
		"easeml_infer_outputs_total",
		"Individual outputs produced across all inference modes.")
	inferBatchSize = telemetry.Default().ValueHistogram(
		"easeml_infer_batch_size",
		"Inputs per batched or streaming inference request.")
)

// InferSession is one resolved serving handle: the job's best model at
// resolve time plus the precomputed seed and schema widths. It is a value
// snapshot — a model that becomes best after resolution is picked up by
// the next session, never mid-batch, so every output in one response comes
// from one model.
type InferSession struct {
	// Model is the name of the best trained candidate serving this session.
	Model string

	seed   float64
	inLen  int
	outLen int
}

// NewInferSession resolves a job's serving state: ErrNoJob when the ID is
// unknown, an error before the first candidate finishes training.
func (sc *Scheduler) NewInferSession(jobID string) (*InferSession, error) {
	job, ok := sc.Job(jobID)
	if !ok {
		return nil, errNoJob(jobID)
	}
	best, ok := job.store.Best()
	if !ok {
		return nil, fmt.Errorf("server: job %q has no trained model yet", jobID)
	}
	h := fnv.New64a()
	h.Write([]byte(best.Name))
	return &InferSession{
		Model:  best.Name,
		seed:   float64(h.Sum64()%997) / 997,
		inLen:  job.Program.Input.TotalElements(),
		outLen: job.Program.Output.TotalElements(),
	}, nil
}

// checkInput validates one input vector against the session's schema:
// exact element count and finite values only. NaN and ±Inf would propagate
// through the sin/abs pseudo-model as garbage the client cannot tell from
// a prediction, so they are rejected up front.
func (s *InferSession) checkInput(input []float64) error {
	if len(input) != s.inLen {
		return fmt.Errorf("server: input has %d elements, schema wants %d", len(input), s.inLen)
	}
	for i, v := range input {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: input element %d is %v, inputs must be finite", i, v)
		}
	}
	return nil
}

// apply writes the pseudo-prediction for input into out (resized as
// needed) and returns it. Callers have already validated the input.
func (s *InferSession) apply(input, out []float64) []float64 {
	if cap(out) < s.outLen {
		out = make([]float64, s.outLen)
	}
	out = out[:s.outLen]
	var acc float64
	for _, v := range input {
		acc += v
	}
	for i := range out {
		out[i] = math.Abs(math.Sin(acc*s.seed + float64(i)))
	}
	inferOutputs.Inc()
	return out
}

// Apply validates one input and returns its prediction.
func (s *InferSession) Apply(input []float64) ([]float64, error) {
	if err := s.checkInput(input); err != nil {
		return nil, err
	}
	return s.apply(input, nil), nil
}

// InferBatch applies the best model to many inputs under one session: one
// job lookup, one best-model resolution, one validation sweep, then pure
// computation. Validation covers the whole batch before any output is
// produced, so a batch either succeeds completely or fails without partial
// results — the index of the offending input is in the error.
func (sc *Scheduler) InferBatch(jobID string, inputs [][]float64) ([][]float64, string, error) {
	sess, err := sc.NewInferSession(jobID)
	if err != nil {
		return nil, "", err
	}
	for i, in := range inputs {
		if err := sess.checkInput(in); err != nil {
			return nil, "", fmt.Errorf("input %d: %w", i, err)
		}
	}
	inferRequests.With("batch").Inc()
	inferBatchSize.Observe(uint64(len(inputs)))
	outs := make([][]float64, len(inputs))
	flat := make([]float64, len(inputs)*sess.outLen)
	for i, in := range inputs {
		outs[i] = sess.apply(in, flat[i*sess.outLen:(i+1)*sess.outLen])
	}
	return outs, sess.Model, nil
}
