package server

import (
	"math"
	"sort"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
)

// Cross-job selection index: the PickWork-side cache that makes the pick
// path incremental. Two ideas, both keyed by a per-job dirty epoch:
//
//   - Score cache + heap. Every job carries a cached greedy gap score
//     (MaxUCB − best observed) and a monotonically increasing epoch,
//     bumped by every selection-relevant mutation — an observation landing
//     (Complete), a candidate retirement (Abandon, job failure, budget
//     drain) or any lease-set change. A max-heap over the cached gaps is
//     repaired lazily: a pick first re-scores only the jobs whose epoch
//     moved since they were last scored (O(dirty), and O(1) per job when
//     the bandit-level UCB cache is still warm), then answers the greedy
//     argmax by popping the heap instead of scanning all J jobs' posteriors.
//
//   - Persistent hallucination shadows. The GP-BUCB shadow a job's picks
//     are diversified through is kept on the job's index entry and revived
//     across PickWork calls while the job's epoch is unchanged, so a batch
//     of picks pays one O(1) shadow (bandit.NewShadow's prefix-sharing
//     snapshot) instead of a deep posterior clone per call.
//
// The index serves the stock pickers through core.SelectionOracle; the
// exact greedy semantics (candidate set Vt, tie-breaks, the σ̃ mean) are
// replicated bit-for-bit — σ̃ aggregation deliberately re-folds the active
// tenants in index order rather than keeping an incremental float sum,
// because float addition order changes low bits and the selection must
// stay bit-identical to core.GreedyDecision. Everything here is guarded by
// the scheduler's coordMu.
type selectionIndex struct {
	entries []selEntry
	byID    map[string]int // job id → entry index (== tenant.ID)
	heap    []int          // entry indices, max-heap by (gap desc, index asc)
	dirty   []int          // entry indices queued for re-scoring
	stash   []int          // scratch for heap pop-and-restore
	scratch []int          // scratch for the unserved-tenant fold
	stats   SelectionStats

	// version counts selection-surface changes globally: every per-job
	// epoch bump and every job arrival advances it. It is the fleet
	// protocol's "did anything move at all?" check — a worker whose last
	// full posterior sync happened at this version needs no per-job epoch
	// diff, which keeps the steady-state lease path O(1) in J. Never
	// reset (a mode-switch reset re-bumps it through ensure), so a stale
	// worker can never collide with a fresh count.
	version uint64

	// lastRepair accumulates repair time since the last takeLastRepair —
	// how pickNextLocked learns (under coordMu) whether the pick it just
	// made paid for an index repair, to mint the pick_index_repair child
	// span at the same boundary the histogram observes.
	lastRepair time.Duration
}

// selEntry is one job's slice of the index.
type selEntry struct {
	// epoch counts the job's bandit mutations (observations, retirements,
	// failures, budget drains — the events that move gap scores and
	// posterior state); scored is the epoch the cached gap reflects.
	// Lease-set changes deliberately do not bump it: the greedy gap reads
	// the real bandit, which leases never touch, and the shadow tracks
	// lease churn through its arm list below.
	epoch  uint64
	scored uint64
	queued bool
	gap    float64
	pos    int // position in heap

	// shadow is the persistent GP-BUCB hallucination shadow for the job's
	// in-flight arms, valid while shadowEpoch == epoch (an observation
	// invalidates it wholesale). shadowArms lists the hallucinated arms in
	// application order and shadowCPs[i] is the shadow's state before
	// hallucination i, so lease churn is absorbed incrementally: newly
	// leased arms hallucinate on top (checkpointing first), and handed-back
	// leases roll the shadow back to the matching checkpoint in O(1) —
	// never a rebuild, never a re-hallucination of what is still in
	// flight.
	shadow      *bandit.GPUCB
	shadowEpoch uint64
	shadowArms  []int
	shadowCPs   []bandit.Checkpoint
}

// SelectionStats are the pick-path counters exposed through
// Scheduler.SelectionStats, GET /admin/metrics and the easeml facade.
type SelectionStats struct {
	// Picks counts pick decisions that produced a lease (both the picker
	// path and speculative grants).
	Picks uint64 `json:"picks"`
	// SpeculativeGrants counts leases granted through the fleet's
	// speculative fast path (Scheduler.SpeculativeGrant): an epoch-validated
	// worker proposal, no picker sweep.
	SpeculativeGrants uint64 `json:"speculative_grants"`
	// OraclePicks counts picks answered through the selection index
	// (heap-backed greedy); LegacyPicks counts deep-clone-mode picks and
	// picks by pickers without an oracle path.
	OraclePicks uint64 `json:"oracle_picks"`
	LegacyPicks uint64 `json:"legacy_picks"`
	// JobsRescored counts per-job gap re-scores — the work the dirty
	// epochs bound: only jobs whose epoch moved since their last scoring
	// are re-scored, not all J per pick.
	JobsRescored uint64 `json:"jobs_rescored"`
	// HeapPops counts entries popped (and restored) while answering
	// greedy argmax queries; ~1 per pick when the top of the heap is an
	// eligible candidate.
	HeapPops uint64 `json:"heap_pops"`
	// EpochBumps counts dirty-epoch advances across all jobs.
	EpochBumps uint64 `json:"epoch_bumps"`
	// ShadowsBuilt / ShadowsReused count hallucination shadows created
	// versus revived across picks; ShadowRollbacks counts reuses that
	// rolled back to a checkpoint because in-flight work was handed back.
	ShadowsBuilt    uint64 `json:"shadows_built"`
	ShadowsReused   uint64 `json:"shadows_reused"`
	ShadowRollbacks uint64 `json:"shadow_rollbacks"`
	// BanditCache aggregates the per-job bandit selection/posterior cache
	// counters (filled by Scheduler.SelectionStats, not the index).
	BanditCache bandit.Stats `json:"bandit_cache"`
}

// reset drops every cached score and shadow (mode switches, restores).
func (ix *selectionIndex) reset() {
	ix.entries = nil
	ix.byID = nil
	ix.heap = ix.heap[:0]
	ix.dirty = ix.dirty[:0]
}

// ensure grows the index to cover the current job set. New entries enter
// the dirty queue so their first score is computed on demand.
func (ix *selectionIndex) ensure(jobs []*Job) {
	if len(ix.entries) >= len(jobs) {
		return
	}
	if ix.byID == nil {
		ix.byID = make(map[string]int, len(jobs))
	}
	for i := len(ix.entries); i < len(jobs); i++ {
		ix.entries = append(ix.entries, selEntry{queued: true, pos: -1})
		ix.byID[jobs[i].ID] = i
		ix.dirty = append(ix.dirty, i)
		ix.heapPush(i)
	}
	ix.version++ // new jobs invalidate every worker's full-sync point
}

// markDirty bumps a job's epoch and queues it for re-scoring. Callers hold
// coordMu. Unknown ids (job never picked through the index yet) are
// ignored — the entry will be created dirty by ensure.
func (ix *selectionIndex) markDirty(jobID string) {
	i, ok := ix.byID[jobID]
	if !ok {
		return
	}
	e := &ix.entries[i]
	e.epoch++
	ix.version++
	ix.stats.EpochBumps++
	if !e.queued {
		e.queued = true
		ix.dirty = append(ix.dirty, i)
	}
}

// repair re-scores every queued entry and restores the heap invariant.
// tenants is the job-parallel tenant slice of the current pick; callers
// hold coordMu and every job lock. Re-scoring reads tenant.Gap(), which is
// O(1) when the bandit's own UCB cache is warm (lease-only bumps) and one
// O(K·t²) posterior pass when an observation landed.
func (ix *selectionIndex) repair(tenants []*core.Tenant) {
	if len(ix.dirty) == 0 {
		return
	}
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		pickStageIndexRepair.Observe(d)
		ix.lastRepair += d
	}()
	keep := ix.dirty[:0]
	for _, i := range ix.dirty {
		if i >= len(tenants) {
			// Job published after this pick's snapshot: stay queued for a
			// pick that sees it.
			keep = append(keep, i)
			continue
		}
		e := &ix.entries[i]
		e.queued = false
		e.scored = e.epoch
		ix.stats.JobsRescored++
		if gap := tenants[i].Gap(); gap != e.gap {
			e.gap = gap
			ix.heapFix(i)
		}
	}
	ix.dirty = keep
}

// takeLastRepair returns and clears the repair time accumulated since the
// last call. Callers hold coordMu.
func (ix *selectionIndex) takeLastRepair() time.Duration {
	d := ix.lastRepair
	ix.lastRepair = 0
	return d
}

// GreedyChoice implements core.SelectionOracle for the tenants slice bound
// by oracle(): the greedy argmax served from the repaired heap.
func (ix *selectionIndex) greedyChoice(tenants []*core.Tenant) int {
	ix.repair(tenants)

	// One pass of cheap scalar reads replicating core.GreedyDecision's
	// fold exactly (same iteration order, same float accumulation order):
	// the active count, the σ̃ sum and the unserved-active set.
	nActive := 0
	var sum float64
	unserved := ix.scratch[:0]
	for i, t := range tenants {
		if !t.Active() {
			continue
		}
		nActive++
		st := t.SigmaTilde()
		if math.IsInf(st, 1) { // unserved tenant
			unserved = append(unserved, i)
			continue
		}
		sum += st
	}
	ix.scratch = unserved[:0]
	if nActive == 0 {
		return -1
	}
	if len(unserved) > 0 {
		// Initialization sweep: candidates are exactly the unserved-active
		// tenants; argmax over the gaps, lowest index wins ties.
		best, bestGap := -1, math.Inf(-1)
		for _, i := range unserved {
			if g := ix.gapOf(tenants, i); g > bestGap {
				best, bestGap = i, g
			}
		}
		return best
	}
	avg := sum / float64(nActive)

	// Heap argmax with the candidate filter (σ̃ ≥ avg): pop until the top
	// is an eligible candidate, then restore. The heap orders by
	// (gap desc, index asc), matching the linear scan's strict-> tie-break
	// of "lowest index among the max-gap candidates".
	stash := ix.stash[:0]
	choice := -1
	for len(ix.heap) > 0 {
		top := ix.heapPop()
		stash = append(stash, top)
		ix.stats.HeapPops++
		if top >= len(tenants) {
			continue
		}
		t := tenants[top]
		if t.Active() && t.SigmaTilde() >= avg {
			choice = top
			break
		}
	}
	for _, i := range stash {
		ix.heapPush(i)
	}
	ix.stash = stash[:0]
	if choice >= 0 {
		return choice
	}
	// Numerical corner (no σ̃ reaches the mean): candidates fall back to
	// the whole active set, exactly like core.GreedyDecision.
	best, bestGap := -1, math.Inf(-1)
	for i, t := range tenants {
		if !t.Active() {
			continue
		}
		if g := ix.gapOf(tenants, i); g > bestGap {
			best, bestGap = i, g
		}
	}
	return best
}

// gapOf returns the cached gap when the entry is clean, else the live
// tenant gap (bandit-cached).
func (ix *selectionIndex) gapOf(tenants []*core.Tenant, i int) float64 {
	if i < len(ix.entries) && ix.entries[i].scored == ix.entries[i].epoch && !ix.entries[i].queued {
		return ix.entries[i].gap
	}
	return tenants[i].Gap()
}

// greedyCandidates implements the oracle's candidate-set query (the hybrid
// freeze signature — once per observed round, not per pick) by delegating
// to the canonical linear implementation over cached gaps.
func (ix *selectionIndex) greedyCandidates(tenants []*core.Tenant) []int {
	ix.repair(tenants)
	_, candidates := core.GreedyDecision(tenants, func(i int) float64 { return ix.gapOf(tenants, i) })
	out := append([]int(nil), candidates...)
	sort.Ints(out)
	return out
}

// shadowFor returns the job's hallucination shadow conditioned on exactly
// the cur in-flight arms (lease-grant order): the cached shadow is revived
// when its applied arms match, rolled back to a checkpoint when leases
// were handed back, extended when new leases appeared, and rebuilt (an
// O(1) prefix-sharing bandit.NewShadow, never a deep clone) only when an
// observation landed or the lease history diverged.
func (ix *selectionIndex) shadowFor(e *selEntry, base *bandit.GPUCB, cur []int) *bandit.GPUCB {
	if e.shadow != nil && e.shadowEpoch == e.epoch {
		n := len(e.shadowArms)
		switch {
		case len(cur) <= n && intPrefix(cur, e.shadowArms):
			if len(cur) < n {
				e.shadow.Rollback(e.shadowCPs[len(cur)])
				e.shadowArms = e.shadowArms[:len(cur)]
				e.shadowCPs = e.shadowCPs[:len(cur)]
				ix.stats.ShadowRollbacks++
			}
			ix.stats.ShadowsReused++
			return e.shadow
		case intPrefix(e.shadowArms, cur):
			if ix.hallucinate(e, cur[n:]) {
				ix.stats.ShadowsReused++
				return e.shadow
			}
		}
	}
	e.shadow = base.NewShadow(nil)
	e.shadowEpoch = e.epoch
	e.shadowArms = e.shadowArms[:0]
	e.shadowCPs = e.shadowCPs[:0]
	ix.stats.ShadowsBuilt++
	ix.hallucinate(e, cur)
	return e.shadow
}

// hallucinate applies arms to the entry's shadow, checkpointing before
// each so releases can roll back. A failed fake observation (numerically
// semi-definite extension) is skipped like bandit.NewShadow skips it —
// the arm's variance stays uncollapsed, which is benign — but it is left
// out of shadowArms, so the prefix match stops reviving this shadow and
// every subsequent pick rebuilds; ok reports whether all arms applied.
func (ix *selectionIndex) hallucinate(e *selEntry, arms []int) bool {
	ok := true
	for _, a := range arms {
		cp := e.shadow.Checkpoint()
		e.shadow.Hallucinate(a)
		if !e.shadow.Tried(a) {
			ok = false
			continue
		}
		e.shadowArms = append(e.shadowArms, a)
		e.shadowCPs = append(e.shadowCPs, cp)
	}
	return ok
}

// intPrefix reports whether p is a prefix of s.
func intPrefix(p, s []int) bool {
	if len(p) > len(s) {
		return false
	}
	for i, v := range p {
		if s[i] != v {
			return false
		}
	}
	return true
}

// oracle binds the index to one pick's tenant slice as a
// core.SelectionOracle.
func (ix *selectionIndex) oracle() core.SelectionOracle { return indexOracle{ix} }

type indexOracle struct{ ix *selectionIndex }

func (o indexOracle) GreedyChoice(tenants []*core.Tenant) int { return o.ix.greedyChoice(tenants) }
func (o indexOracle) GreedyCandidates(tenants []*core.Tenant) []int {
	return o.ix.greedyCandidates(tenants)
}

// ---------------------------------------------------------------------------
// Max-heap over entry indices, ordered by (gap desc, index asc), with
// positions tracked in the entries for O(log J) repairs.

// heapLess reports whether entry a ranks above entry b.
func (ix *selectionIndex) heapLess(a, b int) bool {
	ga, gb := ix.entries[a].gap, ix.entries[b].gap
	if ga != gb {
		return ga > gb
	}
	return a < b
}

func (ix *selectionIndex) heapPush(i int) {
	ix.entries[i].pos = len(ix.heap)
	ix.heap = append(ix.heap, i)
	ix.siftUp(len(ix.heap) - 1)
}

func (ix *selectionIndex) heapPop() int {
	top := ix.heap[0]
	last := len(ix.heap) - 1
	ix.heap[0] = ix.heap[last]
	ix.entries[ix.heap[0]].pos = 0
	ix.heap = ix.heap[:last]
	ix.entries[top].pos = -1
	if last > 0 {
		ix.siftDown(0)
	}
	return top
}

// heapFix restores the invariant after entry i's gap changed.
func (ix *selectionIndex) heapFix(i int) {
	p := ix.entries[i].pos
	if p < 0 {
		return
	}
	ix.siftUp(p)
	ix.siftDown(ix.entries[i].pos)
}

func (ix *selectionIndex) siftUp(p int) {
	for p > 0 {
		parent := (p - 1) / 2
		if !ix.heapLess(ix.heap[p], ix.heap[parent]) {
			return
		}
		ix.swap(p, parent)
		p = parent
	}
}

func (ix *selectionIndex) siftDown(p int) {
	n := len(ix.heap)
	for {
		l, r := 2*p+1, 2*p+2
		best := p
		if l < n && ix.heapLess(ix.heap[l], ix.heap[best]) {
			best = l
		}
		if r < n && ix.heapLess(ix.heap[r], ix.heap[best]) {
			best = r
		}
		if best == p {
			return
		}
		ix.swap(p, best)
		p = best
	}
}

func (ix *selectionIndex) swap(a, b int) {
	ix.heap[a], ix.heap[b] = ix.heap[b], ix.heap[a]
	ix.entries[ix.heap[a]].pos = a
	ix.entries[ix.heap[b]].pos = b
}
