package server

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
)

// Tenant admission control: the wiring between the scheduler and
// internal/admission. A configured controller gates Submit (rate limit +
// concurrent-job cap) and Feed (rate limit), assigns every job its
// tenant's service class, wraps the user picker in weighted fair sharing
// across classes, enforces GPU cost budgets against the bandits'
// cumulative cost, and lets guaranteed-class work preempt outstanding
// best-effort leases when the pool is saturated.

// SetAdmission installs the admission controller and wraps the configured
// user picker in core.ClassWeightedPicker, so tenants of different service
// classes share the pool by weight (guaranteed > standard > best-effort)
// without starving anyone. Call before serving traffic and before Recover
// (recovered jobs re-register with the controller and pick up their
// tenant's class).
func (sc *Scheduler) SetAdmission(ctrl *admission.Controller) {
	sc.coordMu.Lock()
	defer sc.coordMu.Unlock()
	sc.adm = ctrl
	if ctrl != nil {
		sc.picker = core.NewClassWeightedPicker(sc.picker)
	}
}

// Admission returns the installed admission controller (nil when the
// scheduler admits everything).
func (sc *Scheduler) Admission() *admission.Controller { return sc.adm }

// TenantCost returns the total GPU cost paid so far by every job of a
// tenant — the quantity budgets are enforced against.
func (sc *Scheduler) TenantCost(tenant string) float64 {
	var cost float64
	for _, job := range sc.jobsSnapshot() {
		if job.Name != tenant {
			continue
		}
		job.mu.Lock()
		cost += job.tenant.Bandit.CumulativeCost()
		job.mu.Unlock()
	}
	return cost
}

// TenantCosts returns the total GPU cost paid per tenant, for the admin
// quota surface.
func (sc *Scheduler) TenantCosts() map[string]float64 {
	out := make(map[string]float64)
	for _, job := range sc.jobsSnapshot() {
		job.mu.Lock()
		out[job.Name] += job.tenant.Bandit.CumulativeCost()
		job.mu.Unlock()
	}
	return out
}

// BudgetExhausted reports whether a job was drained by budget exhaustion.
func (sc *Scheduler) BudgetExhausted(jobID string) bool {
	job, ok := sc.Job(jobID)
	if !ok {
		return false
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	return job.budgetExhausted
}

// enforceBudget checks a tenant's cumulative GPU cost against its declared
// budget and, once exceeded, drains every unfinished job of the tenant:
// all remaining untried arms (leased or not) are retired, so the jobs read
// as exhausted to every picker and late lease settlements bounce off
// ErrLeaseConflict exactly like an expired lease. Each drained job appends
// one budget_exhausted WAL event, so a recovered process agrees the job is
// done training instead of resuming it. Returns the first WAL append
// failure; the in-memory drain always completes.
func (sc *Scheduler) enforceBudget(tenant string) error {
	if sc.adm == nil {
		return nil
	}
	budget := sc.adm.Budget(tenant)
	if budget <= 0 {
		return nil
	}
	jobs := sc.jobsSnapshot()
	var cost float64
	var own []*Job
	for _, job := range jobs {
		if job.Name != tenant {
			continue
		}
		own = append(own, job)
		job.mu.Lock()
		cost += job.tenant.Bandit.CumulativeCost()
		job.mu.Unlock()
	}
	if cost < budget {
		return nil
	}
	var appendErr error
	for _, job := range own {
		job.mu.Lock()
		if job.budgetExhausted || job.failed != "" {
			job.mu.Unlock()
			continue
		}
		job.budgetExhausted = true
		for arm := 0; arm < job.tenant.Bandit.NumArms(); arm++ {
			job.tenant.Bandit.Retire(arm) // no-op for tried arms
		}
		sc.markJobDoneLocked(job)
		job.mu.Unlock()
		sc.decisions.add(&DecisionRecord{
			Kind:        DecisionBudgetExhausted,
			Tenant:      tenant,
			Job:         job.ID,
			Class:       string(job.Class),
			BudgetLimit: budget,
			BudgetUsed:  cost,
			Outcome:     "drained",
		})
		// The drain retired arms: the job's cached selection score (and any
		// hallucination shadow) is stale.
		sc.coordMu.Lock()
		sc.selIdx.markDirty(job.ID)
		sc.coordMu.Unlock()
		if sc.log != nil {
			if err := sc.log.AppendBudgetExhausted(job.ID, tenant, cost); err != nil && appendErr == nil {
				appendErr = fmt.Errorf("server: logging budget exhaustion of %s: %w", job.ID, err)
			}
		}
	}
	return appendErr
}

// PreemptForPriority implements priority preemption over the lease table:
// when a guaranteed-class job has selectable work, one outstanding
// best-effort lease is reclaimed to make room for it. The mechanics reuse
// the lease-expiry path exactly — the victim leaves the table, its
// candidate re-enters GP-BUCB selection exactly once, and the preempted
// worker's late Complete/Release bounces off ErrLeaseConflict (HTTP 409) —
// so no candidate is ever lost or double-counted.
//
// Only worker-assigned, non-settling leases are eligible: the in-process
// engine settles its (unassigned) leases synchronously and cannot abort a
// local run, mirroring the expiry rules. Among eligible victims the most
// recently granted lease is preempted (least sunk work). The caller — the
// fleet coordinator, when its in-flight cap is saturated — decides *when*
// preemption is warranted; this method decides *whether* the class rules
// allow it. With a WAL attached the preemption is logged as operational
// history. Returns nil when no preemption is warranted.
func (sc *Scheduler) PreemptForPriority() (*Lease, error) {
	jobs := sc.jobsSnapshot()
	classByJob := make(map[string]admission.Class, len(jobs))
	for _, job := range jobs {
		classByJob[job.ID] = job.Class
	}

	sc.coordMu.Lock()
	inFlight := sc.inFlightArmsLocked()
	// A guaranteed job is starved when it still has an untried, unleased
	// arm. The job locks are taken in slice order, like every cross-job
	// scheduling decision.
	demanding := ""
	for _, job := range jobs {
		if !job.Class.MayPreempt() {
			continue
		}
		job.mu.Lock()
		job.tenant.SetLeased(len(inFlight[job.ID]))
		starved := job.failed == "" && !job.budgetExhausted && job.tenant.Active()
		job.mu.Unlock()
		if starved {
			demanding = job.ID
			break
		}
	}
	if demanding == "" {
		sc.coordMu.Unlock()
		return nil, nil
	}
	var victim *Lease
	for _, l := range sc.leases {
		if l.settling || l.Worker == "" || !classByJob[l.JobID].Preemptible() {
			continue
		}
		if victim == nil || l.ID > victim.ID {
			victim = l // newest grant: least sunk work
		}
	}
	if victim == nil {
		sc.coordMu.Unlock()
		return nil, nil
	}
	delete(sc.leases, victim.ID)
	sc.coordMu.Unlock()

	finishLeaseSpan(victim, "preempted", nil)
	victimTenant := ""
	if job, ok := sc.Job(victim.JobID); ok {
		victimTenant = job.Name
	}
	sc.decisions.add(&DecisionRecord{
		Kind:         DecisionPreemption,
		Trace:        victim.Trace,
		Tenant:       victimTenant,
		Job:          victim.JobID,
		Candidate:    victim.Candidate.Name(),
		Arm:          victim.Arm,
		Class:        string(classByJob[victim.JobID]),
		ClassWeights: classWeights,
		Outcome:      "preempted",
		Detail:       "demanding job " + demanding,
	})

	if sc.log != nil {
		if err := sc.log.AppendLeasePreempted(victim.JobID, victim.Candidate.Name(), victim.Worker, demanding); err != nil {
			return victim, fmt.Errorf("server: logging preemption of %s/%s: %w", victim.JobID, victim.Candidate.Name(), err)
		}
	}
	return victim, nil
}
