package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/storage"
)

// newAdmittedScheduler builds a scheduler with an admission controller on
// a deterministic clock.
func newAdmittedScheduler(t testing.TB, cfg admission.Config) (*server.Scheduler, *admission.Controller, *time.Time) {
	t.Helper()
	sc := newScheduler(t)
	ctrl, err := admission.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	ctrl.SetClock(func() time.Time { return now })
	sc.SetAdmission(ctrl)
	return sc, ctrl, &now
}

func TestSubmitGatedByJobCapAndRate(t *testing.T) {
	sc, _, now := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"alice": {MaxJobs: 1, RatePerSec: 100, Burst: 100},
	}})
	if _, err := sc.Submit("alice", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Submit("alice", tsProgram); !errors.Is(err, admission.ErrQuotaExceeded) {
		t.Fatalf("second concurrent job admitted under cap 1: %v", err)
	}
	// Other tenants are unaffected.
	if _, err := sc.Submit("bob", tsProgram); err != nil {
		t.Fatal(err)
	}
	// Draining alice's job frees the slot.
	if _, err := sc.RunRounds(1 << 20); err != nil {
		t.Fatal(err)
	}
	*now = now.Add(time.Second)
	if _, err := sc.Submit("alice", tsProgram); err != nil {
		t.Fatalf("slot not freed after drain: %v", err)
	}
}

// A failed submission (bad program) must refund the tenant's job slot.
func TestSubmitRefundsSlotOnBuildFailure(t *testing.T) {
	sc, _, _ := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"alice": {MaxJobs: 1},
	}})
	if _, err := sc.Submit("alice", "{not a program}"); err == nil {
		t.Fatal("invalid program accepted")
	}
	if _, err := sc.Submit("alice", tsProgram); err != nil {
		t.Fatalf("failed submission leaked the job slot: %v", err)
	}
}

func TestFeedRateLimited(t *testing.T) {
	sc, _, now := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"alice": {RatePerSec: 1, Burst: 3},
	}})
	job, err := sc.Submit("alice", tsProgram) // consumes one token
	if err != nil {
		t.Fatal(err)
	}
	in, out := []float64{1, 2, 3, 4}, []float64{0, 1}
	for i := 0; i < 2; i++ {
		if _, err := sc.Feed(job.ID, in, out); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Feed(job.ID, in, out); !errors.Is(err, admission.ErrQuotaExceeded) {
		t.Fatalf("over-rate feed admitted: %v", err)
	}
	*now = now.Add(time.Second)
	if _, err := sc.Feed(job.ID, in, out); err != nil {
		t.Fatalf("token not refilled: %v", err)
	}
}

// Budget exhaustion drains the tenant's jobs gracefully: remaining arms
// retired, scheduling moves on, the drain is WAL-logged, and a recovered
// process agrees.
func TestBudgetExhaustionDrainsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	open := func() *server.Scheduler {
		pool := cluster.NewPool(8, 0.9)
		sc := server.NewScheduler(server.NewSimTrainer(pool, 42), nil, "http://test:9000")
		ctrl, err := admission.NewController(admission.Config{Tenants: map[string]admission.Quota{
			"carol": {Class: admission.ClassBestEffort, Budget: 1e-9}, // exhausts on the first completed run
		}})
		if err != nil {
			t.Fatal(err)
		}
		sc.SetAdmission(ctrl)
		log, rec, err := storage.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Recover(rec, log); err != nil {
			t.Fatal(err)
		}
		return sc
	}

	sc := open()
	carol, err := sc.Submit("carol", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sc.Submit("alice", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunRounds(1 << 20); err != nil {
		t.Fatal(err)
	}
	st, err := sc.Status(carol.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.BudgetExhausted {
		t.Fatal("carol's job not marked budget-exhausted")
	}
	if st.Trained != 1 {
		t.Errorf("carol trained %d candidates, want exactly 1 before the budget bit", st.Trained)
	}
	if st.CostUsed <= 0 {
		t.Errorf("cost used %g", st.CostUsed)
	}
	ast, err := sc.Status(alice.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Trained != ast.NumCandidates {
		t.Errorf("alice trained %d of %d — budget drain must not block other tenants",
			ast.Trained, ast.NumCandidates)
	}

	// Crash (no Close/Compact) and recover: the drained job must stay
	// drained, with its one recorded model intact.
	sc2 := open()
	st2, err := sc2.Status(carol.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.BudgetExhausted || st2.Trained != 1 {
		t.Fatalf("recovery disagrees: %+v", st2)
	}
	ran, err := sc2.RunRounds(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("recovered process trained %d more candidates for a drained tenant set", ran)
	}
}

// A budget-exhausted tenant cannot buy more training by submitting fresh
// jobs: Submit bounces off the budget with the same 429-mapped error.
func TestSubmitRejectedAfterBudgetExhaustion(t *testing.T) {
	sc, _, _ := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"carol": {Class: admission.ClassBestEffort, Budget: 1e-9},
	}})
	if _, err := sc.Submit("carol", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunRounds(1 << 20); err != nil { // first completion exhausts the budget
		t.Fatal(err)
	}
	if _, err := sc.Submit("carol", tsProgram); !errors.Is(err, admission.ErrQuotaExceeded) {
		t.Fatalf("exhausted tenant admitted a new job: %v", err)
	}
	// Other tenants are untouched.
	if _, err := sc.Submit("bob", tsProgram); err != nil {
		t.Fatal(err)
	}
}

// Preemption: a guaranteed tenant with selectable work reclaims the newest
// best-effort worker lease; the candidate re-enters selection exactly
// once, the late settle bounces off ErrLeaseConflict, and the WAL records
// the preemption.
func TestPreemptForPriority(t *testing.T) {
	dir := t.TempDir()
	pool := cluster.NewPool(8, 0.9)
	sc := server.NewScheduler(server.NewSimTrainer(pool, 42), nil, "http://test:9000")
	ctrl, err := admission.NewController(admission.Config{Tenants: map[string]admission.Quota{
		"alice": {Class: admission.ClassGuaranteed},
		"carol": {Class: admission.ClassBestEffort},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sc.SetAdmission(ctrl)
	log, rec, err := storage.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Recover(rec, log); err != nil {
		t.Fatal(err)
	}

	carol, err := sc.Submit("carol", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the pool with carol's work on a remote worker.
	leases, err := sc.PickWork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 {
		t.Fatalf("picked %d leases", len(leases))
	}
	for _, l := range leases {
		if err := sc.AssignLease(l, "worker-0001"); err != nil {
			t.Fatal(err)
		}
	}
	// No guaranteed work yet: nothing to preempt for.
	if v, err := sc.PreemptForPriority(); err != nil || v != nil {
		t.Fatalf("preempted %v without guaranteed demand (err %v)", v, err)
	}

	// A guaranteed job arrives; preemption reclaims the newest lease.
	if _, err := sc.Submit("alice", tsProgram); err != nil {
		t.Fatal(err)
	}
	victim, err := sc.PreemptForPriority()
	if err != nil {
		t.Fatal(err)
	}
	if victim == nil {
		t.Fatal("no lease preempted despite guaranteed demand")
	}
	if victim.JobID != carol.ID {
		t.Errorf("preempted %s, want a best-effort lease of %s", victim.JobID, carol.ID)
	}
	if victim.ID != leases[1].ID {
		t.Errorf("preempted lease %d, want the newest grant %d", victim.ID, leases[1].ID)
	}
	if sc.InFlight() != 1 {
		t.Errorf("in-flight %d after preemption, want 1", sc.InFlight())
	}
	// The late report bounces off the expiry-path conflict.
	if err := sc.Complete(victim, 0.5, 1); !errors.Is(err, server.ErrLeaseConflict) {
		t.Fatalf("late complete after preemption: %v", err)
	}
	// The candidate re-enters selection exactly once: picking to the same
	// capacity grants exactly one lease and it is the preempted arm or a
	// sibling — crucially the total per-arm grant count never exceeds one
	// outstanding lease.
	again, err := sc.PickWork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 {
		t.Fatalf("re-picked %d leases, want 1 (one slot was freed)", len(again))
	}

	// The WAL has the preemption on record, attributed to alice's job.
	if err := sc.Release(again[0]); err != nil {
		t.Fatal(err)
	}
	_ = log
	sc2pool := cluster.NewPool(8, 0.9)
	sc2 := server.NewScheduler(server.NewSimTrainer(sc2pool, 42), nil, "http://test:9000")
	log2, rec2, err := storage.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if err := sc2.Recover(rec2, log2); err != nil {
		t.Fatal(err)
	}
	if len(rec2.Preempted) != 1 {
		t.Fatalf("recovered %d preemption records, want 1", len(rec2.Preempted))
	}
	p := rec2.Preempted[0]
	if p.Job != carol.ID || p.Worker != "worker-0001" || p.By == "" {
		t.Errorf("preemption record %+v", p)
	}
}

// Standard tenants neither preempt nor get preempted.
func TestNoPreemptionWithoutGuaranteedDemand(t *testing.T) {
	sc, _, _ := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"bob":   {Class: admission.ClassStandard},
		"carol": {Class: admission.ClassBestEffort},
	}})
	if _, err := sc.Submit("carol", tsProgram); err != nil {
		t.Fatal(err)
	}
	leases, err := sc.PickWork(1)
	if err != nil || len(leases) != 1 {
		t.Fatalf("pick: %v (%d leases)", err, len(leases))
	}
	if err := sc.AssignLease(leases[0], "worker-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Submit("bob", tsProgram); err != nil {
		t.Fatal(err)
	}
	if v, err := sc.PreemptForPriority(); err != nil || v != nil {
		t.Fatalf("standard tenant preempted a lease: %v (err %v)", v, err)
	}
}

// The HTTP surface: over-quota Submit/Feed answer 429 with the structured
// quota_exceeded envelope; /admin/quotas reads and writes live state.
func TestQuotaHTTPSurface(t *testing.T) {
	sc, ctrl, _ := newAdmittedScheduler(t, admission.Config{
		DefaultClass: admission.ClassStandard,
		Tenants: map[string]admission.Quota{
			"alice": {Class: admission.ClassGuaranteed, RatePerSec: 1, Burst: 1, MaxJobs: 1},
		},
	})
	srv := httptest.NewServer(server.NewAPI(sc).WithAdmission(ctrl).Handler())
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First submission passes (burst 1)…
	resp := post("/jobs", server.SubmitRequest{Name: "alice", Program: tsProgram})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// …the second bounces off the rate limit with the structured 429.
	resp = post("/jobs", server.SubmitRequest{Name: "alice", Program: tsProgram})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d, want 429", resp.StatusCode)
	}
	var envelope server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if envelope.Code != server.CodeQuotaExceeded || envelope.Error == "" {
		t.Fatalf("429 envelope %+v, want code %q", envelope, server.CodeQuotaExceeded)
	}

	// Over-quota feed: same envelope.
	resp = post("/jobs/"+sub.ID+"/feed", server.FeedRequest{
		Inputs:  [][]float64{{1, 2, 3, 4}},
		Outputs: [][]float64{{0, 1}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota feed status %d, want 429", resp.StatusCode)
	}
	envelope = server.ErrorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if envelope.Code != server.CodeQuotaExceeded {
		t.Fatalf("feed 429 envelope %+v", envelope)
	}

	// GET /admin/quotas reflects the declared quota and live usage.
	getResp, err := http.Get(srv.URL + "/admin/quotas")
	if err != nil {
		t.Fatal(err)
	}
	var quotas server.QuotasResponse
	if err := json.NewDecoder(getResp.Body).Decode(&quotas); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if quotas.DefaultClass != admission.ClassStandard {
		t.Errorf("default class %q", quotas.DefaultClass)
	}
	var alice *server.QuotaStatus
	for i := range quotas.Tenants {
		if quotas.Tenants[i].Tenant == "alice" {
			alice = &quotas.Tenants[i]
		}
	}
	if alice == nil || alice.Class != admission.ClassGuaranteed || alice.ActiveJobs != 1 {
		t.Fatalf("alice quota row %+v", alice)
	}

	// POST /admin/quotas updates live state.
	resp = post("/admin/quotas", server.SetQuotaRequest{
		Tenant: "dave",
		Quota:  admission.Quota{Class: admission.ClassBestEffort, Budget: 7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set quota status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := ctrl.Budget("dave"); got != 7 {
		t.Errorf("live budget %g after POST", got)
	}
	resp = post("/admin/quotas", server.SetQuotaRequest{Tenant: "", Quota: admission.Quota{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tenant accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Without a controller the endpoint answers 409, like the other
	// optional admin surfaces.
	bare := httptest.NewServer(server.NewAPI(newScheduler(t)).Handler())
	defer bare.Close()
	getResp, err = http.Get(bare.URL + "/admin/quotas")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusConflict {
		t.Errorf("quotas without controller: %d, want 409", getResp.StatusCode)
	}
}

// Class-weighted fair sharing steers the serialized scheduling loop: a
// guaranteed tenant finishes its candidate list well before a best-effort
// tenant of the same size.
func TestClassWeightedSchedulingOrder(t *testing.T) {
	sc, _, _ := newAdmittedScheduler(t, admission.Config{Tenants: map[string]admission.Quota{
		"alice": {Class: admission.ClassGuaranteed},
		"carol": {Class: admission.ClassBestEffort},
	}})
	alice, err := sc.Submit("alice", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	carol, err := sc.Submit("carol", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	n := len(alice.Candidates)
	// After enough rounds to drain alice under a 4:1 split (n + n/4 + slack),
	// alice must be done while carol still has untried candidates.
	if _, err := sc.RunRounds(n + n/4 + 2); err != nil {
		t.Fatal(err)
	}
	ast, _ := sc.Status(alice.ID)
	cst, _ := sc.Status(carol.ID)
	if ast.Trained != ast.NumCandidates {
		t.Errorf("guaranteed tenant trained %d of %d", ast.Trained, ast.NumCandidates)
	}
	if cst.Trained >= cst.NumCandidates {
		t.Errorf("best-effort tenant finished (%d of %d) before the guaranteed tenant's rounds ran out",
			cst.Trained, cst.NumCandidates)
	}
	_ = carol
}
