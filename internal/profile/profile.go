// Package profile implements the "simple profiling" step of the ease.ml
// pipeline (Figure 1, step 2: "Simple profiling and submission"): before a
// candidate model enters the scheduler, its execution cost is estimated by
// running a short probe — a few epochs on a subsample — and extrapolating to
// the full grid-searched training run.
//
// The scheduler then selects with *estimated* costs while the cluster pays
// *true* costs; the estimator's error model is what the cost-noise
// sensitivity ablation in internal/experiments quantifies.
package profile

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trainsim"
)

// Estimate is one profiled cost prediction.
type Estimate struct {
	Task, Model   int
	ProbeCost     float64 // cost actually spent probing
	PredictedCost float64 // extrapolated full-run cost
	TrueCost      float64 // ground truth (for evaluation only)
}

// RelativeError returns |predicted − true| / true.
func (e Estimate) RelativeError() float64 {
	return math.Abs(e.PredictedCost-e.TrueCost) / e.TrueCost
}

// Profiler estimates full-run training costs from short probes against a
// trainsim Simulator.
type Profiler struct {
	sim *trainsim.Simulator
	// ProbeEpochs is the number of epochs the probe runs (default 2).
	ProbeEpochs int
	// ProbeLRs is the number of learning rates probed (default 1).
	ProbeLRs int
	// NoiseSD perturbs the per-epoch timing measurement (relative, default
	// 0.05): real profiling shares the machine with other work.
	NoiseSD float64
	rng     *rand.Rand
}

// NewProfiler creates a profiler over a simulator.
func NewProfiler(sim *trainsim.Simulator, seed int64) *Profiler {
	return &Profiler{sim: sim, ProbeEpochs: 2, ProbeLRs: 1, NoiseSD: 0.05, rng: rand.New(rand.NewSource(seed))}
}

// Profile estimates the full grid-searched training cost of (task, model).
// The probe observes ProbeEpochs×ProbeLRs epoch timings with measurement
// noise and multiplies out to the full schedule.
func (p *Profiler) Profile(task, model int) (Estimate, error) {
	if task < 0 || task >= p.sim.NumTasks() {
		return Estimate{}, fmt.Errorf("profile: task %d out of range", task)
	}
	if model < 0 || model >= p.sim.NumModels() {
		return Estimate{}, fmt.Errorf("profile: model %d out of range", model)
	}
	trueCost := p.sim.Cost(task, model)
	// Per-(epoch, lr) cost of the true schedule.
	fullEpochs := float64(trainsim.DefaultEpochs * len(trainsim.DefaultLearningRates))
	perEpoch := trueCost / fullEpochs

	probeUnits := float64(p.ProbeEpochs * p.ProbeLRs)
	var measured float64
	for i := 0; i < p.ProbeEpochs*p.ProbeLRs; i++ {
		measured += perEpoch * math.Exp(p.NoiseSD*p.rng.NormFloat64())
	}
	predicted := measured / probeUnits * fullEpochs
	return Estimate{
		Task:          task,
		Model:         model,
		ProbeCost:     measured,
		PredictedCost: predicted,
		TrueCost:      trueCost,
	}, nil
}

// ProfileAll profiles every model for a task and returns the predicted
// costs, suitable for seeding a cost-aware bandit.
func (p *Profiler) ProfileAll(task int) ([]float64, error) {
	costs := make([]float64, p.sim.NumModels())
	for m := range costs {
		est, err := p.Profile(task, m)
		if err != nil {
			return nil, err
		}
		costs[m] = est.PredictedCost
	}
	return costs, nil
}
