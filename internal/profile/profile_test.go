package profile

import (
	"testing"
	"testing/quick"

	"repro/internal/trainsim"
)

func testSim(t testing.TB) *trainsim.Simulator {
	t.Helper()
	sim, err := trainsim.DeepLearningSim([]trainsim.TaskSpec{
		{Name: "t0", Difficulty: 0.1, SizeFactor: 1},
		{Name: "t1", Difficulty: 0.2, SizeFactor: 2.5},
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestProfileAccuracy(t *testing.T) {
	sim := testSim(t)
	p := NewProfiler(sim, 1)
	for task := 0; task < 2; task++ {
		for model := 0; model < sim.NumModels(); model++ {
			est, err := p.Profile(task, model)
			if err != nil {
				t.Fatal(err)
			}
			// 5% per-epoch noise over a 2-epoch probe: relative error
			// comfortably below 15%.
			if est.RelativeError() > 0.15 {
				t.Errorf("(%d,%d): relative error %.3f too large (pred %.1f vs true %.1f)",
					task, model, est.RelativeError(), est.PredictedCost, est.TrueCost)
			}
			// Probes are cheap: far below the full-run cost.
			if est.ProbeCost > est.TrueCost*0.05 {
				t.Errorf("(%d,%d): probe cost %.2f not ≪ true cost %.1f", task, model, est.ProbeCost, est.TrueCost)
			}
		}
	}
}

func TestProfileOrderingPreserved(t *testing.T) {
	// Cost-aware selection only needs the ordering: the most expensive
	// model (VGG-16) must still be estimated as the most expensive.
	sim := testSim(t)
	p := NewProfiler(sim, 2)
	costs, err := p.ProfileAll(0)
	if err != nil {
		t.Fatal(err)
	}
	maxIdx := 0
	for m, c := range costs {
		if c > costs[maxIdx] {
			maxIdx = m
		}
	}
	if sim.Model(maxIdx).Name != "VGG-16" {
		t.Errorf("estimated most expensive model is %s, want VGG-16", sim.Model(maxIdx).Name)
	}
}

func TestProfileValidation(t *testing.T) {
	p := NewProfiler(testSim(t), 3)
	if _, err := p.Profile(-1, 0); err == nil {
		t.Error("negative task accepted")
	}
	if _, err := p.Profile(0, 99); err == nil {
		t.Error("out-of-range model accepted")
	}
}

// Property: predictions are always positive and within a loose multiplicative
// band of the truth.
func TestQuickProfileBounds(t *testing.T) {
	sim := testSim(t)
	f := func(seed int64, taskRaw, modelRaw uint8) bool {
		p := NewProfiler(sim, seed)
		task := int(taskRaw) % sim.NumTasks()
		model := int(modelRaw) % sim.NumModels()
		est, err := p.Profile(task, model)
		if err != nil {
			return false
		}
		return est.PredictedCost > 0 &&
			est.PredictedCost > est.TrueCost/2 &&
			est.PredictedCost < est.TrueCost*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
