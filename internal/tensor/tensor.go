// Package tensor implements the dense tensors that ease.ml objects carry
// (§2: every nonrecursive field is a constant-size Tensor[...]), plus the
// default loaders the paper mentions ("ease.ml provides a default loader
// for some popular Tensor types (e.g., loads JPEG images into
// Tensor[A,B,3])") and the hooks for automatic input normalization.
package tensor

import (
	"fmt"
	"image"
	_ "image/jpeg" // register the JPEG loader of §2
	_ "image/png"  // PNG shares the image-shaped template
	"io"
	"strings"

	"repro/internal/normalize"
)

// Tensor is a dense row-major tensor of float64 values.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero tensor of the given shape. It panics on an empty shape
// or non-positive dimensions.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromData wraps data (not copied) in a tensor of the given shape. It
// panics if the element count does not match.
func FromData(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// NumElements returns the total number of scalar elements.
func (t *Tensor) NumElements() int { return len(t.data) }

// Data returns the underlying row-major storage (not a copy).
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index to the flat row-major offset, panicking on
// rank or range violations.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.shape[d] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", i, d, t.shape[d]))
		}
		off = off*t.shape[d] + i
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float64, len(t.data))
	copy(data, t.data)
	return FromData(data, t.shape...)
}

// Reshape returns a tensor sharing this tensor's storage with a new shape
// of the same element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// MinMax returns the smallest and largest element.
func (t *Tensor) MinMax() (lo, hi float64) {
	lo, hi = t.data[0], t.data[0]
	for _, v := range t.data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Normalize returns a new tensor with the Figure 5 normalization applied:
// values are min-max scaled to [0,1] and squashed through f_k.
func (t *Tensor) Normalize(n normalize.Normalizer) *Tensor {
	return FromData(n.ApplySlice(t.data), t.shape...)
}

// MatchesField reports whether the tensor's shape equals the dims of an
// ease.ml tensor field declaration.
func (t *Tensor) MatchesField(dims []int) bool {
	if len(dims) != len(t.shape) {
		return false
	}
	for i, d := range dims {
		if t.shape[i] != d {
			return false
		}
	}
	return true
}

// String renders shape and a few leading values for debugging.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v[", t.shape)
	for i, v := range t.data {
		if i == 6 {
			sb.WriteString(", …")
			break
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.4g", v)
	}
	sb.WriteString("]")
	return sb.String()
}

// FromImage converts a decoded image into a Tensor[H, W, 3] with channel
// values scaled to [0, 1] — the default image loader of §2.
func FromImage(img image.Image) *Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	t := New(h, w, 3)
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			t.data[i] = float64(r) / 65535
			t.data[i+1] = float64(g) / 65535
			t.data[i+2] = float64(bl) / 65535
			i += 3
		}
	}
	return t
}

// DecodeImage reads a JPEG or PNG stream into a Tensor[H, W, 3].
func DecodeImage(r io.Reader) (*Tensor, error) {
	img, _, err := image.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("tensor: decode image: %w", err)
	}
	return FromImage(img), nil
}
