package tensor

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/normalize"
)

func TestNewAndIndexing(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Rank() != 3 || tt.NumElements() != 24 {
		t.Fatalf("rank %d, elements %d", tt.Rank(), tt.NumElements())
	}
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Errorf("At = %g", got)
	}
	// Row-major layout: last index fastest.
	if tt.Data()[23] != 7.5 {
		t.Error("row-major offset wrong")
	}
	if tt.At(0, 0, 0) != 0 {
		t.Error("zero init violated")
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"empty shape":    func() { New() },
		"zero dim":       func() { New(2, 0) },
		"bad data len":   func() { FromData([]float64{1}, 2) },
		"rank mismatch":  func() { New(2, 2).At(1) },
		"out of range":   func() { New(2, 2).At(2, 0) },
		"negative index": func() { New(2, 2).At(-1, 0) },
		"bad reshape":    func() { New(2, 2).Reshape(3) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCloneAndReshape(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	c := a.Clone()
	c.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone aliases storage")
	}
	r := a.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %g", r.At(2, 1))
	}
	// Reshape shares storage.
	r.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Error("Reshape should share storage")
	}
	// Shape() returns a copy.
	s := a.Shape()
	s[0] = 99
	if a.Shape()[0] != 2 {
		t.Error("Shape aliases internal slice")
	}
}

func TestMinMaxAndNormalize(t *testing.T) {
	a := FromData([]float64{0, 5, 10, 2}, 4)
	lo, hi := a.MinMax()
	if lo != 0 || hi != 10 {
		t.Errorf("MinMax = %g,%g", lo, hi)
	}
	n := a.Normalize(normalize.New(0.5))
	// Min-max scaled 0 and 10 map to f(0)=0 and f(1)=0.
	if n.At(0) != 0 || math.Abs(n.At(2)) > 1e-12 {
		t.Errorf("normalized endpoints %g, %g", n.At(0), n.At(2))
	}
	for i := 0; i < 4; i++ {
		if v := n.At(i); v < 0 || v > 1 {
			t.Errorf("normalized value %g outside [0,1]", v)
		}
	}
	// Original untouched.
	if a.At(2) != 10 {
		t.Error("Normalize mutated input")
	}
}

func TestMatchesField(t *testing.T) {
	a := New(32, 32, 3)
	if !a.MatchesField([]int{32, 32, 3}) {
		t.Error("exact shape rejected")
	}
	if a.MatchesField([]int{32, 32}) || a.MatchesField([]int{3, 32, 32}) {
		t.Error("wrong shape accepted")
	}
}

func TestString(t *testing.T) {
	s := New(10).String()
	if !strings.Contains(s, "Tensor[10]") || !strings.Contains(s, "…") {
		t.Errorf("String = %q", s)
	}
}

func TestFromImageAndDecode(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 4, 2)) // 4 wide, 2 tall
	img.Set(0, 0, color.RGBA{R: 255, A: 255})
	img.Set(3, 1, color.RGBA{B: 255, A: 255})
	tt := FromImage(img)
	wantShape := []int{2, 4, 3} // H, W, 3
	for i, d := range tt.Shape() {
		if d != wantShape[i] {
			t.Fatalf("shape %v, want %v", tt.Shape(), wantShape)
		}
	}
	if math.Abs(tt.At(0, 0, 0)-1) > 1e-3 || tt.At(0, 0, 2) != 0 {
		t.Errorf("red pixel decoded as (%g,%g,%g)", tt.At(0, 0, 0), tt.At(0, 0, 1), tt.At(0, 0, 2))
	}
	if math.Abs(tt.At(1, 3, 2)-1) > 1e-3 {
		t.Errorf("blue pixel channel = %g", tt.At(1, 3, 2))
	}

	// Round-trip through an encoded PNG stream (the default loader path).
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.NumElements() != 2*4*3 {
		t.Errorf("decoded %d elements", decoded.NumElements())
	}
	if _, err := DecodeImage(strings.NewReader("not an image")); err == nil {
		t.Error("garbage decoded")
	}
}

// Property: Reshape preserves data under any valid factorization and At is
// consistent with the flat layout.
func TestQuickReshapeConsistency(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%5) + 1
		b := int(bRaw%5) + 1
		data := make([]float64, a*b)
		for i := range data {
			data[i] = float64(i)
		}
		tt := FromData(data, a, b)
		rr := tt.Reshape(b, a)
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				flat := i*b + j
				if tt.At(i, j) != float64(flat) {
					return false
				}
				if rr.At(flat/a, flat%a) != float64(flat) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: normalized tensors always land in [0,1].
func TestQuickNormalizeRange(t *testing.T) {
	f := func(vals []float64, kRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		k := 0.1 + float64(kRaw%80)/100
		tt := FromData(append([]float64(nil), vals...), len(vals))
		n := tt.Normalize(normalize.New(k))
		for _, v := range n.Data() {
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
