package admission

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseClassAndWeights(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", ClassStandard, true},
		{"guaranteed", ClassGuaranteed, true},
		{"standard", ClassStandard, true},
		{"best-effort", ClassBestEffort, true},
		{"platinum", "", false},
	} {
		got, err := ParseClass(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseClass(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseClass(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if !(ClassGuaranteed.Weight() > ClassStandard.Weight() && ClassStandard.Weight() > ClassBestEffort.Weight()) {
		t.Errorf("class weights not strictly ordered: %g %g %g",
			ClassGuaranteed.Weight(), ClassStandard.Weight(), ClassBestEffort.Weight())
	}
	if !ClassGuaranteed.MayPreempt() || ClassStandard.MayPreempt() || ClassBestEffort.MayPreempt() {
		t.Error("only guaranteed may preempt")
	}
	if ClassGuaranteed.Preemptible() || ClassStandard.Preemptible() || !ClassBestEffort.Preemptible() {
		t.Error("only best-effort is preemptible")
	}
}

func newTestController(t *testing.T, cfg Config) (*Controller, *time.Time) {
	t.Helper()
	ctrl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	ctrl.SetClock(func() time.Time { return now })
	return ctrl, &now
}

func TestMaxJobsCap(t *testing.T) {
	ctrl, _ := newTestController(t, Config{Tenants: map[string]Quota{
		"alice": {MaxJobs: 2},
	}})
	if err := ctrl.AdmitJob("alice"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AdmitJob("alice"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AdmitJob("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third job admitted under cap 2: %v", err)
	}
	// Uncapped tenants never bounce.
	for i := 0; i < 10; i++ {
		if err := ctrl.AdmitJob("bob"); err != nil {
			t.Fatal(err)
		}
	}
	// A finished job frees a slot.
	ctrl.JobDone("alice")
	if err := ctrl.AdmitJob("alice"); err != nil {
		t.Fatalf("slot not freed by JobDone: %v", err)
	}
}

func TestRateLimitTokenBucket(t *testing.T) {
	ctrl, now := newTestController(t, Config{Tenants: map[string]Quota{
		"alice": {RatePerSec: 2, Burst: 2},
	}})
	if err := ctrl.AdmitOp("alice"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AdmitOp("alice"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AdmitOp("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("burst 2 admitted a third op: %v", err)
	}
	// Half a second refills one token at 2/s.
	*now = now.Add(500 * time.Millisecond)
	if err := ctrl.AdmitOp("alice"); err != nil {
		t.Fatalf("token not refilled: %v", err)
	}
	if err := ctrl.AdmitOp("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("second op admitted after single-token refill")
	}
	// The bucket never exceeds its burst no matter how long the idle gap.
	*now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if err := ctrl.AdmitOp("alice"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.AdmitOp("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("bucket exceeded burst after idle gap")
	}
}

func TestAdmitJobConsumesRateToken(t *testing.T) {
	ctrl, _ := newTestController(t, Config{Tenants: map[string]Quota{
		"alice": {RatePerSec: 1, Burst: 1},
	}})
	if err := ctrl.AdmitJob("alice"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AdmitOp("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("Submit and Feed must share one bucket")
	}
}

func TestDefaultClassAndNoteJob(t *testing.T) {
	ctrl, _ := newTestController(t, Config{DefaultClass: ClassBestEffort, Tenants: map[string]Quota{
		"alice": {Class: ClassGuaranteed, MaxJobs: 1},
	}})
	if got := ctrl.ClassOf("alice"); got != ClassGuaranteed {
		t.Errorf("alice class %q", got)
	}
	if got := ctrl.ClassOf("stranger"); got != ClassBestEffort {
		t.Errorf("stranger class %q, want default best-effort", got)
	}
	// Recovery registers jobs without gating, even past the cap.
	ctrl.NoteJob("alice")
	ctrl.NoteJob("alice")
	if err := ctrl.AdmitJob("alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("cap must still gate fresh submissions after recovery")
	}
}

func TestSetQuotaLive(t *testing.T) {
	ctrl, _ := newTestController(t, Config{})
	if ctrl.Budget("alice") != 0 {
		t.Fatal("fresh tenant has a budget")
	}
	if err := ctrl.SetQuota("alice", Quota{Class: ClassBestEffort, Budget: 12.5, MaxJobs: 1}); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Budget("alice"); got != 12.5 {
		t.Errorf("budget %g", got)
	}
	if got := ctrl.ClassOf("alice"); got != ClassBestEffort {
		t.Errorf("class %q", got)
	}
	if err := ctrl.SetQuota("alice", Quota{Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := ctrl.SetQuota("", Quota{}); err == nil {
		t.Fatal("empty tenant accepted")
	}
	snap := ctrl.Snapshot()
	if len(snap) != 1 || snap[0].Tenant != "alice" || !snap[0].Declared || snap[0].Budget != 12.5 {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quotas.json")
	src := `{
	  "default_class": "standard",
	  "tenants": {
	    "alice": {"class": "guaranteed", "max_jobs": 4, "rate_per_sec": 10, "budget": 500},
	    "carol": {"class": "best-effort", "budget": 40}
	  }
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenants["alice"].Class != ClassGuaranteed || cfg.Tenants["alice"].Budget != 500 {
		t.Errorf("alice quota %+v", cfg.Tenants["alice"])
	}
	if cfg.Tenants["carol"].Class != ClassBestEffort {
		t.Errorf("carol quota %+v", cfg.Tenants["carol"])
	}

	if err := os.WriteFile(path, []byte(`{"tenants": {"x": {"class": "gold"}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("bad class accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
