// Package admission implements tenant admission control for the ease.ml
// service — the resource-sharing half of the paper's multi-tenancy story
// that the scheduler alone does not cover. The multi-tenant pickers in
// internal/core decide *who is served next* among admitted work; this
// package decides *what work gets in at all* and *how much of the shared
// pool a tenant may consume*:
//
//   - every tenant declares a Class (guaranteed / standard / best-effort)
//     that carries a scheduling weight (weighted fair sharing across
//     classes) and preemption semantics (guaranteed work may preempt
//     best-effort leases when the pool is saturated);
//   - MaxJobs caps how many unfinished jobs a tenant may have at once;
//   - RatePerSec/Burst is a token-bucket rate limit on the user-facing
//     write path (Submit, Feed);
//   - Budget bounds the total GPU cost a tenant's bandits may pay
//     (enforced by the scheduler against GPUCB.CumulativeCost()): once it
//     is exhausted the tenant's jobs drain gracefully instead of training
//     further candidates.
//
// The package is a leaf: internal/server consults a Controller on every
// admission decision and maps ErrQuotaExceeded to HTTP 429 with code
// "quota_exceeded".
package admission

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// admissionVerdicts counts every admission decision by tenant and verdict
// ("admitted" / "rejected"); rejections are what the HTTP surface turns
// into 429s. The same tallies are kept per tenant on the controller for
// the /admin/metrics JSON view.
var admissionVerdicts = telemetry.Default().CounterVec("easeml_admission_verdicts_total",
	"Admission decisions by tenant and verdict; rejected maps to HTTP 429.", "tenant", "verdict")

// Class is a tenant's declared service class. The zero value is treated as
// ClassStandard everywhere.
type Class string

// The three service classes, ordered by priority.
const (
	// ClassGuaranteed tenants get the largest fair-share weight and may
	// preempt outstanding best-effort leases when the pool is saturated.
	ClassGuaranteed Class = "guaranteed"
	// ClassStandard is the default: mid weight, neither preempts nor is
	// preempted.
	ClassStandard Class = "standard"
	// ClassBestEffort tenants get the smallest weight and their leases are
	// preemptible by guaranteed work.
	ClassBestEffort Class = "best-effort"
)

// ParseClass validates a class name ("" means ClassStandard).
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return ClassStandard, nil
	case ClassGuaranteed, ClassStandard, ClassBestEffort:
		return Class(s), nil
	default:
		return "", fmt.Errorf("admission: unknown class %q (use %s, %s or %s)",
			s, ClassGuaranteed, ClassStandard, ClassBestEffort)
	}
}

// Weight returns the class's weighted-fair-sharing weight: guaranteed
// tenants get 4 picks for every best-effort tenant's 1.
func (c Class) Weight() float64 {
	switch c {
	case ClassGuaranteed:
		return 4
	case ClassBestEffort:
		return 1
	default:
		return 2
	}
}

// MayPreempt reports whether work of this class may preempt an outstanding
// preemptible lease when the pool is saturated.
func (c Class) MayPreempt() bool { return c == ClassGuaranteed }

// Preemptible reports whether this class's outstanding leases may be
// preempted by higher-priority work.
func (c Class) Preemptible() bool { return c == ClassBestEffort }

// normalize maps the zero value to ClassStandard.
func (c Class) normalize() Class {
	if c == "" {
		return ClassStandard
	}
	return c
}

// Quota is one tenant's declared resource envelope. Zero fields mean
// "unlimited" (and Class's zero value means standard), so the zero Quota
// admits everything at standard priority.
type Quota struct {
	// Class is the tenant's service class (default standard).
	Class Class `json:"class,omitempty"`
	// MaxJobs caps the tenant's concurrently unfinished jobs (0 = no cap).
	MaxJobs int `json:"max_jobs,omitempty"`
	// RatePerSec refills the tenant's token bucket for Submit/Feed
	// operations (0 = unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(1, ⌈RatePerSec⌉)).
	Burst int `json:"burst,omitempty"`
	// Budget bounds the total GPU cost the tenant's jobs may pay (0 = no
	// budget). The scheduler enforces it against the bandits' cumulative
	// cost and drains the tenant's jobs once it is exhausted.
	Budget float64 `json:"budget,omitempty"`
}

// validate rejects malformed quotas before they are installed.
func (q Quota) validate() error {
	if _, err := ParseClass(string(q.Class)); err != nil {
		return err
	}
	if q.MaxJobs < 0 {
		return fmt.Errorf("admission: negative MaxJobs %d", q.MaxJobs)
	}
	if q.RatePerSec < 0 {
		return fmt.Errorf("admission: negative RatePerSec %g", q.RatePerSec)
	}
	if q.Burst < 0 {
		return fmt.Errorf("admission: negative Burst %d", q.Burst)
	}
	if q.Budget < 0 {
		return fmt.Errorf("admission: negative Budget %g", q.Budget)
	}
	return nil
}

// burst returns the effective bucket capacity.
func (q Quota) burst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	b := 1.0
	if q.RatePerSec > b {
		b = float64(int(q.RatePerSec + 0.999999))
	}
	return b
}

// Config is the admission controller's declarative configuration — what
// -quota-config files and easeml.ServiceConfig.Quotas deserialize into.
type Config struct {
	// DefaultClass is the class of tenants without an explicit quota entry
	// (default standard).
	DefaultClass Class `json:"default_class,omitempty"`
	// Tenants maps tenant name → declared quota.
	Tenants map[string]Quota `json:"tenants,omitempty"`
}

// Validate checks every declared class and bound.
func (c Config) Validate() error {
	if _, err := ParseClass(string(c.DefaultClass)); err != nil {
		return err
	}
	for tenant, q := range c.Tenants {
		if err := q.validate(); err != nil {
			return fmt.Errorf("admission: tenant %q: %w", tenant, err)
		}
	}
	return nil
}

// LoadConfig reads a JSON quota configuration file:
//
//	{
//	  "default_class": "standard",
//	  "tenants": {
//	    "alice": {"class": "guaranteed", "max_jobs": 4, "rate_per_sec": 10, "budget": 500},
//	    "carol": {"class": "best-effort", "budget": 40}
//	  }
//	}
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("admission: reading quota config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("admission: parsing quota config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("admission: quota config %s: %w", path, err)
	}
	return cfg, nil
}

// ErrQuotaExceeded marks admission rejections: over the rate limit, over the
// concurrent-job cap, or over budget. HTTP surfaces map it to 429 Too Many
// Requests with code "quota_exceeded", telling clients to back off rather
// than retry immediately.
var ErrQuotaExceeded = errors.New("quota exceeded")

// tenantState is the controller's live per-tenant record.
type tenantState struct {
	quota      Quota
	declared   bool // explicit quota entry (vs. default-derived)
	tokens     float64
	lastRefill time.Time
	activeJobs int
	// admitted / rejected tally this process's verdicts for the tenant;
	// rejected is exactly the number of 429s the tenant has been served.
	admitted uint64
	rejected uint64
}

// verdictLocked records one admission decision on both the tenant's JSON
// tallies and the Prometheus counters. Callers hold c.mu.
func verdictLocked(tenant string, st *tenantState, err error) {
	if err != nil {
		st.rejected++
		admissionVerdicts.With(tenant, "rejected").Inc()
		return
	}
	st.admitted++
	admissionVerdicts.With(tenant, "admitted").Inc()
}

// Controller enforces admission decisions. It is safe for concurrent use;
// every method is O(1) in the number of tenants. Unknown tenants are
// admitted under the default class with no caps.
type Controller struct {
	mu      sync.Mutex
	def     Class
	tenants map[string]*tenantState
	now     func() time.Time
}

// NewController builds a controller from a validated configuration.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		def:     cfg.DefaultClass.normalize(),
		tenants: make(map[string]*tenantState, len(cfg.Tenants)),
		now:     time.Now,
	}
	for tenant, q := range cfg.Tenants {
		q.Class = q.Class.normalize()
		c.tenants[tenant] = &tenantState{quota: q, declared: true, tokens: q.burst()}
	}
	return c, nil
}

// SetClock replaces the token-bucket clock (tests drive refills
// deterministically). Set before serving traffic.
func (c *Controller) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// state resolves (creating on first contact) a tenant's record. Callers
// hold c.mu.
func (c *Controller) state(tenant string) *tenantState {
	st, ok := c.tenants[tenant]
	if !ok {
		st = &tenantState{quota: Quota{Class: c.def}, tokens: 1, lastRefill: c.now()}
		c.tenants[tenant] = st
	}
	return st
}

// ClassOf returns a tenant's service class.
func (c *Controller) ClassOf(tenant string) Class {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state(tenant).quota.Class.normalize()
}

// Budget returns a tenant's GPU cost budget (0 = unlimited).
func (c *Controller) Budget(tenant string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state(tenant).quota.Budget
}

// takeTokenLocked applies the token-bucket rate limit: refill by elapsed
// time, then spend one token. Tenants without a rate limit always pass.
// Callers hold c.mu.
func (c *Controller) takeTokenLocked(st *tenantState) error {
	if st.quota.RatePerSec <= 0 {
		return nil
	}
	now := c.now()
	if st.lastRefill.IsZero() {
		st.lastRefill = now
	}
	if dt := now.Sub(st.lastRefill).Seconds(); dt > 0 {
		st.tokens += dt * st.quota.RatePerSec
		if max := st.quota.burst(); st.tokens > max {
			st.tokens = max
		}
	}
	st.lastRefill = now
	if st.tokens < 1 {
		return fmt.Errorf("admission: rate limit %.3g req/s exceeded: %w", st.quota.RatePerSec, ErrQuotaExceeded)
	}
	st.tokens--
	return nil
}

// AdmitOp admits one rate-limited user operation (Feed; Submit goes through
// AdmitJob, which folds this in).
func (c *Controller) AdmitOp(tenant string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(tenant)
	if err := c.takeTokenLocked(st); err != nil {
		verdictLocked(tenant, st, err)
		return fmt.Errorf("admission: tenant %q: %w", tenant, err)
	}
	verdictLocked(tenant, st, nil)
	return nil
}

// AdmitJob admits a job submission: the rate limit and the concurrent-job
// cap both apply. On success the tenant's active-job count is incremented;
// the caller must pair it with JobDone when the job finishes (drains,
// fails, or never gets built).
func (c *Controller) AdmitJob(tenant string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(tenant)
	if max := st.quota.MaxJobs; max > 0 && st.activeJobs >= max {
		err := fmt.Errorf("admission: tenant %q has %d unfinished jobs (cap %d): %w",
			tenant, st.activeJobs, max, ErrQuotaExceeded)
		verdictLocked(tenant, st, err)
		return err
	}
	if err := c.takeTokenLocked(st); err != nil {
		verdictLocked(tenant, st, err)
		return fmt.Errorf("admission: tenant %q: %w", tenant, err)
	}
	verdictLocked(tenant, st, nil)
	st.activeJobs++
	return nil
}

// NoteJob registers an existing job without gating it — the recovery path:
// jobs already admitted by a previous process must never bounce off their
// own quota at boot.
func (c *Controller) NoteJob(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state(tenant).activeJobs++
}

// JobDone releases one concurrent-job slot (the job drained, failed, was
// budget-exhausted, or its submission never completed).
func (c *Controller) JobDone(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(tenant)
	if st.activeJobs > 0 {
		st.activeJobs--
	}
}

// SetQuota installs or replaces a tenant's quota at runtime (the POST
// /admin/quotas surface). The class change applies to jobs submitted from
// now on; budget and rate changes take effect immediately.
func (c *Controller) SetQuota(tenant string, q Quota) error {
	if tenant == "" {
		return fmt.Errorf("admission: empty tenant name")
	}
	if err := q.validate(); err != nil {
		return err
	}
	q.Class = q.Class.normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(tenant)
	st.quota = q
	st.declared = true
	if st.tokens > q.burst() {
		st.tokens = q.burst()
	}
	return nil
}

// DefaultClass returns the class assigned to tenants without an explicit
// quota entry.
func (c *Controller) DefaultClass() Class {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.def
}

// TenantStatus is one tenant's row in the admin quota snapshot.
type TenantStatus struct {
	Tenant     string  `json:"tenant"`
	Class      Class   `json:"class"`
	Declared   bool    `json:"declared"` // explicit quota entry vs. default-derived
	MaxJobs    int     `json:"max_jobs,omitempty"`
	ActiveJobs int     `json:"active_jobs"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	Budget     float64 `json:"budget,omitempty"`
	// Admitted / Rejected tally this process's admission verdicts for the
	// tenant; Rejected is the number of 429s served.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
}

// Snapshot renders every known tenant (declared or seen) sorted by name.
func (c *Controller) Snapshot() []TenantStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantStatus, 0, len(c.tenants))
	for tenant, st := range c.tenants {
		out = append(out, TenantStatus{
			Tenant:     tenant,
			Class:      st.quota.Class.normalize(),
			Declared:   st.declared,
			MaxJobs:    st.quota.MaxJobs,
			ActiveJobs: st.activeJobs,
			RatePerSec: st.quota.RatePerSec,
			Burst:      st.quota.Burst,
			Budget:     st.quota.Budget,
			Admitted:   st.admitted,
			Rejected:   st.rejected,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
