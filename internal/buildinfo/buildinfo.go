// Package buildinfo carries the ldflags-injected build identity shared by
// both binaries and the easeml_build_info metric:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3 \
//	                   -X repro/internal/buildinfo.Commit=abc1234" ./...
//
// Unstamped builds (go test, local go run) report the "dev"/"none"
// fallbacks.
package buildinfo

import (
	"fmt"
	"runtime"
)

var (
	// Version is the human-facing release version ("dev" when unstamped).
	Version = "dev"
	// Commit is the VCS commit the binary was built from ("none" when
	// unstamped).
	Commit = "none"
)

// String renders the one-line identity served by the -version flag.
func String(binary string) string {
	return fmt.Sprintf("%s %s (commit %s, %s)", binary, Version, Commit, runtime.Version())
}
