// Package storage implements ease.ml's shared storage (§2, Figure 1): a
// concurrency-safe store holding, per task, the supervision examples the
// user feeds, their on/off state (the refine operator), and the trained
// model records the scheduler produces. Every feed/refine/infer invocation
// from the generated binaries lands here on the central server.
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Example is one input/output supervision pair fed by a user. Payloads are
// opaque to the storage layer.
type Example struct {
	ID      int
	Input   []float64
	Output  []float64
	Enabled bool
}

// ModelRecord is one completed training run for a task.
type ModelRecord struct {
	Name     string  // candidate model name
	Accuracy float64 // measured validation accuracy
	Cost     float64 // execution cost (time units)
	Round    int     // global scheduling round it finished at
}

// TaskStore holds everything the server keeps for one task.
type TaskStore struct {
	mu       sync.RWMutex
	nextID   int
	examples map[int]*Example
	models   []ModelRecord
	best     *ModelRecord
}

// NewTaskStore returns an empty per-task store.
func NewTaskStore() *TaskStore {
	return &TaskStore{nextID: 1, examples: make(map[int]*Example)}
}

// Feed registers a new example pair (enabled by default, as freshly fed
// supervision is live) and returns its id.
func (s *TaskStore) Feed(input, output []float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	in := append([]float64(nil), input...)
	out := append([]float64(nil), output...)
	s.examples[id] = &Example{ID: id, Input: in, Output: out, Enabled: true}
	return id
}

// PutExample inserts (or overwrites) an example under its existing id,
// preserving its enabled state — the WAL-replay path, where ids were
// assigned by a previous process. nextID stays ahead of every inserted id.
// Overwriting is what makes replay idempotent across the snapshot boundary.
func (s *TaskStore) PutExample(ex Example) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := ex
	cp.Input = append([]float64(nil), ex.Input...)
	cp.Output = append([]float64(nil), ex.Output...)
	s.examples[ex.ID] = &cp
	if ex.ID >= s.nextID {
		s.nextID = ex.ID + 1
	}
}

// Refine turns an example on or off — the data-cleaning loop the paper
// motivates with weak/distant supervision noise. It returns an error for an
// unknown example id.
func (s *TaskStore) Refine(id int, enabled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ex, ok := s.examples[id]
	if !ok {
		return fmt.Errorf("storage: no example %d", id)
	}
	ex.Enabled = enabled
	return nil
}

// Examples returns a copy of all examples sorted by id. Payload slices are
// shared (they are never mutated after Feed).
func (s *TaskStore) Examples() []Example {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Example, 0, len(s.examples))
	for _, ex := range s.examples {
		out = append(out, *ex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EnabledCount returns the number of currently enabled examples.
func (s *TaskStore) EnabledCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ex := range s.examples {
		if ex.Enabled {
			n++
		}
	}
	return n
}

// RecordModel stores a completed training run and updates the best model if
// it improves on it ("the user has a view of the best available model").
func (s *TaskStore) RecordModel(rec ModelRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = append(s.models, rec)
	if s.best == nil || rec.Accuracy > s.best.Accuracy {
		cp := rec
		s.best = &cp
	}
}

// HasModel reports whether a run for the named candidate has been recorded
// (candidates train at most once per task, so the name is a natural key —
// WAL replay uses this to apply model_recorded events idempotently).
func (s *TaskStore) HasModel(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, m := range s.models {
		if m.Name == name {
			return true
		}
	}
	return false
}

// Models returns a copy of all recorded training runs in completion order.
func (s *TaskStore) Models() []ModelRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ModelRecord(nil), s.models...)
}

// Best returns the best model so far; ok is false before the first run
// completes.
func (s *TaskStore) Best() (ModelRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.best == nil {
		return ModelRecord{}, false
	}
	return *s.best, true
}

// Store is the server-wide shared storage: one TaskStore per task id.
type Store struct {
	mu    sync.RWMutex
	tasks map[string]*TaskStore
}

// NewStore returns an empty shared store.
func NewStore() *Store {
	return &Store{tasks: make(map[string]*TaskStore)}
}

// CreateTask allocates storage for a new task id. It returns an error if
// the id already exists.
func (s *Store) CreateTask(id string) (*TaskStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tasks[id]; ok {
		return nil, fmt.Errorf("storage: task %q already exists", id)
	}
	ts := NewTaskStore()
	s.tasks[id] = ts
	return ts, nil
}

// Task returns the store for a task id.
func (s *Store) Task(id string) (*TaskStore, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, ok := s.tasks[id]
	return ts, ok
}

// TaskIDs returns all task ids in sorted order.
func (s *Store) TaskIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
