package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySegments rolls after ~200 bytes so a handful of appends spans
// several segments.
var tinySegments = LogOptions{SegmentBytes: 200}

// feedN appends n example_fed events for job-0001 (submitting it first
// when seq is fresh).
func feedN(t *testing.T, l *Log, n int) {
	t.Helper()
	if l.Seq() == 0 {
		if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
			t.Fatal(err)
		}
	}
	base := int(l.Seq())
	for i := 0; i < n; i++ {
		if err := l.AppendExampleFed("job-0001", base+i, []float64{1, 2}, []float64{3}); err != nil {
			t.Fatal(err)
		}
	}
}

func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

func TestSegmentRollAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	seq := l.Seq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := segmentCount(t, dir); n < 2 {
		t.Fatalf("20 appends over %d-byte segments left %d segments, want several", tinySegments.SegmentBytes, n)
	}

	l2, rec, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Events != int(seq) {
		t.Errorf("replayed %d events across segments, want %d", rec.Events, seq)
	}
	ts, ok := rec.Store.Task("job-0001")
	if !ok {
		t.Fatal("recovered store missing task")
	}
	if got := len(ts.Examples()); got != 20 {
		t.Errorf("recovered %d examples, want 20", got)
	}
	// Sequence numbers continue across the reopened segment chain.
	feedN(t, l2, 1)
	if l2.Seq() != seq+1 {
		t.Errorf("seq %d after recovery append, want %d", l2.Seq(), seq+1)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// A torn record at the tail of the *last* segment — the crash-mid-commit
// signature right after a roll — is truncated away; earlier segments are
// untouched.
func TestTornTailAtSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	seq := l.Seq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, have %d", len(segs))
	}
	last := segs[len(segs)-1].path
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fmt.Sprintf(`{"seq":%d,"type":"example_fed","jo`, seq+1)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatalf("torn tail in last segment rejected: %v", err)
	}
	if rec.Events != int(seq) {
		t.Errorf("replayed %d events, want the %d intact ones", rec.Events, seq)
	}
	// The torn bytes are gone; the next append must not fuse with them.
	feedN(t, l2, 1)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := rec2.Store.Task("job-0001")
	if got := len(ts.Examples()); got != 21 {
		t.Errorf("after torn-tail recovery + append: %d examples, want 21", got)
	}
}

// A torn record in a *sealed* segment is not a crash signature — seals are
// fsynced before the next segment exists — so recovery must refuse it.
func TestTornSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, have %d", len(segs))
	}
	sealed := segs[0].path
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sealed, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenDirOptions(dir, tinySegments)
	if err == nil || (!strings.Contains(err.Error(), "torn") && !strings.Contains(err.Error(), "corrupt")) {
		t.Fatalf("torn sealed segment accepted: %v", err)
	}
}

// Crash between the incremental snapshot install and the segment removal:
// the snapshot already covers the folded segment, but the segment file
// survives. Recovery must treat the leftover as covered history (the seq
// horizon skips it) and reconstruct the same state as a clean fold.
func TestCrashMidIncrementalCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, have %d", len(segs))
	}
	oldest := segs[0]
	saved, err := os.ReadFile(oldest.path)
	if err != nil {
		t.Fatal(err)
	}

	// State capture mirrors the scheduler's: full current state, folded
	// at the oldest sealed segment's horizon.
	store := NewStore()
	ts, err := store.CreateTask("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		ts.PutExample(Example{ID: i, Input: []float64{1, 2}, Output: []float64{3}, Enabled: true})
	}
	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	folded, err := l.CompactOldest(jobs, nil, nil, store)
	if err != nil {
		t.Fatal(err)
	}
	if !folded {
		t.Fatal("CompactOldest folded nothing despite sealed segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Undo the removal: the crash happened after the snapshot rename but
	// before the segment left the directory.
	if err := os.WriteFile(oldest.path, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatalf("recovery with leftover folded segment failed: %v", err)
	}
	rts, ok := rec.Store.Task("job-0001")
	if !ok {
		t.Fatal("recovered store missing task")
	}
	if got := len(rts.Examples()); got != 20 {
		t.Errorf("recovered %d examples, want 20 (duplicate segment must replay as no-op)", got)
	}
	if len(rec.Jobs) != 1 {
		t.Errorf("recovered jobs %+v", rec.Jobs)
	}
}

// The same event surviving in two segments (an interrupted compaction can
// leave overlapping copies) must apply exactly once — including pure
// history events, which have no natural idempotency key beyond their seq.
func TestDuplicateEventAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSeg := func(first uint64, events []Event) {
		t.Helper()
		var b []byte
		for _, ev := range events {
			line, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			b = append(b, line...)
			b = append(b, '\n')
		}
		if err := os.WriteFile(filepath.Join(dir, segmentFileName(first)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSeg(1, []Event{
		{Seq: 1, Type: EventJobSubmitted, Job: "job-0001", Name: "demo", Program: "{prog}"},
		{Seq: 2, Type: EventLeaseExpired, Job: "job-0001", Candidate: "GRU", Worker: "w1"},
		{Seq: 3, Type: EventLeaseExpired, Job: "job-0001", Candidate: "LSTM", Worker: "w1"},
	})
	writeSeg(3, []Event{
		{Seq: 3, Type: EventLeaseExpired, Job: "job-0001", Candidate: "LSTM", Worker: "w1"}, // duplicate
		{Seq: 4, Type: EventLeaseExpired, Job: "job-0001", Candidate: "MLP", Worker: "w2"},
	})

	l, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(rec.Expired) != 3 {
		t.Fatalf("recovered %d expiries from overlapping segments, want 3: %+v", len(rec.Expired), rec.Expired)
	}
	if rec.Events != 4 {
		t.Errorf("applied %d events, want 4 (duplicate seq 3 skipped)", rec.Events)
	}
	if l.Seq() != 4 {
		t.Errorf("recovered seq %d, want 4", l.Seq())
	}
}

// Concurrent appends through the group-commit pipeline: every append is
// acked, the on-disk order matches seq order, and recovery sees them all.
// Runs across the three SyncInterval regimes.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	for _, tc := range []struct {
		name string
		iv   time.Duration
	}{
		{"sync-immediate", 0},
		{"windowed", 500 * time.Microsecond},
		{"serialized", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := OpenDirOptions(dir, LogOptions{SegmentBytes: 4096, SyncInterval: tc.iv})
			if err != nil {
				t.Fatal(err)
			}
			const writers, perWriter = 8, 25
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						if err := l.AppendLeaseExpired("job-0001", fmt.Sprintf("cand-%d-%d", w, i), "w"); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := l.Stats()
			if st.Appends != writers*perWriter {
				t.Errorf("stats report %d appends, want %d", st.Appends, writers*perWriter)
			}
			if st.GroupCommits == 0 || st.GroupCommits > st.Appends {
				t.Errorf("group commits %d outside (0, %d]", st.GroupCommits, st.Appends)
			}
			if st.BytesWritten == 0 {
				t.Error("no bytes written recorded")
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// On-disk order must match seq order across the whole chain:
			// replay's monotonic filter would silently drop reordered events.
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			var prev uint64
			for _, s := range segs {
				data, err := os.ReadFile(s.path)
				if err != nil {
					t.Fatal(err)
				}
				for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
					if line == "" {
						continue
					}
					var ev Event
					if err := json.Unmarshal([]byte(line), &ev); err != nil {
						t.Fatal(err)
					}
					if ev.Seq != prev+1 {
						t.Fatalf("segment %s: seq %d follows %d", filepath.Base(s.path), ev.Seq, prev)
					}
					prev = ev.Seq
				}
			}
			if prev != writers*perWriter {
				t.Fatalf("found %d events on disk, want %d", prev, writers*perWriter)
			}

			_, rec, err := OpenDirOptions(dir, LogOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Expired) != writers*perWriter {
				t.Errorf("recovered %d events, want %d", len(rec.Expired), writers*perWriter)
			}
		})
	}
}

// A pre-segmentation wal.jsonl is renamed into segment form on open and
// replays like any other segment.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	var b []byte
	for _, ev := range []Event{
		{Seq: 1, Type: EventJobSubmitted, Job: "job-0001", Name: "demo", Program: "{prog}"},
		{Seq: 2, Type: EventExampleFed, Job: "job-0001", Example: 1, Input: []float64{1}, Output: []float64{2}},
	} {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, legacyWALFile), b, 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 1 || rec.Events != 2 {
		t.Fatalf("legacy recovery: %d jobs, %d events", len(rec.Jobs), rec.Events)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
		t.Errorf("legacy wal.jsonl still present after migration: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].first != 1 {
		t.Fatalf("migrated segments %+v, want one named by seq 1", segs)
	}
	// Appends continue into the migrated segment.
	if err := l.AppendExampleFed("job-0001", 2, []float64{3}, []float64{4}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := rec2.Store.Task("job-0001")
	if got := len(ts.Examples()); got != 2 {
		t.Errorf("recovered %d examples after migration + append, want 2", got)
	}
}

// Full compaction retires covered segments into the recycle pool, and the
// next roll renames a pooled file back into service instead of creating.
func TestSegmentRecycling(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	if n := segmentCount(t, dir); n < 3 {
		t.Fatalf("need >= 3 segments, have %d", n)
	}
	store := NewStore()
	ts, err := store.CreateTask("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		ts.PutExample(Example{ID: i, Input: []float64{1, 2}, Output: []float64{3}, Enabled: true})
	}
	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	if err := l.Compact(jobs, nil, nil, store, l.Seq()); err != nil {
		t.Fatal(err)
	}
	if n := segmentCount(t, dir); n != 1 {
		t.Errorf("full compaction left %d segments, want 1", n)
	}
	pool := listRecycled(dir)
	if len(pool) == 0 || len(pool) > maxRecycled {
		t.Fatalf("recycle pool holds %d files, want 1..%d", len(pool), maxRecycled)
	}
	for _, p := range pool {
		if info, err := os.Stat(p); err != nil || info.Size() != 0 {
			t.Errorf("recycled file %s not truncated: %v", p, err)
		}
	}

	// Enough appends to roll: the pool shrinks as files return to service.
	feedN(t, l, 20)
	if after := listRecycled(dir); len(after) >= len(pool) {
		t.Errorf("recycle pool did not shrink on reuse: %d -> %d", len(pool), len(after))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	rts, _ := rec.Store.Task("job-0001")
	if got := len(rts.Examples()); got != 40 {
		t.Errorf("recovered %d examples, want 40", got)
	}
}

// Incremental compaction folds exactly one sealed segment per step and
// reports false once nothing sealed remains; state survives each step.
func TestCompactOldestStepwise(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, l, 20)
	start := l.Stats().Segments
	if start < 3 {
		t.Fatalf("need >= 3 segments, have %d", start)
	}
	store := NewStore()
	ts, err := store.CreateTask("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		ts.PutExample(Example{ID: i, Input: []float64{1, 2}, Output: []float64{3}, Enabled: true})
	}
	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	steps := 0
	for {
		folded, err := l.CompactOldest(jobs, nil, nil, store)
		if err != nil {
			t.Fatal(err)
		}
		if !folded {
			break
		}
		steps++
		if got := l.Stats().Segments; got != start-steps {
			t.Fatalf("after %d folds: %d segments, want %d", steps, got, start-steps)
		}
	}
	if steps != start-1 {
		t.Errorf("folded %d segments, want %d (all sealed, never the active one)", steps, start-1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenDirOptions(dir, tinySegments)
	if err != nil {
		t.Fatal(err)
	}
	rts, ok := rec.Store.Task("job-0001")
	if !ok {
		t.Fatal("recovered store missing task")
	}
	if got := len(rts.Examples()); got != 20 {
		t.Errorf("recovered %d examples after stepwise compaction, want 20", got)
	}
}
