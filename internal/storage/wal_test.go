package storage

import (
	"os"
	"strings"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 0 || rec.Events != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendExampleFed("job-0001", 1, []float64{1, 2}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendExampleFed("job-0001", 2, []float64{4, 5}, []float64{6}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendExampleRefined("job-0001", 1, false); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendModelRecorded("job-0001", ModelRecord{Name: "m1", Accuracy: 0.8, Cost: 2, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCandidateAbandoned("job-0001", "m9"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Jobs) != 1 || rec2.Jobs[0].ID != "job-0001" || rec2.Jobs[0].Program != "{prog}" {
		t.Fatalf("recovered jobs %+v", rec2.Jobs)
	}
	if rec2.Events != 6 {
		t.Errorf("replayed %d events, want 6", rec2.Events)
	}
	ts, ok := rec2.Store.Task("job-0001")
	if !ok {
		t.Fatal("recovered store missing task")
	}
	exs := ts.Examples()
	if len(exs) != 2 {
		t.Fatalf("recovered %d examples, want 2", len(exs))
	}
	if exs[0].ID != 1 || exs[0].Enabled || !exs[1].Enabled {
		t.Errorf("recovered examples %+v", exs)
	}
	if ms := ts.Models(); len(ms) != 1 || ms[0].Name != "m1" || ms[0].Round != 1 {
		t.Errorf("recovered models %+v", ms)
	}
	if ab := rec2.Abandoned["job-0001"]; len(ab) != 1 || ab[0] != "m9" {
		t.Errorf("recovered abandoned %+v", rec2.Abandoned)
	}
	// Sequence numbers continue past the recovered history.
	if err := l2.AppendExampleFed("job-0001", 3, []float64{7}, []float64{8}); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 7 {
		t.Errorf("seq %d after recovery append, want 7", l2.Seq())
	}
}

// activeSegment returns the path of the directory's newest WAL segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", dir)
	}
	return segs[len(segs)-1].path
}

func TestWALTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendExampleFed("job-0001", 1, []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record with no newline.
	walPath := activeSegment(t, dir)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"type":"example_fed","job":"jo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if rec.Events != 2 {
		t.Errorf("replayed %d events, want the 2 intact ones", rec.Events)
	}
	// The torn bytes were truncated away: the next append must not fuse
	// with them into a corrupt record.
	if err := l2.AppendExampleFed("job-0001", 2, []float64{3}, []float64{4}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := rec3.Store.Task("job-0001")
	if got := len(ts.Examples()); got != 2 {
		t.Errorf("after torn-tail recovery + append: %d examples, want 2", got)
	}
}

func TestWALCorruptionMidFileRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := activeSegment(t, dir)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := "GARBAGE NOT JSON\n" + string(data)
	if err := os.WriteFile(walPath, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

func TestCompactionTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	ts, err := store.CreateTask("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	ts.PutExample(Example{ID: 1, Input: []float64{1}, Output: []float64{2}, Enabled: true})
	if err := l.AppendExampleFed("job-0001", 1, []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	ts.RecordModel(ModelRecord{Name: "m1", Accuracy: 0.7, Round: 1})
	if err := l.AppendModelRecorded("job-0001", ModelRecord{Name: "m1", Accuracy: 0.7, Round: 1}); err != nil {
		t.Fatal(err)
	}

	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	abandoned := map[string][]string{"job-0001": {"m9"}}
	if err := l.Compact(jobs, abandoned, nil, store, l.Seq()); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("full compaction left %d segments, want 1", len(segs))
	}
	if info, err := os.Stat(segs[0].path); err != nil || info.Size() != 0 {
		t.Errorf("WAL not emptied after compaction: %v, size %d", err, info.Size())
	}

	// Post-compaction appends land in the (empty) log with continuing seq.
	ts.RecordModel(ModelRecord{Name: "m2", Accuracy: 0.9, Round: 2})
	if err := l.AppendModelRecorded("job-0001", ModelRecord{Name: "m2", Accuracy: 0.9, Round: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 1 || rec.Events != 1 {
		t.Fatalf("recovered %d jobs, %d replayed events (want 1, 1)", len(rec.Jobs), rec.Events)
	}
	rts, ok := rec.Store.Task("job-0001")
	if !ok {
		t.Fatal("recovered store missing task")
	}
	if ms := rts.Models(); len(ms) != 2 || ms[0].Name != "m1" || ms[1].Name != "m2" {
		t.Errorf("recovered models %+v", rts.Models())
	}
	if len(rts.Examples()) != 1 {
		t.Errorf("recovered %d examples, want 1", len(rts.Examples()))
	}
	if ab := rec.Abandoned["job-0001"]; len(ab) != 1 || ab[0] != "m9" {
		t.Errorf("recovered abandoned %+v", rec.Abandoned)
	}
}

// Replay must be idempotent: an event that is both inside the snapshot and
// still in the log (the straggler window during compaction) applies once.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	ts, err := store.CreateTask("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	ts.PutExample(Example{ID: 1, Input: []float64{1}, Output: []float64{2}, Enabled: true})
	ts.RecordModel(ModelRecord{Name: "m1", Accuracy: 0.7, Round: 1})

	// Compact with state that already includes the example and the model,
	// then append the very events the snapshot covers — the straggler
	// scenario.
	if err := l.Compact([]JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}, nil, nil, store, l.Seq()); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendExampleFed("job-0001", 1, []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendModelRecorded("job-0001", ModelRecord{Name: "m1", Accuracy: 0.7, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 1 {
		t.Errorf("job duplicated: %+v", rec.Jobs)
	}
	rts, _ := rec.Store.Task("job-0001")
	if got := len(rts.Examples()); got != 1 {
		t.Errorf("%d examples after duplicate replay, want 1", got)
	}
	if got := len(rts.Models()); got != 1 {
		t.Errorf("%d models after duplicate replay, want 1", got)
	}
}

// Compacting with a horizon below the newest events must keep those events
// in the WAL: they may not be reflected in the captured state, and dropping
// them would lose acknowledged mutations.
func TestCompactionPreservesEventsPastHorizon(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	if _, err := store.CreateTask("job-0001"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	horizon := l.Seq()
	// A straggler submission: logged after the horizon, missing from the
	// captured state (jobs below lists only job-0001).
	if err := l.AppendJobSubmitted("job-0002", "late", "{prog2}"); err != nil {
		t.Fatal(err)
	}
	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	if err := l.Compact(jobs, nil, nil, store, horizon); err != nil {
		t.Fatal(err)
	}
	// The straggler survives compaction and further appends still work.
	if err := l.AppendExampleFed("job-0002", 1, []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[1].ID != "job-0002" {
		t.Fatalf("straggler submission lost by compaction: %+v", rec.Jobs)
	}
	ts, ok := rec.Store.Task("job-0002")
	if !ok || len(ts.Examples()) != 1 {
		t.Fatalf("straggler example lost by compaction")
	}
}

// Lease-expiry events survive crash recovery via the WAL; compaction folds
// them away (they are operational history — the re-queue effect is the
// untried arm itself, which needs no replay).
func TestLeaseExpiredEventsRecoverAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "demo", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeaseExpired("job-0001", "GRU", "worker-0002"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeaseExpired("job-0001", "LSTM", "worker-0002"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // crash boundary
		t.Fatal(err)
	}

	l2, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Expired) != 2 {
		t.Fatalf("recovered %d expiries, want 2: %+v", len(rec.Expired), rec.Expired)
	}
	if rec.Expired[0] != (ExpiredLease{Job: "job-0001", Candidate: "GRU", Worker: "worker-0002"}) {
		t.Errorf("first expiry %+v", rec.Expired[0])
	}

	jobs := []JobMeta{{ID: "job-0001", Name: "demo", Program: "{prog}"}}
	if err := l2.Compact(jobs, nil, nil, rec.Store, l2.Seq()); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(rec2.Jobs) != 1 {
		t.Errorf("post-compaction recovery lost the job: %+v", rec2.Jobs)
	}
	if len(rec2.Expired) != 0 {
		t.Errorf("compaction preserved %d expiry records, want 0", len(rec2.Expired))
	}
}

// Preemption events are pure history (recovered, folded away at
// compaction); budget_exhausted is state (recovered AND preserved by
// compaction in the snapshot).
func TestPreemptionAndBudgetEventsRecoverAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJobSubmitted("job-0001", "carol", "{prog}"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLeasePreempted("job-0001", "GRU", "worker-0002", "job-0002"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBudgetExhausted("job-0001", "carol", 41.5); err != nil {
		t.Fatal(err)
	}
	// Idempotency: a duplicate budget event (straggler window) is harmless.
	if err := l.AppendBudgetExhausted("job-0001", "carol", 41.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // crash boundary
		t.Fatal(err)
	}

	l2, rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Preempted) != 1 {
		t.Fatalf("recovered %d preemptions, want 1: %+v", len(rec.Preempted), rec.Preempted)
	}
	if rec.Preempted[0] != (PreemptedLease{Job: "job-0001", Candidate: "GRU", Worker: "worker-0002", By: "job-0002"}) {
		t.Errorf("preemption record %+v", rec.Preempted[0])
	}
	if !rec.BudgetExhausted["job-0001"] {
		t.Errorf("budget exhaustion not recovered: %+v", rec.BudgetExhausted)
	}

	jobs := []JobMeta{{ID: "job-0001", Name: "carol", Program: "{prog}"}}
	var exhausted []string
	for id := range rec.BudgetExhausted {
		exhausted = append(exhausted, id)
	}
	if err := l2.Compact(jobs, nil, exhausted, rec.Store, l2.Seq()); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, rec2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(rec2.Preempted) != 0 {
		t.Errorf("compaction preserved %d preemption records, want 0", len(rec2.Preempted))
	}
	if !rec2.BudgetExhausted["job-0001"] {
		t.Error("compaction lost the budget-exhausted marker")
	}
}
