package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The write-ahead log turns the shared storage into a real durability
// subsystem: every state mutation of the service (job submitted, example
// fed or refined, model recorded, candidate abandoned) is appended as one
// JSONL event before the mutation is acknowledged, and boot-time recovery
// replays the log on top of the last snapshot. The snapshot/LoadStore pair
// of persist.go is the compaction path: Compact folds the log into a fresh
// snapshot and truncates it, bounding replay time (the append-only log +
// periodic checkpoint layout standard for crash-safe, write-heavy state).
//
// Durability lifecycle:
//
//	append (per mutation) ──▶ wal.jsonl
//	compact (admin / shutdown) ──▶ snapshot.json, wal.jsonl truncated
//	recover (OpenDir at boot) ──▶ snapshot.json + surviving wal.jsonl tail
//
// Replay is idempotent: an event that is already reflected in the snapshot
// (or appears twice after a torn compaction) applies as a no-op, so the
// "snapshot state vs. log tail" boundary never has to be exact.

// EventType labels one WAL record.
type EventType string

// The WAL event vocabulary. Lease grants are deliberately not logged: a
// lease that never completes leaves its arm untried in the recovered state,
// so the work is re-queued (re-leased) by the first scheduling pass of the
// next process instead of being lost or double-counted. Lease *expiries*
// are logged, though — they are operational history (which worker went
// silent on which candidate), not state the re-queue depends on, so
// compaction folds them away rather than into the snapshot.
const (
	EventJobSubmitted       EventType = "job_submitted"
	EventExampleFed         EventType = "example_fed"
	EventExampleRefined     EventType = "example_refined"
	EventModelRecorded      EventType = "model_recorded"
	EventCandidateAbandoned EventType = "candidate_abandoned"
	EventLeaseExpired       EventType = "lease_expired"
	// EventLeasePreempted records a lease reclaimed to make room for
	// higher-priority work. Like expiries it is operational history, not
	// state: the candidate is simply untried in the recovered state and
	// re-enters selection, so compaction folds it away.
	EventLeasePreempted EventType = "lease_preempted"
	// EventBudgetExhausted records a job drained because its tenant's GPU
	// cost budget ran out. Unlike lease events this IS state recovery
	// depends on: the job's remaining candidates were retired, and a
	// recovered process must agree instead of resuming training. Compaction
	// folds it into the snapshot.
	EventBudgetExhausted EventType = "budget_exhausted"
)

// Event is one WAL record. Seq is assigned by Append and is strictly
// increasing across the life of a log directory (compaction records the
// high-water mark in the snapshot, so replay can skip events the snapshot
// already covers).
type Event struct {
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	Job  string    `json:"job,omitempty"`

	// job_submitted
	Name    string `json:"name,omitempty"`
	Program string `json:"program,omitempty"`

	// example_fed / example_refined
	Example int       `json:"example,omitempty"`
	Input   []float64 `json:"input,omitempty"`
	Output  []float64 `json:"output,omitempty"`
	Enabled bool      `json:"enabled,omitempty"`

	// model_recorded
	Model *ModelRecord `json:"model,omitempty"`

	// candidate_abandoned / lease_expired / lease_preempted
	Candidate string `json:"candidate,omitempty"`

	// lease_expired / lease_preempted: the fleet worker holding the lease
	// (empty for an unassigned lease).
	Worker string `json:"worker,omitempty"`

	// lease_preempted: the job whose higher-priority work demanded the
	// capacity.
	By string `json:"by,omitempty"`

	// budget_exhausted: the tenant whose budget ran out and the cumulative
	// cost at the moment of exhaustion.
	Tenant string  `json:"tenant,omitempty"`
	Cost   float64 `json:"cost,omitempty"`
}

// ExpiredLease is one recovered lease-expiry record: a candidate whose
// remote worker went silent before reporting a result. The arm itself is
// simply untried in the recovered state (the re-queue needs no replay);
// the record preserves the operational history across a crash.
type ExpiredLease struct {
	Job       string
	Candidate string
	Worker    string
}

// PreemptedLease is one recovered lease-preemption record: a best-effort
// candidate whose lease was reclaimed to make room for higher-priority
// work. Pure operational history, like ExpiredLease.
type PreemptedLease struct {
	Job       string
	Candidate string
	Worker    string
	By        string // the job whose work demanded the capacity
}

// JobMeta is the durable identity of a submitted job: everything needed to
// rebuild its candidate surface on recovery (the program is re-parsed and
// re-matched, which reproduces the same candidates deterministically).
type JobMeta struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Program string `json:"program"`
}

// RecoveredState is what OpenDir reconstructs from snapshot + log: the job
// registry in submission order, the shared store (examples, refine state,
// model records), and the candidates abandoned per job. The scheduler
// replays Store model records into its bandits to resume selection.
type RecoveredState struct {
	Jobs      []JobMeta
	Store     *Store
	Abandoned map[string][]string
	// BudgetExhausted marks jobs drained because their tenant's budget ran
	// out; the scheduler re-retires their remaining candidates on recovery.
	BudgetExhausted map[string]bool
	Expired         []ExpiredLease   // lease expiries in the surviving WAL tail
	Preempted       []PreemptedLease // lease preemptions in the surviving WAL tail
	Events          int              // WAL events applied on top of the snapshot
}

const (
	walFile      = "wal.jsonl"
	snapshotFile = "snapshot.json"
)

// WAL telemetry: append latency covers serialize + write + flush (the
// durability an acknowledged mutation buys); fsync latency is the
// compaction/close path only, matching the Log's durability contract.
var (
	walAppendLatency = telemetry.Default().Histogram("easeml_wal_append_seconds",
		"WAL append latency: serialize, write and flush one event to the OS.")
	walAppends = telemetry.Default().CounterVec("easeml_wal_appends_total",
		"WAL events appended, by event type.", "type")
	walFsyncLatency = telemetry.Default().Histogram("easeml_wal_fsync_seconds",
		"WAL and snapshot fsync latency (paid at compaction and close).")
	walFsyncs = telemetry.Default().Counter("easeml_wal_fsyncs_total",
		"File fsyncs issued by the WAL (snapshot, tail rewrite, close).")
	walCompactions = telemetry.Default().Counter("easeml_wal_compactions_total",
		"Snapshot compactions completed.")
)

// Log is an append-only JSONL write-ahead log over a data directory.
// Appends are serialized and flushed to the OS before returning, so an
// acknowledged mutation survives a process crash (not necessarily a power
// failure: fsync is paid only at compaction and close).
type Log struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	w   *bufio.Writer
	seq uint64

	// Per-log operation tallies for the /admin/metrics WAL section; the
	// process-global Prometheus counters above aggregate across logs.
	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	compactions atomic.Uint64
}

// LogStats is one log's operation tallies plus its sequence horizon —
// the WAL section of the /admin/metrics reply.
type LogStats struct {
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Compactions uint64 `json:"compactions"`
	Seq         uint64 `json:"seq"`
}

// Stats snapshots the log's operation tallies and sequence horizon.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return LogStats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Compactions: l.compactions.Load(),
		Seq:         seq,
	}
}

// timedSync fsyncs f under the WAL's fsync telemetry.
func (l *Log) timedSync(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	walFsyncLatency.ObserveSince(t0)
	walFsyncs.Inc()
	l.fsyncs.Add(1)
	return err
}

// OpenDir opens (creating if needed) a data directory and recovers its
// state: the snapshot is loaded if present, then surviving WAL events are
// replayed on top. A torn final line — the signature of a crash mid-append
// — is discarded and truncated away; corruption anywhere else is an error.
// The returned Log appends to the recovered WAL.
func OpenDir(dir string) (*Log, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating data dir: %w", err)
	}

	rec := &RecoveredState{
		Store:           NewStore(),
		Abandoned:       make(map[string][]string),
		BudgetExhausted: make(map[string]bool),
	}
	var lastSeq uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		store, jobs, abandoned, exhausted, seq, lerr := loadSnapshot(f)
		f.Close()
		if lerr != nil {
			return nil, nil, fmt.Errorf("storage: loading %s: %w", snapPath, lerr)
		}
		rec.Store, rec.Jobs = store, jobs
		for id, names := range abandoned {
			rec.Abandoned[id] = append([]string(nil), names...)
		}
		for _, id := range exhausted {
			rec.BudgetExhausted[id] = true
		}
		lastSeq = seq
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("storage: opening snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walFile)
	maxSeq, err := replayWAL(walPath, lastSeq, rec)
	if err != nil {
		return nil, nil, err
	}
	if maxSeq < lastSeq {
		maxSeq = lastSeq
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: opening WAL for append: %w", err)
	}
	l := &Log{dir: dir, f: f, w: bufio.NewWriter(f), seq: maxSeq}
	return l, rec, nil
}

// replayWAL applies the events of a WAL file with Seq > lastSeq to rec,
// truncating a torn tail. It returns the highest sequence number seen.
func replayWAL(path string, lastSeq uint64, rec *RecoveredState) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: reading WAL: %w", err)
	}
	var maxSeq uint64
	offset := 0 // end of the last fully applied line
	applied := 0
	for pos := 0; pos < len(data); {
		nl := bytes.IndexByte(data[pos:], '\n')
		line := data[pos:]
		terminated := nl >= 0
		if terminated {
			line = data[pos : pos+nl]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			var ev Event
			if uerr := json.Unmarshal(line, &ev); uerr != nil {
				if !terminated || allBlank(data[pos:]) {
					break // torn tail from a crash mid-append: discard
				}
				return 0, fmt.Errorf("storage: corrupt WAL record at byte %d: %v", pos, uerr)
			}
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
			if ev.Seq > lastSeq {
				if aerr := applyEvent(ev, rec); aerr != nil {
					return 0, fmt.Errorf("storage: replaying WAL seq %d: %w", ev.Seq, aerr)
				}
				applied++
			}
		}
		if !terminated {
			break
		}
		pos += nl + 1
		offset = pos
	}
	if offset < len(data) {
		if terr := os.Truncate(path, int64(offset)); terr != nil {
			return 0, fmt.Errorf("storage: truncating torn WAL tail: %w", terr)
		}
	}
	rec.Events += applied
	return maxSeq, nil
}

// allBlank reports whether tail is a single (possibly unterminated) line:
// i.e. whether everything after the first newline is whitespace.
func allBlank(tail []byte) bool {
	nl := bytes.IndexByte(tail, '\n')
	if nl < 0 {
		return true
	}
	return len(bytes.TrimSpace(tail[nl+1:])) == 0
}

// applyEvent folds one WAL event into the recovered state. Every case is
// idempotent: applying an event whose effect is already present is a no-op,
// which makes replay safe across the snapshot boundary.
func applyEvent(ev Event, rec *RecoveredState) error {
	switch ev.Type {
	case EventJobSubmitted:
		for _, m := range rec.Jobs {
			if m.ID == ev.Job {
				return nil
			}
		}
		rec.Jobs = append(rec.Jobs, JobMeta{ID: ev.Job, Name: ev.Name, Program: ev.Program})
		if _, ok := rec.Store.Task(ev.Job); !ok {
			if _, err := rec.Store.CreateTask(ev.Job); err != nil {
				return err
			}
		}
	case EventExampleFed:
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		ts.PutExample(Example{ID: ev.Example, Input: ev.Input, Output: ev.Output, Enabled: true})
	case EventExampleRefined:
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		if err := ts.Refine(ev.Example, ev.Enabled); err != nil {
			return err
		}
	case EventModelRecorded:
		if ev.Model == nil {
			return fmt.Errorf("model_recorded event without a model")
		}
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		if !ts.HasModel(ev.Model.Name) {
			ts.RecordModel(*ev.Model)
		}
	case EventCandidateAbandoned:
		for _, name := range rec.Abandoned[ev.Job] {
			if name == ev.Candidate {
				return nil
			}
		}
		rec.Abandoned[ev.Job] = append(rec.Abandoned[ev.Job], ev.Candidate)
	case EventLeaseExpired:
		// Pure history: each event has a unique seq, so replay past the
		// snapshot horizon applies it at most once; no dedup needed.
		rec.Expired = append(rec.Expired, ExpiredLease{Job: ev.Job, Candidate: ev.Candidate, Worker: ev.Worker})
	case EventLeasePreempted:
		// Pure history, like expiry.
		rec.Preempted = append(rec.Preempted, PreemptedLease{Job: ev.Job, Candidate: ev.Candidate, Worker: ev.Worker, By: ev.By})
	case EventBudgetExhausted:
		if rec.BudgetExhausted == nil {
			rec.BudgetExhausted = make(map[string]bool)
		}
		rec.BudgetExhausted[ev.Job] = true // idempotent by construction
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}

// taskFor resolves (creating if necessary) the task store for a job id.
// Creation covers replay of a log whose job_submitted event predates the
// snapshot's sequence horizon but whose task was never snapshotted.
func taskFor(s *Store, id string) (*TaskStore, error) {
	if ts, ok := s.Task(id); ok {
		return ts, nil
	}
	return s.CreateTask(id)
}

// Append assigns the next sequence number to ev, writes it as one JSONL
// record and flushes it to the OS. It is safe for concurrent use.
func (l *Log) Append(ev Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(ev)
}

func (l *Log) appendLocked(ev Event) error {
	if l.f == nil {
		return fmt.Errorf("storage: append to closed WAL")
	}
	t0 := time.Now()
	l.seq++
	ev.Seq = l.seq
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("storage: encoding WAL event: %w", err)
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		return fmt.Errorf("storage: appending WAL event: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flushing WAL: %w", err)
	}
	elapsed := time.Since(t0)
	walAppendLatency.Observe(elapsed)
	walAppends.With(string(ev.Type)).Inc()
	l.appends.Add(1)
	telemetry.SlowOp("wal_append", elapsed, "type", string(ev.Type), "seq", l.seq)
	return nil
}

// AppendJobSubmitted logs a job submission (id, user-facing name and the
// normalized program source the candidate surface is rebuilt from).
func (l *Log) AppendJobSubmitted(jobID, name, program string) error {
	return l.Append(Event{Type: EventJobSubmitted, Job: jobID, Name: name, Program: program})
}

// AppendExampleFed logs a fed supervision example under its assigned id.
func (l *Log) AppendExampleFed(jobID string, exampleID int, input, output []float64) error {
	return l.Append(Event{Type: EventExampleFed, Job: jobID, Example: exampleID, Input: input, Output: output})
}

// AppendExampleRefined logs an example's refine toggle.
func (l *Log) AppendExampleRefined(jobID string, exampleID int, enabled bool) error {
	return l.Append(Event{Type: EventExampleRefined, Job: jobID, Example: exampleID, Enabled: enabled})
}

// AppendModelRecorded logs a completed training run (a settled lease).
func (l *Log) AppendModelRecorded(jobID string, rec ModelRecord) error {
	m := rec
	return l.Append(Event{Type: EventModelRecorded, Job: jobID, Model: &m})
}

// AppendCandidateAbandoned logs a candidate retired after repeated failures.
func (l *Log) AppendCandidateAbandoned(jobID, candidate string) error {
	return l.Append(Event{Type: EventCandidateAbandoned, Job: jobID, Candidate: candidate})
}

// AppendLeaseExpired logs a lease reclaimed from a silent worker; the arm
// re-enters selection in memory, so only the history needs the log.
func (l *Log) AppendLeaseExpired(jobID, candidate, worker string) error {
	return l.Append(Event{Type: EventLeaseExpired, Job: jobID, Candidate: candidate, Worker: worker})
}

// AppendLeasePreempted logs a lease reclaimed to make room for
// higher-priority work (by names the demanding job); like expiry, the arm
// re-enters selection in memory and only the history needs the log.
func (l *Log) AppendLeasePreempted(jobID, candidate, worker, by string) error {
	return l.Append(Event{Type: EventLeasePreempted, Job: jobID, Candidate: candidate, Worker: worker, By: by})
}

// AppendBudgetExhausted logs a job drained because its tenant's GPU cost
// budget ran out (cost is the tenant's cumulative spend at that moment).
// Recovery re-retires the job's remaining candidates, so a restarted
// process agrees the job is done training.
func (l *Log) AppendBudgetExhausted(jobID, tenant string, cost float64) error {
	return l.Append(Event{Type: EventBudgetExhausted, Job: jobID, Tenant: tenant, Cost: cost})
}

// Seq returns the sequence number of the last appended event.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dir returns the data directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Compact checkpoints the given state as the directory's snapshot and
// drops the WAL prefix it covers. through is the caller's sequence horizon
// — the log's Seq() read *before* the caller captured the state it passes
// here — so an event appended while the state was being captured (and thus
// possibly missing from it) survives in the WAL tail and is replayed on
// recovery; events the capture provably covers are dropped. Replay
// idempotency absorbs the overlap. The snapshot is written to a temp file,
// fsynced and renamed over the old one, so a crash mid-compaction leaves
// either the old or the new snapshot intact — never a torn one.
func (l *Log) Compact(jobs []JobMeta, abandoned map[string][]string, budgetExhausted []string, store *Store, through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("storage: compact on closed WAL")
	}
	if through > l.seq {
		through = l.seq
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flushing WAL before compaction: %w", err)
	}

	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	if err := writeSnapshot(f, store, jobs, abandoned, budgetExhausted, through); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.timedSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	if err := l.rewriteTailLocked(through); err != nil {
		return err
	}
	walCompactions.Inc()
	l.compactions.Add(1)
	return nil
}

// rewriteTailLocked replaces the WAL with only the events past the
// compaction horizon, via temp file + rename (a crash in between leaves
// the old WAL, whose covered prefix replay skips by seq). Callers hold
// l.mu.
func (l *Log) rewriteTailLocked(through uint64) error {
	walPath := filepath.Join(l.dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		return fmt.Errorf("storage: reading WAL for compaction: %w", err)
	}
	var tail []byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(line, &ev) == nil && ev.Seq > through {
			tail = append(tail, line...)
			tail = append(tail, '\n')
		}
	}
	tmp := walPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating compacted WAL: %w", err)
	}
	if _, err := f.Write(tail); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing compacted WAL: %w", err)
	}
	// The surviving tail events were acknowledged as durable before the
	// compaction; the rewrite must not weaken that, so it is fsynced
	// before the rename makes it the log.
	if err := l.timedSync(f); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing compacted WAL: %w", err)
	}
	if err := os.Rename(tmp, walPath); err != nil {
		f.Close()
		return fmt.Errorf("storage: installing compacted WAL: %w", err)
	}
	old := l.f
	l.f = f
	l.w.Reset(f)
	old.Close()
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing data dir: %w", err)
	}
	return nil
}

// Close flushes and fsyncs the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	flushErr := l.w.Flush()
	syncErr := l.timedSync(l.f)
	closeErr := l.f.Close()
	l.f = nil
	if flushErr != nil {
		return fmt.Errorf("storage: flushing WAL on close: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("storage: syncing WAL on close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("storage: closing WAL: %w", closeErr)
	}
	return nil
}
