package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The write-ahead log turns the shared storage into a real durability
// subsystem: every state mutation of the service (job submitted, example
// fed or refined, model recorded, candidate abandoned) is appended as one
// JSONL event before the mutation is acknowledged, and boot-time recovery
// replays the surviving events on top of the last snapshot.
//
// The log is segmented and group-committed. Appends do not write: they
// assign a seq, encode the event, enqueue it into the commit window and
// block. A single committer goroutine drains the window and pays one
// write + one fsync for the whole batch, then releases every waiter at
// once — so an acknowledged mutation is on disk (fsynced, not merely
// flushed to the OS), and the per-event durability cost shrinks as
// concurrency grows. Records land in fixed-size segment files named by
// seq; compaction folds sealed segments into the snapshot and recycles
// their files instead of rewriting a single world-file.
//
// Durability lifecycle:
//
//	Append ──▶ commit window ──▶ committer: 1 write + 1 fsync per batch
//	  (blocks)                      │ ack all waiters after the fsync
//	                                ▼
//	                   wal-<firstseq>.jsonl (active)
//	                                │ roll at SegmentBytes: flush+fsync+seal
//	                                ▼
//	                       sealed segments (read-only)
//	                                │
//	     Compact ───────────────────┤ snapshot.json ⟵ full state @ horizon;
//	     (full: admin / shutdown)   │ every covered segment recycled
//	     CompactOldest ─────────────┘ snapshot @ oldest sealed segment's
//	     (incremental)                last seq; that one segment recycled —
//	                                  pause is O(segment), not O(log)
//
//	Recover (OpenDir) ──▶ snapshot.json + segments replayed in seq order;
//	                      a torn tail is truncated in the last segment only
//
// Replay is idempotent and seq-filtered: an event already reflected in
// the snapshot, or surviving in two segments after an interrupted
// compaction, applies at most once. The "snapshot state vs. log tail"
// boundary therefore never has to be exact, which is what lets
// incremental compaction snapshot current state under an old horizon.

// EventType labels one WAL record.
type EventType string

// The WAL event vocabulary. Lease grants are deliberately not logged: a
// lease that never completes leaves its arm untried in the recovered state,
// so the work is re-queued (re-leased) by the first scheduling pass of the
// next process instead of being lost or double-counted. Lease *expiries*
// are logged, though — they are operational history (which worker went
// silent on which candidate), not state the re-queue depends on, so
// compaction folds them away rather than into the snapshot.
const (
	EventJobSubmitted       EventType = "job_submitted"
	EventExampleFed         EventType = "example_fed"
	EventExampleRefined     EventType = "example_refined"
	EventModelRecorded      EventType = "model_recorded"
	EventCandidateAbandoned EventType = "candidate_abandoned"
	EventLeaseExpired       EventType = "lease_expired"
	// EventLeasePreempted records a lease reclaimed to make room for
	// higher-priority work. Like expiries it is operational history, not
	// state: the candidate is simply untried in the recovered state and
	// re-enters selection, so compaction folds it away.
	EventLeasePreempted EventType = "lease_preempted"
	// EventBudgetExhausted records a job drained because its tenant's GPU
	// cost budget ran out. Unlike lease events this IS state recovery
	// depends on: the job's remaining candidates were retired, and a
	// recovered process must agree instead of resuming training. Compaction
	// folds it into the snapshot.
	EventBudgetExhausted EventType = "budget_exhausted"
)

// Event is one WAL record. Seq is assigned by Append and is strictly
// increasing across the life of a log directory (compaction records the
// high-water mark in the snapshot, so replay can skip events the snapshot
// already covers).
type Event struct {
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	Job  string    `json:"job,omitempty"`

	// job_submitted
	Name    string `json:"name,omitempty"`
	Program string `json:"program,omitempty"`

	// example_fed / example_refined
	Example int       `json:"example,omitempty"`
	Input   []float64 `json:"input,omitempty"`
	Output  []float64 `json:"output,omitempty"`
	Enabled bool      `json:"enabled,omitempty"`

	// model_recorded
	Model *ModelRecord `json:"model,omitempty"`

	// candidate_abandoned / lease_expired / lease_preempted
	Candidate string `json:"candidate,omitempty"`

	// lease_expired / lease_preempted: the fleet worker holding the lease
	// (empty for an unassigned lease).
	Worker string `json:"worker,omitempty"`

	// lease_preempted: the job whose higher-priority work demanded the
	// capacity.
	By string `json:"by,omitempty"`

	// budget_exhausted: the tenant whose budget ran out and the cumulative
	// cost at the moment of exhaustion.
	Tenant string  `json:"tenant,omitempty"`
	Cost   float64 `json:"cost,omitempty"`
}

// ExpiredLease is one recovered lease-expiry record: a candidate whose
// remote worker went silent before reporting a result. The arm itself is
// simply untried in the recovered state (the re-queue needs no replay);
// the record preserves the operational history across a crash.
type ExpiredLease struct {
	Job       string
	Candidate string
	Worker    string
}

// PreemptedLease is one recovered lease-preemption record: a best-effort
// candidate whose lease was reclaimed to make room for higher-priority
// work. Pure operational history, like ExpiredLease.
type PreemptedLease struct {
	Job       string
	Candidate string
	Worker    string
	By        string // the job whose work demanded the capacity
}

// JobMeta is the durable identity of a submitted job: everything needed to
// rebuild its candidate surface on recovery (the program is re-parsed and
// re-matched, which reproduces the same candidates deterministically).
type JobMeta struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Program string `json:"program"`
}

// RecoveredState is what OpenDir reconstructs from snapshot + log: the job
// registry in submission order, the shared store (examples, refine state,
// model records), and the candidates abandoned per job. The scheduler
// replays Store model records into its bandits to resume selection.
type RecoveredState struct {
	Jobs      []JobMeta
	Store     *Store
	Abandoned map[string][]string
	// BudgetExhausted marks jobs drained because their tenant's budget ran
	// out; the scheduler re-retires their remaining candidates on recovery.
	BudgetExhausted map[string]bool
	Expired         []ExpiredLease   // lease expiries in the surviving WAL tail
	Preempted       []PreemptedLease // lease preemptions in the surviving WAL tail
	Events          int              // WAL events applied on top of the snapshot
}

const snapshotFile = "snapshot.json"

// DefaultSegmentBytes is the segment roll threshold when LogOptions does
// not set one: large enough that single-process tests stay in one segment,
// small enough that incremental compaction has real granularity under
// sustained ingest.
const DefaultSegmentBytes = 4 << 20

// batchGatherWindow bounds the committer's cohort-gather yield loop in
// sync-immediate mode (SyncInterval 0): how long a fresh batch waits for
// the waiters woken by the previous fsync to re-enqueue and join it.
// Kept well under a device fsync (~hundreds of µs) so the worst-case
// added ack latency is a rounding error.
const batchGatherWindow = 25 * time.Microsecond

// LogOptions tunes the WAL's write pipeline. The zero value is the
// library default: 4 MiB segments, group commit with an immediate sync
// per batch.
type LogOptions struct {
	// SegmentBytes is the roll threshold: a batch record that would push
	// the active segment past it seals the segment (flush+fsync+close) and
	// opens the next. <= 0 means DefaultSegmentBytes. A single record
	// larger than the threshold still lands in one segment.
	SegmentBytes int64

	// SyncInterval shapes group commit:
	//
	//	== 0  the committer fsyncs each batch as soon as it drains the
	//	      window — every append is synced immediately, batching arises
	//	      naturally from appends that arrive during the previous
	//	      batch's fsync;
	//	 > 0  the committer lingers this long before committing, so
	//	      concurrent writers share one fsync (appends are acked within
	//	      ~interval; the server default is a few ms);
	//	 < 0  no committer at all: each append pays its own serialized
	//	      write+fsync inline — the pre-segmentation discipline, kept as
	//	      the benchmark baseline.
	//
	// Every mode fsyncs before acknowledging; the modes trade latency
	// against how many appends share each fsync.
	SyncInterval time.Duration
}

// WAL telemetry: append latency now spans enqueue → fsynced ack (the
// durability an acknowledged mutation buys); fsync latency covers group
// commits, segment seals, compactions and close.
var (
	walAppendLatency = telemetry.Default().Histogram("easeml_wal_append_seconds",
		"WAL append latency: from enqueue to fsynced acknowledgement.")
	walAppends = telemetry.Default().CounterVec("easeml_wal_appends_total",
		"WAL events appended, by event type.", "type")
	walFsyncLatency = telemetry.Default().Histogram("easeml_wal_fsync_seconds",
		"WAL fsync latency (group commits, segment seals, snapshots, close).")
	walFsyncs = telemetry.Default().Counter("easeml_wal_fsyncs_total",
		"File fsyncs issued by the WAL (group commit, seal, snapshot, close).")
	walCompactions = telemetry.Default().Counter("easeml_wal_compactions_total",
		"Snapshot compactions completed (full and incremental).")
	walBatchSize = telemetry.Default().ValueHistogram("easeml_wal_group_commit_batch_size",
		"Appends committed per WAL group-commit batch (per fsync).")
	walSegments = telemetry.Default().Gauge("easeml_wal_segments",
		"Live WAL segment files (sealed + active).")
	walBytesWritten = telemetry.Default().Counter("easeml_wal_bytes_written_total",
		"Bytes of encoded events written to WAL segments.")
)

// opWALGroupCommit is the span each WAL group-commit batch records (under
// its own trace — one fsync serves many request traces).
var opWALGroupCommit = telemetry.SpanOp("wal_group_commit")

// commitReq is one encoded append waiting in the commit window.
type commitReq struct {
	seq  uint64
	typ  EventType
	data []byte // JSONL record, newline included
	done chan error
}

// Log is a segmented, group-committed JSONL write-ahead log over a data
// directory. Append blocks until its event is fsynced (batched with its
// neighbours), so an acknowledged mutation survives power failure, not
// just process crash.
//
// Locking: mu guards sequencing and the commit window (Append holds it
// only to assign a seq and enqueue — never during I/O); ioMu guards the
// segment files and is held for writes, fsyncs, rolls and compaction.
// mu may be taken before ioMu (the serialized SyncInterval<0 path does);
// nothing takes mu while holding ioMu.
type Log struct {
	dir  string
	opts LogOptions

	mu     sync.Mutex
	qcond  *sync.Cond // signalled when queue gains work or closed flips
	queue  []*commitReq
	seq    uint64
	closed bool
	done   chan struct{} // committer exited; nil in serialized mode

	ioMu        sync.Mutex
	f           *os.File // active segment
	w           *bufio.Writer
	size        int64  // bytes in the active segment
	first       uint64 // active segment's name seq (lower bound)
	lastWritten uint64 // highest seq written to any segment
	sealed      []segmentInfo
	recycled    []string // pool of truncated retired segment files

	// Per-log operation tallies for the /admin/metrics WAL section; the
	// process-global Prometheus counters above aggregate across logs.
	appends      atomic.Uint64
	fsyncs       atomic.Uint64
	compactions  atomic.Uint64
	groupCommits atomic.Uint64
	bytesWritten atomic.Uint64
}

// LogStats is one log's operation tallies plus its sequence horizon —
// the WAL section of the /admin/metrics reply.
type LogStats struct {
	Appends      uint64 `json:"appends"`
	Fsyncs       uint64 `json:"fsyncs"`
	Compactions  uint64 `json:"compactions"`
	Seq          uint64 `json:"seq"`
	Segments     int    `json:"segments"`
	GroupCommits uint64 `json:"group_commits"`
	BytesWritten uint64 `json:"bytes_written"`
}

// Stats snapshots the log's operation tallies and sequence horizon.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	l.ioMu.Lock()
	segs := len(l.sealed)
	if l.f != nil {
		segs++
	}
	l.ioMu.Unlock()
	return LogStats{
		Appends:      l.appends.Load(),
		Fsyncs:       l.fsyncs.Load(),
		Compactions:  l.compactions.Load(),
		Seq:          seq,
		Segments:     segs,
		GroupCommits: l.groupCommits.Load(),
		BytesWritten: l.bytesWritten.Load(),
	}
}

// timedSync fsyncs f under the WAL's fsync telemetry.
func (l *Log) timedSync(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	walFsyncLatency.ObserveSince(t0)
	walFsyncs.Inc()
	l.fsyncs.Add(1)
	return err
}

// OpenDir opens (creating if needed) a data directory with default
// LogOptions and recovers its state. See OpenDirOptions.
func OpenDir(dir string) (*Log, *RecoveredState, error) {
	return OpenDirOptions(dir, LogOptions{})
}

// OpenDirOptions opens (creating if needed) a data directory and recovers
// its state: the snapshot is loaded if present, a pre-segmentation
// wal.jsonl is migrated into segment form, then the segments' surviving
// events are replayed on top in seq order. A torn final line — the
// signature of a crash mid-commit — is discarded and truncated away in
// the last segment; corruption anywhere else is an error. The returned
// Log appends to the last segment.
func OpenDirOptions(dir string, opts LogOptions) (*Log, *RecoveredState, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating data dir: %w", err)
	}

	rec := &RecoveredState{
		Store:           NewStore(),
		Abandoned:       make(map[string][]string),
		BudgetExhausted: make(map[string]bool),
	}
	var lastSeq uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		store, jobs, abandoned, exhausted, seq, lerr := loadSnapshot(f)
		f.Close()
		if lerr != nil {
			return nil, nil, fmt.Errorf("storage: loading %s: %w", snapPath, lerr)
		}
		rec.Store, rec.Jobs = store, jobs
		for id, names := range abandoned {
			rec.Abandoned[id] = append([]string(nil), names...)
		}
		for _, id := range exhausted {
			rec.BudgetExhausted[id] = true
		}
		lastSeq = seq
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("storage: opening snapshot: %w", err)
	}

	if err := migrateLegacyWAL(dir, lastSeq); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	// horizon is the monotonic replay filter: events at or below it are
	// already reflected (snapshot, or an earlier copy in a previous
	// segment) and skip. It is what makes replay idempotent when the same
	// event survives in two segments after an interrupted compaction.
	horizon := lastSeq
	maxSeq := lastSeq
	for i := range segs {
		segMax, rerr := replaySegment(segs[i].path, &horizon, rec, i == len(segs)-1)
		if rerr != nil {
			return nil, nil, rerr
		}
		segs[i].last = segMax
		if segMax > maxSeq {
			maxSeq = segMax
		}
	}

	l := &Log{dir: dir, opts: opts, seq: maxSeq, lastWritten: maxSeq}
	l.qcond = sync.NewCond(&l.mu)
	l.recycled = listRecycled(dir)
	if len(segs) == 0 {
		if err := l.openSegmentLocked(maxSeq + 1); err != nil {
			return nil, nil, err
		}
	} else {
		active := segs[len(segs)-1]
		f, ferr := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return nil, nil, fmt.Errorf("storage: opening WAL segment for append: %w", ferr)
		}
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: sizing WAL segment: %w", serr)
		}
		l.f, l.w, l.size, l.first = f, bufio.NewWriter(f), st.Size(), active.first
		l.sealed = segs[:len(segs)-1]
	}
	walSegments.Set(float64(len(l.sealed) + 1))
	if opts.SyncInterval >= 0 {
		l.done = make(chan struct{})
		go l.committer()
	}
	return l, rec, nil
}

// replaySegment applies a segment's events with Seq > *horizon to rec,
// advancing the horizon past each applied event. Only the last segment
// may carry a torn tail (it is truncated away); a torn or corrupt record
// in a sealed segment is real corruption and an error. It returns the
// highest sequence number seen in the segment (0 if empty).
func replaySegment(path string, horizon *uint64, rec *RecoveredState, last bool) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: reading WAL segment: %w", err)
	}
	var maxSeq uint64
	offset := 0 // end of the last fully applied line
	applied := 0
	for pos := 0; pos < len(data); {
		nl := bytes.IndexByte(data[pos:], '\n')
		line := data[pos:]
		terminated := nl >= 0
		if terminated {
			line = data[pos : pos+nl]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			var ev Event
			if uerr := json.Unmarshal(line, &ev); uerr != nil {
				if last && (!terminated || allBlank(data[pos:])) {
					break // torn tail from a crash mid-commit: discard
				}
				return 0, fmt.Errorf("storage: corrupt WAL record in %s at byte %d: %v", filepath.Base(path), pos, uerr)
			}
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
			if ev.Seq > *horizon {
				if aerr := applyEvent(ev, rec); aerr != nil {
					return 0, fmt.Errorf("storage: replaying WAL seq %d: %w", ev.Seq, aerr)
				}
				*horizon = ev.Seq
				applied++
			}
		}
		if !terminated {
			break
		}
		pos += nl + 1
		offset = pos
	}
	if offset < len(data) {
		if !last {
			return 0, fmt.Errorf("storage: sealed WAL segment %s has a torn tail", filepath.Base(path))
		}
		if terr := os.Truncate(path, int64(offset)); terr != nil {
			return 0, fmt.Errorf("storage: truncating torn WAL tail: %w", terr)
		}
	}
	rec.Events += applied
	return maxSeq, nil
}

// allBlank reports whether tail is a single (possibly unterminated) line:
// i.e. whether everything after the first newline is whitespace.
func allBlank(tail []byte) bool {
	nl := bytes.IndexByte(tail, '\n')
	if nl < 0 {
		return true
	}
	return len(bytes.TrimSpace(tail[nl+1:])) == 0
}

// applyEvent folds one WAL event into the recovered state. Every case is
// idempotent: applying an event whose effect is already present is a no-op,
// which makes replay safe across the snapshot boundary.
func applyEvent(ev Event, rec *RecoveredState) error {
	switch ev.Type {
	case EventJobSubmitted:
		for _, m := range rec.Jobs {
			if m.ID == ev.Job {
				return nil
			}
		}
		rec.Jobs = append(rec.Jobs, JobMeta{ID: ev.Job, Name: ev.Name, Program: ev.Program})
		if _, ok := rec.Store.Task(ev.Job); !ok {
			if _, err := rec.Store.CreateTask(ev.Job); err != nil {
				return err
			}
		}
	case EventExampleFed:
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		ts.PutExample(Example{ID: ev.Example, Input: ev.Input, Output: ev.Output, Enabled: true})
	case EventExampleRefined:
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		if err := ts.Refine(ev.Example, ev.Enabled); err != nil {
			return err
		}
	case EventModelRecorded:
		if ev.Model == nil {
			return fmt.Errorf("model_recorded event without a model")
		}
		ts, err := taskFor(rec.Store, ev.Job)
		if err != nil {
			return err
		}
		if !ts.HasModel(ev.Model.Name) {
			ts.RecordModel(*ev.Model)
		}
	case EventCandidateAbandoned:
		for _, name := range rec.Abandoned[ev.Job] {
			if name == ev.Candidate {
				return nil
			}
		}
		rec.Abandoned[ev.Job] = append(rec.Abandoned[ev.Job], ev.Candidate)
	case EventLeaseExpired:
		// Pure history: the monotonic replay horizon admits each seq at
		// most once, so no dedup is needed here.
		rec.Expired = append(rec.Expired, ExpiredLease{Job: ev.Job, Candidate: ev.Candidate, Worker: ev.Worker})
	case EventLeasePreempted:
		// Pure history, like expiry.
		rec.Preempted = append(rec.Preempted, PreemptedLease{Job: ev.Job, Candidate: ev.Candidate, Worker: ev.Worker, By: ev.By})
	case EventBudgetExhausted:
		if rec.BudgetExhausted == nil {
			rec.BudgetExhausted = make(map[string]bool)
		}
		rec.BudgetExhausted[ev.Job] = true // idempotent by construction
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}

// taskFor resolves (creating if necessary) the task store for a job id.
// Creation covers replay of a log whose job_submitted event predates the
// snapshot's sequence horizon but whose task was never snapshotted.
func taskFor(s *Store, id string) (*TaskStore, error) {
	if ts, ok := s.Task(id); ok {
		return ts, nil
	}
	return s.CreateTask(id)
}

// Append assigns the next sequence number to ev, submits it to the commit
// pipeline and blocks until the event is fsynced (or the commit fails).
// It is safe — and profitable — for concurrent use: appends that overlap
// in time share one fsync.
func (l *Log) Append(ev Event) error {
	t0 := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("storage: append to closed WAL")
	}
	l.seq++
	ev.Seq = l.seq
	data, err := json.Marshal(ev)
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("storage: encoding WAL event: %w", err)
	}
	data = append(data, '\n')
	req := &commitReq{seq: ev.Seq, typ: ev.Type, data: data, done: make(chan error, 1)}
	if l.opts.SyncInterval < 0 {
		// Serialized mode: write+fsync inline under mu so file order keeps
		// matching seq order without a committer.
		err = l.commitBatch([]*commitReq{req})
		l.mu.Unlock()
	} else {
		l.queue = append(l.queue, req)
		l.qcond.Signal()
		l.mu.Unlock()
		err = <-req.done
	}
	elapsed := time.Since(t0)
	walAppendLatency.Observe(elapsed)
	telemetry.SlowOp("wal_append", elapsed, "type", string(ev.Type), "seq", ev.Seq)
	return err
}

// committer is the single goroutine that drains the commit window. Each
// drain becomes one batch: one buffered write per record, one flush, one
// fsync, then every waiter in the batch is released with the same result.
// Batching is what converts N concurrent appends into ~1 fsync.
func (l *Log) committer() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.qcond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()
		if iv := l.opts.SyncInterval; iv > 0 {
			// The commit window: linger so concurrent writers join this
			// batch and share its fsync. Worst-case added ack latency is
			// ~iv; under load the batch grows instead.
			time.Sleep(iv)
			l.mu.Lock()
			batch = append(batch, l.queue...)
			l.queue = nil
			l.mu.Unlock()
		} else {
			// Cohort gather: waiters released by the previous batch
			// re-enqueue within microseconds of waking, but a plain drain
			// runs before they get there, splitting a concurrent cohort
			// into a 1-then-rest alternation that pays two fsyncs where
			// one would do. A bounded yield loop (time.Sleep can't do
			// microseconds) lets the cohort assemble; the window is noise
			// next to the fsync this batch is about to pay.
			deadline := time.Now().Add(batchGatherWindow)
			for {
				runtime.Gosched()
				l.mu.Lock()
				batch = append(batch, l.queue...)
				l.queue = nil
				l.mu.Unlock()
				if time.Now().After(deadline) {
					break
				}
			}
		}
		err := l.commitBatch(batch)
		for _, r := range batch {
			r.done <- err
		}
	}
}

// commitBatch writes a batch of encoded records to the active segment
// (rolling at the size threshold) and fsyncs once. Callers must not hold
// ioMu; the serialized-append path holds mu, which is the one permitted
// mu→ioMu nesting.
func (l *Log) commitBatch(batch []*commitReq) error {
	// Group commits belong to no single request trace (one fsync serves
	// many), so each batch records a root span under its own trace: the
	// flight-recorder view of the WAL's write pipeline.
	span := telemetry.NewSpanAt(telemetry.NewTraceID(), "", opWALGroupCommit, time.Now())
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		err := fmt.Errorf("storage: append to closed WAL")
		span.Fail(err)
		span.End()
		return err
	}
	var n int
	err := l.commitBatchLocked(batch, &n)
	if err != nil {
		span.Fail(err)
	} else if len(batch) > 0 {
		span.SetAttr("records", strconv.Itoa(len(batch)))
		span.SetAttr("bytes", strconv.Itoa(n))
		span.SetAttr("first_seq", strconv.FormatUint(batch[0].seq, 10))
		span.SetAttr("last_seq", strconv.FormatUint(batch[len(batch)-1].seq, 10))
	}
	span.End()
	return err
}

// commitBatchLocked is commitBatch's write+flush+fsync body; callers hold
// ioMu. n reports the encoded bytes written.
func (l *Log) commitBatchLocked(batch []*commitReq, n *int) error {
	for _, r := range batch {
		if l.size > 0 && l.size+int64(len(r.data)) > l.opts.SegmentBytes {
			if err := l.rollLocked(r.seq); err != nil {
				return err
			}
		}
		if _, err := l.w.Write(r.data); err != nil {
			return fmt.Errorf("storage: appending WAL event: %w", err)
		}
		l.size += int64(len(r.data))
		*n += len(r.data)
		l.lastWritten = r.seq
		walAppends.With(string(r.typ)).Inc()
		l.appends.Add(1)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flushing WAL: %w", err)
	}
	// The fsync precedes every waiter's release: acknowledgement means
	// "on disk", not "handed to the OS".
	if err := l.timedSync(l.f); err != nil {
		return fmt.Errorf("storage: syncing WAL: %w", err)
	}
	l.groupCommits.Add(1)
	l.bytesWritten.Add(uint64(*n))
	walBatchSize.Observe(uint64(len(batch)))
	walBytesWritten.Add(uint64(*n))
	return nil
}

// rollLocked seals the active segment (flush, fsync, close, record its
// seq range) and opens the next one, named by the first seq it will
// hold. Callers hold ioMu.
func (l *Log) rollLocked(nextFirst uint64) error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("storage: flushing WAL segment before seal: %w", err)
	}
	if err := l.timedSync(l.f); err != nil {
		return fmt.Errorf("storage: syncing WAL segment before seal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("storage: sealing WAL segment: %w", err)
	}
	l.sealed = append(l.sealed, segmentInfo{
		first: l.first,
		last:  l.lastWritten,
		path:  filepath.Join(l.dir, segmentFileName(l.first)),
	})
	return l.openSegmentLocked(nextFirst)
}

// openSegmentLocked makes wal-<first>.jsonl the active segment,
// preferring to rename a recycled file back into service over creating a
// new one, and makes its directory entry durable. Callers hold ioMu.
func (l *Log) openSegmentLocked(first uint64) error {
	path := filepath.Join(l.dir, segmentFileName(first))
	if n := len(l.recycled); n > 0 {
		if err := os.Rename(l.recycled[n-1], path); err == nil {
			l.recycled = l.recycled[:n-1]
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening WAL segment: %w", err)
	}
	l.f = f
	if l.w == nil {
		l.w = bufio.NewWriter(f)
	} else {
		l.w.Reset(f)
	}
	l.size = 0
	l.first = first
	walSegments.Set(float64(len(l.sealed) + 1))
	return syncDir(l.dir)
}

// recycleLocked retires a segment file into the reuse pool (truncated to
// zero so stale events can never resurface under a new name), unlinking
// it instead once the pool is full. Callers hold ioMu.
func (l *Log) recycleLocked(path string) {
	if len(l.recycled) >= maxRecycled {
		os.Remove(path)
		return
	}
	if err := os.Truncate(path, 0); err != nil {
		os.Remove(path)
		return
	}
	base := filepath.Base(path)
	base = base[len(segmentPrefix) : len(base)-len(segmentSuffix)]
	target := filepath.Join(l.dir, recyclePrefix+base+recycleSuffix)
	if err := os.Rename(path, target); err != nil {
		os.Remove(path)
		return
	}
	l.recycled = append(l.recycled, target)
}

// Seq returns the sequence number of the last appended event.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dir returns the data directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Compact checkpoints the given state as the directory's snapshot and
// recycles every segment it covers. through is the caller's sequence
// horizon — the log's Seq() read *before* the caller captured the state
// it passes here — so an event appended while the state was being
// captured (and thus possibly missing from it) survives in a segment and
// is replayed on recovery; segments the capture provably covers are
// recycled. Replay idempotency absorbs the overlap. The snapshot is
// written to a temp file, fsynced and renamed over the old one, so a
// crash mid-compaction leaves either the old or the new snapshot intact —
// never a torn one.
func (l *Log) Compact(jobs []JobMeta, abandoned map[string][]string, budgetExhausted []string, store *Store, through uint64) error {
	if s := l.Seq(); through > s {
		through = s
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return fmt.Errorf("storage: compact on closed WAL")
	}
	if err := l.writeSnapshotLocked(jobs, abandoned, budgetExhausted, store, through); err != nil {
		return err
	}
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.last <= through { // an empty segment (last == 0) is trivially covered
			l.recycleLocked(s.path)
		} else {
			kept = append(kept, s)
		}
	}
	l.sealed = kept
	if l.size > 0 && l.lastWritten <= through {
		// The active segment is fully covered too: retire it so a
		// fully-compacted log occupies one empty segment.
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("storage: flushing WAL before compaction: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("storage: closing covered WAL segment: %w", err)
		}
		l.recycleLocked(filepath.Join(l.dir, segmentFileName(l.first)))
		if err := l.openSegmentLocked(l.lastWritten + 1); err != nil {
			return err
		}
	}
	walSegments.Set(float64(len(l.sealed) + 1))
	walCompactions.Inc()
	l.compactions.Add(1)
	return syncDir(l.dir)
}

// CompactOldest is the incremental compaction step: it folds only the
// oldest sealed segment into the snapshot and recycles that one file,
// leaving the rest of the log untouched — an O(segment) pause instead of
// Compact's O(log) one. The snapshot carries the caller's full current
// state but records the folded segment's last seq as its horizon;
// recovery replays the newer segments' events on top, where idempotent
// replay absorbs them. It reports whether a segment was folded (false
// with no error when no sealed segments exist).
func (l *Log) CompactOldest(jobs []JobMeta, abandoned map[string][]string, budgetExhausted []string, store *Store) (bool, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return false, fmt.Errorf("storage: compact on closed WAL")
	}
	if len(l.sealed) == 0 {
		return false, nil
	}
	seg := l.sealed[0]
	if seg.last > 0 {
		if err := l.writeSnapshotLocked(jobs, abandoned, budgetExhausted, store, seg.last); err != nil {
			return false, err
		}
	}
	l.recycleLocked(seg.path)
	l.sealed = l.sealed[1:]
	walSegments.Set(float64(len(l.sealed) + 1))
	walCompactions.Inc()
	l.compactions.Add(1)
	return true, syncDir(l.dir)
}

// writeSnapshotLocked writes state as the directory's snapshot with the
// given seq horizon, via temp file + fsync + rename + dir sync. Callers
// hold ioMu.
func (l *Log) writeSnapshotLocked(jobs []JobMeta, abandoned map[string][]string, budgetExhausted []string, store *Store, through uint64) error {
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	if err := writeSnapshot(f, store, jobs, abandoned, budgetExhausted, through); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.timedSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing data dir: %w", err)
	}
	return nil
}

// Close drains the commit window, then flushes and fsyncs the active
// segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.qcond.Broadcast()
	l.mu.Unlock()
	if l.done != nil {
		<-l.done // committer commits every queued append before exiting
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return nil
	}
	flushErr := l.w.Flush()
	syncErr := l.timedSync(l.f)
	closeErr := l.f.Close()
	l.f = nil
	if flushErr != nil {
		return fmt.Errorf("storage: flushing WAL on close: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("storage: syncing WAL on close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("storage: closing WAL: %w", closeErr)
	}
	return nil
}

// AppendJobSubmitted logs a job submission (id, user-facing name and the
// normalized program source the candidate surface is rebuilt from).
func (l *Log) AppendJobSubmitted(jobID, name, program string) error {
	return l.Append(Event{Type: EventJobSubmitted, Job: jobID, Name: name, Program: program})
}

// AppendExampleFed logs a fed supervision example under its assigned id.
func (l *Log) AppendExampleFed(jobID string, exampleID int, input, output []float64) error {
	return l.Append(Event{Type: EventExampleFed, Job: jobID, Example: exampleID, Input: input, Output: output})
}

// AppendExampleRefined logs an example's refine toggle.
func (l *Log) AppendExampleRefined(jobID string, exampleID int, enabled bool) error {
	return l.Append(Event{Type: EventExampleRefined, Job: jobID, Example: exampleID, Enabled: enabled})
}

// AppendModelRecorded logs a completed training run (a settled lease).
func (l *Log) AppendModelRecorded(jobID string, rec ModelRecord) error {
	m := rec
	return l.Append(Event{Type: EventModelRecorded, Job: jobID, Model: &m})
}

// AppendCandidateAbandoned logs a candidate retired after repeated failures.
func (l *Log) AppendCandidateAbandoned(jobID, candidate string) error {
	return l.Append(Event{Type: EventCandidateAbandoned, Job: jobID, Candidate: candidate})
}

// AppendLeaseExpired logs a lease reclaimed from a silent worker; the arm
// re-enters selection in memory, so only the history needs the log.
func (l *Log) AppendLeaseExpired(jobID, candidate, worker string) error {
	return l.Append(Event{Type: EventLeaseExpired, Job: jobID, Candidate: candidate, Worker: worker})
}

// AppendLeasePreempted logs a lease reclaimed to make room for
// higher-priority work (by names the demanding job); like expiry, the arm
// re-enters selection in memory and only the history needs the log.
func (l *Log) AppendLeasePreempted(jobID, candidate, worker, by string) error {
	return l.Append(Event{Type: EventLeasePreempted, Job: jobID, Candidate: candidate, Worker: worker, By: by})
}

// AppendBudgetExhausted logs a job drained because its tenant's GPU cost
// budget ran out (cost is the tenant's cumulative spend at that moment).
// Recovery re-retires the job's remaining candidates, so a restarted
// process agrees the job is done training.
func (l *Log) AppendBudgetExhausted(jobID, tenant string, cost float64) error {
	return l.Append(Event{Type: EventBudgetExhausted, Job: jobID, Tenant: tenant, Cost: cost})
}
