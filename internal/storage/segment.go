package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout. The WAL is a sequence of fixed-size-ish JSONL
// segments named by the first sequence number they may hold:
//
//	wal-0000000000000001.jsonl   (sealed)
//	wal-0000000000004096.jsonl   (sealed)
//	wal-0000000000008210.jsonl   (active, appended to)
//
// The name is an ordering key and a lower bound, not a promise that the
// first record carries exactly that seq: compaction may drop a covered
// prefix of events without renaming, and a fresh segment opened after a
// full compaction is named lastWritten+1 before anything is appended.
// Replay therefore never trusts names for anything but ordering; the
// per-record seq field is authoritative.
//
// Recycled files (recycled-<origin>.seg) are retired segments kept around,
// truncated to zero, for the next roll to rename back into service —
// segment reuse instead of delete/create keeps directory churn constant
// under sustained load. They deliberately do not match the wal-*.jsonl
// glob, so recovery never replays one. There is no physical preallocation:
// extending a recycled file with zeros would read back as a corrupt JSONL
// record, so recycling here saves the create/unlink metadata traffic only.
const (
	segmentPrefix = "wal-"
	segmentSuffix = ".jsonl"
	segmentSeqLen = 16 // zero-padded decimal digits in the name

	legacyWALFile = "wal.jsonl"

	recyclePrefix = "recycled-"
	recycleSuffix = ".seg"
	maxRecycled   = 2 // pool cap; beyond this, retired segments are unlinked
)

// segmentInfo is one segment's identity: the seq lower bound from its
// name, the highest event seq actually stored (0 for an empty segment),
// and its path.
type segmentInfo struct {
	first uint64
	last  uint64
	path  string
}

// segmentFileName renders the canonical name for a segment whose events
// all have seq >= first.
func segmentFileName(first uint64) string {
	return fmt.Sprintf("%s%0*d%s", segmentPrefix, segmentSeqLen, first, segmentSuffix)
}

// parseSegmentName extracts the seq lower bound from a segment file name,
// or reports that the name is not a segment's.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := name[len(segmentPrefix) : len(name)-len(segmentSuffix)]
	if len(mid) != segmentSeqLen {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's WAL segments ordered by their seq
// lower bound; last values are zero until replay fills them in.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing WAL segments: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{first: first, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// listRecycled adopts the directory's recycled-segment pool, pruning it
// down to the cap (extras are leftovers from a crash mid-recycle).
func listRecycled(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var pool []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, recyclePrefix) && strings.HasSuffix(name, recycleSuffix) {
			pool = append(pool, filepath.Join(dir, name))
		}
	}
	sort.Strings(pool)
	for len(pool) > maxRecycled {
		os.Remove(pool[len(pool)-1])
		pool = pool[:len(pool)-1]
	}
	return pool
}

// migrateLegacyWAL renames a pre-segmentation wal.jsonl into segment form
// so one recovery path serves both layouts. The segment is named by the
// first event's seq (falling back to the snapshot horizon + 1 for an
// empty or torn-at-the-first-line file — the name only has to order
// correctly, and there are no other segments to order against).
func migrateLegacyWAL(dir string, lastSeq uint64) error {
	path := filepath.Join(dir, legacyWALFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: reading legacy WAL: %w", err)
	}
	first := lastSeq + 1
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(line, &ev) == nil && ev.Seq > 0 {
			first = ev.Seq
		}
		break // only the first non-blank line decides the name
	}
	dst := filepath.Join(dir, segmentFileName(first))
	if _, serr := os.Stat(dst); serr == nil {
		return fmt.Errorf("storage: both legacy %s and segment %s present", legacyWALFile, filepath.Base(dst))
	}
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("storage: migrating legacy WAL: %w", err)
	}
	return syncDir(dir)
}
