package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	tsA, _ := s.CreateTask("a")
	id1 := tsA.Feed([]float64{1, 2}, []float64{0})
	id2 := tsA.Feed([]float64{3}, []float64{1})
	if err := tsA.Refine(id2, false); err != nil {
		t.Fatal(err)
	}
	tsA.RecordModel(ModelRecord{Name: "AlexNet", Accuracy: 0.6, Cost: 2, Round: 1})
	tsA.RecordModel(ModelRecord{Name: "ResNet", Accuracy: 0.8, Cost: 5, Round: 2})
	tsB, _ := s.CreateTask("b")
	tsB.Feed([]float64{9}, []float64{9})

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	ids := restored.TaskIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("TaskIDs = %v", ids)
	}
	ra, _ := restored.Task("a")
	exs := ra.Examples()
	if len(exs) != 2 {
		t.Fatalf("%d examples", len(exs))
	}
	if !exs[0].Enabled || exs[1].Enabled {
		t.Errorf("refine state lost: %+v", exs)
	}
	if exs[0].Input[1] != 2 {
		t.Errorf("payload lost: %+v", exs[0])
	}
	best, ok := ra.Best()
	if !ok || best.Name != "ResNet" || best.Accuracy != 0.8 {
		t.Errorf("best lost: %+v", best)
	}
	if len(ra.Models()) != 2 {
		t.Errorf("model history lost")
	}
	// New feeds continue the id sequence without collision.
	if next := ra.Feed([]float64{5}, []float64{5}); next <= id2 || next <= id1 {
		t.Errorf("id sequence regressed: %d", next)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.TaskIDs()) != 0 {
		t.Error("phantom tasks after empty round trip")
	}
}

func TestLoadStoreErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":     "not json",
		"bad version": `{"version": 99, "tasks": {}}`,
		"bad example": `{"version": 1, "tasks": {"a": {"next_id": 1, "examples": [{"ID": 0}]}}}`,
	}
	for name, data := range cases {
		if _, err := LoadStore(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSnapshotIsDeterministicJSON(t *testing.T) {
	s := NewStore()
	ts, _ := s.CreateTask("x")
	ts.Feed([]float64{1}, []float64{2})
	var a, b bytes.Buffer
	if err := s.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots of unchanged store differ")
	}
}
