package storage

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestFeedAssignsSequentialIDs(t *testing.T) {
	ts := NewTaskStore()
	id1 := ts.Feed([]float64{1}, []float64{0})
	id2 := ts.Feed([]float64{2}, []float64{1})
	if id1 != 1 || id2 != 2 {
		t.Errorf("ids %d,%d, want 1,2", id1, id2)
	}
	exs := ts.Examples()
	if len(exs) != 2 {
		t.Fatalf("%d examples", len(exs))
	}
	if !exs[0].Enabled || !exs[1].Enabled {
		t.Error("fresh examples should be enabled")
	}
	if exs[0].Input[0] != 1 || exs[1].Output[0] != 1 {
		t.Error("payload mismatch")
	}
}

func TestFeedCopiesPayload(t *testing.T) {
	ts := NewTaskStore()
	in := []float64{1, 2}
	ts.Feed(in, []float64{0})
	in[0] = 99
	if ts.Examples()[0].Input[0] != 1 {
		t.Error("Feed aliases caller slice")
	}
}

func TestRefine(t *testing.T) {
	ts := NewTaskStore()
	id := ts.Feed([]float64{1}, []float64{0})
	ts.Feed([]float64{2}, []float64{1})
	if err := ts.Refine(id, false); err != nil {
		t.Fatal(err)
	}
	if got := ts.EnabledCount(); got != 1 {
		t.Errorf("EnabledCount = %d, want 1", got)
	}
	if err := ts.Refine(id, true); err != nil {
		t.Fatal(err)
	}
	if got := ts.EnabledCount(); got != 2 {
		t.Errorf("EnabledCount = %d, want 2", got)
	}
	if err := ts.Refine(999, false); err == nil {
		t.Error("Refine of unknown id should fail")
	}
}

func TestRecordModelTracksBest(t *testing.T) {
	ts := NewTaskStore()
	if _, ok := ts.Best(); ok {
		t.Error("empty store has a best model")
	}
	ts.RecordModel(ModelRecord{Name: "AlexNet", Accuracy: 0.60, Round: 1})
	ts.RecordModel(ModelRecord{Name: "ResNet", Accuracy: 0.75, Round: 2})
	ts.RecordModel(ModelRecord{Name: "NIN", Accuracy: 0.62, Round: 3})
	best, ok := ts.Best()
	if !ok || best.Name != "ResNet" || best.Accuracy != 0.75 {
		t.Errorf("Best = %+v", best)
	}
	if got := len(ts.Models()); got != 3 {
		t.Errorf("%d models recorded", got)
	}
	// Models() must be a copy.
	ms := ts.Models()
	ms[0].Name = "tampered"
	if ts.Models()[0].Name != "AlexNet" {
		t.Error("Models aliases internal state")
	}
}

func TestStoreTaskLifecycle(t *testing.T) {
	s := NewStore()
	ts, err := s.CreateTask("a")
	if err != nil || ts == nil {
		t.Fatalf("CreateTask: %v", err)
	}
	if _, err := s.CreateTask("a"); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, ok := s.Task("a"); !ok {
		t.Error("task not found")
	}
	if _, ok := s.Task("missing"); ok {
		t.Error("phantom task found")
	}
	if _, err := s.CreateTask("b"); err != nil {
		t.Fatal(err)
	}
	ids := s.TaskIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("TaskIDs = %v", ids)
	}
}

// Concurrency: hammer one task store from many goroutines; run with -race.
func TestConcurrentAccess(t *testing.T) {
	ts := NewTaskStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ts.Feed([]float64{float64(g)}, []float64{float64(i)})
				_ = ts.Refine(id, i%2 == 0)
				ts.RecordModel(ModelRecord{Name: "m", Accuracy: float64(i) / 50})
				ts.Examples()
				ts.Best()
				ts.EnabledCount()
			}
		}(g)
	}
	wg.Wait()
	if got := len(ts.Examples()); got != 400 {
		t.Errorf("%d examples after concurrent feed, want 400", got)
	}
}

// Property: after an arbitrary refine sequence, EnabledCount equals the
// number of examples whose last toggle was "on".
func TestQuickRefineConsistency(t *testing.T) {
	f := func(toggles []bool) bool {
		ts := NewTaskStore()
		const n = 5
		for i := 0; i < n; i++ {
			ts.Feed([]float64{float64(i)}, nil)
		}
		state := [n]bool{true, true, true, true, true}
		for i, on := range toggles {
			id := i%n + 1
			if err := ts.Refine(id, on); err != nil {
				return false
			}
			state[id-1] = on
		}
		want := 0
		for _, on := range state {
			if on {
				want++
			}
		}
		return ts.EnabledCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
