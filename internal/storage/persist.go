package storage

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot/Load give the shared store crash-restart durability: the server
// can checkpoint all fed examples, refine states and completed model records
// to a writer (typically a file on the 100 TB shared storage of Figure 1)
// and restore them on startup.

// storeSnapshot is the JSON wire format of a Store.
type storeSnapshot struct {
	Version int                     `json:"version"`
	Tasks   map[string]taskSnapshot `json:"tasks"`
}

type taskSnapshot struct {
	NextID   int           `json:"next_id"`
	Examples []Example     `json:"examples"`
	Models   []ModelRecord `json:"models"`
}

const snapshotVersion = 1

// Snapshot serializes the whole store as JSON.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	taskIDs := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		taskIDs = append(taskIDs, id)
	}
	s.mu.RUnlock()

	snap := storeSnapshot{Version: snapshotVersion, Tasks: make(map[string]taskSnapshot, len(taskIDs))}
	for _, id := range taskIDs {
		ts, ok := s.Task(id)
		if !ok {
			continue // task removed concurrently; snapshot what remains
		}
		// Collect examples sorted by id without re-entering the task lock
		// (RWMutex read locks must not nest: a queued writer would deadlock
		// the second acquisition).
		exs := ts.Examples()
		ts.mu.RLock()
		t := taskSnapshot{NextID: ts.nextID, Examples: exs}
		t.Models = append(t.Models, ts.models...)
		ts.mu.RUnlock()
		snap.Tasks[id] = t
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	return nil
}

// LoadStore reconstructs a store from a Snapshot stream.
func LoadStore(r io.Reader) (*Store, error) {
	var snap storeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("storage: unsupported snapshot version %d", snap.Version)
	}
	s := NewStore()
	for id, t := range snap.Tasks {
		ts, err := s.CreateTask(id)
		if err != nil {
			return nil, err
		}
		ts.mu.Lock()
		for _, ex := range t.Examples {
			if ex.ID <= 0 {
				ts.mu.Unlock()
				return nil, fmt.Errorf("storage: task %q has example with invalid id %d", id, ex.ID)
			}
			cp := ex
			ts.examples[ex.ID] = &cp
		}
		ts.nextID = t.NextID
		// nextID must stay ahead of every restored example.
		for eid := range ts.examples {
			if eid >= ts.nextID {
				ts.nextID = eid + 1
			}
		}
		for _, m := range t.Models {
			ts.models = append(ts.models, m)
			if ts.best == nil || m.Accuracy > ts.best.Accuracy {
				cp := m
				ts.best = &cp
			}
		}
		ts.mu.Unlock()
	}
	return s, nil
}
