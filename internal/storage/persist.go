package storage

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot/Load give the shared store crash-restart durability: the server
// can checkpoint all fed examples, refine states and completed model records
// to a writer (typically a file on the 100 TB shared storage of Figure 1)
// and restore them on startup. With a write-ahead log attached (see wal.go),
// the snapshot is the compaction target: it additionally records the job
// registry, the abandoned-candidate sets and the WAL sequence number it
// covers, so boot-time recovery replays only the log's tail.

// storeSnapshot is the JSON wire format of a Store. Version 1 carried tasks
// only; version 2 adds the WAL-compaction metadata (jobs, abandoned,
// last_seq); version 3 adds the budget-exhausted job set. All versions
// load.
type storeSnapshot struct {
	Version   int                     `json:"version"`
	Tasks     map[string]taskSnapshot `json:"tasks"`
	Jobs      []JobMeta               `json:"jobs,omitempty"`
	Abandoned map[string][]string     `json:"abandoned,omitempty"`
	// BudgetExhausted lists jobs drained by tenant budget exhaustion;
	// compaction must fold the WAL's budget_exhausted events in here or a
	// compacted-then-restarted process would resume training them.
	BudgetExhausted []string `json:"budget_exhausted,omitempty"`
	LastSeq         uint64   `json:"last_seq,omitempty"`
}

type taskSnapshot struct {
	NextID   int           `json:"next_id"`
	Examples []Example     `json:"examples"`
	Models   []ModelRecord `json:"models"`
}

const snapshotVersion = 3

// Snapshot serializes the whole store as JSON (tasks only — the legacy
// checkpoint surface of GET /admin/snapshot). The WAL compaction path uses
// writeSnapshot, which adds the job registry and sequence horizon.
func (s *Store) Snapshot(w io.Writer) error {
	return writeSnapshot(w, s, nil, nil, nil, 0)
}

// writeSnapshot serializes the store plus compaction metadata.
func writeSnapshot(w io.Writer, s *Store, jobs []JobMeta, abandoned map[string][]string, budgetExhausted []string, lastSeq uint64) error {
	s.mu.RLock()
	taskIDs := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		taskIDs = append(taskIDs, id)
	}
	s.mu.RUnlock()

	snap := storeSnapshot{
		Version:         snapshotVersion,
		Tasks:           make(map[string]taskSnapshot, len(taskIDs)),
		Jobs:            jobs,
		Abandoned:       abandoned,
		BudgetExhausted: budgetExhausted,
		LastSeq:         lastSeq,
	}
	for _, id := range taskIDs {
		ts, ok := s.Task(id)
		if !ok {
			continue // task removed concurrently; snapshot what remains
		}
		// Collect examples sorted by id without re-entering the task lock
		// (RWMutex read locks must not nest: a queued writer would deadlock
		// the second acquisition).
		exs := ts.Examples()
		ts.mu.RLock()
		t := taskSnapshot{NextID: ts.nextID, Examples: exs}
		t.Models = append(t.Models, ts.models...)
		ts.mu.RUnlock()
		snap.Tasks[id] = t
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	return nil
}

// LoadStore reconstructs a store from a Snapshot stream.
func LoadStore(r io.Reader) (*Store, error) {
	s, _, _, _, _, err := loadSnapshot(r)
	return s, err
}

// loadSnapshot reconstructs a store plus the compaction metadata from a
// snapshot stream. Version-1 snapshots load with empty metadata.
func loadSnapshot(r io.Reader) (*Store, []JobMeta, map[string][]string, []string, uint64, error) {
	var snap storeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, nil, nil, nil, 0, fmt.Errorf("storage: load: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, nil, nil, nil, 0, fmt.Errorf("storage: unsupported snapshot version %d", snap.Version)
	}
	s := NewStore()
	for id, t := range snap.Tasks {
		ts, err := s.CreateTask(id)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		ts.mu.Lock()
		for _, ex := range t.Examples {
			if ex.ID <= 0 {
				ts.mu.Unlock()
				return nil, nil, nil, nil, 0, fmt.Errorf("storage: task %q has example with invalid id %d", id, ex.ID)
			}
			cp := ex
			ts.examples[ex.ID] = &cp
		}
		ts.nextID = t.NextID
		// nextID must stay ahead of every restored example.
		for eid := range ts.examples {
			if eid >= ts.nextID {
				ts.nextID = eid + 1
			}
		}
		for _, m := range t.Models {
			ts.models = append(ts.models, m)
			if ts.best == nil || m.Accuracy > ts.best.Accuracy {
				cp := m
				ts.best = &cp
			}
		}
		ts.mu.Unlock()
	}
	return s, snap.Jobs, snap.Abandoned, snap.BudgetExhausted, snap.LastSeq, nil
}
