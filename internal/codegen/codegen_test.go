package codegen

import (
	"strings"
	"testing"

	"repro/internal/dsl"
)

func TestJuliaTypesImageClassification(t *testing.T) {
	p := dsl.MustParse("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}")
	got := JuliaTypes(p)
	for _, want := range []string{
		"type Input",
		"field1 :: Tensor[256, 256, 3]",
		"type Output",
		"field1 :: Tensor[1000]",
		"end",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "Nullable") {
		t.Errorf("non-recursive type mentions Nullable:\n%s", got)
	}
}

func TestJuliaTypesTimeSeries(t *testing.T) {
	p := dsl.MustParse("{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}")
	got := JuliaTypes(p)
	if !strings.Contains(got, "next :: Nullable{Input}") {
		t.Errorf("missing recursive input field:\n%s", got)
	}
	if !strings.Contains(got, "next :: Nullable{Output}") {
		t.Errorf("missing recursive output field:\n%s", got)
	}
}

func TestJuliaTypesNamedAndAutoFields(t *testing.T) {
	p := dsl.MustParse("{input: {[data :: Tensor[4], Tensor[2]], []}, output: {[Tensor[1]], []}}")
	got := JuliaTypes(p)
	if !strings.Contains(got, "data :: Tensor[4]") {
		t.Errorf("named field lost:\n%s", got)
	}
	if !strings.Contains(got, "field1 :: Tensor[2]") {
		t.Errorf("anonymous field not auto-named:\n%s", got)
	}
}

func TestJuliaTypesAutoNameAvoidsCollision(t *testing.T) {
	p := dsl.MustParse("{input: {[field1 :: Tensor[4], Tensor[2]], []}, output: {[Tensor[1]], []}}")
	got := JuliaTypes(p)
	if !strings.Contains(got, "field2 :: Tensor[2]") {
		t.Errorf("auto name collided with explicit field1:\n%s", got)
	}
}

func TestBinaries(t *testing.T) {
	bins := Binaries("task-42", "http://easeml:9000")
	if len(bins) != 3 {
		t.Fatalf("%d binaries, want feed/refine/infer", len(bins))
	}
	names := map[string]bool{}
	for _, b := range bins {
		names[b.Name] = true
		if b.TaskID != "task-42" || b.Server != "http://easeml:9000" {
			t.Errorf("binary %q missing identity: %+v", b.Name, b)
		}
		if b.Usage == "" {
			t.Errorf("binary %q has no usage", b.Name)
		}
	}
	for _, want := range []string{"feed", "refine", "infer"} {
		if !names[want] {
			t.Errorf("missing binary %q", want)
		}
	}
}

func TestPythonLibrary(t *testing.T) {
	p := dsl.MustParse("{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[2]], []}}")
	got := PythonLibrary("myapp", "http://localhost:9000", p)
	for _, want := range []string{
		`TASK_ID = "myapp"`,
		`SERVER = "http://localhost:9000"`,
		"I = [256, 256, 3]",
		"O = [2]",
		"def feed(",
		"def refine(",
		"def f(",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("python library missing %q", want)
		}
	}
}
