package telemetry

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
)

// TraceHeader is the wire contract for trace propagation: every HTTP
// surface (service API, fleet protocol) reads it on the way in, stamps it
// on the way out, and the fleet client forwards it on every request it
// makes on behalf of a traced operation. The value is an opaque lowercase
// hex token minted by NewTraceID.
const TraceHeader = "X-Easeml-Trace"

type traceCtxKey struct{}

// NewTraceID mints a 16-hex-char trace ID. It draws from the runtime's
// per-P random source, so minting on the pick path (one ID per lease)
// costs no synchronization.
func NewTraceID() string { return hex64(rand.Uint64()) }

// NewSpanID mints an 8-hex-char span ID for sub-operations under a trace.
func NewSpanID() string { return hex64(rand.Uint64())[:8] }

func hex64(v uint64) string {
	const width = 16
	s := strconv.FormatUint(v, 16)
	if len(s) >= width {
		return s
	}
	buf := make([]byte, width)
	for i := 0; i < width-len(s); i++ {
		buf[i] = '0'
	}
	copy(buf[width-len(s):], s)
	return string(buf)
}

// ValidTraceID bounds what we accept off the wire: 1–64 chars of
// [0-9a-zA-Z_-]. Anything else is dropped and replaced with a fresh ID,
// so a hostile header never lands verbatim in logs or responses.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// WithTraceID returns ctx carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// EnsureTraceID returns ctx carrying a trace ID, minting one if absent.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// TraceFromRequest extracts the inbound trace ID from r's X-Easeml-Trace
// header (minting one when absent or invalid) and returns a context
// carrying it. Handlers thread the returned context through their work so
// downstream logs and outbound calls share the request's trace.
func TraceFromRequest(r *http.Request) (context.Context, string) {
	if id := r.Header.Get(TraceHeader); ValidTraceID(id) {
		return WithTraceID(r.Context(), id), id
	}
	id := NewTraceID()
	return WithTraceID(r.Context(), id), id
}

// SetTraceHeader stamps the trace ID from ctx (if any) onto an outbound
// request or response header set.
func SetTraceHeader(h http.Header, ctx context.Context) {
	if id := TraceIDFrom(ctx); id != "" {
		h.Set(TraceHeader, id)
	}
}
