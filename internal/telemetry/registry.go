// Package telemetry is the zero-dependency observability layer shared by
// every process in the system: an atomic metrics registry (counters,
// gauges, sharded latency histograms) with Prometheus text exposition, a
// lightweight trace-ID scheme propagated over the X-Easeml-Trace header,
// slog construction helpers, and the slow-operation log.
//
// Design constraints, in order:
//
//   - Observation is lock-free. Counters and gauges are single atomic
//     words; histograms are sharded atomic bucket arrays. The pick path
//     and the WAL append path observe on every operation, so an Observe
//     must cost nanoseconds and never contend with a scrape.
//   - Registration is idempotent (get-or-create by name). Metrics are
//     process-global aggregates: a test that builds three schedulers
//     shares one family rather than panicking on re-registration.
//   - No third-party imports. Exposition is the Prometheus text format
//     written by hand; nothing here links against a client library.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type as it appears in the # TYPE line.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metricNameRE is the registry's naming contract: lower snake_case, as
// tools/metriclint also enforces statically.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Registry holds metric families keyed by name. Registration takes the
// registry lock once per family; observation never touches it.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// family is one named metric family: a scalar (no labels, one child under
// the empty key) or a vector (children keyed by joined label values).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.RWMutex
	children map[string]any
	order    []string
}

// NewRegistry creates an empty registry. Most callers want Default().
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-global registry every instrumented package
// registers into and GET /metrics exposes.
func Default() *Registry { return defaultRegistry }

// register gets or creates a family, panicking on a name that violates
// the snake_case contract or a redefinition with a different shape —
// both are programming errors, not runtime conditions.
func (r *Registry) register(name, help string, kind Kind, labels []string) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not snake_case", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, children: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the family's child for the given label values, creating
// it with mk on first use. The read path is an RLock and a map hit.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter registers (or finds) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels)}
}

// Gauge registers (or finds) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels)}
}

// Histogram registers (or finds) a scalar latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, KindHistogram, nil)
	return f.child(nil, func() any { return newHistogram() }).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels)}
}

// ValueHistogram registers (or finds) a scalar unit-valued histogram
// (power-of-two buckets over plain counts — batch sizes, queue depths —
// instead of nanoseconds).
func (r *Registry) ValueHistogram(name, help string) *ValueHistogram {
	f := r.register(name, help, KindHistogram, nil)
	return f.child(nil, func() any { return newValueHistogram() }).(*ValueHistogram)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram() }).(*Histogram)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Histogram families additionally export derived
// <name>_p50/_p95/_p99 gauge families so dashboards (and the acceptance
// tests) can read exact-bucket quantiles without a query engine.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.write(w)
	}
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()

	WriteMetricHeader(w, f.name, f.help, string(f.kind))
	for i, key := range keys {
		labels := f.renderLabels(key, "")
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(c.Value()))
		case *Histogram:
			c.writeBuckets(w, f.name, f, key)
		case *ValueHistogram:
			c.writeBuckets(w, f.name, f, key)
		}
	}
	if f.kind == KindHistogram {
		f.writeQuantiles(w, keys, children)
	}
}

// writeQuantiles emits the derived quantile gauge families for a
// histogram family: one family per quantile, children matching the
// histogram's label sets.
func (f *family) writeQuantiles(w io.Writer, keys []string, children []any) {
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
		name := f.name + q.suffix
		WriteMetricHeader(w, name, fmt.Sprintf("Exact-bucket q=%g of %s.", q.q, f.name), string(KindGauge))
		for i, key := range keys {
			var v float64
			switch h := children[i].(type) {
			case *Histogram:
				v = h.Quantile(q.q).Seconds()
			case *ValueHistogram:
				v = h.Quantile(q.q)
			}
			fmt.Fprintf(w, "%s%s %s\n", name, f.renderLabels(key, ""), formatFloat(v))
		}
	}
}

// renderLabels formats a child's label set, optionally with one extra
// pair (the histogram bucket's le) appended.
func (f *family) renderLabels(key, extra string) string {
	if len(f.labels) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	if len(f.labels) > 0 {
		values := strings.Split(key, "\xff")
		for i, l := range f.labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		if extra != "" {
			sb.WriteByte(',')
		}
	}
	sb.WriteString(extra)
	sb.WriteByte('}')
	return sb.String()
}

// EscapeLabelValue escapes a label value for hand-rendered sample lines
// (the server's scrape-time dynamic gauges use it for tenant names).
func EscapeLabelValue(v string) string { return escapeLabel(v) }

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetricHeader writes the # HELP / # TYPE preamble for one family.
// Exported so the server can append dynamically-computed gauges (job
// counts, selection stats) to the same exposition stream at scrape time.
func WriteMetricHeader(w io.Writer, name, help, kind string) {
	help = strings.ReplaceAll(help, "\n", " ")
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// WriteGauge writes one gauge sample line (with optional rendered label
// block, e.g. `{state="alive"}`) for dynamically-computed exposition.
func WriteGauge(w io.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v))
}

// Sorted returns the registry's family names in registration order —
// used by tests and debugging, not by the exposition path.
func (r *Registry) Sorted() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}
