package telemetry

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// mkSpan builds a finished SpanData for direct Recorder.Record tests.
func mkSpan(trace, span, parent, op string, attrs map[string]string) SpanData {
	return SpanData{
		TraceID: trace, SpanID: span, ParentID: parent, Op: op,
		StartNS: 1_000_000, DurationNS: 1000, Attrs: attrs,
	}
}

func TestSpanOpRegistryAndContract(t *testing.T) {
	name := SpanOp("span_test_op")
	found := false
	for _, op := range RegisteredSpanOps() {
		if op == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredSpanOps missing %q: %v", name, RegisteredSpanOps())
	}
	for _, bad := range []string{"Not-Snake", "UPPER", "1leading", "spa ce", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SpanOp(%q) did not panic", bad)
				}
			}()
			SpanOp(bad)
		}()
	}
}

func TestSpanLifecycle(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "span_test_root")
	if root.TraceID() == "" || !ValidTraceID(root.TraceID()) {
		t.Fatalf("root span has invalid trace ID %q", root.TraceID())
	}
	if SpanFrom(ctx) != root {
		t.Fatal("StartSpan did not install the span in the context")
	}
	_, child := StartSpan(ctx, "span_test_child")
	if child.Data().ParentID != root.ID() {
		t.Fatalf("child parent = %q, want root %q", child.Data().ParentID, root.ID())
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root trace %q", child.TraceID(), root.TraceID())
	}

	root.SetAttr("k", "v")
	root.Fail(nil) // nil error is a no-op
	if d := root.Data(); d.Attrs["k"] != "v" || d.Err != "" {
		t.Fatalf("attrs/err after SetAttr+Fail(nil): %+v", d)
	}
	root.Fail(fmt.Errorf("boom"))
	start := root.Data().Start()
	root.EndAt(start.Add(5 * time.Millisecond))
	root.EndAt(start.Add(time.Hour)) // idempotent: second End ignored
	root.SetAttr("late", "x")        // no-op after End
	d := root.Data()
	if d.Duration() != 5*time.Millisecond {
		t.Fatalf("duration = %v, want 5ms (second EndAt must not win)", d.Duration())
	}
	if d.Err != "boom" || d.Attrs["late"] != "" {
		t.Fatalf("post-End mutation leaked: %+v", d)
	}

	// EndAt before start clamps to zero rather than a negative duration.
	s := NewSpanAt(NewTraceID(), "", "span_test_root", time.Now())
	s.EndAt(time.Now().Add(-time.Second))
	if s.Data().DurationNS != 0 {
		t.Fatalf("negative duration not clamped: %d", s.Data().DurationNS)
	}
}

func TestRecorderWrapAndTailSampling(t *testing.T) {
	r := NewRecorder(4)
	if r.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", r.Capacity())
	}
	// A boring span on trace B lands in the main ring only.
	r.Record(mkSpan("bbbbbbbbbbbbbbbb", "b1", "", "span_test_root", nil))
	// A failed span flags trace B: the sweep rescues b1 into the retained
	// ring even though only the main ring held it so far.
	r.Record(SpanData{TraceID: "bbbbbbbbbbbbbbbb", SpanID: "b2", Op: "span_test_child",
		StartNS: 2_000_000, DurationNS: 1, Err: "exploded"})
	// Boring traffic wraps the 4-slot main ring several times over.
	for i := 0; i < 16; i++ {
		r.Record(mkSpan("aaaaaaaaaaaaaaaa", fmt.Sprintf("a%d", i), "", "span_test_root", nil))
	}
	spans, ok := r.Trace("bbbbbbbbbbbbbbbb")
	if !ok || len(spans) != 2 {
		t.Fatalf("flagged trace lost to ring wrap: ok=%v spans=%v", ok, spans)
	}
	if spans[0].SpanID != "b1" || spans[1].SpanID != "b2" {
		t.Fatalf("trace spans out of order: %v", spans)
	}
	// A later span of the already-flagged trace goes straight to retained.
	r.Record(mkSpan("bbbbbbbbbbbbbbbb", "b3", "b2", "span_test_child", nil))
	if spans, _ := r.Trace("bbbbbbbbbbbbbbbb"); len(spans) != 3 {
		t.Fatalf("follow-up span of flagged trace not retained: %v", spans)
	}
	// The boring trace kept only what survives 4 slots.
	if spans, ok := r.Trace("aaaaaaaaaaaaaaaa"); !ok || len(spans) > 4 {
		t.Fatalf("unflagged trace: ok=%v spans=%d, want <=4 survivors", ok, len(spans))
	}
}

func TestRecorderRetainsBadOutcomesAndSlowSpans(t *testing.T) {
	r := NewRecorder(8)
	for _, outcome := range []string{"failed", "preempted", "expired", "abandoned", "conflict", "error"} {
		trace := (outcome + strings.Repeat("0", 16))[:16]
		r.Record(mkSpan(trace, "s-"+outcome, "", "span_test_root", map[string]string{"outcome": outcome}))
	}
	// Boring traffic wraps the 8-slot main ring; the retained ring still
	// holds every bad-outcome trace.
	for i := 0; i < 16; i++ {
		r.Record(mkSpan("0123456789abcdef", fmt.Sprintf("w%d", i), "", "span_test_root", nil))
	}
	for _, outcome := range []string{"failed", "preempted", "expired", "abandoned", "conflict", "error"} {
		trace := (outcome + strings.Repeat("0", 16))[:16]
		if _, ok := r.Trace(trace); !ok {
			t.Errorf("bad-outcome %q trace evicted", outcome)
		}
	}
	// "completed" and "released" are healthy outcomes: not retained.
	r2 := NewRecorder(2)
	r2.Record(mkSpan("cccccccccccccccc", "c1", "", "span_test_root", map[string]string{"outcome": "completed"}))
	r2.Record(mkSpan("dddddddddddddddd", "d1", "", "span_test_root", map[string]string{"outcome": "released"}))
	r2.Record(mkSpan("eeeeeeeeeeeeeeee", "e1", "", "span_test_root", nil))
	r2.Record(mkSpan("ffffffffffffffff", "f1", "", "span_test_root", nil))
	if _, ok := r2.Trace("cccccccccccccccc"); ok {
		t.Error("healthy completed trace survived ring wrap — was it retained?")
	}

	// Slow spans retain their trace once the slow-op threshold is armed.
	oldT := SlowOpThreshold()
	defer SetSlowOpThreshold(oldT)
	SetSlowOpThreshold(time.Millisecond)
	r3 := NewRecorder(2)
	slow := mkSpan("1111111111111111", "s1", "", "span_test_root", nil)
	slow.DurationNS = int64(5 * time.Millisecond)
	r3.Record(slow)
	r3.Record(mkSpan("2222222222222222", "x1", "", "span_test_root", nil))
	r3.Record(mkSpan("2222222222222222", "x2", "", "span_test_root", nil))
	if _, ok := r3.Trace("1111111111111111"); !ok {
		t.Error("slow trace evicted despite tail sampling")
	}
}

func TestRecorderSetCapacityResets(t *testing.T) {
	r := NewRecorder(8)
	r.Record(mkSpan("abababababababab", "s1", "", "span_test_root", nil))
	r.SetCapacity(16)
	if r.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", r.Capacity())
	}
	if _, ok := r.Trace("abababababababab"); ok {
		t.Fatal("SetCapacity kept old spans; rings must be discarded")
	}
	r.SetCapacity(0)
	if r.Capacity() != DefaultTraceBuffer {
		t.Fatalf("SetCapacity(0) gave %d, want default %d", r.Capacity(), DefaultTraceBuffer)
	}
}

func TestTracesListingAndFilters(t *testing.T) {
	r := NewRecorder(64)
	r.Record(SpanData{TraceID: "aaaa000000000000", SpanID: "ra", Op: "span_test_root",
		StartNS: 1_000, DurationNS: int64(2 * time.Millisecond),
		Attrs: map[string]string{"tenant": "alice", "job": "j1", "outcome": "completed"}})
	r.Record(SpanData{TraceID: "aaaa000000000000", SpanID: "ca", ParentID: "ra", Op: "span_test_child",
		StartNS: 1_500, DurationNS: 10})
	r.Record(SpanData{TraceID: "bbbb000000000000", SpanID: "rb", Op: "span_test_root",
		StartNS: 2_000, DurationNS: int64(50 * time.Millisecond),
		Attrs: map[string]string{"tenant": "bob", "job": "j2", "outcome": "failed"}})

	all := r.Traces(TraceFilter{})
	if len(all) != 2 {
		t.Fatalf("unfiltered listing has %d traces, want 2: %+v", len(all), all)
	}
	if all[0].TraceID != "bbbb000000000000" {
		t.Fatalf("listing not newest-first: %+v", all)
	}
	a := all[1]
	if a.Spans != 2 || a.RootOp != "span_test_root" || a.Tenant != "alice" || a.Job != "j1" || a.Outcome != "completed" {
		t.Fatalf("summary fields wrong: %+v", a)
	}
	if got := r.Traces(TraceFilter{Tenant: "bob"}); len(got) != 1 || got[0].TraceID != "bbbb000000000000" {
		t.Fatalf("tenant filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{Job: "j1"}); len(got) != 1 || got[0].TraceID != "aaaa000000000000" {
		t.Fatalf("job filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{Outcome: "failed"}); len(got) != 1 || got[0].TraceID != "bbbb000000000000" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{MinDuration: 10 * time.Millisecond}); len(got) != 1 || got[0].TraceID != "bbbb000000000000" {
		t.Fatalf("min-duration filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit ignored: %+v", got)
	}
	if _, ok := r.Trace("feedfeedfeedfeed"); ok {
		t.Fatal("unknown trace reported as known")
	}
}

func TestBuildSpanTree(t *testing.T) {
	spans := []SpanData{
		{TraceID: "t", SpanID: "root", Op: "span_test_root"},
		{TraceID: "t", SpanID: "c1", ParentID: "root", Op: "span_test_child"},
		{TraceID: "t", SpanID: "c2", ParentID: "c1", Op: "span_test_child"},
		// Parent overwritten in the ring (or never shipped): surfaces as a
		// second root instead of vanishing.
		{TraceID: "t", SpanID: "orphan", ParentID: "gone", Op: "span_test_child"},
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (root + orphan): %+v", len(roots), roots)
	}
	if roots[0].SpanID != "root" || len(roots[0].Children) != 1 {
		t.Fatalf("root node wrong: %+v", roots[0])
	}
	if roots[0].Children[0].SpanID != "c1" || len(roots[0].Children[0].Children) != 1 {
		t.Fatalf("nesting wrong: %+v", roots[0].Children[0])
	}
	if roots[1].SpanID != "orphan" {
		t.Fatalf("orphan not surfaced as root: %+v", roots[1])
	}
	// A self-parented span must not recurse into itself.
	weird := BuildSpanTree([]SpanData{{TraceID: "t", SpanID: "s", ParentID: "s", Op: "span_test_root"}})
	if len(weird) != 1 || len(weird[0].Children) != 0 {
		t.Fatalf("self-parented span mishandled: %+v", weird)
	}
}

func TestRecordStampsProcessName(t *testing.T) {
	old := processName.Load()
	defer processName.Store(old)
	SetProcessName("span-test-proc")
	r := NewRecorder(4)
	r.Record(mkSpan("9999999999999999", "p1", "", "span_test_root", nil))
	r.Record(SpanData{TraceID: "9999999999999999", SpanID: "p2", Op: "span_test_child",
		StartNS: 1, DurationNS: 1, Process: "worker:w0"})
	spans, _ := r.Trace("9999999999999999")
	byID := map[string]SpanData{}
	for _, sd := range spans {
		byID[sd.SpanID] = sd
	}
	if byID["p1"].Process != "span-test-proc" {
		t.Fatalf("local span process = %q, want stamped name", byID["p1"].Process)
	}
	if byID["p2"].Process != "worker:w0" {
		t.Fatalf("imported span process overwritten: %q", byID["p2"].Process)
	}
}
