package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers registration, observation and export
// from many goroutines at once; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("con_total", "h").Inc()
				r.CounterVec("con_by_code_total", "h", "code").With(fmt.Sprint(i % 3)).Inc()
				r.Gauge("con_gauge", "h").Set(float64(i))
				r.Histogram("con_seconds", "h").Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("con_total", "h").Value(); got != 8*500 {
		t.Fatalf("con_total = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("con_seconds", "h").Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	var sum uint64
	for _, code := range []string{"0", "1", "2"} {
		sum += r.CounterVec("con_by_code_total", "h", "code").With(code).Value()
	}
	if sum != 8*500 {
		t.Fatalf("labeled counters sum to %d, want %d", sum, 8*500)
	}
}

// TestHistogramQuantileReference checks the exact-bucket quantiles
// against a sorted reference: the reported quantile must be the upper
// bound of the bucket holding the true order statistic.
func TestHistogramQuantileReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHistogram()
	samples := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~100ns..1s, exercising most of the bucket range.
		d := time.Duration(100 * (1 << uint(rng.Intn(24))) * (1 + rng.Intn(9)))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		rank := int(q * float64(len(samples)))
		if float64(rank) < q*float64(len(samples)) {
			rank++
		}
		ref := samples[rank-1]
		want := time.Duration(bucketUpperNS(bucketIndex(ref)))
		if got := h.Quantile(q); got != want {
			t.Errorf("q=%g: got %v, want bucket upper %v (reference %v)", q, got, want, ref)
		}
		if got := h.Quantile(q); got < ref {
			t.Errorf("q=%g: quantile %v below sorted reference %v", q, got, ref)
		}
	}
	if h.Quantile(0.5) == 0 {
		t.Fatal("populated histogram reported zero p50")
	}
	if (&Histogram{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram should report 0")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// le semantics: a value equal to a bucket bound lands in that bucket.
	for i := 0; i < histBuckets; i++ {
		bound := time.Duration(histBase << uint(i))
		if got := bucketIndex(bound); got != i {
			t.Errorf("bucketIndex(%v) = %d, want %d", bound, got, i)
		}
		if i > 0 {
			if got := bucketIndex(bound + 1); got != i+1 && i+1 <= histBuckets {
				t.Errorf("bucketIndex(%v) = %d, want %d", bound+1, got, i+1)
			}
		}
	}
	if got := bucketIndex(time.Hour); got != histBuckets {
		t.Errorf("overflow bucket: got %d, want %d", got, histBuckets)
	}
}

func TestValueHistogram(t *testing.T) {
	// Bucket boundaries: le semantics over plain values, powers of two.
	for i := 0; i < histBuckets; i++ {
		bound := uint64(1) << uint(i)
		if got := valueBucketIndex(bound); got != i {
			t.Errorf("valueBucketIndex(%d) = %d, want %d", bound, got, i)
		}
	}
	if got := valueBucketIndex(3); got != 2 {
		t.Errorf("valueBucketIndex(3) = %d, want 2 (le 4)", got)
	}

	h := newValueHistogram()
	for _, v := range []uint64{1, 1, 2, 8, 64} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	if h.Sum() != 76 {
		t.Errorf("sum %d, want 76", h.Sum())
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 %g, want 2", got)
	}
	if got := h.Quantile(1); got != 64 {
		t.Errorf("p100 %g, want 64", got)
	}
	if (&ValueHistogram{}).Quantile(0.99) != 0 {
		t.Error("empty value histogram should report 0")
	}

	// Exposition: integer le bounds, integer sum, derived quantile gauges.
	r := NewRegistry()
	vh := r.ValueHistogram("vh_batch", "a value histogram")
	vh.Observe(3)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE vh_batch histogram",
		`vh_batch_bucket{le="1"} 0`,
		`vh_batch_bucket{le="4"} 1`,
		`vh_batch_bucket{le="+Inf"} 1`,
		"vh_batch_sum 3",
		"vh_batch_count 1",
		"# TYPE vh_batch_p50 gauge",
		"vh_batch_p50 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_total", "a counter").Add(3)
	r.GaugeVec("fmt_gauge", "a gauge", "state").With(`we"ird\`).Set(1.5)
	r.Histogram("fmt_seconds", "a histogram").Observe(time.Millisecond)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP fmt_total a counter",
		"# TYPE fmt_total counter",
		"fmt_total 3",
		`fmt_gauge{state="we\"ird\\"} 1.5`,
		"# TYPE fmt_seconds histogram",
		`fmt_seconds_bucket{le="+Inf"} 1`,
		"fmt_seconds_count 1",
		"# TYPE fmt_seconds_p99 gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "fmt_seconds_p99 ") {
		t.Errorf("exposition missing derived p99 sample:\n%s", out)
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("same_name_total", "h")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("same_name_total", "h") },
		"labels": func() { r.CounterVec("same_name_total", "h", "x") },
		"naming": func() { r.Counter("Not-Snake", "h") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Identical re-registration returns the same child.
	if r.Counter("same_name_total", "h2") != r.Counter("same_name_total", "h") {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two trace IDs collided: %s", a)
	}
	if len(a) != 16 || !ValidTraceID(a) {
		t.Fatalf("bad trace ID %q", a)
	}
	if ValidTraceID("") || ValidTraceID(strings.Repeat("a", 65)) || ValidTraceID("x y") {
		t.Fatal("ValidTraceID accepted junk")
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceIDFrom(ctx); got != a {
		t.Fatalf("TraceIDFrom = %q, want %q", got, a)
	}
	if _, id := EnsureTraceID(context.Background()); id == "" {
		t.Fatal("EnsureTraceID minted nothing")
	}
}

func TestInstrumentHTTP(t *testing.T) {
	r := NewRegistry()
	var gotCtxTrace string
	h := InstrumentHTTP(r, func(*http.Request) string { return "/x" },
		http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			gotCtxTrace = TraceIDFrom(req.Context())
			w.WriteHeader(http.StatusTeapot)
		}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceHeader, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotCtxTrace != "cafe0123cafe0123" {
		t.Fatalf("handler ctx trace = %q, want propagated header", gotCtxTrace)
	}
	if got := resp.Header.Get(TraceHeader); got != "cafe0123cafe0123" {
		t.Fatalf("response trace header = %q", got)
	}
	if n := r.CounterVec("easeml_http_requests_total", "h", "route", "code").With("/x", "418").Value(); n != 1 {
		t.Fatalf("requests_total{/x,418} = %d, want 1", n)
	}
	if n := r.HistogramVec("easeml_http_request_seconds", "h", "route").With("/x").Count(); n != 1 {
		t.Fatalf("request_seconds{/x} count = %d, want 1", n)
	}
}

func TestSlowOpLog(t *testing.T) {
	var buf bytes.Buffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewJSONHandler(&buf, nil)))
	oldT := SlowOpThreshold()
	defer func() {
		slog.SetDefault(old)
		SetSlowOpThreshold(oldT)
	}()

	SetSlowOpThreshold(time.Millisecond)
	SlowOp("test_op", 500*time.Microsecond, "trace", "t1") // under threshold
	if buf.Len() != 0 {
		t.Fatalf("under-threshold op logged: %s", buf.String())
	}
	SlowOp("test_op", 5*time.Millisecond, "trace", "t1")
	if !strings.Contains(buf.String(), "slow operation") || !strings.Contains(buf.String(), `"trace":"t1"`) {
		t.Fatalf("slow op log missing fields: %s", buf.String())
	}
	SetSlowOpThreshold(0)
	buf.Reset()
	SlowOp("test_op", time.Hour)
	if buf.Len() != 0 {
		t.Fatalf("disabled slow-op still logged: %s", buf.String())
	}
}

func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", "v")
	if !strings.Contains(buf.String(), `"k":"v"`) {
		t.Fatalf("json logger output: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "xml", ""); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
