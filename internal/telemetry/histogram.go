package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: exponential base-2 buckets over latency, from
// histBase up. Bucket i covers (histBase<<(i-1), histBase<<i] nanoseconds
// (bucket 0 is everything at or below histBase); one overflow bucket
// catches the tail. 2x resolution keeps the exact-bucket quantiles within
// a factor of two of the true order statistic, which is plenty to tell a
// 2µs pick from a 40µs one, while the whole shard stays a flat array
// indexed by bits.Len64 — no search, no branches on the hot path.
const (
	histBase    = 250 // ns; smallest bucket upper bound
	histBuckets = 32  // finite buckets; histBase<<31 ≈ 537s
	histShards  = 8   // must be a power of two
)

// histShard is one shard's bucket array. Shards are padded apart so two
// cores observing into neighbouring shards don't share a cache line.
type histShard struct {
	counts [histBuckets + 1]atomic.Uint64 // +1: overflow
	sum    atomic.Uint64                  // nanoseconds for Histogram, plain units for ValueHistogram
	_      [64]byte
}

// Histogram is a lock-free sharded latency histogram. Observe picks a
// shard via the runtime's per-P cheap random source and does two atomic
// adds; scrapes merge the shards. There is no mutex anywhere, so an
// Observe under coordMu never waits on a concurrent exposition.
type Histogram struct {
	shards [histShards]histShard
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration to its bucket so that the bucket's upper
// bound is inclusive (Prometheus `le` semantics): d ≤ histBase<<i.
func bucketIndex(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	idx := bits.Len64((uint64(d) - 1) / histBase)
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// bucketUpperNS returns bucket i's inclusive upper bound in nanoseconds;
// the overflow bucket reports the largest finite bound (quantiles that
// land there are clamped, which the exposition's +Inf bucket makes
// visible).
func bucketUpperNS(i int) uint64 {
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return histBase << uint(i)
}

// Observe records one latency sample. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := &h.shards[rand.Uint32()&(histShards-1)]
	s.counts[bucketIndex(d)].Add(1)
	s.sum.Add(uint64(d))
}

// ObserveSince records time.Since(t0).
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// snapshot merges the shards into one bucket array and sum.
func (h *Histogram) snapshot() (counts [histBuckets + 1]uint64, sumNS uint64) {
	for s := range h.shards {
		for b := range h.shards[s].counts {
			counts[b] += h.shards[s].counts[b].Load()
		}
		sumNS += h.shards[s].sum.Load()
	}
	return counts, sumNS
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	counts, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration {
	_, sumNS := h.snapshot()
	return time.Duration(sumNS)
}

// Quantile returns the exact-bucket q-quantile: the inclusive upper
// bound of the bucket containing the ceil(q·n)-th smallest observation.
// It returns 0 on an empty histogram and clamps q to [0, 1].
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(bucketUpperNS(i))
		}
	}
	return time.Duration(bucketUpperNS(histBuckets))
}

// ValueHistogram is the unit-valued sibling of Histogram: the same
// lock-free sharded layout, but buckets are powers of two over a plain
// count (batch sizes, queue depths) instead of nanoseconds. Bucket i
// covers (2^(i-1), 2^i] with bucket 0 holding everything at or below 1,
// so the exposition's le values are small integers, not seconds.
type ValueHistogram struct {
	shards [histShards]histShard
}

func newValueHistogram() *ValueHistogram { return &ValueHistogram{} }

// valueBucketIndex maps a value to its inclusive-upper-bound bucket:
// v ≤ 2^i.
func valueBucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(v - 1)
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// valueBucketUpper returns bucket i's inclusive upper bound.
func valueBucketUpper(i int) uint64 {
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return 1 << uint(i)
}

// Observe records one value sample.
func (h *ValueHistogram) Observe(v uint64) {
	s := &h.shards[rand.Uint32()&(histShards-1)]
	s.counts[valueBucketIndex(v)].Add(1)
	s.sum.Add(v)
}

func (h *ValueHistogram) snapshot() (counts [histBuckets + 1]uint64, sum uint64) {
	for s := range h.shards {
		for b := range h.shards[s].counts {
			counts[b] += h.shards[s].counts[b].Load()
		}
		sum += h.shards[s].sum.Load()
	}
	return counts, sum
}

// Count returns the total number of observations.
func (h *ValueHistogram) Count() uint64 {
	counts, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *ValueHistogram) Sum() uint64 {
	_, sum := h.snapshot()
	return sum
}

// Quantile returns the exact-bucket q-quantile as a plain value (the
// inclusive upper bound of the bucket containing the ceil(q·n)-th
// smallest observation); 0 on an empty histogram.
func (h *ValueHistogram) Quantile(q float64) float64 {
	counts, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return float64(valueBucketUpper(i))
		}
	}
	return float64(valueBucketUpper(histBuckets))
}

// writeBuckets emits the child's _bucket/_sum/_count series with plain
// integer le bounds.
func (h *ValueHistogram) writeBuckets(w io.Writer, name string, fam *family, key string) {
	counts, sum := h.snapshot()
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		le := formatFloat(float64(valueBucketUpper(i)))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, fam.renderLabels(key, `le="`+le+`"`), cum)
	}
	cum += counts[histBuckets]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, fam.renderLabels(key, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, fam.renderLabels(key, ""), sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, fam.renderLabels(key, ""), cum)
}

// writeBuckets emits the child's _bucket/_sum/_count series. fam/key
// provide the label rendering context (le is appended to the child's own
// labels).
func (h *Histogram) writeBuckets(w io.Writer, name string, fam *family, key string) {
	counts, sumNS := h.snapshot()
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		le := formatFloat(float64(bucketUpperNS(i)) / 1e9)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, fam.renderLabels(key, `le="`+le+`"`), cum)
	}
	cum += counts[histBuckets]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, fam.renderLabels(key, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, fam.renderLabels(key, ""), formatFloat(float64(sumNS)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, fam.renderLabels(key, ""), cum)
}
