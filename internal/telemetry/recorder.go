package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// spanRing is a bounded lock-free ring: writers claim a slot with one
// atomic add and store a pointer; old spans are overwritten when the ring
// wraps. Readers (the rare /admin/traces scrape) snapshot slot by slot.
type spanRing struct {
	slots []atomic.Pointer[SpanData]
	head  atomic.Uint64
}

func newSpanRing(n int) *spanRing {
	if n < 1 {
		n = 1
	}
	return &spanRing{slots: make([]atomic.Pointer[SpanData], n)}
}

func (r *spanRing) put(sd *SpanData) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(sd)
}

func (r *spanRing) snapshot() []*SpanData {
	out := make([]*SpanData, 0, len(r.slots))
	for i := range r.slots {
		if sd := r.slots[i].Load(); sd != nil {
			out = append(out, sd)
		}
	}
	return out
}

// DefaultTraceBuffer is the flight recorder's default ring capacity
// (spans, per ring); the -trace-buffer flag overrides it.
const DefaultTraceBuffer = 4096

// maxFlaggedTraces bounds the tail-sampling working set: how many
// distinct interesting traces the retained ring tracks before the oldest
// flag is forgotten (its already-retained spans stay until overwritten).
const maxFlaggedTraces = 512

var (
	spansRecorded = Default().Counter("easeml_trace_spans_total",
		"Spans recorded into the flight recorder since process start.")
	spansRetained = Default().Counter("easeml_trace_spans_retained_total",
		"Spans copied into the tail-sampling retained ring (slow, failed, or bad-outcome traces).")
)

// Recorder is the in-process flight recorder: an always-on bounded ring
// of recent spans plus a second retained ring that tail-sampling feeds —
// a trace is retained whenever any of its spans errored, crossed the
// SlowOp threshold, or ended with a bad outcome (failed / preempted /
// expired / abandoned / conflict). When a trace is first flagged the main
// ring is swept so the spans that already landed there survive, and every
// later span of a flagged trace goes straight to the retained ring.
type Recorder struct {
	main     atomic.Pointer[spanRing]
	retained atomic.Pointer[spanRing]

	flagMu   sync.Mutex
	flagged  map[string]struct{}
	flagFIFO []string
}

// NewRecorder creates a recorder with the given per-ring capacity.
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{flagged: make(map[string]struct{})}
	r.SetCapacity(capacity)
	return r
}

var defaultRecorder = NewRecorder(DefaultTraceBuffer)

// DefaultRecorder is the process-global flight recorder Span.End records
// into and GET /admin/traces reads from.
func DefaultRecorder() *Recorder { return defaultRecorder }

// SetCapacity resizes both rings (discarding recorded spans); called once
// at startup from the -trace-buffer flag, before traffic.
func (r *Recorder) SetCapacity(n int) {
	if n < 1 {
		n = DefaultTraceBuffer
	}
	r.main.Store(newSpanRing(n))
	r.retained.Store(newSpanRing(n))
}

// Capacity returns the per-ring span capacity.
func (r *Recorder) Capacity() int { return len(r.main.Load().slots) }

// processName stamps spans recorded in this process that did not set
// Process themselves (imported worker spans keep their origin).
var processName atomic.Pointer[string]

// SetProcessName names this process in every span it records.
func SetProcessName(name string) { processName.Store(&name) }

// badOutcomes are the outcome attribute values that force retention.
var badOutcomes = map[string]bool{
	"failed": true, "preempted": true, "expired": true,
	"abandoned": true, "conflict": true, "error": true,
}

// Record stores one finished span. The hot path — ordinary span on an
// unflagged trace — is one atomic add, one pointer store, and one mutex
// probe of the flagged set.
func (r *Recorder) Record(data SpanData) {
	if data.Process == "" {
		if p := processName.Load(); p != nil {
			data.Process = *p
		}
	}
	sd := &data
	r.main.Load().put(sd)
	spansRecorded.Inc()

	interesting := sd.Err != "" || badOutcomes[sd.Attrs["outcome"]]
	if !interesting {
		if t := SlowOpThreshold(); t > 0 && sd.Duration() > t {
			interesting = true
		}
	}

	r.flagMu.Lock()
	_, already := r.flagged[sd.TraceID]
	if !already && interesting {
		r.flagged[sd.TraceID] = struct{}{}
		r.flagFIFO = append(r.flagFIFO, sd.TraceID)
		if len(r.flagFIFO) > maxFlaggedTraces {
			delete(r.flagged, r.flagFIFO[0])
			r.flagFIFO = r.flagFIFO[1:]
		}
	}
	r.flagMu.Unlock()

	if !already && !interesting {
		return
	}
	ret := r.retained.Load()
	ret.put(sd)
	spansRetained.Inc()
	if !already {
		// First flag for this trace: sweep the main ring so the spans
		// that landed before the interesting one survive ring wrap.
		for _, prev := range r.main.Load().snapshot() {
			if prev != sd && prev.TraceID == sd.TraceID {
				ret.put(prev)
				spansRetained.Inc()
			}
		}
	}
}

// TraceFilter narrows a Traces listing. Zero values match everything.
type TraceFilter struct {
	Tenant      string
	Job         string
	Outcome     string
	MinDuration time.Duration
	Limit       int
}

// TraceSummary is one row of the GET /admin/traces listing.
type TraceSummary struct {
	TraceID    string   `json:"trace"`
	RootOp     string   `json:"root_op,omitempty"`
	Spans      int      `json:"spans"`
	StartNS    int64    `json:"start_unix_nano"`
	DurationNS int64    `json:"duration_ns"`
	Outcome    string   `json:"outcome,omitempty"`
	Error      string   `json:"error,omitempty"`
	Tenant     string   `json:"tenant,omitempty"`
	Job        string   `json:"job,omitempty"`
	Processes  []string `json:"processes,omitempty"`
}

// spans returns every live span, both rings merged, deduplicated by
// (trace, span) with the retained copy winning.
func (r *Recorder) spans() map[string][]*SpanData {
	byTrace := make(map[string][]*SpanData)
	seen := make(map[[2]string]bool)
	for _, ring := range []*spanRing{r.retained.Load(), r.main.Load()} {
		for _, sd := range ring.snapshot() {
			key := [2]string{sd.TraceID, sd.SpanID}
			if seen[key] {
				continue
			}
			seen[key] = true
			byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
		}
	}
	return byTrace
}

// summarize folds one trace's spans into a listing row.
func summarize(trace string, spans []*SpanData) TraceSummary {
	sum := TraceSummary{TraceID: trace, Spans: len(spans)}
	var minStart, maxEnd int64
	procs := map[string]bool{}
	var root *SpanData
	for _, sd := range spans {
		if minStart == 0 || sd.StartNS < minStart {
			minStart = sd.StartNS
		}
		if end := sd.StartNS + sd.DurationNS; end > maxEnd {
			maxEnd = end
		}
		if sd.Process != "" {
			procs[sd.Process] = true
		}
		if sd.ParentID == "" && (root == nil || sd.StartNS < root.StartNS) {
			root = sd
		}
		if sum.Error == "" && sd.Err != "" {
			sum.Error = sd.Err
		}
		if o := sd.Attrs["outcome"]; o != "" {
			sum.Outcome = o
		}
		if t := sd.Attrs["tenant"]; t != "" {
			sum.Tenant = t
		}
		if j := sd.Attrs["job"]; j != "" {
			sum.Job = j
		}
	}
	if root != nil {
		sum.RootOp = root.Op
		if o := root.Attrs["outcome"]; o != "" {
			sum.Outcome = o
		}
	}
	sum.StartNS = minStart
	sum.DurationNS = maxEnd - minStart
	for p := range procs {
		sum.Processes = append(sum.Processes, p)
	}
	sort.Strings(sum.Processes)
	return sum
}

// Traces lists recorded traces newest-first, filtered.
func (r *Recorder) Traces(f TraceFilter) []TraceSummary {
	var out []TraceSummary
	for trace, spans := range r.spans() {
		sum := summarize(trace, spans)
		if f.Tenant != "" && sum.Tenant != f.Tenant {
			continue
		}
		if f.Job != "" && sum.Job != f.Job {
			continue
		}
		if f.Outcome != "" && sum.Outcome != f.Outcome {
			continue
		}
		if f.MinDuration > 0 && time.Duration(sum.DurationNS) < f.MinDuration {
			continue
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS > out[j].StartNS })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Trace returns every recorded span of one trace, oldest first. The
// second return reports whether the trace is known at all.
func (r *Recorder) Trace(id string) ([]SpanData, bool) {
	spans := r.spans()[id]
	if len(spans) == 0 {
		return nil, false
	}
	out := make([]SpanData, len(spans))
	for i, sd := range spans {
		out[i] = *sd
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out, true
}

// SpanNode is one node of the assembled span tree served by
// GET /admin/traces/{id}.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree assembles flat spans into parent/child trees. Spans whose
// parent is missing (overwritten in the ring, or remote and unshipped)
// surface as roots, so a partial recording still renders.
func BuildSpanTree(spans []SpanData) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, sd := range spans {
		n := &SpanNode{SpanData: sd}
		nodes[sd.SpanID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}
