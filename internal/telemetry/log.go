package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// NewLogger builds the process logger: format is "text" or "json" (the
// -log-format flag), level one of debug/info/warn/error (-log-level).
// Binaries install the result with slog.SetDefault so package-level slow-op
// and error logging inherits it.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a flag string to a slog.Level; "" means info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// slowOpNS is the slow-operation threshold in nanoseconds; 0 disables the
// slow-op log entirely. Configured once at startup (the -slow-op flag),
// read on every guarded operation, hence atomic.
var slowOpNS atomic.Int64

func init() { slowOpNS.Store(int64(100 * time.Millisecond)) }

var slowOps = Default().CounterVec("easeml_slow_ops_total",
	"Operations that crossed the slow-op log threshold, by operation.", "op")

// SetSlowOpThreshold sets the duration above which SlowOp logs (and
// counts) an operation. d <= 0 disables the slow-op log.
func SetSlowOpThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowOpNS.Store(int64(d))
}

// SlowOpThreshold returns the current threshold (0 = disabled).
func SlowOpThreshold() time.Duration { return time.Duration(slowOpNS.Load()) }

// SlowOp logs a warning on the default logger when an operation exceeded
// the configured threshold, and bumps easeml_slow_ops_total{op}. attrs
// are extra slog key/value pairs (trace IDs, job IDs). The fast path — op
// under threshold — is one atomic load and a compare.
func SlowOp(op string, elapsed time.Duration, attrs ...any) {
	t := slowOpNS.Load()
	if t <= 0 || int64(elapsed) < t {
		return
	}
	slowOps.With(op).Inc()
	args := append([]any{"op", op, "elapsed", elapsed, "threshold", time.Duration(t)}, attrs...)
	slog.Warn("slow operation", args...)
}
