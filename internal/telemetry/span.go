package telemetry

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"
)

// SpanData is the serializable form of one span: what the flight recorder
// stores and what crosses the wire when a worker ships its spans back to
// the coordinator inside a CompleteRequest. Times are unix nanoseconds so
// the JSON form is stable across processes and clock formats.
type SpanData struct {
	TraceID    string            `json:"trace"`
	SpanID     string            `json:"span"`
	ParentID   string            `json:"parent,omitempty"`
	Op         string            `json:"op"`
	Process    string            `json:"process,omitempty"`
	StartNS    int64             `json:"start_unix_nano"`
	DurationNS int64             `json:"duration_ns"`
	Err        string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Start returns the span's start time.
func (d SpanData) Start() time.Time { return time.Unix(0, d.StartNS) }

// Duration returns the span's duration.
func (d SpanData) Duration() time.Duration { return time.Duration(d.DurationNS) }

// Span is a live (not yet ended) span. It is safe for concurrent use;
// End is idempotent and hands the span's data to the flight recorder.
type Span struct {
	mu   sync.Mutex
	data SpanData
	done bool
}

// spanOpRE is the operation-name contract: lower snake_case, statically
// enforced by tools/metriclint over every SpanOp declaration in the tree.
var spanOpRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

var (
	spanOpMu sync.Mutex
	spanOps  = map[string]struct{}{}
)

// SpanOp registers a span operation name and returns it. Packages declare
// their operations as package-level vars (`var opPick = telemetry.SpanOp(
// "pick_select")`), which gives metriclint a single static declaration
// site to lint (snake_case, unique across the tree) and the runtime a
// registered set to validate queries against. A malformed name is a
// programming error and panics at init.
func SpanOp(name string) string {
	if !spanOpRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: span op %q is not snake_case", name))
	}
	spanOpMu.Lock()
	defer spanOpMu.Unlock()
	spanOps[name] = struct{}{}
	return name
}

// RegisteredSpanOps returns the sorted set of operation names declared via
// SpanOp — the registered set the lease span tree is validated against.
func RegisteredSpanOps() []string {
	spanOpMu.Lock()
	defer spanOpMu.Unlock()
	ops := make([]string, 0, len(spanOps))
	for op := range spanOps {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

type spanCtxKey struct{}

// StartSpan begins a span under the trace carried by ctx (minting a trace
// ID if absent), parented to the span already in ctx if any, and returns
// a context carrying the new span. This is the HTTP-middleware / handler
// entry point; scheduler internals that have no context use NewSpanAt.
func StartSpan(ctx context.Context, op string) (context.Context, *Span) {
	ctx, trace := EnsureTraceID(ctx)
	parent := ""
	if p := SpanFrom(ctx); p != nil {
		parent = p.ID()
	}
	s := NewSpanAt(trace, parent, op, time.Now())
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// NewSpanAt creates a detached span with an explicit start time — the
// scheduler's pick stages measure t0 before the span exists, so child
// spans are minted retroactively from the same stage boundaries the
// PR-6 histograms observe.
func NewSpanAt(trace, parent, op string, start time.Time) *Span {
	return &Span{data: SpanData{
		TraceID:  trace,
		SpanID:   NewSpanID(),
		ParentID: parent,
		Op:       op,
		StartNS:  start.UnixNano(),
	}}
}

// ID returns the span's ID (stable from creation, safe to ship over the
// wire so remote children can parent to it).
func (s *Span) ID() string { return s.data.SpanID }

// TraceID returns the trace the span belongs to.
func (s *Span) TraceID() string { return s.data.TraceID }

// SetAttr attaches a key/value attribute. No-op after End.
func (s *Span) SetAttr(k, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[k] = v
}

// Fail marks the span as errored. No-op after End or on a nil error.
func (s *Span) Fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.data.Err = err.Error()
	}
}

// Data snapshots the span's current state — how a worker serializes its
// spans into a CompleteRequest after ending them locally.
func (s *Span) Data() SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data
}

// End closes the span at time.Now and records it into the default flight
// recorder. Idempotent: only the first End records.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at an explicit end time (retroactive stage spans
// end at the same instant the matching histogram observes).
func (s *Span) EndAt(end time.Time) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.data.DurationNS = end.UnixNano() - s.data.StartNS
	if s.data.DurationNS < 0 {
		s.data.DurationNS = 0
	}
	data := s.data
	s.mu.Unlock()
	DefaultRecorder().Record(data)
}
