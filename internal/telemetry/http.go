package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status code for the per-route
// status counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// opHTTPRequest is the root span every instrumented HTTP request records:
// handler work (and the scheduler spans it triggers) parents under it.
var opHTTPRequest = SpanOp("http_request")

// InstrumentHTTP wraps next with the standard HTTP telemetry: per-route
// request latency (easeml_http_request_seconds{route}), per-route status
// counters (easeml_http_requests_total{route,code}), trace propagation —
// the inbound X-Easeml-Trace header (or a freshly minted ID, when the
// header is absent or fails ValidTraceID) lands in the request context
// and is echoed on the response — and a root http_request span in the
// flight recorder for every request.
//
// route maps a request to its metric label; it must return a bounded set
// of values (normalize path parameters), or the counter cardinality
// explodes.
func InstrumentHTTP(reg *Registry, route func(*http.Request) string, next http.Handler) http.Handler {
	requests := reg.CounterVec("easeml_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	latency := reg.HistogramVec("easeml_http_request_seconds",
		"HTTP request latency by route.", "route")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ctx, trace := TraceFromRequest(r)
		w.Header().Set(TraceHeader, trace)
		ctx, span := StartSpan(ctx, opHTTPRequest)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		rt := route(r)
		elapsed := time.Since(t0)
		latency.With(rt).Observe(elapsed)
		requests.With(rt, strconv.Itoa(sw.code)).Inc()
		code := strconv.Itoa(sw.code)
		span.SetAttr("route", rt)
		span.SetAttr("method", r.Method)
		span.SetAttr("status", code)
		if sw.code >= http.StatusInternalServerError {
			span.SetAttr("outcome", "error")
		}
		span.EndAt(t0.Add(elapsed))
		SlowOp("http_"+r.Method, elapsed, "route", rt, "status", sw.code, "trace", trace)
	})
}
