package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop; observation-side callers should prefer
// Set when they know the absolute value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
