package dsl

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the parser must never panic, whatever bytes arrive. It either
// returns a Program that re-renders stably or an error.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"{", "}", "[", "]", ",", ":", "::", "input", "output", "Tensor",
		"field1", "next", "256", "0", "a_b", " ", "\n", "\t", "§", "🙂", "-1",
	}
	rng := rand.New(rand.NewSource(20180824))
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		n := rng.Intn(40)
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			if prog, err := Parse(src); err == nil {
				// Valid parses must round-trip.
				re, err2 := Parse(prog.String())
				if err2 != nil {
					t.Fatalf("re-parse of %q failed: %v", prog.String(), err2)
				}
				if re.String() != prog.String() {
					t.Fatalf("unstable rendering: %q vs %q", re.String(), prog.String())
				}
			}
		}()
	}
}

// Mutation robustness: corrupting single bytes of valid programs must not
// panic the parser.
func TestParseMutatedPrograms(t *testing.T) {
	base := []string{
		imgProgram,
		tsProgram,
		"{input: {[field1 :: Tensor[10], Tensor[5, 5]], [next]}, output: {[Tensor[2]], []}}",
	}
	rng := rand.New(rand.NewSource(7))
	for _, src := range base {
		for i := 0; i < 300; i++ {
			b := []byte(src)
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			case 2:
				b = append(b[:pos], append([]byte{byte(rng.Intn(128))}, b[pos:]...)...)
			}
			mutated := string(b)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse(%q) panicked: %v", mutated, r)
					}
				}()
				_, _ = Parse(mutated)
			}()
		}
	}
}
