package dsl

import (
	"fmt"
	"strconv"
)

// Parse parses a complete user program in the Figure 2 grammar and validates
// it. The input/output keys may appear in either order but both must be
// present exactly once.
func Parse(src string) (Program, error) {
	toks, err := lex(src)
	if err != nil {
		return Program{}, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return Program{}, err
	}
	if err := p.expect(tokEOF); err != nil {
		return Program{}, err
	}
	if err := prog.Validate(); err != nil {
		return Program{}, err
	}
	return prog, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) error {
	t := p.next()
	if t.kind != kind {
		return fmt.Errorf("dsl: expected %v at offset %d, found %v %q", kind, t.pos, t.kind, t.text)
	}
	return nil
}

// parseProgram ::= '{' 'input' ':' data_type ',' 'output' ':' data_type '}'
// (keys in either order).
func (p *parser) parseProgram() (Program, error) {
	var prog Program
	if err := p.expect(tokLBrace); err != nil {
		return prog, err
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		key := p.next()
		if key.kind != tokIdent || (key.text != "input" && key.text != "output") {
			return prog, fmt.Errorf("dsl: expected 'input' or 'output' at offset %d, found %q", key.pos, key.text)
		}
		if seen[key.text] {
			return prog, fmt.Errorf("dsl: duplicate key %q at offset %d", key.text, key.pos)
		}
		seen[key.text] = true
		if err := p.expect(tokColon); err != nil {
			return prog, err
		}
		dt, err := p.parseDataType()
		if err != nil {
			return prog, err
		}
		if key.text == "input" {
			prog.Input = dt
		} else {
			prog.Output = dt
		}
		if i == 0 {
			if err := p.expect(tokComma); err != nil {
				return prog, err
			}
		}
	}
	if err := p.expect(tokRBrace); err != nil {
		return prog, err
	}
	return prog, nil
}

// parseDataType ::= '{' '[' nonrec_field* ']' ',' '[' rec_field* ']' '}'
func (p *parser) parseDataType() (DataType, error) {
	var dt DataType
	if err := p.expect(tokLBrace); err != nil {
		return dt, err
	}
	if err := p.expect(tokLBracket); err != nil {
		return dt, err
	}
	for p.peek().kind != tokRBracket {
		f, err := p.parseNonRecField()
		if err != nil {
			return dt, err
		}
		dt.NonRec = append(dt.NonRec, f)
		if p.peek().kind == tokComma {
			p.next()
		} else {
			break
		}
	}
	if err := p.expect(tokRBracket); err != nil {
		return dt, err
	}
	if err := p.expect(tokComma); err != nil {
		return dt, err
	}
	if err := p.expect(tokLBracket); err != nil {
		return dt, err
	}
	for p.peek().kind != tokRBracket {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokNumber {
			return dt, fmt.Errorf("dsl: expected recursive field name at offset %d, found %v", t.pos, t.kind)
		}
		dt.Rec = append(dt.Rec, t.text)
		if p.peek().kind == tokComma {
			p.next()
		} else {
			break
		}
	}
	if err := p.expect(tokRBracket); err != nil {
		return dt, err
	}
	if err := p.expect(tokRBrace); err != nil {
		return dt, err
	}
	return dt, nil
}

// parseNonRecField ::= 'Tensor' '[' int_list ']'
//
//	| field_name '::' 'Tensor' '[' int_list ']'
func (p *parser) parseNonRecField() (TensorField, error) {
	var f TensorField
	t := p.next()
	if t.kind != tokIdent {
		return f, fmt.Errorf("dsl: expected field or Tensor at offset %d, found %v", t.pos, t.kind)
	}
	if t.text != "Tensor" {
		f.Name = t.text
		if err := p.expect(tokDoubleColon); err != nil {
			return f, err
		}
		t = p.next()
		if t.kind != tokIdent || t.text != "Tensor" {
			return f, fmt.Errorf("dsl: expected 'Tensor' at offset %d, found %q", t.pos, t.text)
		}
	}
	if err := p.expect(tokLBracket); err != nil {
		return f, err
	}
	for {
		num := p.next()
		if num.kind != tokNumber {
			return f, fmt.Errorf("dsl: expected dimension at offset %d, found %v %q", num.pos, num.kind, num.text)
		}
		d, err := strconv.Atoi(num.text)
		if err != nil {
			return f, fmt.Errorf("dsl: dimension %q at offset %d: %v", num.text, num.pos, err)
		}
		f.Dims = append(f.Dims, d)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(tokRBracket); err != nil {
		return f, err
	}
	return f, nil
}

// MustParse is Parse that panics on error, for tests and examples with
// compile-time-known programs.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}
