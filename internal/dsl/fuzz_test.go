package dsl

import "testing"

// FuzzParse is a native fuzz target (runs its seed corpus under plain
// `go test`; explore with `go test -fuzz=FuzzParse ./internal/dsl`).
// Invariants: no panic ever; successful parses validate and round-trip
// stably through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		imgProgram,
		tsProgram,
		"{input: {[field1 :: Tensor[10], Tensor[5, 5]], [next, prev]}, output: {[Tensor[2]], []}}",
		"{input: {[Tensor[16]], [a, c]}, output: {[Tensor[3]], []}}",
		"{output: {[Tensor[2]], []}, input: {[Tensor[4]], []}}",
		"", "{", "{input:}", "Tensor[1]", "{input: {[Tensor[0]], []}, output: {[Tensor[1]], []}}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("Parse accepted invalid program %q: %v", src, err)
		}
		rendered := prog.String()
		re, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", rendered, err)
		}
		if re.String() != rendered {
			t.Fatalf("unstable rendering: %q vs %q", re.String(), rendered)
		}
	})
}
