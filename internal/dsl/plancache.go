package dsl

import (
	"container/list"
	"hash/fnv"
	"sync"

	"repro/internal/telemetry"
)

// Plan cache: a process-wide, bounded LRU of parsed+validated Programs
// keyed by the FNV-64a hash of their source text. Submit, recovery, the
// easeml facade, and the fleet agent's per-lease job fetch all parse the
// same handful of programs over and over; a repeated-program workload
// (the serving steady state) should pay the lexer/parser exactly once.
//
// The cache stores only successful parses: error results are cheap to
// recompute and caching them would let a transient source string pin a
// slot. Hash collisions are survived, not assumed away — each entry keeps
// its full source and a hit requires string equality, so a colliding
// program is simply a miss that overwrites the slot's LRU position.
//
// Metrics: the easeml_plan_cache_* families are registered here at package
// init (so they appear in the exposition stream from the first scrape,
// before any parse happens) and shared with the candidate-grid cache in
// internal/templates via CacheEventCounter/CacheEntriesGauge — metriclint
// allows one registration site per family.
var (
	cacheEvents = telemetry.Default().CounterVec(
		"easeml_plan_cache_events_total",
		"Plan-cache lookups by cache (program, candidates) and event (hit, miss, eviction).",
		"cache", "event")
	cacheEntries = telemetry.Default().GaugeVec(
		"easeml_plan_cache_entries",
		"Entries currently resident per plan cache.",
		"cache")
)

// CacheEventCounter returns the shared easeml_plan_cache_events_total
// child for one (cache, event) pair. Exported so sibling caches (the
// candidate-grid cache in internal/templates) count into the same family
// without a second registration site.
func CacheEventCounter(cache, event string) *telemetry.Counter {
	return cacheEvents.With(cache, event)
}

// CacheEntriesGauge returns the shared easeml_plan_cache_entries child for
// one cache name.
func CacheEntriesGauge(cache string) *telemetry.Gauge {
	return cacheEntries.With(cache)
}

// CacheStats is a point-in-time snapshot of one plan cache's counters.
// Hits/Misses/Evictions are cumulative since process start (or the last
// Reset, which tests use); Entries is the current resident count.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DefaultPlanCacheCapacity bounds the process-wide program cache. Programs
// are a few hundred bytes each; 1024 of them is noise next to one job's
// candidate stores, and far beyond the distinct-program count of any
// realistic tenant population.
const DefaultPlanCacheCapacity = 1024

type planEntry struct {
	src  string
	prog Program
}

// planCache is the LRU proper. The lock is held only around map/list
// bookkeeping — never across a Parse, so concurrent misses on different
// programs parse in parallel (both then race to insert; last write wins,
// which is harmless because parses are deterministic).
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element // hash → element whose Value is *planEntry
	lru     *list.List               // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64

	hitC, missC, evictC *telemetry.Counter
	entriesG            *telemetry.Gauge
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:      capacity,
		entries:  make(map[uint64]*list.Element),
		lru:      list.New(),
		hitC:     CacheEventCounter("program", "hit"),
		missC:    CacheEventCounter("program", "miss"),
		evictC:   CacheEventCounter("program", "eviction"),
		entriesG: CacheEntriesGauge("program"),
	}
}

var programCache = newPlanCache(DefaultPlanCacheCapacity)

func hashSource(src string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	return h.Sum64()
}

// lookup returns the cached Program for src, if present.
func (c *planCache) lookup(src string, hash uint64) (Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		ent := el.Value.(*planEntry)
		if ent.src == src {
			c.lru.MoveToFront(el)
			c.hits++
			c.hitC.Inc()
			return ent.prog, true
		}
	}
	c.misses++
	c.missC.Inc()
	return Program{}, false
}

// insert stores a freshly parsed Program, evicting from the LRU tail past
// capacity. A concurrent insert of the same hash replaces the entry in
// place (deterministic parse ⇒ identical value).
func (c *planCache) insert(src string, hash uint64, prog Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		el.Value = &planEntry{src: src, prog: prog}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[hash] = c.lru.PushFront(&planEntry{src: src, prog: prog})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, hashSource(tail.Value.(*planEntry).src))
		c.evicted++
		c.evictC.Inc()
	}
	c.entriesG.Set(float64(c.lru.Len()))
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: c.lru.Len()}
}

// reset drops every entry and zeroes the snapshot counters (the telemetry
// counters stay cumulative — they are process-global by design).
func (c *planCache) reset(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	c.entries = make(map[uint64]*list.Element)
	c.lru = list.New()
	c.hits, c.misses, c.evicted = 0, 0, 0
	c.entriesG.Set(0)
}

// ParseCached is Parse behind the process-wide plan cache: a hit returns
// the cached parsed+validated Program without touching the lexer; a miss
// parses, and caches the Program only on success. The returned Program
// shares the cached entry's backing slices — callers already treat parsed
// Programs as immutable (every consumer since the seed does), and the
// cache makes that contract load-bearing.
func ParseCached(src string) (Program, error) {
	hash := hashSource(src)
	if prog, ok := programCache.lookup(src, hash); ok {
		return prog, nil
	}
	prog, err := Parse(src)
	if err != nil {
		return Program{}, err
	}
	programCache.insert(src, hash, prog)
	return prog, nil
}

// PlanCacheStats snapshots the program cache's counters for /admin/metrics
// and tests.
func PlanCacheStats() CacheStats { return programCache.stats() }

// ResetPlanCache empties the program cache and restores the default
// capacity. Tests use it to measure hit rates from a known-cold state.
func ResetPlanCache() { programCache.reset(DefaultPlanCacheCapacity) }

// SetPlanCacheCapacity resizes (and empties) the program cache — test
// hook for exercising eviction without forging a thousand programs.
func SetPlanCacheCapacity(n int) {
	if n < 1 {
		n = 1
	}
	programCache.reset(n)
}
