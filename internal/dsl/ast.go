// Package dsl implements ease.ml's declarative input language (§2,
// Figure 2):
//
//	prog         ::= {input: data_type, output: data_type}
//	data_type    ::= {nonrec_field list, rec_field list}
//	nonrec_field ::= Tensor[int list] | field_name :: Tensor[int list]
//	rec_field    ::= field_name
//	field_name   ::= [a-z0-9_]*
//
// The concrete syntax follows Figure 3's examples, e.g. the image
// classification job
//
//	{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}
//
// and the time-series prediction job
//
//	{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}
//
// The package provides the AST, a lexer, a recursive-descent parser,
// validation (shape constraints, the no-reuse/DAG rule) and printing that
// round-trips with the parser.
package dsl

import (
	"fmt"
	"strconv"
	"strings"
)

// TensorField is one nonrecursive field: an optionally named constant-size
// tensor.
type TensorField struct {
	Name string // optional; "" for anonymous Tensor[...] fields
	Dims []int  // tensor shape, all > 0
}

// Rank returns the number of tensor dimensions.
func (f TensorField) Rank() int { return len(f.Dims) }

// Elements returns the number of scalar elements in the tensor.
func (f TensorField) Elements() int {
	n := 1
	for _, d := range f.Dims {
		n *= d
	}
	return n
}

// String renders the field in concrete syntax.
func (f TensorField) String() string {
	var sb strings.Builder
	if f.Name != "" {
		sb.WriteString(f.Name)
		sb.WriteString(" :: ")
	}
	sb.WriteString("Tensor[")
	for i, d := range f.Dims {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteString("]")
	return sb.String()
}

// DataType is one object type: a list of nonrecursive tensor fields plus a
// list of recursive fields (named pointers to an object of the same type),
// which together model images, time series (chains) and trees (§2).
type DataType struct {
	NonRec []TensorField
	Rec    []string
}

// String renders the data type in concrete syntax.
func (d DataType) String() string {
	var sb strings.Builder
	sb.WriteString("{[")
	for i, f := range d.NonRec {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.String())
	}
	sb.WriteString("], [")
	for i, r := range d.Rec {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r)
	}
	sb.WriteString("]}")
	return sb.String()
}

// TotalElements returns the number of scalar elements across the
// nonrecursive fields.
func (d DataType) TotalElements() int {
	n := 0
	for _, f := range d.NonRec {
		n += f.Elements()
	}
	return n
}

// Program is a complete ease.ml user program: the input and output object
// types of the function the user wants approximated.
type Program struct {
	Input  DataType
	Output DataType
}

// String renders the program in concrete syntax; Parse(p.String()) yields an
// equal program.
func (p Program) String() string {
	return fmt.Sprintf("{input: %s, output: %s}", p.Input, p.Output)
}

// Validate checks the structural rules of §2:
//   - every tensor has at least one dimension and all dimensions are positive,
//   - field names match [a-z0-9_]* and are unique within their object
//     (the no-reuse rule: generated types must form a DAG, so a recursive
//     field name may not collide with another field),
//   - at least one nonrecursive field exists on each side (an object with no
//     payload cannot carry supervision examples).
func (p Program) Validate() error {
	if err := p.Input.validate("input"); err != nil {
		return err
	}
	return p.Output.validate("output")
}

func (d DataType) validate(side string) error {
	if len(d.NonRec) == 0 {
		return fmt.Errorf("dsl: %s has no tensor fields", side)
	}
	names := map[string]bool{}
	for i, f := range d.NonRec {
		if f.Name != "" {
			if !validFieldName(f.Name) {
				return fmt.Errorf("dsl: %s field %q: invalid field name", side, f.Name)
			}
			if names[f.Name] {
				return fmt.Errorf("dsl: %s field %q: duplicate field name", side, f.Name)
			}
			names[f.Name] = true
		}
		if len(f.Dims) == 0 {
			return fmt.Errorf("dsl: %s tensor field %d has no dimensions", side, i)
		}
		for _, dim := range f.Dims {
			if dim <= 0 {
				return fmt.Errorf("dsl: %s tensor field %d has non-positive dimension %d", side, i, dim)
			}
		}
	}
	for _, r := range d.Rec {
		if !validFieldName(r) || r == "" {
			return fmt.Errorf("dsl: %s recursive field %q: invalid field name", side, r)
		}
		if names[r] {
			return fmt.Errorf("dsl: %s recursive field %q: duplicate field name", side, r)
		}
		names[r] = true
	}
	return nil
}

func validFieldName(s string) bool {
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
