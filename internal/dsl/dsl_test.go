package dsl

import (
	"strings"
	"testing"
	"testing/quick"
)

// The two Figure 3 programs.
const (
	imgProgram = "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[1000]], []}}"
	tsProgram  = "{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}"
)

func TestParseImageClassification(t *testing.T) {
	p, err := Parse(imgProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Input.NonRec) != 1 || len(p.Input.Rec) != 0 {
		t.Fatalf("input %+v", p.Input)
	}
	f := p.Input.NonRec[0]
	if f.Rank() != 3 || f.Dims[0] != 256 || f.Dims[1] != 256 || f.Dims[2] != 3 {
		t.Errorf("input tensor %+v", f)
	}
	if f.Elements() != 256*256*3 {
		t.Errorf("Elements = %d", f.Elements())
	}
	out := p.Output.NonRec[0]
	if out.Rank() != 1 || out.Dims[0] != 1000 {
		t.Errorf("output tensor %+v", out)
	}
	if p.Input.TotalElements() != 256*256*3 {
		t.Errorf("TotalElements = %d", p.Input.TotalElements())
	}
}

func TestParseTimeSeries(t *testing.T) {
	p, err := Parse(tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Input.Rec) != 1 || p.Input.Rec[0] != "next" {
		t.Errorf("input rec fields %v", p.Input.Rec)
	}
	if len(p.Output.Rec) != 1 || p.Output.Rec[0] != "next" {
		t.Errorf("output rec fields %v", p.Output.Rec)
	}
}

func TestParseNamedFields(t *testing.T) {
	p, err := Parse("{input: {[field1 :: Tensor[10], field2 :: Tensor[5, 5]], []}, output: {[Tensor[2]], []}}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Input.NonRec[0].Name != "field1" || p.Input.NonRec[1].Name != "field2" {
		t.Errorf("field names %+v", p.Input.NonRec)
	}
	if p.Input.NonRec[1].Rank() != 2 {
		t.Errorf("field2 rank %d", p.Input.NonRec[1].Rank())
	}
}

func TestParseOutputFirst(t *testing.T) {
	p, err := Parse("{output: {[Tensor[2]], []}, input: {[Tensor[4]], []}}")
	if err != nil {
		t.Fatal(err)
	}
	if p.Input.NonRec[0].Dims[0] != 4 || p.Output.NonRec[0].Dims[0] != 2 {
		t.Errorf("keys swapped: %+v", p)
	}
}

func TestParseTreeType(t *testing.T) {
	p, err := Parse("{input: {[Tensor[16]], [a, c]}, output: {[Tensor[3]], []}}")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Input.Rec) != 2 {
		t.Errorf("rec fields %v", p.Input.Rec)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"not a program":       "Tensor[3]",
		"missing output":      "{input: {[Tensor[3]], []}}",
		"duplicate input":     "{input: {[Tensor[3]], []}, input: {[Tensor[3]], []}}",
		"bad key":             "{inputs: {[Tensor[3]], []}, output: {[Tensor[3]], []}}",
		"unclosed brace":      "{input: {[Tensor[3]], []}, output: {[Tensor[3]], []}",
		"trailing garbage":    imgProgram + "x",
		"zero dimension":      "{input: {[Tensor[0]], []}, output: {[Tensor[3]], []}}",
		"no dims":             "{input: {[Tensor[]], []}, output: {[Tensor[3]], []}}",
		"no tensor fields":    "{input: {[], []}, output: {[Tensor[3]], []}}",
		"bad char":            "{input: {[Tensor[3]], []}, output: {[Tensor[3]], []}} !",
		"missing doublecolon": "{input: {[f1 : Tensor[3]], []}, output: {[Tensor[3]], []}}",
		"duplicate fields":    "{input: {[f1 :: Tensor[3], f1 :: Tensor[4]], []}, output: {[Tensor[3]], []}}",
		"rec collides":        "{input: {[f1 :: Tensor[3]], [f1]}, output: {[Tensor[3]], []}}",
		"uppercase field":     "{input: {[Camel :: Tensor[3]], []}, output: {[Tensor[3]], []}}",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) succeeded, want error", name, src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		imgProgram,
		tsProgram,
		"{input: {[field1 :: Tensor[10], Tensor[5, 5]], [next, prev]}, output: {[Tensor[2]], []}}",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip changed: %q vs %q", p1.String(), p2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not a program")
}

func TestValidateDirect(t *testing.T) {
	bad := Program{
		Input:  DataType{NonRec: []TensorField{{Dims: []int{-1}}}},
		Output: DataType{NonRec: []TensorField{{Dims: []int{2}}}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("negative dimension accepted")
	}
	badRec := Program{
		Input:  DataType{NonRec: []TensorField{{Dims: []int{2}}}, Rec: []string{"BAD"}},
		Output: DataType{NonRec: []TensorField{{Dims: []int{2}}}},
	}
	if err := badRec.Validate(); err == nil {
		t.Error("invalid rec field name accepted")
	}
}

// Property: printing a randomly generated valid program and parsing it back
// yields the same rendering.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	names := []string{"", "field1", "data", "x0", "a_b"}
	recNames := []string{"next", "left", "right", "child0"}
	gen := func(seed int64) Program {
		r := seed
		rnd := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((r >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		mkType := func() DataType {
			var dt DataType
			nFields := rnd(3) + 1
			used := map[string]bool{}
			for i := 0; i < nFields; i++ {
				name := names[rnd(len(names))]
				if used[name] {
					name = ""
				}
				if name != "" {
					used[name] = true
				}
				dims := make([]int, rnd(3)+1)
				for d := range dims {
					dims[d] = rnd(64) + 1
				}
				dt.NonRec = append(dt.NonRec, TensorField{Name: name, Dims: dims})
			}
			nRec := rnd(3)
			for i := 0; i < nRec && i < len(recNames); i++ {
				if !used[recNames[i]] {
					dt.Rec = append(dt.Rec, recNames[i])
					used[recNames[i]] = true
				}
			}
			return dt
		}
		return Program{Input: mkType(), Output: mkType()}
	}
	f := func(seed int64) bool {
		p := gen(seed)
		if p.Validate() != nil {
			return true // skip invalid generations
		}
		parsed, err := Parse(p.String())
		if err != nil {
			return false
		}
		return parsed.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("{input}")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 1 || toks[2].pos != 6 {
		t.Errorf("positions %d,%d,%d", toks[0].pos, toks[1].pos, toks[2].pos)
	}
	if !strings.Contains(tokIdent.String(), "identifier") {
		t.Errorf("tokenKind.String = %q", tokIdent.String())
	}
}

func TestLexerNumberThenIdent(t *testing.T) {
	// "0abc" must lex as a single identifier-ish token, not number+ident,
	// since field names may be [a-z0-9_]*.
	toks, err := lex("0abc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "0abc" {
		t.Errorf("token %+v", toks[0])
	}
}
