package dsl

import (
	"fmt"
	"unicode"
)

// tokenKind enumerates the lexical classes of the DSL.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokDoubleColon
	tokIdent  // field names, "input", "output", "Tensor"
	tokNumber // non-negative integer literal
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDoubleColon:
		return "'::'"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes src. It returns an error on any character outside the DSL's
// alphabet.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			if i+1 < len(src) && src[i+1] == ':' {
				toks = append(toks, token{tokDoubleColon, "::", i})
				i += 2
			} else {
				toks = append(toks, token{tokColon, ":", i})
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			// A digit run followed by identifier characters is part of an
			// identifier (field names may contain digits but not start the
			// token as a pure number followed by letters).
			if j < len(src) && isIdentChar(rune(src[j])) {
				k := j
				for k < len(src) && isIdentChar(rune(src[k])) {
					k++
				}
				toks = append(toks, token{tokIdent, src[i:k], i})
				i = k
			} else {
				toks = append(toks, token{tokNumber, src[i:j], i})
				i = j
			}
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("dsl: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
