package dsl

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

const cachedProg = "{input: {[Tensor[8, 8, 3]], []}, output: {[Tensor[2]], []}}"

func TestParseCachedMatchesParse(t *testing.T) {
	ResetPlanCache()
	want, err := Parse(cachedProg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := ParseCached(cachedProg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lookup %d: cached program differs from Parse:\n got %#v\nwant %#v", i, got, want)
		}
		if got.String() != want.String() {
			t.Fatalf("lookup %d: String() drifted: %q vs %q", i, got.String(), want.String())
		}
	}
}

func TestParseCachedCountsHitsAndMisses(t *testing.T) {
	ResetPlanCache()
	if _, err := ParseCached(cachedProg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := ParseCached(cachedProg); err != nil {
			t.Fatal(err)
		}
	}
	st := PlanCacheStats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 1 miss and 9 hits", st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if hr := st.HitRate(); hr != 0.9 {
		t.Fatalf("hit rate %g, want 0.9", hr)
	}
}

func TestParseCachedDoesNotCacheErrors(t *testing.T) {
	ResetPlanCache()
	for i := 0; i < 3; i++ {
		if _, err := ParseCached("{not a program}"); err == nil {
			t.Fatal("invalid program accepted")
		}
	}
	st := PlanCacheStats()
	if st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (errors never become hits)", st.Misses)
	}
}

func TestPlanCacheEvicts(t *testing.T) {
	SetPlanCacheCapacity(4)
	defer ResetPlanCache()
	progs := make([]string, 8)
	for i := range progs {
		progs[i] = fmt.Sprintf("{input: {[Tensor[%d]], [next]}, output: {[Tensor[2]], []}}", i+2)
		if _, err := ParseCached(progs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := PlanCacheStats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want capacity 4", st.Entries)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
	// The LRU keeps the most recent four; the oldest re-parse is a miss.
	if _, err := ParseCached(progs[7]); err != nil {
		t.Fatal(err)
	}
	if got := PlanCacheStats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1 (most recent program resident)", got)
	}
	if _, err := ParseCached(progs[0]); err != nil {
		t.Fatal(err)
	}
	if got := PlanCacheStats().Hits; got != 1 {
		t.Fatalf("hits = %d after touching evicted program, want still 1", got)
	}
}

func TestPlanCacheLRUOrder(t *testing.T) {
	SetPlanCacheCapacity(2)
	defer ResetPlanCache()
	a := "{input: {[Tensor[2]], [next]}, output: {[Tensor[2]], []}}"
	b := "{input: {[Tensor[3]], [next]}, output: {[Tensor[2]], []}}"
	c := "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}"
	for _, p := range []string{a, b} {
		if _, err := ParseCached(p); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes the LRU victim when c is inserted.
	if _, err := ParseCached(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCached(c); err != nil {
		t.Fatal(err)
	}
	before := PlanCacheStats().Hits
	if _, err := ParseCached(a); err != nil {
		t.Fatal(err)
	}
	if PlanCacheStats().Hits != before+1 {
		t.Fatal("recently-used program was evicted")
	}
	if _, err := ParseCached(b); err != nil {
		t.Fatal(err)
	}
	if PlanCacheStats().Hits != before+1 {
		t.Fatal("least-recently-used program survived past capacity")
	}
}

func TestParseCachedConcurrent(t *testing.T) {
	ResetPlanCache()
	want := MustParse(cachedProg)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src := fmt.Sprintf("{input: {[Tensor[%d]], [next]}, output: {[Tensor[2]], []}}", 2+(i+g)%5)
				if _, err := ParseCached(src); err != nil {
					errs <- err
					return
				}
				got, err := ParseCached(cachedProg)
				if err != nil {
					errs <- err
					return
				}
				if got.String() != want.String() {
					errs <- fmt.Errorf("goroutine %d: cached program drifted to %q", g, got.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := PlanCacheStats()
	if st.Hits+st.Misses != 8*100*2 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*100*2)
	}
}
