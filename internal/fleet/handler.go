package fleet

import (
	"errors"
	"net/http"

	"repro/internal/server"
)

// Handler returns the coordinator's HTTP surface (the /fleet/* endpoints
// listed in the protocol docs). Mount it alongside the service API — the
// easeml facade does — or serve it on a dedicated fleet address.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", c.handleRegister)
	mux.HandleFunc("/fleet/lease", c.handleLease)
	mux.HandleFunc("/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/fleet/complete", c.handleComplete)
	mux.HandleFunc("/fleet/leave", c.handleLeave)
	mux.HandleFunc("/fleet/job", c.handleJob)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.Register(req))
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := c.Complete(req)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if !readJSON(w, r, &req) {
		return
	}
	released, err := c.Leave(req.WorkerID)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LeaveResponse{Released: released})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		server.WriteError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	info, err := c.JobInfo(r.URL.Query().Get("id"))
	if err != nil {
		server.WriteError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// writeFleetError maps coordinator errors onto the service's shared error
// envelope: malformed requests are 400 with code "bad_request" (the sender
// must fix, not retry), unknown workers get their fleet-specific 409 code
// (agents re-register on it), lease conflicts inherit the server mapping,
// and everything else is a 500.
func writeFleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		server.WriteJSON(w, http.StatusBadRequest, server.ErrorBody{Error: err.Error(), Code: CodeBadRequest})
	case errors.Is(err, ErrUnknownWorker):
		server.WriteJSON(w, http.StatusConflict, server.ErrorBody{Error: err.Error(), Code: CodeUnknownWorker})
	case errors.Is(err, server.ErrLeaseConflict):
		server.WriteError(w, http.StatusConflict, err)
	default:
		server.WriteError(w, http.StatusInternalServerError, err)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		server.WriteError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	return server.ReadJSON(w, r, dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	server.WriteJSON(w, status, v)
}
