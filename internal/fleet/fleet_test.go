package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/templates"
)

const tsProgram = "{input: {[Tensor[4]], [next]}, output: {[Tensor[2]], []}}" // 4 candidates

const fleetSeed = 42

func newTestScheduler(t testing.TB) *server.Scheduler {
	t.Helper()
	return server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), fleetSeed), nil, "")
}

// baselineModels runs the serialized single-process strategy to exhaustion
// and returns each job's (candidate → accuracy) map plus its best model.
func baselineModels(t *testing.T, jobs int) map[string]map[string]float64 {
	t.Helper()
	sc := newTestScheduler(t)
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := sc.Submit("base", tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, err := sc.RunRounds(1000); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]map[string]float64, jobs)
	for _, id := range ids {
		st, err := sc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		accs := make(map[string]float64, len(st.Models))
		for _, m := range st.Models {
			accs[m.Name] = m.Accuracy
		}
		out[id] = accs
	}
	return out
}

// blockingExecutor holds every run until its context dies — the shape of a
// worker that hangs (or is killed) mid-training.
type blockingExecutor struct {
	once    sync.Once
	started chan struct{}
}

func newBlockingExecutor() *blockingExecutor {
	return &blockingExecutor{started: make(chan struct{})}
}

func (b *blockingExecutor) Execute(ctx context.Context, _ string, _ templates.Candidate) (float64, float64, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return 0, 0, ctx.Err()
}

// The acceptance end-to-end: a coordinator and three worker agents over
// real HTTP; one worker is killed while holding a lease. The lease must
// expire and re-queue (exactly once), the registry must show the worker
// dead, and the surviving workers must converge to the same models — with
// the same accuracies — as a single-process serialized run.
func TestFleetKillWorkerMidLeaseConvergesLikeSingleProcess(t *testing.T) {
	base := baselineModels(t, 2)

	sc := newTestScheduler(t)
	var jobIDs []string
	for i := 0; i < 2; i++ {
		j, err := sc.Submit("fleet", tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		jobIDs = append(jobIDs, j.ID)
	}

	coord := NewCoordinator(sc, CoordinatorConfig{
		LeaseTTL:          150 * time.Millisecond,
		HeartbeatInterval: 40 * time.Millisecond,
		SweepInterval:     20 * time.Millisecond,
		DeadAfter:         250 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		Seed:              fleetSeed,
	})
	coord.Start()
	defer coord.Stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The doomed worker blocks on its first lease and then dies without a
	// goodbye: no leave, no more heartbeats.
	doomed := newBlockingExecutor()
	doomedAgent, err := NewAgent(AgentConfig{
		Coordinator: srv.URL, Name: "doomed", Devices: 1,
		Executor: doomed, SkipLeaveOnExit: true,
		PollInterval: 5 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	doomedCtx, killDoomed := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = doomedAgent.Run(doomedCtx) }()
	select {
	case <-doomed.started:
	case <-time.After(5 * time.Second):
		t.Fatal("doomed worker never received a lease")
	}
	killDoomed() // mid-lease: its lease must now expire via TTL

	// Two healthy workers grind through the rest.
	healthyCtx, stopHealthy := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		agent, err := NewAgent(AgentConfig{
			Coordinator: srv.URL, Name: "healthy", Devices: 2,
			Executor:     NewSimExecutor(fleetSeed),
			PollInterval: 5 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = agent.Run(healthyCtx) }()
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		done := 0
		for _, id := range jobIDs {
			st, err := sc.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Trained == st.NumCandidates {
				done++
			}
		}
		if done == len(jobIDs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not converge: statuses %+v", fleetTrainedCounts(t, sc, jobIDs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopHealthy()
	wg.Wait()

	// Every candidate trained exactly once across the whole fleet — the
	// expired lease re-entered selection exactly once, no double counting.
	if got, want := sc.Rounds(), 8; got != want {
		t.Errorf("completed %d rounds, want %d (each candidate exactly once)", got, want)
	}
	for _, id := range jobIDs {
		st, err := sc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Models) != len(base[id]) {
			t.Fatalf("job %s trained %d models, baseline %d", id, len(st.Models), len(base[id]))
		}
		for _, m := range st.Models {
			want, ok := base[id][m.Name]
			if !ok {
				t.Errorf("job %s trained %q, absent from baseline", id, m.Name)
			} else if m.Accuracy != want {
				t.Errorf("job %s model %q accuracy %g, baseline %g", id, m.Name, m.Accuracy, want)
			}
		}
	}

	st := coord.FleetStatus()
	if st.ExpiredLeases < 1 {
		t.Errorf("no lease expired despite the killed worker (status %+v)", st)
	}
	// Convergence can beat the DeadAfter horizon; give the sweeper time to
	// notice the silence.
	foundDead := false
	for deadline := time.Now().Add(5 * time.Second); !foundDead && time.Now().Before(deadline); {
		for _, w := range coord.FleetStatus().Workers {
			if w.Name == "doomed" && w.State == WorkerDead {
				foundDead = true
			}
		}
		if !foundDead {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !foundDead {
		t.Errorf("killed worker not marked dead in registry: %+v", coord.FleetStatus().Workers)
	}
}

func fleetTrainedCounts(t *testing.T, sc *server.Scheduler, ids []string) map[string]int {
	t.Helper()
	out := make(map[string]int, len(ids))
	for _, id := range ids {
		st, err := sc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = st.Trained
	}
	return out
}

// Lease-expiry events must survive a crash/recovery cycle: the WAL records
// them, OpenDir returns them, and the recovered scheduler re-queues the
// expired candidate (its arm is simply untried).
func TestLeaseExpiryWALSurvivesCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	log, _, err := storage.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := newTestScheduler(t)
	if err := sc.Recover(nil, log); err != nil {
		t.Fatal(err)
	}
	job, err := sc.Submit("a", tsProgram)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	sc.SetClock(clock)
	sc.SetLeaseTTL(time.Second)

	work, err := sc.PickWork(1)
	if err != nil || len(work) != 1 {
		t.Fatalf("PickWork: %v %v", work, err)
	}
	if err := sc.AssignLease(work[0], "worker-0001"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	expired, err := sc.ExpireLeases()
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0].Worker != "worker-0001" {
		t.Fatalf("expired %+v", expired)
	}
	// A late Complete from the silent worker is a conflict, not a result.
	if err := sc.Complete(work[0], 0.9, 1); err == nil {
		t.Error("Complete after expiry accepted")
	}
	if err := log.Close(); err != nil { // crash boundary
		t.Fatal(err)
	}

	log2, rec, err := storage.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(rec.Expired) != 1 {
		t.Fatalf("recovered %d expiry records, want 1 (%+v)", len(rec.Expired), rec.Expired)
	}
	exp := rec.Expired[0]
	if exp.Job != job.ID || exp.Candidate != work[0].Candidate.Name() || exp.Worker != "worker-0001" {
		t.Errorf("recovered expiry %+v", exp)
	}
	// The recovered scheduler re-queues the candidate: its arm is untried.
	sc2 := newTestScheduler(t)
	if err := sc2.Recover(rec, log2); err != nil {
		t.Fatal(err)
	}
	again, err := sc2.PickWork(4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range again {
		if l.JobID == job.ID && l.Candidate.Name() == work[0].Candidate.Name() {
			found = true
		}
	}
	if !found {
		t.Errorf("expired candidate %s not re-queued after recovery", work[0].Candidate.Name())
	}
}

// Heartbeats keep a lease alive past its nominal TTL; silence expires it.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	sc := newTestScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tick := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	sc.SetClock(clock)
	sc.SetLeaseTTL(time.Second)

	work, err := sc.PickWork(1)
	if err != nil || len(work) != 1 {
		t.Fatalf("PickWork: %v %v", work, err)
	}
	if err := sc.AssignLease(work[0], "worker-0001"); err != nil {
		t.Fatal(err)
	}
	// Unassigned leases (the in-process engine's) never expire, no matter
	// how silent: only worker-held leases are subject to the TTL.
	if _, err := sc.Submit("b", tsProgram); err != nil {
		t.Fatal(err)
	}
	local, err := sc.PickWork(2)
	if err != nil || len(local) != 1 {
		t.Fatalf("PickWork for local lease: %v %v", local, err)
	}
	for i := 0; i < 5; i++ {
		tick(800 * time.Millisecond) // below the TTL each step, past it in sum
		if err := sc.HeartbeatLease(work[0].ID); err != nil {
			t.Fatal(err)
		}
		if expired, _ := sc.ExpireLeases(); len(expired) != 0 {
			t.Fatalf("lease expired despite heartbeats at step %d", i)
		}
	}
	tick(1200 * time.Millisecond) // now go silent past the TTL
	expired, err := sc.ExpireLeases()
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 {
		t.Fatalf("silent lease did not expire (got %d)", len(expired))
	}
	if err := sc.HeartbeatLease(work[0].ID); err == nil {
		t.Error("heartbeat for an expired lease accepted")
	}
}

// Double-reporting a lease over HTTP must answer 409 with the
// lease_conflict code — workers racing on retries drop the loser.
func TestDoubleCompleteIs409Conflict(t *testing.T) {
	sc := newTestScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(sc, CoordinatorConfig{Seed: fleetSeed})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	pc := newProtoClient(srv.URL, nil)
	ctx := context.Background()

	reg, err := pc.register(ctx, RegisterRequest{Name: "w", Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Seed != fleetSeed {
		t.Errorf("advertised seed %d, want %d", reg.Seed, fleetSeed)
	}
	lr, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID, Max: 1})
	leases := lr.Leases
	if err != nil || len(leases) != 1 {
		t.Fatalf("lease: %v %v", leases, err)
	}
	first := CompleteRequest{WorkerID: reg.WorkerID, LeaseID: leases[0].LeaseID, Accuracy: 0.7, Cost: 10}
	if _, err := pc.complete(ctx, first); err != nil {
		t.Fatal(err)
	}
	_, err = pc.complete(ctx, first)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Status != 409 || pe.Code != server.CodeLeaseConflict {
		t.Errorf("double complete: got %v, want 409 %s", err, server.CodeLeaseConflict)
	}
	// Unknown worker ids answer 409 unknown_worker — the re-register signal.
	_, err = pc.lease(ctx, LeaseRequest{WorkerID: "worker-9999", Max: 1})
	if !IsCode(err, CodeUnknownWorker) {
		t.Errorf("lease for unknown worker: got %v, want code %s", err, CodeUnknownWorker)
	}
}

// A graceful leave releases the worker's leases immediately instead of
// waiting out the TTL, and the registry records the departure.
func TestGracefulLeaveRequeuesImmediately(t *testing.T) {
	sc := newTestScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(sc, CoordinatorConfig{LeaseTTL: time.Hour, Seed: fleetSeed})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	blocker := newBlockingExecutor()
	agent, err := NewAgent(AgentConfig{
		Coordinator: srv.URL, Name: "leaver", Devices: 1, Executor: blocker,
		PollInterval: 5 * time.Millisecond, HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = agent.Run(ctx) }()
	select {
	case <-blocker.started:
	case <-time.After(5 * time.Second):
		t.Fatal("agent never received a lease")
	}
	if sc.InFlight() != 1 {
		t.Fatalf("in-flight %d, want 1", sc.InFlight())
	}
	cancel()
	<-done
	if sc.InFlight() != 0 {
		t.Errorf("leave did not release the lease (in-flight %d)", sc.InFlight())
	}
	st := coord.FleetStatus()
	if st.Left != 1 {
		t.Errorf("registry shows %d departed workers, want 1 (%+v)", st.Left, st.Workers)
	}
	// The released candidate is selectable again.
	again, err := sc.PickWork(1)
	if err != nil || len(again) != 1 {
		t.Errorf("re-lease after leave: %v %v", again, err)
	}
}

// A coordinator restart (in-memory registry lost, possibly new seed and
// recycled job ids) must not poison a long-lived agent: on unknown_worker
// it re-registers exactly once, rebuilds its default executor on the new
// seed and drops its per-job candidate cache, so post-restart results
// match what the new coordinator's own trainer would produce.
func TestAgentSurvivesCoordinatorRestart(t *testing.T) {
	var handler atomic.Value // http.Handler: swapped to simulate the restart
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	sc1 := newTestScheduler(t)
	if _, err := sc1.Submit("first", tsProgram); err != nil {
		t.Fatal(err)
	}
	coord1 := NewCoordinator(sc1, CoordinatorConfig{Seed: fleetSeed})
	handler.Store(coord1.Handler())

	agent, err := NewAgent(AgentConfig{
		Coordinator: srv.URL, Name: "survivor", Devices: 1,
		PollInterval: 5 * time.Millisecond, HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = agent.Run(ctx) }()
	waitDrained := func(sc *server.Scheduler) {
		t.Helper()
		for deadline := time.Now().Add(10 * time.Second); ; {
			st, err := sc.Status("job-0001")
			if err != nil {
				t.Fatal(err)
			}
			if st.Trained == st.NumCandidates {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("agent never drained the job: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDrained(sc1)

	// "Restart" the coordinator: fresh scheduler on a different seed, the
	// same job id naming a different training surface.
	const newSeed = 99
	sc2 := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), newSeed), nil, "")
	if _, err := sc2.Submit("second", tsProgram); err != nil {
		t.Fatal(err)
	}
	coord2 := NewCoordinator(sc2, CoordinatorConfig{Seed: newSeed})
	handler.Store(coord2.Handler())
	waitDrained(sc2)
	cancel()
	<-done

	// The post-restart results must equal what sc2's own trainer produces
	// — a stale seed-42 executor or candidate cache would diverge.
	baseline := server.NewScheduler(server.NewSimTrainer(cluster.NewPool(8, 0.9), newSeed), nil, "")
	if _, err := baseline.Submit("second", tsProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.RunRounds(100); err != nil {
		t.Fatal(err)
	}
	want, _ := baseline.Status("job-0001")
	got, _ := sc2.Status("job-0001")
	accs := make(map[string]float64, len(want.Models))
	for _, m := range want.Models {
		accs[m.Name] = m.Accuracy
	}
	for _, m := range got.Models {
		if accs[m.Name] != m.Accuracy {
			t.Errorf("post-restart %q accuracy %g, want %g (stale executor state?)", m.Name, m.Accuracy, accs[m.Name])
		}
	}
	// Exactly one re-registration: the ghost-free registry shows one
	// worker on the new coordinator.
	if st := coord2.FleetStatus(); len(st.Workers) != 1 || st.Workers[0].Completed != 4 {
		t.Errorf("post-restart registry %+v, want exactly one worker with 4 completions", st.Workers)
	}
}

// Priority preemption end-to-end over the wire: a best-effort tenant
// saturates the in-flight cap, a guaranteed job arrives, and the next
// lease poll reclaims one best-effort lease — the heartbeat carries the
// explicit preemption signal, the late report bounces off 409
// lease_conflict, and the fleet counters record the preemption.
func TestPreemptionOverWire(t *testing.T) {
	sc := newTestScheduler(t)
	ctrl, err := admission.NewController(admission.Config{Tenants: map[string]admission.Quota{
		"alice": {Class: admission.ClassGuaranteed},
		"carol": {Class: admission.ClassBestEffort},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sc.SetAdmission(ctrl)
	coord := NewCoordinator(sc, CoordinatorConfig{Seed: fleetSeed, MaxInFlight: 2})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	pc := newProtoClient(srv.URL, nil)
	ctx := context.Background()

	if _, err := sc.Submit("carol", tsProgram); err != nil {
		t.Fatal(err)
	}
	reg, err := pc.register(ctx, RegisterRequest{Name: "w", Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID, Max: 2})
	leases := lr.Leases
	if err != nil || len(leases) != 2 {
		t.Fatalf("lease: %v %v", leases, err)
	}

	// Guaranteed work arrives while the cap is saturated; the next poll
	// preempts one best-effort lease and can grant the freed slot.
	if _, err := sc.Submit("alice", tsProgram); err != nil {
		t.Fatal(err)
	}
	rr, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	regrant := rr.Leases
	if len(regrant) != 1 {
		t.Fatalf("post-preemption poll granted %d leases, want 1", len(regrant))
	}

	// Exactly one of the two original leases was preempted (the newest);
	// the heartbeat names it.
	hb, err := pc.heartbeat(ctx, HeartbeatRequest{
		WorkerID: reg.WorkerID,
		LeaseIDs: []int{leases[0].LeaseID, leases[1].LeaseID, regrant[0].LeaseID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Preempted) != 1 || hb.Preempted[0] != leases[1].LeaseID {
		t.Fatalf("heartbeat preempted %v, want [%d]", hb.Preempted, leases[1].LeaseID)
	}
	if len(hb.KnownLeases) != 2 {
		t.Fatalf("known leases %v, want the surviving two", hb.KnownLeases)
	}
	// The signal is delivered once, then cleared.
	hb2, err := pc.heartbeat(ctx, HeartbeatRequest{WorkerID: reg.WorkerID})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb2.Preempted) != 0 {
		t.Errorf("preemption signal not cleared: %v", hb2.Preempted)
	}

	// The late report for the preempted lease loses with 409.
	_, err = pc.complete(ctx, CompleteRequest{WorkerID: reg.WorkerID, LeaseID: leases[1].LeaseID, Accuracy: 0.5, Cost: 1})
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Status != 409 {
		t.Fatalf("late complete after preemption: %v, want 409", err)
	}

	st := coord.FleetStatus()
	if st.PreemptedLeases != 1 {
		t.Errorf("fleet preempted %d, want 1", st.PreemptedLeases)
	}
	if len(st.Workers) != 1 || st.Workers[0].PreemptedLeases != 1 {
		t.Errorf("worker preemption tally %+v", st.Workers)
	}
	// No preemption without starved guaranteed demand: drain every
	// unleased arm (alice's and carol's) through the regular lease cycle;
	// a direct preemption pass must then leave carol's surviving original
	// lease alone even though it is still preemptible by class.
	for _, wl := range regrant {
		if _, err := pc.complete(ctx, CompleteRequest{WorkerID: reg.WorkerID, LeaseID: wl.LeaseID, Accuracy: 0.6, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		mr, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID, Max: 1})
		if err != nil {
			t.Fatal(err)
		}
		more := mr.Leases
		if len(more) == 0 {
			break
		}
		for _, wl := range more {
			if _, err := pc.complete(ctx, CompleteRequest{WorkerID: reg.WorkerID, LeaseID: wl.LeaseID, Accuracy: 0.6, Cost: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if coord.Preempt() {
		t.Fatal("preemption fired without starved guaranteed demand")
	}
	if st := coord.FleetStatus(); st.PreemptedLeases != 1 {
		t.Errorf("preemption tally moved to %d without demand", st.PreemptedLeases)
	}
}
