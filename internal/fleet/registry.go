package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// Worker lifecycle states.
const (
	// WorkerAlive: registered and heartbeating.
	WorkerAlive = "alive"
	// WorkerDead: silent past the dead-after horizon; its leases expire by
	// TTL. A heartbeat from a dead worker revives it (it was slow, not
	// gone).
	WorkerDead = "dead"
	// WorkerLeft: deregistered gracefully via /fleet/leave. Terminal — a
	// departed worker re-registers under a fresh id.
	WorkerLeft = "left"
)

// ErrUnknownWorker is returned for requests naming a worker id the
// registry does not know (never registered, or gone after /fleet/leave);
// the HTTP layer maps it to 409 with CodeUnknownWorker so agents
// re-register.
var ErrUnknownWorker = fmt.Errorf("fleet: unknown worker")

// workerEntry is the registry's record of one worker.
type workerEntry struct {
	id         string
	name       string
	devices    int
	alpha      float64
	state      string
	registered time.Time
	lastBeat   time.Time
	inFlight   map[int]bool // outstanding lease ids
	completed  int64
	failures   int64
	expired    int64
	preempted  int64
}

// registry tracks the fleet's workers: join/leave/dead transitions, per-
// worker in-flight leases and failure tallies. It is the bookkeeping half
// of the coordinator; lease state itself lives in the scheduler.
type registry struct {
	mu        sync.Mutex
	now       func() time.Time
	deadAfter time.Duration // silence before a worker is marked dead
	// evictAfter bounds registry growth: departed and dead workers with no
	// in-flight leases are dropped entirely once silent this long, so
	// re-register churn (every coordinator blip adds a fresh worker id)
	// cannot grow the registry and the /admin/fleet payload forever.
	evictAfter time.Duration
	nextID     int
	workers    map[string]*workerEntry
}

func newRegistry(deadAfter time.Duration, now func() time.Time) *registry {
	evictAfter := 10 * deadAfter
	if evictAfter < 5*time.Minute {
		// A floor keeps just-departed workers visible to operators (and
		// deterministic in fast tests) regardless of how short the TTL is.
		evictAfter = 5 * time.Minute
	}
	return &registry{now: now, deadAfter: deadAfter, evictAfter: evictAfter, workers: make(map[string]*workerEntry)}
}

// register adds a worker and returns its assigned id.
func (r *registry) register(name string, devices int, alpha float64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := fmt.Sprintf("worker-%04d", r.nextID)
	now := r.now()
	r.workers[id] = &workerEntry{
		id: id, name: name, devices: devices, alpha: alpha,
		state: WorkerAlive, registered: now, lastBeat: now,
		inFlight: make(map[int]bool),
	}
	return id
}

// heartbeat refreshes a worker's liveness, reviving a dead worker (slow,
// not gone). It errors on unknown or departed workers.
func (r *registry) heartbeat(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, err := r.activeLocked(id)
	if err != nil {
		return err
	}
	w.lastBeat = r.now()
	w.state = WorkerAlive
	return nil
}

// activeLocked resolves a worker that can still participate (alive or
// dead-but-revivable). Callers hold r.mu.
func (r *registry) activeLocked(id string) (*workerEntry, error) {
	w, ok := r.workers[id]
	if !ok || w.state == WorkerLeft {
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	return w, nil
}

// leaseAssigned records a lease handed to a worker (which also proves the
// worker is talking to us — refresh its liveness).
func (r *registry) leaseAssigned(id string, leaseID int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, err := r.activeLocked(id)
	if err != nil {
		return err
	}
	w.inFlight[leaseID] = true
	w.lastBeat = r.now()
	w.state = WorkerAlive
	return nil
}

// leaseSettled drops a lease from a worker's in-flight set and tallies the
// outcome ("completed", "released"/"abandoned" count as failures of the
// run, "expired" as a reclaim). Unknown workers are ignored — settlement
// bookkeeping must never fail the settlement itself.
func (r *registry) leaseSettled(id string, leaseID int, outcome string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return
	}
	delete(w.inFlight, leaseID)
	switch outcome {
	case "completed":
		w.completed++
	case "expired":
		w.expired++
	case "preempted": // reclaimed for priority work: no fault of the worker
		w.preempted++
	default: // released, abandoned: a failed run either way
		w.failures++
	}
}

// leave marks a worker departed and returns its outstanding lease ids for
// the coordinator to release.
func (r *registry) leave(id string) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, err := r.activeLocked(id)
	if err != nil {
		return nil, err
	}
	w.state = WorkerLeft
	ids := make([]int, 0, len(w.inFlight))
	for leaseID := range w.inFlight {
		ids = append(ids, leaseID)
	}
	w.inFlight = make(map[int]bool)
	sort.Ints(ids)
	return ids, nil
}

// sweepDead marks alive workers silent past deadAfter as dead, and evicts
// dead/departed workers with nothing in flight once silent past
// evictAfter. Leases are not touched here — lease reclaim is the TTL's job
// — this only keeps the registry's operator view honest and bounded.
func (r *registry) sweepDead() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deadAfter <= 0 {
		return
	}
	now := r.now()
	deadHorizon := now.Add(-r.deadAfter)
	evictHorizon := now.Add(-r.evictAfter)
	for id, w := range r.workers {
		if w.state == WorkerAlive && w.lastBeat.Before(deadHorizon) {
			w.state = WorkerDead
		}
		if w.state != WorkerAlive && len(w.inFlight) == 0 && w.lastBeat.Before(evictHorizon) {
			delete(r.workers, id)
		}
	}
}

// snapshot renders the registry for the admin surface, workers in
// registration order.
func (r *registry) snapshot() []server.FleetWorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]server.FleetWorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		st := server.FleetWorkerStatus{
			ID: w.id, Name: w.name, Devices: w.devices, Alpha: w.alpha,
			State: w.state, InFlight: len(w.inFlight),
			Completed: w.completed, Failures: w.failures, ExpiredLeases: w.expired,
			PreemptedLeases:    w.preempted,
			LastHeartbeatAgeMS: float64(now.Sub(w.lastBeat)) / float64(time.Millisecond),
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
