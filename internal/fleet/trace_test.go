package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: slog handlers write from the
// agent's goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// tracesIn collects the trace IDs of JSON log lines whose msg matches.
func tracesIn(t *testing.T, logOutput, msg string) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(logOutput))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if m["msg"] != msg {
			continue
		}
		if trace, ok := m["trace"].(string); ok && trace != "" {
			out[trace] = true
		}
	}
	return out
}

// One lease's trace ID must surface in BOTH processes' structured logs: the
// coordinator mints it at pick time (lease granted / lease settled) and the
// worker carries it through execution (run completed). This is the
// end-to-end contract of the X-Easeml-Trace propagation scheme.
func TestLeaseTracePropagatesToCoordinatorAndWorkerLogs(t *testing.T) {
	sc := newTestScheduler(t)
	if _, err := sc.Submit("trace", tsProgram); err != nil {
		t.Fatal(err)
	}

	var coordBuf, workerBuf syncBuffer
	coord := NewCoordinator(sc, CoordinatorConfig{
		LeaseTTL:          2 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		SweepInterval:     25 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		Seed:              fleetSeed,
		Logger:            slog.New(slog.NewJSONHandler(&coordBuf, nil)),
	})
	coord.Start()
	defer coord.Stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	agent, err := NewAgent(AgentConfig{
		Coordinator: srv.URL,
		Name:        "tracer",
		Logger:      slog.New(slog.NewJSONHandler(&workerBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Run(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for agent.Completed() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
	if agent.Completed() == 0 {
		t.Fatal("no lease completed within the deadline")
	}

	granted := tracesIn(t, coordBuf.String(), "lease granted")
	settled := tracesIn(t, coordBuf.String(), "lease settled")
	worker := tracesIn(t, workerBuf.String(), "run completed")
	if len(granted) == 0 {
		t.Fatal("coordinator log has no 'lease granted' lines with trace IDs")
	}
	if len(worker) == 0 {
		t.Fatal("worker log has no 'run completed' lines with trace IDs")
	}
	shared := ""
	for trace := range worker {
		if granted[trace] {
			shared = trace
			break
		}
	}
	if shared == "" {
		t.Fatalf("no trace ID shared between coordinator grants %v and worker completions %v", granted, worker)
	}
	if !settled[shared] {
		t.Errorf("trace %s completed on the worker but has no coordinator 'lease settled' line", shared)
	}
}
