package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsl"
	"repro/internal/telemetry"
	"repro/internal/templates"
)

// AgentConfig parameterizes a worker agent. Zero values select the
// defaults noted per field.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL (required), e.g.
	// "http://coordinator:9001".
	Coordinator string
	// Name is the operator-facing worker name (default: the hostname).
	Name string
	// Devices is how many leases the agent executes concurrently
	// (default 1).
	Devices int
	// Alpha is the advertised multi-device scaling exponent (default 0.9).
	Alpha float64
	// Executor runs the leased candidates. Nil selects a SimExecutor on
	// the coordinator-advertised seed — the default trainsim substrate,
	// which reproduces the coordinator's surfaces exactly.
	Executor Executor
	// HTTPClient overrides the protocol transport (default
	// http.DefaultClient; per-request deadlines come from contexts, so no
	// global timeout is imposed).
	HTTPClient *http.Client
	// PollInterval overrides the coordinator-advertised idle poll period.
	PollInterval time.Duration
	// HeartbeatInterval overrides the coordinator-advertised heartbeat
	// period.
	HeartbeatInterval time.Duration
	// SkipLeaveOnExit suppresses the graceful /fleet/leave on shutdown, so
	// outstanding leases wait out their TTL instead of being re-queued
	// immediately — the behaviour of a crashed worker (tests and the
	// kill-a-worker demo use it; real agents should leave gracefully).
	SkipLeaveOnExit bool
	// DisableSpeculative turns off worker-side posterior caching and
	// speculative lease proposals (the default — zero value — is
	// speculation ON): the agent falls back to plain polling. Wired to
	// easeml-worker's -speculative=false.
	DisableSpeculative bool
	// Logger, when set, receives structured agent diagnostics; run
	// lifecycle events carry the lease's trace ID. Nil keeps the agent
	// silent.
	Logger *slog.Logger
}

// Agent is one fleet worker: it registers with the coordinator, polls for
// leases, executes them through the configured Executor with Devices-way
// concurrency, streams heartbeats, and reports results. Run drives the
// whole lifecycle; an agent whose context is cancelled leaves gracefully
// (unless SkipLeaveOnExit), releasing its leases for immediate re-queueing.
type Agent struct {
	cfg    AgentConfig
	client *protoClient

	heartbeatEvery time.Duration
	pollEvery      time.Duration

	// regMu single-flights (re-)registration: the poll loop and the
	// heartbeat loop can both see unknown_worker after a coordinator
	// restart, and racing registrations would leave a ghost worker id in
	// the registry.
	regMu sync.Mutex

	mu       sync.Mutex
	workerID string
	epoch    int // bumped on each (re-)registration
	// exec is the live executor; ownExec marks the agent-built default
	// (SimExecutor on the coordinator's seed), which is rebuilt on every
	// re-registration in case the coordinator came back with a new seed.
	exec    Executor
	ownExec bool
	// jobs caches each job's candidate surface. It is dropped on
	// re-registration: after a coordinator restart a recycled job id may
	// name a different program, and stale candidates would corrupt results.
	jobs    map[string]map[string]templates.Candidate // job → candidate name → candidate
	running map[int]context.CancelFunc                // lease id → abort
	// posteriors caches the coordinator-shipped posterior surface per job —
	// the state speculative proposals are scored against. Updated from
	// every LeaseResponse and CompleteResponse, dropped on re-registration
	// (a restarted coordinator may recycle job ids with different
	// programs). Empty when DisableSpeculative.
	posteriors map[string]*postSurface
	// postVersion is the coordinator's global surface version from the
	// last full posterior sync (LeaseResponse.PosteriorVersion); echoed in
	// lease requests so an unchanged coordinator answers the resync check
	// with one integer comparison. Zero until the first sync and after
	// re-registration.
	postVersion uint64

	slotFree chan struct{} // kicks the poll loop when an execution settles

	completed atomic.Int64
	failed    atomic.Int64
}

// NewAgent validates the configuration and builds an agent (not yet
// registered; Run does that).
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: AgentConfig.Coordinator is required")
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.9
	}
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		cfg.Name = host
	}
	return &Agent{
		cfg:        cfg,
		client:     newProtoClient(cfg.Coordinator, cfg.HTTPClient),
		exec:       cfg.Executor,
		ownExec:    cfg.Executor == nil,
		jobs:       make(map[string]map[string]templates.Candidate),
		running:    make(map[int]context.CancelFunc),
		posteriors: make(map[string]*postSurface),
		slotFree:   make(chan struct{}, 1),
	}, nil
}

// postSurface is the agent's view of one job's posterior: the UCB per arm
// at a given epoch, with open marking the proposable (untried, unleased)
// arms. done jobs stay in the map so their epoch keeps riding
// PosteriorEpochs — dropping them would make the coordinator re-send the
// delta on every poll.
type postSurface struct {
	epoch uint64
	ucb   []float64
	open  []bool
	done  bool
}

// Completed returns how many runs the agent has reported successfully.
func (a *Agent) Completed() int64 { return a.completed.Load() }

// Failed returns how many runs ended in an executor error.
func (a *Agent) Failed() int64 { return a.failed.Load() }

// WorkerID returns the coordinator-assigned id (empty before the first
// registration succeeds).
func (a *Agent) WorkerID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.workerID
}

// Run executes the agent until ctx is cancelled: register, then loop
// polling for leases and executing them, with a background heartbeat
// stream. It returns nil on a clean shutdown and the registration error
// when the coordinator is never reachable.
func (a *Agent) Run(ctx context.Context) error {
	if err := a.register(ctx); err != nil {
		return err
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		a.heartbeatLoop(hbCtx)
	}()

	var execWG sync.WaitGroup
	idle := 0 // consecutive empty polls; drives the jittered backoff
	for ctx.Err() == nil {
		granted := a.pollOnce(ctx, &execWG)
		if ctx.Err() != nil {
			break
		}
		if granted {
			idle = 0
			continue // slots may still be free; poll again immediately
		}
		idle++
		timer := time.NewTimer(idleBackoff(a.pollEvery, idle))
		select {
		case <-ctx.Done():
			timer.Stop()
		case <-a.slotFree:
			timer.Stop()
		case <-timer.C:
		}
	}

	// Shutdown: abort in-flight executions, stop heartbeating, and (unless
	// configured to die hard) hand the leases back so they re-queue now
	// rather than at TTL expiry.
	a.mu.Lock()
	for _, cancel := range a.running {
		cancel()
	}
	a.mu.Unlock()
	execWG.Wait()
	stopHB()
	hbDone.Wait()
	if !a.cfg.SkipLeaveOnExit {
		leaveCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := a.client.leave(leaveCtx, a.WorkerID()); err != nil {
			a.logWarn("leave failed", "name", a.cfg.Name, "err", err)
		}
	}
	return nil
}

// register joins the fleet (retrying until ctx is cancelled) and adopts
// the advertised cadence and seed. Concurrent callers coalesce: whoever
// arrives while a registration is in flight waits for it and reuses its
// result instead of registering a second worker id.
func (a *Agent) register(ctx context.Context) error {
	a.mu.Lock()
	before := a.epoch
	a.mu.Unlock()
	a.regMu.Lock()
	defer a.regMu.Unlock()
	a.mu.Lock()
	done := a.epoch != before // someone re-registered while we waited
	a.mu.Unlock()
	if done {
		return nil
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("fleet: registering with %s: %w", a.cfg.Coordinator, lastErr)
			}
			return err
		}
		resp, err := a.client.register(ctx, RegisterRequest{
			Name: a.cfg.Name, Devices: a.cfg.Devices, Alpha: a.cfg.Alpha,
		})
		if err == nil {
			a.adoptRegistration(resp)
			a.logInfo("registered with coordinator",
				"name", a.cfg.Name, "worker", resp.WorkerID, "heartbeat", a.heartbeatEvery, "poll", a.pollEvery)
			return nil
		}
		lastErr = err
		delay := time.Duration(attempt+1) * 100 * time.Millisecond
		if delay > time.Second {
			delay = time.Second
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
		case <-timer.C:
		}
	}
}

// adoptRegistration installs a registration reply: worker id, cadence, and
// the default executor on the coordinator's seed. Registering again (after
// the coordinator evicted us) aborts every run held under the old id —
// their leases are no longer ours to settle — and drops all per-job state:
// a restarted coordinator may recycle job ids for different programs or
// advertise a different seed, so the candidate cache and the agent-owned
// executor are rebuilt from scratch. Only the cadence is kept from the
// first registration (Run's poll loop and the heartbeat ticker read it
// lock-free).
func (a *Agent) adoptRegistration(resp RegisterResponse) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.workerID = resp.WorkerID
	a.epoch++
	for _, cancel := range a.running {
		cancel()
	}
	if a.ownExec {
		a.exec = NewSimExecutor(resp.Seed)
	}
	a.jobs = make(map[string]map[string]templates.Candidate)
	a.posteriors = make(map[string]*postSurface)
	a.postVersion = 0
	if a.epoch > 1 {
		return
	}
	a.heartbeatEvery = a.cfg.HeartbeatInterval
	if a.heartbeatEvery <= 0 {
		a.heartbeatEvery = time.Duration(resp.HeartbeatMS * float64(time.Millisecond))
	}
	if a.heartbeatEvery <= 0 {
		a.heartbeatEvery = time.Second
	}
	a.pollEvery = a.cfg.PollInterval
	if a.pollEvery <= 0 {
		a.pollEvery = time.Duration(resp.PollMS * float64(time.Millisecond))
	}
	if a.pollEvery <= 0 {
		a.pollEvery = 250 * time.Millisecond
	}
}

// pollOnce asks for leases up to the free device count and launches an
// execution per grant; it reports whether any lease was granted.
func (a *Agent) pollOnce(ctx context.Context, execWG *sync.WaitGroup) bool {
	a.mu.Lock()
	free := a.cfg.Devices - len(a.running)
	workerID, epoch, exec := a.workerID, a.epoch, a.exec
	a.mu.Unlock()
	if free <= 0 {
		return false
	}
	proposals, epochs, version := a.buildProposals(free)
	resp, err := a.client.lease(ctx, LeaseRequest{
		WorkerID: workerID, Max: free, Proposals: proposals,
		PosteriorEpochs: epochs, PosteriorVersion: version,
	})
	if err != nil {
		if IsCode(err, CodeUnknownWorker) {
			a.logInfo("coordinator does not know us; re-registering", "name", a.cfg.Name)
			_ = a.register(ctx)
		} else if ctx.Err() == nil {
			a.logWarn("lease poll failed", "name", a.cfg.Name, "err", err)
		}
		return false
	}
	a.adoptPosteriors(workerID, resp.Posteriors, resp.PosteriorVersion)
	leases := resp.Leases
	for _, wl := range leases {
		cand, err := a.resolveCandidate(ctx, exec, epoch, wl.JobID, wl.Candidate)
		if err != nil {
			// Unresolvable work: report the failure so the coordinator can
			// retry it elsewhere (or abandon it).
			run := telemetry.NewSpanAt(wl.Trace, wl.Span, opWorkerRun, time.Now())
			run.SetAttr("job", wl.JobID)
			run.SetAttr("worker", a.cfg.Name)
			run.Fail(err)
			run.End()
			a.report(CompleteRequest{WorkerID: workerID, LeaseID: wl.LeaseID, Error: err.Error(),
				Spans: []telemetry.SpanData{run.Data()}}, wl.Trace)
			continue
		}
		runCtx, cancel := context.WithCancel(ctx)
		a.mu.Lock()
		if a.epoch != epoch { // re-registered mid-poll; these grants are stale
			a.mu.Unlock()
			cancel()
			return false
		}
		a.running[wl.LeaseID] = cancel
		a.mu.Unlock()
		execWG.Add(1)
		go func(wl WireLease, cand templates.Candidate, runCtx context.Context, cancel context.CancelFunc) {
			defer execWG.Done()
			defer cancel()
			a.execute(runCtx, exec, workerID, wl, cand)
		}(wl, cand, runCtx, cancel)
	}
	return len(leases) > 0
}

// buildProposals ranks the cached posteriors' open arms and returns up to
// free speculative proposals, plus the known-epoch map the coordinator
// diffs for resync and the global surface version of the last full sync.
// Ordering: affinity first (jobs whose candidate surface this agent already
// resolved — re-leasing those skips the plan fetch and reuses the
// executor's registration), then UCB descending, then (job, arm) as a
// deterministic tie-break. Nil when speculation is off or nothing is cached
// yet — the poll is then exactly the legacy protocol.
func (a *Agent) buildProposals(free int) ([]LeaseProposal, map[string]uint64, uint64) {
	if a.cfg.DisableSpeculative || free <= 0 {
		return nil, nil, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.posteriors) == 0 {
		return nil, nil, a.postVersion
	}
	epochs := make(map[string]uint64, len(a.posteriors))
	type scored struct {
		LeaseProposal
		ucb      float64
		affinity bool
	}
	var cands []scored
	for id, s := range a.posteriors {
		epochs[id] = s.epoch
		if s.done {
			continue
		}
		_, affinity := a.jobs[id]
		for arm, open := range s.open {
			if open {
				cands = append(cands, scored{LeaseProposal{JobID: id, Arm: arm, Epoch: s.epoch}, s.ucb[arm], affinity})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].affinity != cands[j].affinity {
			return cands[i].affinity
		}
		if cands[i].ucb != cands[j].ucb {
			return cands[i].ucb > cands[j].ucb
		}
		if cands[i].JobID != cands[j].JobID {
			return cands[i].JobID < cands[j].JobID
		}
		return cands[i].Arm < cands[j].Arm
	})
	if len(cands) > free {
		cands = cands[:free]
	}
	props := make([]LeaseProposal, len(cands))
	for i, c := range cands {
		props[i] = c.LeaseProposal
	}
	return props, epochs, a.postVersion
}

// adoptPosteriors installs coordinator-shipped posterior deltas into the
// cache, plus the global surface version the diff was answered at (zero
// leaves the stored version alone — the Complete piggyback carries one
// job's delta, not a full sync point). workerID is the id the reply was
// requested under: if the agent re-registered in the meantime the deltas
// describe a coordinator state the new registration already resynced from
// scratch, so they are dropped.
func (a *Agent) adoptPosteriors(workerID string, ps []JobPosterior, version uint64) {
	if a.cfg.DisableSpeculative {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.workerID != workerID {
		return
	}
	if version != 0 {
		a.postVersion = version
	}
	for i := range ps {
		p := &ps[i]
		if p.Done {
			a.posteriors[p.JobID] = &postSurface{epoch: p.Epoch, done: true}
			continue
		}
		s := &postSurface{epoch: p.Epoch, ucb: p.UCB, open: make([]bool, len(p.UCB))}
		for k := range s.open {
			s.open[k] = true
		}
		for _, k := range p.Tried {
			if k >= 0 && k < len(s.open) {
				s.open[k] = false
			}
		}
		for _, k := range p.Leased {
			if k >= 0 && k < len(s.open) {
				s.open[k] = false
			}
		}
		a.posteriors[p.JobID] = s
	}
}

// idleBackoff is the delay before the next poll after the streak-th
// consecutive empty one: base·2^(streak−1), capped at 16×base, with ±25%
// jitter so an idle fleet's polls spread out instead of hammering the
// coordinator in lockstep. Any grant resets the streak, and a settling
// local run still wakes the loop immediately via slotFree.
func idleBackoff(base time.Duration, streak int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	d := base
	for i := 1; i < streak && d < 16*base; i++ {
		d *= 2
	}
	if d > 16*base {
		d = 16 * base
	}
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}

// execute runs one lease and reports the outcome. The lease stays in the
// running set — and therefore in the heartbeat's LeaseIDs, keeping its TTL
// refreshed — until the report settles, so a transient coordinator outage
// during report retries cannot expire a lease whose work is already done.
// A run whose context was cancelled (lease lost, shutdown) is not
// reported: its lease is either already reclaimed or about to be released
// by the graceful leave.
func (a *Agent) execute(ctx context.Context, exec Executor, workerID string, wl WireLease, cand templates.Candidate) {
	// The run span parents to the lease's root span on the coordinator
	// (wl.Span) and ships back inside the completion report, so the
	// coordinator's flight recorder holds the whole cross-process tree.
	run := telemetry.NewSpanAt(wl.Trace, wl.Span, opWorkerRun, time.Now())
	run.SetAttr("job", wl.JobID)
	run.SetAttr("candidate", wl.Candidate)
	run.SetAttr("worker", a.cfg.Name)
	acc, cost, err := exec.Execute(ctx, wl.JobID, cand)
	defer func() {
		a.mu.Lock()
		delete(a.running, wl.LeaseID)
		a.mu.Unlock()
		select {
		case a.slotFree <- struct{}{}:
		default:
		}
	}()
	if ctx.Err() != nil {
		run.SetAttr("outcome", "aborted")
		run.End()
		return
	}
	req := CompleteRequest{WorkerID: workerID, LeaseID: wl.LeaseID, Accuracy: acc, Cost: cost}
	if err != nil {
		req.Error = err.Error()
		run.Fail(err)
		a.failed.Add(1)
		a.logWarn("run failed",
			"job", wl.JobID, "candidate", wl.Candidate, "lease", wl.LeaseID, "trace", wl.Trace, "err", err)
	} else {
		run.SetAttr("accuracy", strconv.FormatFloat(acc, 'g', -1, 64))
		run.SetAttr("cost", strconv.FormatFloat(cost, 'g', -1, 64))
	}
	run.End()
	req.Spans = []telemetry.SpanData{run.Data()}
	if a.report(req, wl.Trace) && err == nil {
		// Counted only once the coordinator accepted the result, so
		// Completed agrees with the registry's per-worker tally (a report
		// that lost a settle race settled nothing).
		a.completed.Add(1)
		a.logInfo("run completed",
			"job", wl.JobID, "candidate", wl.Candidate, "lease", wl.LeaseID,
			"accuracy", acc, "cost", cost, "trace", wl.Trace)
	}
}

// report delivers a completion, retrying transient transport failures; a
// 409 (the report lost a settle race) is dropped silently — by protocol
// the result belongs to whoever settled first. The lease's trace ID rides
// the X-Easeml-Trace header so the coordinator sees the same trace. It
// reports whether the coordinator accepted the result.
func (a *Agent) report(req CompleteRequest, trace string) bool {
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(telemetry.WithTraceID(context.Background(), trace), 5*time.Second)
		resp, err := a.client.complete(ctx, req)
		cancel()
		if err == nil {
			if resp.Posterior != nil {
				// The settle bumped the job's epoch; adopting the piggybacked
				// surface keeps our very next proposal for it fresh.
				a.adoptPosteriors(req.WorkerID, []JobPosterior{*resp.Posterior}, 0)
			}
			return true
		}
		var pe *ProtocolError
		if errors.As(err, &pe) {
			if pe.Status == 409 {
				a.logInfo("settle race lost; dropping report",
					"lease", req.LeaseID, "code", pe.Code, "trace", trace)
			} else {
				a.logWarn("report rejected", "lease", req.LeaseID, "trace", trace, "err", err)
			}
			return false // a definitive server answer: retrying cannot change it
		}
		a.logWarn("report attempt failed", "lease", req.LeaseID, "attempt", attempt+1, "trace", trace, "err", err)
		time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
	}
	return false
}

// resolveCandidate maps a wire candidate name to the full candidate,
// fetching and registering the job's surface (with the epoch's executor)
// on first contact. The candidate list is regenerated from the job's
// logged program — the same deterministic derivation crash recovery uses —
// so indices and normalization variants line up with the coordinator's. A
// re-registration racing the fetch invalidates the result: the new epoch's
// cache must only ever hold candidates resolved under it.
func (a *Agent) resolveCandidate(ctx context.Context, exec Executor, epoch int, jobID, name string) (templates.Candidate, error) {
	a.mu.Lock()
	byName, ok := a.jobs[jobID]
	a.mu.Unlock()
	if !ok {
		info, err := a.client.jobInfo(ctx, jobID)
		if err != nil {
			return templates.Candidate{}, err
		}
		prog, err := dsl.ParseCached(info.Program)
		if err != nil {
			return templates.Candidate{}, fmt.Errorf("fleet: parsing program of %s: %w", jobID, err)
		}
		cands, _, err := templates.GenerateCached(prog)
		if err != nil {
			return templates.Candidate{}, fmt.Errorf("fleet: generating candidates of %s: %w", jobID, err)
		}
		if len(info.Candidates) != len(cands) {
			return templates.Candidate{}, fmt.Errorf("fleet: job %s: regenerated %d candidates, coordinator has %d",
				jobID, len(cands), len(info.Candidates))
		}
		if reg, ok := exec.(JobAware); ok {
			if err := reg.RegisterJob(jobID, cands); err != nil {
				return templates.Candidate{}, fmt.Errorf("fleet: registering %s with executor: %w", jobID, err)
			}
		}
		byName = make(map[string]templates.Candidate, len(cands))
		for _, c := range cands {
			byName[c.Name()] = c
		}
		a.mu.Lock()
		if a.epoch != epoch {
			a.mu.Unlock()
			return templates.Candidate{}, fmt.Errorf("fleet: job %s resolved under a stale registration", jobID)
		}
		if existing, ok := a.jobs[jobID]; ok {
			byName = existing // a concurrent resolve won; use its map
		} else {
			a.jobs[jobID] = byName
		}
		a.mu.Unlock()
	}
	cand, ok := byName[name]
	if !ok {
		return templates.Candidate{}, fmt.Errorf("fleet: job %s has no candidate %q", jobID, name)
	}
	return cand, nil
}

// heartbeatLoop streams liveness plus the in-flight lease ids, aborting
// runs whose lease the coordinator no longer acknowledges.
func (a *Agent) heartbeatLoop(ctx context.Context) {
	ticker := time.NewTicker(a.heartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		a.mu.Lock()
		workerID := a.workerID
		ids := make([]int, 0, len(a.running))
		for id := range a.running {
			ids = append(ids, id)
		}
		a.mu.Unlock()
		resp, err := a.client.heartbeat(ctx, HeartbeatRequest{WorkerID: workerID, LeaseIDs: ids})
		if err != nil {
			if IsCode(err, CodeUnknownWorker) && ctx.Err() == nil {
				_ = a.register(ctx)
			}
			continue
		}
		known := make(map[int]bool, len(resp.KnownLeases))
		for _, id := range resp.KnownLeases {
			known[id] = true
		}
		preempted := make(map[int]bool, len(resp.Preempted))
		for _, id := range resp.Preempted {
			preempted[id] = true
		}
		a.mu.Lock()
		for _, id := range ids {
			if !known[id] {
				if cancel, ok := a.running[id]; ok {
					if preempted[id] {
						a.logInfo("lease preempted for higher-priority work; aborting run", "lease", id)
					} else {
						a.logInfo("lease reclaimed; aborting run", "lease", id)
					}
					cancel()
				}
			}
		}
		a.mu.Unlock()
	}
}

// logInfo and logWarn emit structured agent diagnostics when a Logger is
// configured; a nil Logger keeps the agent silent.
func (a *Agent) logInfo(msg string, args ...any) {
	if a.cfg.Logger != nil {
		a.cfg.Logger.Info(msg, args...)
	}
}

func (a *Agent) logWarn(msg string, args ...any) {
	if a.cfg.Logger != nil {
		a.cfg.Logger.Warn(msg, args...)
	}
}
