package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/templates"
)

// Submit (coordinator side) and the agent's per-lease job fetch (worker
// side) now share the process-wide plan cache. Hammer both concurrently
// under -race: many tenants submitting the same program while an agent
// resolves candidate grids for the resulting jobs.
func TestConcurrentSubmitAndAgentFetchSharePlanCache(t *testing.T) {
	dsl.ResetPlanCache()
	templates.ResetCandidateCache()
	sc := newTestScheduler(t)
	if _, err := sc.Submit("seed", tsProgram); err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(sc, CoordinatorConfig{
		LeaseTTL:          500 * time.Millisecond,
		HeartbeatInterval: 40 * time.Millisecond,
		SweepInterval:     20 * time.Millisecond,
		DeadAfter:         2 * time.Second,
		PollInterval:      5 * time.Millisecond,
		Seed:              fleetSeed,
	})
	coord.Start()
	defer coord.Stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	agentCtx, stopAgent := context.WithCancel(context.Background())
	defer stopAgent()
	var agentDone sync.WaitGroup
	agent, err := NewAgent(AgentConfig{
		Coordinator: srv.URL, Name: "cache-worker", Devices: 2,
		Executor:     NewSimExecutor(fleetSeed),
		PollInterval: 5 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	agentDone.Add(1)
	go func() { defer agentDone.Done(); _ = agent.Run(agentCtx) }()

	// Eight tenants race 40 submissions of one program against the agent's
	// job fetches.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sc.Submit("tenant", tsProgram); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Let the agent train across several of the new jobs (each job's first
	// lease forces a fetch+resolve of its candidate grid).
	deadline := time.After(10 * time.Second)
	for {
		trained := 0
		for _, job := range sc.Jobs() {
			st, err := sc.Status(job.ID)
			if err != nil {
				t.Fatal(err)
			}
			trained += st.Trained
		}
		if trained >= 12 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("agent trained only %d candidates in 10s", trained)
		case <-time.After(10 * time.Millisecond):
		}
	}
	stopAgent()
	agentDone.Wait()

	// One program everywhere: after the first parse, every Submit and
	// every agent fetch should have hit.
	prog := dsl.PlanCacheStats()
	if prog.Misses != 1 {
		t.Errorf("program cache misses = %d, want 1 (%+v)", prog.Misses, prog)
	}
	if hr := prog.HitRate(); hr <= 0.9 {
		t.Errorf("program cache hit rate %.2f, want > 0.90 (%+v)", hr, prog)
	}
	cands := templates.CandidateCacheStats()
	if hr := cands.HitRate(); hr <= 0.9 {
		t.Errorf("candidate cache hit rate %.2f, want > 0.90 (%+v)", hr, cands)
	}
}
