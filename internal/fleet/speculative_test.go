package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/server"
	"repro/internal/storage"
)

// A non-positive LeaseRequest.Max is a protocol error: 400 with code
// "bad_request" on the wire, and never sent by the Go client (it defaults
// Max to 1).
func TestLeaseMaxBadRequest(t *testing.T) {
	sc := newTestScheduler(t)
	coord := NewCoordinator(sc, CoordinatorConfig{Seed: fleetSeed})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	pc := newProtoClient(srv.URL, nil)
	ctx := context.Background()

	reg, err := pc.register(ctx, RegisterRequest{Name: "w", Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"worker_id":%q,"max":0}`, reg.WorkerID)
	resp, err := http.Post(srv.URL+"/fleet/lease", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var envelope server.ErrorBody
	if err := decodeReply("/fleet/lease", resp, &envelope); err == nil {
		t.Fatal("max=0 lease accepted")
	} else {
		pe, ok := err.(*ProtocolError)
		if !ok || pe.Status != http.StatusBadRequest || pe.Code != CodeBadRequest {
			t.Errorf("max=0 lease: got %v, want 400 %s", err, CodeBadRequest)
		}
	}
	// The Go client never sends a non-positive Max: it defaults to 1.
	if _, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID}); err != nil {
		t.Errorf("client poll with zero Max: %v (should default to 1)", err)
	}
}

// The idle-poll backoff doubles per consecutive empty poll, caps at
// 16×base, jitters within ±25%, and defaults a non-positive base.
func TestIdleBackoffGrowsAndCaps(t *testing.T) {
	base := 100 * time.Millisecond
	for streak := 1; streak <= 8; streak++ {
		nominal := base
		for i := 1; i < streak && nominal < 16*base; i++ {
			nominal *= 2
		}
		for i := 0; i < 50; i++ {
			d := idleBackoff(base, streak)
			lo := time.Duration(float64(nominal) * 0.75)
			hi := time.Duration(float64(nominal) * 1.25)
			if d < lo || d > hi {
				t.Fatalf("streak %d: backoff %v outside [%v, %v]", streak, d, lo, hi)
			}
		}
	}
	if d := idleBackoff(0, 1); d < 187*time.Millisecond || d > 313*time.Millisecond {
		t.Errorf("zero base backoff %v, want ±25%% around the 250ms default", d)
	}
}

// bestOpenArm returns the proposable (untried, unleased) arm with the
// highest wire UCB.
func bestOpenArm(t *testing.T, p JobPosterior) int {
	t.Helper()
	closed := make(map[int]bool)
	for _, k := range p.Tried {
		closed[k] = true
	}
	for _, k := range p.Leased {
		closed[k] = true
	}
	best, bestUCB := -1, math.Inf(-1)
	for k, u := range p.UCB {
		if !closed[k] && u > bestUCB {
			best, bestUCB = k, u
		}
	}
	if best < 0 {
		t.Fatalf("no open arm in posterior %+v", p)
	}
	return best
}

// The speculative protocol over the wire: a plain poll ships the posterior
// surface, a settle piggybacks the refreshed one, a fresh-epoch proposal
// grants on the fast path, and a stale replay falls back to the pick path
// without double-leasing the arm.
func TestSpeculativeFastPathOverWire(t *testing.T) {
	sc := newTestScheduler(t)
	if _, err := sc.Submit("a", tsProgram); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(sc, CoordinatorConfig{Seed: fleetSeed})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	pc := newProtoClient(srv.URL, nil)
	ctx := context.Background()
	reg, err := pc.register(ctx, RegisterRequest{Name: "w", Devices: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Plain poll: a pick-path grant, plus the job's posterior delta whose
	// Leased set already covers the lease granted by this very response.
	lr, err := pc.lease(ctx, LeaseRequest{WorkerID: reg.WorkerID, Max: 1})
	if err != nil || len(lr.Leases) != 1 {
		t.Fatalf("plain poll: %+v %v", lr, err)
	}
	if len(lr.Posteriors) != 1 {
		t.Fatalf("plain poll shipped %d posteriors, want 1", len(lr.Posteriors))
	}
	p := lr.Posteriors[0]
	if p.Done || len(p.UCB) != 4 || len(p.Mu) != 4 || len(p.Sigma) != 4 {
		t.Fatalf("posterior %+v, want 4-arm live surface", p)
	}
	if len(p.Leased) != 1 {
		t.Fatalf("posterior Leased %v does not cover the just-granted lease", p.Leased)
	}

	// Settling bumps the job's epoch; the response piggybacks the fresh
	// surface so the next proposal is not automatically stale.
	cr, err := pc.complete(ctx, CompleteRequest{WorkerID: reg.WorkerID, LeaseID: lr.Leases[0].LeaseID, Accuracy: 0.6, Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Posterior == nil {
		t.Fatal("complete shipped no posterior")
	}
	p2 := *cr.Posterior
	if p2.Epoch == p.Epoch {
		t.Errorf("settle did not move the epoch (still %d)", p.Epoch)
	}
	if len(p2.Tried) != 1 {
		t.Errorf("settled posterior Tried %v, want the observed arm", p2.Tried)
	}

	// A fresh-epoch proposal grants on the fast path: the granted candidate
	// is exactly the proposed arm, and the selection stats record it.
	arm := bestOpenArm(t, p2)
	lr2, err := pc.lease(ctx, LeaseRequest{
		WorkerID: reg.WorkerID, Max: 1,
		Proposals:       []LeaseProposal{{JobID: p2.JobID, Arm: arm, Epoch: p2.Epoch}},
		PosteriorEpochs: map[string]uint64{p2.JobID: p2.Epoch},
	})
	if err != nil || len(lr2.Leases) != 1 {
		t.Fatalf("speculative poll: %+v %v", lr2, err)
	}
	info, err := coord.JobInfo(p2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if lr2.Leases[0].Candidate != info.Candidates[arm] {
		t.Errorf("speculative grant gave %q, proposed arm %d is %q",
			lr2.Leases[0].Candidate, arm, info.Candidates[arm])
	}
	if got := sc.SelectionStats().SpeculativeGrants; got != 1 {
		t.Errorf("SpeculativeGrants %d, want 1", got)
	}
	// Lease churn is not a bandit mutation: the epoch is unchanged, so no
	// delta rides the response.
	if len(lr2.Posteriors) != 0 {
		t.Errorf("unchanged epoch shipped deltas %+v", lr2.Posteriors)
	}

	// Replaying the proposal is stale (the arm is leased now): the poll
	// falls back to the pick path and must not re-grant the same arm.
	lr3, err := pc.lease(ctx, LeaseRequest{
		WorkerID: reg.WorkerID, Max: 1,
		Proposals:       []LeaseProposal{{JobID: p2.JobID, Arm: arm, Epoch: p2.Epoch}},
		PosteriorEpochs: map[string]uint64{p2.JobID: p2.Epoch},
	})
	if err != nil || len(lr3.Leases) != 1 {
		t.Fatalf("stale poll: %+v %v", lr3, err)
	}
	if lr3.Leases[0].Candidate == info.Candidates[arm] {
		t.Errorf("stale proposal re-granted the leased arm %d", arm)
	}
	if got := sc.SelectionStats().SpeculativeGrants; got != 1 {
		t.Errorf("stale proposal counted as speculative grant (%d)", got)
	}

	// An out-of-range arm is malformed, not stale: rejected, pick path
	// still serves the poll.
	lr4, err := pc.lease(ctx, LeaseRequest{
		WorkerID: reg.WorkerID, Max: 1,
		Proposals: []LeaseProposal{{JobID: p2.JobID, Arm: 99, Epoch: p2.Epoch}},
	})
	if err != nil || len(lr4.Leases) != 1 {
		t.Fatalf("malformed-proposal poll: %+v %v", lr4, err)
	}
}

// With speculation disabled the coordinator ignores proposals (no fast
// path, no posterior shipping) and serves the plain protocol.
func TestSpeculativeDisabledFallsBackToPick(t *testing.T) {
	sc := newTestScheduler(t)
	job, err := sc.Submit("a", tsProgram)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(sc, CoordinatorConfig{Seed: fleetSeed, DisableSpeculative: true})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	pc := newProtoClient(srv.URL, nil)
	ctx := context.Background()
	reg, err := pc.register(ctx, RegisterRequest{Name: "w", Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := pc.lease(ctx, LeaseRequest{
		WorkerID: reg.WorkerID, Max: 1,
		Proposals:       []LeaseProposal{{JobID: job.ID, Arm: 0, Epoch: 0}},
		PosteriorEpochs: map[string]uint64{job.ID: 0},
	})
	if err != nil || len(lr.Leases) != 1 {
		t.Fatalf("disabled poll: %+v %v", lr, err)
	}
	if len(lr.Posteriors) != 0 {
		t.Errorf("disabled coordinator shipped posteriors %+v", lr.Posteriors)
	}
	if got := sc.SelectionStats().SpeculativeGrants; got != 0 {
		t.Errorf("disabled coordinator made %d speculative grants", got)
	}
}

// chaosPlan is one randomized interleaving scenario, derived from the seed
// before either run so the speculative and baseline runs face the same
// structure (the timing interleavings still differ freely).
type chaosPlan struct {
	jobs        int      // initial job count
	tenants     []string // tenant per initial job (admission class)
	maxInFlight int      // 0 = uncapped; small = preemption pressure
	devices     int      // per healthy worker
	killWorker  bool     // kill a worker mid-lease (expiry path)
	lateJob     bool     // submit a guaranteed job mid-run (preemption path)
}

// jobOutcome is a job's schedule-independent result: trained models with
// the schedule-dependent Round zeroed and sorted by name, plus the best
// model and total cost.
type jobOutcome struct {
	Trained int
	Models  []storage.ModelRecord
	Best    string
	BestAcc float64
	Cost    float64
}

func runSpeculativeChaos(t *testing.T, plan chaosPlan, disable bool) (map[string]jobOutcome, int, uint64) {
	t.Helper()
	sc := newTestScheduler(t)
	ctrl, err := admission.NewController(admission.Config{Tenants: map[string]admission.Quota{
		"alice": {Class: admission.ClassGuaranteed},
		"carol": {Class: admission.ClassBestEffort},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sc.SetAdmission(ctrl)
	var ids []string
	for i := 0; i < plan.jobs; i++ {
		j, err := sc.Submit(plan.tenants[i], tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	coord := NewCoordinator(sc, CoordinatorConfig{
		LeaseTTL:           150 * time.Millisecond,
		HeartbeatInterval:  40 * time.Millisecond,
		SweepInterval:      20 * time.Millisecond,
		DeadAfter:          250 * time.Millisecond,
		PollInterval:       5 * time.Millisecond,
		Seed:               fleetSeed,
		MaxInFlight:        plan.maxInFlight,
		DisableSpeculative: disable,
	})
	coord.Start()
	defer coord.Stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	if plan.killWorker {
		// The doomed worker blocks on its first lease — possibly a
		// speculative grant — then dies silently; the lease must expire and
		// re-queue exactly once.
		doomed := newBlockingExecutor()
		doomedAgent, err := NewAgent(AgentConfig{
			Coordinator: srv.URL, Name: "doomed", Devices: 1,
			Executor: doomed, SkipLeaveOnExit: true, DisableSpeculative: disable,
			PollInterval: 5 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		doomedCtx, kill := context.WithCancel(context.Background())
		wg.Add(1)
		go func() { defer wg.Done(); _ = doomedAgent.Run(doomedCtx) }()
		select {
		case <-doomed.started:
		case <-time.After(5 * time.Second):
			t.Fatal("doomed worker never received a lease")
		}
		kill()
	}

	healthyCtx, stopHealthy := context.WithCancel(context.Background())
	defer stopHealthy()
	for i := 0; i < 2; i++ {
		agent, err := NewAgent(AgentConfig{
			Coordinator: srv.URL, Name: fmt.Sprintf("healthy-%d", i), Devices: plan.devices,
			Executor: NewSimExecutor(fleetSeed), DisableSpeculative: disable,
			PollInterval: 5 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = agent.Run(healthyCtx) }()
	}

	if plan.lateJob {
		// Guaranteed work lands mid-run; with a saturated in-flight cap this
		// preempts an outstanding best-effort lease.
		time.Sleep(30 * time.Millisecond)
		j, err := sc.Submit("alice", tsProgram)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		done := 0
		for _, id := range ids {
			st, err := sc.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Trained == st.NumCandidates {
				done++
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not converge (speculation disabled=%v): %+v",
				disable, fleetTrainedCounts(t, sc, ids))
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopHealthy()
	wg.Wait()

	out := make(map[string]jobOutcome, len(ids))
	for _, id := range ids {
		st, err := sc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		o := jobOutcome{Trained: st.Trained, Cost: st.CostUsed}
		for _, m := range st.Models {
			m.Round = 0 // scheduling order is the one thing allowed to differ
			o.Models = append(o.Models, m)
		}
		sort.Slice(o.Models, func(i, j int) bool { return o.Models[i].Name < o.Models[j].Name })
		if st.Best != nil {
			o.Best, o.BestAcc = st.Best.Name, st.Best.Accuracy
		}
		out[id] = o
	}
	return out, sc.Rounds(), sc.SelectionStats().SpeculativeGrants
}

// The speculative protocol must be invisible in the results: across
// randomized interleavings — lease expiry via a killed worker, priority
// preemption under a saturated cap, workers racing on stale posteriors —
// a fleet with speculation on converges to bit-identical models, best
// picks and round counts as the same fleet with speculation off.
func TestRandomizedInvariantsSpeculative(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	if s := os.Getenv("INVARIANT_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seeds = n
		}
	}
	var specGrants uint64
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			plan := chaosPlan{
				jobs:        2 + rng.Intn(2),
				maxInFlight: []int{0, 3}[rng.Intn(2)],
				devices:     1 + rng.Intn(2),
				killWorker:  rng.Intn(3) > 0,
				lateJob:     rng.Intn(2) == 0,
			}
			for i := 0; i < plan.jobs; i++ {
				plan.tenants = append(plan.tenants, []string{"alice", "carol"}[rng.Intn(2)])
			}
			on, onRounds, grants := runSpeculativeChaos(t, plan, false)
			specGrants += grants
			off, offRounds, _ := runSpeculativeChaos(t, plan, true)
			if onRounds != offRounds {
				t.Errorf("rounds diverge: speculative %d, baseline %d", onRounds, offRounds)
			}
			if len(on) != len(off) {
				t.Fatalf("job sets diverge: %d vs %d", len(on), len(off))
			}
			for id, a := range on {
				b, ok := off[id]
				if !ok {
					t.Errorf("job %s missing from baseline run", id)
					continue
				}
				if a.Trained != b.Trained || a.Best != b.Best || a.BestAcc != b.BestAcc {
					t.Errorf("job %s diverges: speculative %+v, baseline %+v", id, a, b)
				}
				// Cost accumulates in observation order; identical addends may
				// round differently, so compare within float slack.
				if math.Abs(a.Cost-b.Cost) > 1e-9 {
					t.Errorf("job %s cost diverges: %g vs %g", id, a.Cost, b.Cost)
				}
				if len(a.Models) != len(b.Models) {
					t.Errorf("job %s model counts diverge: %d vs %d", id, len(a.Models), len(b.Models))
					continue
				}
				for i := range a.Models {
					if a.Models[i] != b.Models[i] {
						t.Errorf("job %s model %d diverges: %+v vs %+v", id, i, a.Models[i], b.Models[i])
					}
				}
			}
		})
	}
	if specGrants == 0 {
		t.Error("no speculative grant happened across any seed — the fast path never exercised")
	}
}
