package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// The issue's acceptance path: one fleet lease — picked by the
// coordinator's scheduler, granted over the wire, run by a worker agent,
// settled back — must yield a single span tree under the lease's trace ID
// containing the pick stage, the grant, the worker-side run and the
// settle, plus a pick DecisionRecord linked to the same trace carrying the
// winning arm's UCB.
func TestLeaseSpanTreeAcrossProcesses(t *testing.T) {
	sc := newTestScheduler(t)
	job, err := sc.Submit("spantree", tsProgram)
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(sc, CoordinatorConfig{
		LeaseTTL:          2 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		SweepInterval:     25 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		Seed:              fleetSeed,
	})
	coord.Start()
	defer coord.Stop()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	agent, err := NewAgent(AgentConfig{Coordinator: srv.URL, Name: "span-worker"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Run(ctx)
	}()
	// Run the job to exhaustion so every pick's lease settles — no lease is
	// left to be abandoned by the shutdown below.
	deadline := time.Now().Add(10 * time.Second)
	for agent.Completed() < int64(len(job.Candidates)) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
	if agent.Completed() < int64(len(job.Candidates)) {
		t.Fatalf("only %d of %d leases completed within the deadline", agent.Completed(), len(job.Candidates))
	}

	// The pick decision is the link between the provenance ring and the
	// flight recorder: it names the trace the whole lease lives under. The
	// listing is newest-first; take the job's FIRST pick — made with no
	// arms in flight, so its winning UCB comes straight off the real
	// posterior surface recorded in the top-K table.
	picks := sc.Decisions(server.DecisionFilter{Job: job.ID, Kind: server.DecisionPick})
	if len(picks) == 0 {
		t.Fatalf("no pick decisions for job %s: %+v",
			job.ID, sc.Decisions(server.DecisionFilter{Job: job.ID}))
	}
	pick := &picks[len(picks)-1]
	if pick.Trace == "" {
		t.Fatalf("pick decision carries no trace ID: %+v", pick)
	}
	if pick.Arm < 0 || pick.UCB == 0 {
		t.Errorf("pick decision has no winning arm score: %+v", pick)
	}
	found := false
	for _, s := range pick.TopUCB {
		if s.Arm == pick.Arm && s.UCB == pick.UCB {
			found = true
		}
	}
	if !found {
		t.Errorf("winning arm %d (ucb %g) absent from top-K %+v", pick.Arm, pick.UCB, pick.TopUCB)
	}

	// Poll the recorder briefly: the settle span lands when the coordinator
	// processes the worker's Complete, a hair after Completed() flips.
	var spans []telemetry.SpanData
	ops := map[string]int{}
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		spans, _ = telemetry.DefaultRecorder().Trace(pick.Trace)
		ops = map[string]int{}
		for _, sd := range spans {
			ops[sd.Op]++
		}
		if ops["settle"] > 0 && ops["worker_run"] > 0 {
			break
		}
	}
	for _, op := range []string{"lease", "pick_select", "lease_grant", "worker_run", "settle"} {
		if ops[op] == 0 {
			t.Errorf("trace %s missing %s span; recorded ops: %v", pick.Trace, op, ops)
		}
	}

	// The spans assemble into ONE tree: every stage hangs off the lease
	// root, including the worker's run (parented over the wire).
	tree := telemetry.BuildSpanTree(spans)
	var root *telemetry.SpanNode
	for _, n := range tree {
		if n.Op == "lease" {
			root = n
		}
	}
	if root == nil {
		t.Fatalf("no lease root among %d tree roots", len(tree))
	}
	childOps := map[string]bool{}
	for _, c := range root.Children {
		childOps[c.Op] = true
	}
	for _, op := range []string{"pick_select", "lease_grant", "worker_run", "settle"} {
		if !childOps[op] {
			t.Errorf("lease root missing %s child; children: %v", op, childOps)
		}
	}
	if root.Attrs["job"] != job.ID {
		t.Errorf("lease root job attr = %q, want %q", root.Attrs["job"], job.ID)
	}

	// Every op in the tree comes from the registered set — the runtime
	// counterpart of metriclint's static check.
	registered := map[string]bool{}
	for _, op := range telemetry.RegisteredSpanOps() {
		registered[op] = true
	}
	for _, sd := range spans {
		if !registered[sd.Op] {
			t.Errorf("span op %q not registered via telemetry.SpanOp", sd.Op)
		}
	}
}
