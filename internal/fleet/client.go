package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// ProtocolError is a non-2xx reply from the coordinator, carrying the
// machine code of the error envelope so agents can branch (re-register on
// CodeUnknownWorker, drop the retry on a lease conflict).
type ProtocolError struct {
	Status  int
	Code    string
	Message string
}

func (e *ProtocolError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("fleet: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
	}
	return fmt.Sprintf("fleet: %s (HTTP %d)", e.Message, e.Status)
}

// IsCode reports whether err is a ProtocolError with the given code.
func IsCode(err error, code string) bool {
	var pe *ProtocolError
	return errors.As(err, &pe) && pe.Code == code
}

// protoClient is the agent side of the coordinator protocol: thin,
// context-aware JSON calls.
type protoClient struct {
	base  string
	httpc *http.Client
}

func newProtoClient(base string, httpc *http.Client) *protoClient {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &protoClient{base: strings.TrimRight(base, "/"), httpc: httpc}
}

func (p *protoClient) register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := p.post(ctx, "/fleet/register", req, &resp)
	return resp, err
}

// lease polls for work. A non-positive Max is defaulted to 1 client-side —
// the coordinator treats it as a protocol error (400 bad_request), so the
// client never sends one.
func (p *protoClient) lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if req.Max <= 0 {
		req.Max = 1
	}
	var resp LeaseResponse
	err := p.post(ctx, "/fleet/lease", req, &resp)
	return resp, err
}

func (p *protoClient) heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := p.post(ctx, "/fleet/heartbeat", req, &resp)
	return resp, err
}

func (p *protoClient) complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := p.post(ctx, "/fleet/complete", req, &resp)
	return resp, err
}

func (p *protoClient) leave(ctx context.Context, workerID string) error {
	var resp LeaveResponse
	return p.post(ctx, "/fleet/leave", LeaveRequest{WorkerID: workerID}, &resp)
}

func (p *protoClient) jobInfo(ctx context.Context, jobID string) (JobInfo, error) {
	var info JobInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.base+"/fleet/job?id="+url.QueryEscape(jobID), nil)
	if err != nil {
		return info, fmt.Errorf("fleet: building job request: %w", err)
	}
	resp, err := p.httpc.Do(req)
	if err != nil {
		return info, fmt.Errorf("fleet: GET /fleet/job: %w", err)
	}
	return info, decodeReply("/fleet/job", resp, &info)
}

func (p *protoClient) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("fleet: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	telemetry.SetTraceHeader(req.Header, ctx)
	resp, err := p.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: POST %s: %w", path, err)
	}
	return decodeReply(path, resp, dst)
}

func decodeReply(path string, resp *http.Response, dst any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("fleet: reading %s reply: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		pe := &ProtocolError{Status: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		var envelope server.ErrorBody
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			pe.Message, pe.Code = envelope.Error, envelope.Code
		}
		return pe
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("fleet: decoding %s reply: %w", path, err)
	}
	return nil
}
