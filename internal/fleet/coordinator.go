package fleet

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// Fleet lifecycle tallies. Registered in the process-global telemetry
// registry; FleetStatus remains the JSON view of the same story.
var (
	fleetRegistrations = telemetry.Default().Counter("easeml_fleet_registrations_total",
		"Worker registrations accepted (re-registrations after eviction included).")
	fleetHeartbeats = telemetry.Default().Counter("easeml_fleet_heartbeats_total",
		"Worker heartbeats processed.")
	fleetLeasePolls = telemetry.Default().Counter("easeml_fleet_lease_polls_total",
		"Lease polls served, whether or not work was granted.")
	fleetLeasesGranted = telemetry.Default().Counter("easeml_fleet_leases_granted_total",
		"Leases handed to remote workers.")
	fleetLeaseExpirations = telemetry.Default().Counter("easeml_fleet_lease_expirations_total",
		"Remote leases reclaimed by TTL expiry.")
	fleetLeasePreemptions = telemetry.Default().Counter("easeml_fleet_lease_preemptions_total",
		"Remote leases reclaimed by priority preemption.")
	fleetCompletes = telemetry.Default().CounterVec("easeml_fleet_completes_total",
		"Remote lease settlements by outcome (completed, released, abandoned, conflict, error).", "outcome")
	fleetLeaves = telemetry.Default().Counter("easeml_fleet_leaves_total",
		"Graceful worker departures.")
)

// Speculative-lease tallies: the proposal/validate/resync protocol's
// traffic. Grants + rejections = proposals; the hit rate
// (grants / proposals) is the protocol's health number — a persistently
// low rate means workers resync slower than the posterior moves.
var (
	specProposals = telemetry.Default().Counter("easeml_speculative_proposals_total",
		"Speculative lease proposals received from workers.")
	specGrants = telemetry.Default().Counter("easeml_speculative_grants_total",
		"Speculative proposals granted via the epoch-validated fast path.")
	specRejections = telemetry.Default().CounterVec("easeml_speculative_rejections_total",
		"Speculative proposals not granted, by reason (stale, capacity, invalid, disabled).", "reason")
	specPosteriors = telemetry.Default().Counter("easeml_speculative_posteriors_total",
		"Per-job posterior deltas shipped to workers for local pre-scoring.")
)

// ErrBadRequest marks protocol violations the sender must fix rather than
// retry (e.g. a non-positive LeaseRequest.Max); the HTTP surface maps it to
// 400 with code "bad_request".
var ErrBadRequest = errors.New("fleet: bad request")

// Fleet span operations: the coordinator's grant moment and the worker's
// remote run, both children of the lease's root span.
var (
	opLeaseGrant = telemetry.SpanOp("lease_grant")
	opWorkerRun  = telemetry.SpanOp("worker_run")
)

// maxImportSpans caps how many worker-shipped spans one CompleteRequest
// may import into the coordinator's flight recorder, so a misbehaving
// worker cannot flush the ring.
const maxImportSpans = 16

// CoordinatorConfig parameterizes a Coordinator. Zero values select the
// defaults noted per field.
type CoordinatorConfig struct {
	// LeaseTTL is how long a lease survives without a heartbeat before the
	// sweeper reclaims it (default 10s). It is installed on the scheduler
	// via SetLeaseTTL.
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence advertised to workers (default
	// LeaseTTL/3, so a worker gets two chances before its leases expire).
	HeartbeatInterval time.Duration
	// SweepInterval is the expiry sweeper's period (default
	// HeartbeatInterval).
	SweepInterval time.Duration
	// DeadAfter is the silence after which a worker is shown as dead in the
	// registry (default 2×LeaseTTL). Purely observational: lease reclaim is
	// the TTL's job.
	DeadAfter time.Duration
	// PollInterval is the idle lease-poll period advertised to workers
	// (default 250ms).
	PollInterval time.Duration
	// Seed is the simulated-training seed advertised at registration so
	// SimExecutor workers reproduce the coordinator's surfaces (default 1;
	// must match the service's ServiceConfig.Seed).
	Seed int64
	// MaxRetries bounds how often a failing (job, candidate) run is
	// released for retry before the candidate is abandoned (default 3) —
	// the same livelock guard the in-process engine applies.
	MaxRetries int
	// MaxInFlight caps total outstanding leases across the fleet and the
	// in-process engine (default 0: no cap beyond available work).
	MaxInFlight int
	// Clock overrides the time source (tests); it is installed on the
	// scheduler too, so lease expiry and the registry agree on now.
	Clock func() time.Time
	// Logger, when set, receives structured coordinator diagnostics:
	// worker transitions and the lease lifecycle (grant, settle, expiry,
	// preemption), each lease event carrying its trace ID. Nil keeps the
	// coordinator silent.
	Logger *slog.Logger
	// DisableSpeculative turns off the speculative lease protocol (the
	// default — zero value — is speculation ON): proposals are rejected
	// with reason "disabled" and no posterior deltas ship, so every lease
	// goes through the full pick path. Wired to easeml-server's
	// -speculative=false.
	DisableSpeculative bool
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.LeaseTTL / 3
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2 * c.LeaseTTL
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Coordinator exposes a scheduler's two-phase lease cycle to remote worker
// agents over HTTP and owns the fleet bookkeeping around it: the worker
// registry, per-worker lease assignment, heartbeat-driven TTL refresh and
// the expiry sweeper that re-queues work whose worker went silent. It
// implements server.FleetControl for the GET /admin/fleet surface.
type Coordinator struct {
	sched *server.Scheduler
	cfg   CoordinatorConfig
	reg   *registry

	// mu guards the remote-lease table; it also serializes lease grants so
	// the "current in-flight + wanted" target handed to PickWork is
	// race-free. (Failure tallies live in the scheduler, shared with the
	// in-process engine.)
	mu     sync.Mutex
	remote map[int]*remoteLease
	// preempted queues lease ids reclaimed by priority preemption per
	// worker, delivered (and cleared) on the worker's next heartbeat so the
	// agent aborts the run immediately instead of discovering the loss via
	// the missing KnownLeases entry. Guarded by mu; Sweep drops queues of
	// workers that are no longer alive.
	preempted map[string][]int

	expiredTotal   atomic.Int64
	preemptedTotal atomic.Int64

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// remoteLease pairs an outstanding scheduler lease with its holder.
type remoteLease struct {
	lease  *server.Lease
	worker string
}

// NewCoordinator wraps a scheduler. It installs the lease TTL (and the
// test clock, when configured) on the scheduler, so construct the
// coordinator before serving traffic.
func NewCoordinator(sched *server.Scheduler, cfg CoordinatorConfig) *Coordinator {
	// Only a caller-supplied clock is pushed onto the scheduler — the
	// withDefaults fallback must not clobber a clock installed directly
	// via sched.SetClock.
	if cfg.Clock != nil {
		sched.SetClock(cfg.Clock)
	}
	cfg = cfg.withDefaults()
	sched.SetLeaseTTL(cfg.LeaseTTL)
	return &Coordinator{
		sched:     sched,
		cfg:       cfg,
		reg:       newRegistry(cfg.DeadAfter, cfg.Clock),
		remote:    make(map[int]*remoteLease),
		preempted: make(map[string][]int),
	}
}

// Start launches the background expiry sweeper; Stop halts it. Calling
// Start twice is a no-op while the sweeper is running.
func (c *Coordinator) Start() {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.sweepLoop(c.stop, c.done)
}

// Stop halts the expiry sweeper and waits for it to exit. Leases and the
// registry are left as they are — a coordinator restart resumes sweeping.
func (c *Coordinator) Stop() {
	c.runMu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.runMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (c *Coordinator) sweepLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.Sweep()
		}
	}
}

// Sweep runs one expiry pass: leases whose TTL lapsed are reclaimed (their
// candidates re-enter selection), attributed to their workers in the
// registry, and silent workers are marked dead. It returns how many leases
// expired. The background sweeper calls it on SweepInterval; tests call it
// directly for deterministic expiry.
func (c *Coordinator) Sweep() int {
	expired, err := c.sched.ExpireLeases()
	if err != nil {
		c.logWarn("logging lease expiry failed", "err", err)
	}
	for _, l := range expired {
		c.mu.Lock()
		delete(c.remote, l.ID)
		c.mu.Unlock()
		c.expiredTotal.Add(1)
		fleetLeaseExpirations.Inc()
		c.reg.leaseSettled(l.Worker, l.ID, "expired")
		c.logInfo("lease expired; candidate re-queued",
			"lease", l.ID, "job", l.JobID, "candidate", l.Candidate.Name(), "worker", l.Worker, "trace", l.Trace)
	}
	c.reg.sweepDead()
	// Drop queued preemption notices for workers that are no longer alive
	// (dead, departed, or evicted): nobody will heartbeat them away, and a
	// reclaimed lease is already conflict-guarded server-side.
	alive := make(map[string]bool)
	for _, w := range c.reg.snapshot() {
		if w.State == WorkerAlive {
			alive[w.ID] = true
		}
	}
	c.mu.Lock()
	for id := range c.preempted {
		if !alive[id] {
			delete(c.preempted, id)
		}
	}
	c.mu.Unlock()
	return len(expired)
}

// Register adds a worker and returns its id plus the protocol cadence.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	devices := req.Devices
	if devices <= 0 {
		devices = 1
	}
	id := c.reg.register(req.Name, devices, req.Alpha)
	fleetRegistrations.Inc()
	c.logInfo("worker joined", "worker", id, "name", req.Name, "devices", devices)
	return RegisterResponse{
		WorkerID:    id,
		LeaseTTLMS:  float64(c.cfg.LeaseTTL) / float64(time.Millisecond),
		HeartbeatMS: float64(c.cfg.HeartbeatInterval) / float64(time.Millisecond),
		PollMS:      float64(c.cfg.PollInterval) / float64(time.Millisecond),
		Seed:        c.cfg.Seed,
	}
}

// Lease grants up to req.Max new leases to a worker (a poll also counts as
// a heartbeat). Speculative proposals are validated first — each either
// grants on the scheduler's epoch-checked fast path or is skipped as stale
// — and remaining capacity falls back to the normal pick path; the
// response carries posterior deltas for every job whose epoch moved past
// req.PosteriorEpochs, which is how workers resync after a miss. It
// returns ErrUnknownWorker for ids the registry does not know and
// ErrBadRequest for a non-positive Max.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Max <= 0 {
		return LeaseResponse{}, fmt.Errorf("fleet: lease max must be positive, got %d: %w", req.Max, ErrBadRequest)
	}
	if err := c.reg.heartbeat(req.WorkerID); err != nil {
		return LeaseResponse{}, err
	}
	fleetLeasePolls.Inc()
	speculative := !c.cfg.DisableSpeculative
	c.mu.Lock()
	defer c.mu.Unlock()
	var wire []WireLease
	for _, p := range req.Proposals {
		specProposals.Inc()
		switch {
		case !speculative:
			specRejections.With("disabled").Inc()
			continue
		case len(wire) >= req.Max,
			c.cfg.MaxInFlight > 0 && c.sched.InFlight() >= c.cfg.MaxInFlight:
			specRejections.With("capacity").Inc()
			continue
		}
		l, err := c.sched.SpeculativeGrant(p.JobID, p.Arm, p.Epoch)
		if err != nil {
			specRejections.With("invalid").Inc()
			c.logWarn("rejecting malformed speculative proposal",
				"worker", req.WorkerID, "job", p.JobID, "arm", p.Arm, "err", err)
			continue
		}
		if l == nil {
			specRejections.With("stale").Inc()
			continue
		}
		if wl, ok := c.grantLocked(l, req.WorkerID, "speculative"); ok {
			wire = append(wire, wl)
			specGrants.Inc()
		}
	}
	if remaining := req.Max - len(wire); remaining > 0 {
		target := c.sched.InFlight() + remaining
		if c.cfg.MaxInFlight > 0 && target > c.cfg.MaxInFlight {
			target = c.cfg.MaxInFlight
			// The in-flight cap binds: before picking, let priority preemption
			// reclaim a best-effort slot if a guaranteed tenant is starved, so
			// saturation cannot lock high-priority work out of the pool.
			if c.sched.InFlight() >= target {
				c.preemptLocked()
			}
		}
		batch, err := c.sched.PickWork(target)
		if err != nil {
			return LeaseResponse{}, err
		}
		if len(batch) > remaining {
			// In-process engine settles land without c.mu, so the table can
			// shrink between the InFlight read and the pick, inflating the
			// target; hand the excess back rather than exceed what the worker
			// asked to run.
			for _, l := range batch[remaining:] {
				_ = c.sched.Release(l)
			}
			batch = batch[:remaining]
		}
		for _, l := range batch {
			if wl, ok := c.grantLocked(l, req.WorkerID, "pick"); ok {
				wire = append(wire, wl)
			}
		}
	}
	resp := LeaseResponse{Leases: wire}
	if speculative {
		// The version is read before the diff: a bandit mutation landing in
		// between makes the diff fresher than the version we echo, so the
		// worker re-diffs next poll — never the reverse. When the worker's
		// last sync version still matches, nothing has moved anywhere and
		// the whole per-job scan is skipped (grants don't bump it — lease
		// churn is already covered by the deltas' Leased sets).
		cur := c.sched.PosteriorVersion()
		if req.PosteriorVersion != cur {
			// After the grants, so the deltas' Leased sets already cover
			// them — the worker's next proposals never re-ask for work it
			// just got.
			resp.Posteriors = c.wirePosteriors(req.PosteriorEpochs)
		}
		resp.PosteriorVersion = cur
	}
	return resp, nil
}

// grantLocked assigns a freshly picked lease to a worker and builds its
// wire form; path tags the grant span and log line ("pick" or
// "speculative"). On bookkeeping failure the lease is handed back rather
// than leaked. Callers hold c.mu.
func (c *Coordinator) grantLocked(l *server.Lease, workerID, path string) (WireLease, bool) {
	grantT0 := time.Now()
	if err := c.sched.AssignLease(l, workerID); err != nil {
		// Cannot happen for a lease we just picked; hand it back rather
		// than leak it.
		_ = c.sched.Release(l)
		return WireLease{}, false
	}
	if err := c.reg.leaseAssigned(workerID, l.ID); err != nil {
		_ = c.sched.Release(l)
		return WireLease{}, false
	}
	c.remote[l.ID] = &remoteLease{lease: l, worker: workerID}
	fleetLeasesGranted.Inc()
	grant := telemetry.NewSpanAt(l.Trace, l.RootSpanID(), opLeaseGrant, grantT0)
	grant.SetAttr("worker", workerID)
	grant.SetAttr("path", path)
	grant.End()
	name := l.Candidate.Name() // renders once: the grant path is hot
	if c.cfg.Logger != nil {
		c.logInfo("lease granted",
			"lease", l.ID, "job", l.JobID, "candidate", name, "worker", workerID,
			"path", path, "trace", l.Trace)
	}
	return WireLease{LeaseID: l.ID, JobID: l.JobID, Candidate: name,
		Trace: l.Trace, Span: l.RootSpanID()}, true
}

// wirePosteriors converts the scheduler's changed-epoch deltas to wire
// form. The scheduler returns nil in legacy-selection mode, which disables
// speculation end to end there.
func (c *Coordinator) wirePosteriors(known map[string]uint64) []JobPosterior {
	deltas := c.sched.PosteriorDeltas(known)
	if len(deltas) == 0 {
		return nil
	}
	out := make([]JobPosterior, len(deltas))
	for i, d := range deltas {
		out[i] = wirePosterior(d)
	}
	specPosteriors.Add(uint64(len(out)))
	return out
}

func wirePosterior(d server.PosteriorDelta) JobPosterior {
	return JobPosterior{JobID: d.JobID, Epoch: d.Epoch, Mu: d.Mu, Sigma: d.Sigma,
		UCB: d.UCB, Tried: d.Tried, Leased: d.Leased, Done: d.Done}
}

// preemptLocked runs one priority-preemption pass against the scheduler:
// when a guaranteed tenant has selectable work, the newest outstanding
// best-effort lease is reclaimed through the expiry mechanics (its
// candidate re-enters selection exactly once; the holder's late report
// bounces off 409). The preempted id is queued for the holder's next
// heartbeat so its agent aborts the run immediately. Callers hold c.mu.
func (c *Coordinator) preemptLocked() {
	victim, err := c.sched.PreemptForPriority()
	if err != nil {
		// The lease is reclaimed either way; only the WAL history append
		// failed.
		c.logWarn("logging preemption failed", "err", err)
	}
	if victim == nil {
		return
	}
	delete(c.remote, victim.ID)
	c.preempted[victim.Worker] = append(c.preempted[victim.Worker], victim.ID)
	c.preemptedTotal.Add(1)
	fleetLeasePreemptions.Inc()
	c.reg.leaseSettled(victim.Worker, victim.ID, "preempted")
	c.logInfo("lease preempted for guaranteed work; candidate re-queued",
		"lease", victim.ID, "job", victim.JobID, "candidate", victim.Candidate.Name(),
		"worker", victim.Worker, "trace", victim.Trace)
}

// Preempt runs one priority-preemption pass directly (tests, and
// operators draining best-effort load by hand); it reports whether a lease
// was preempted. The lease-poll path runs the same pass automatically
// whenever the in-flight cap is saturated.
func (c *Coordinator) Preempt() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.preemptedTotal.Load()
	c.preemptLocked()
	return c.preemptedTotal.Load() > before
}

// Heartbeat refreshes a worker's liveness and the TTLs of the leases it
// reports as still executing; it returns the subset still outstanding
// (a missing id means the lease expired and the run should be aborted)
// plus the ids preempted since the last heartbeat (abort immediately —
// the capacity is already promised to higher-priority work).
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := c.reg.heartbeat(req.WorkerID); err != nil {
		return HeartbeatResponse{}, err
	}
	fleetHeartbeats.Inc()
	var resp HeartbeatResponse
	c.mu.Lock()
	resp.Preempted = c.preempted[req.WorkerID]
	delete(c.preempted, req.WorkerID)
	c.mu.Unlock()
	for _, id := range req.LeaseIDs {
		c.mu.Lock()
		rl, ok := c.remote[id]
		c.mu.Unlock()
		if !ok || rl.worker != req.WorkerID {
			continue
		}
		if err := c.sched.HeartbeatLease(id); err != nil {
			continue // reclaimed between the map read and the refresh
		}
		resp.KnownLeases = append(resp.KnownLeases, id)
	}
	return resp, nil
}

// Complete settles a leased run with the worker's reported outcome:
// success feeds the observation into the scheduler; failure releases the
// lease for retry, or abandons the candidate after MaxRetries failures. It
// returns how the lease settled — plus, for speculative fleets, the
// settled job's refreshed posterior, so the reporting worker's next
// proposal for the job is not automatically stale — or an error wrapping
// server.ErrLeaseConflict when the report lost a race (double complete,
// lease expired) — the worker drops those.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	rl, ok := c.remote[req.LeaseID]
	if !ok || rl.worker != req.WorkerID {
		c.mu.Unlock()
		fleetCompletes.With("conflict").Inc()
		return CompleteResponse{}, fmt.Errorf("fleet: lease %d is not held by %s: %w", req.LeaseID, req.WorkerID, server.ErrLeaseConflict)
	}
	delete(c.remote, req.LeaseID) // claim: at most one report settles a lease
	l := rl.lease
	c.mu.Unlock()

	// Import the worker's spans into the coordinator's flight recorder, so
	// one GET /admin/traces/{id} serves the whole cross-process tree. Only
	// spans of this lease's trace are accepted (a worker cannot pollute
	// other traces), capped so a misbehaving report cannot flush the ring.
	imported := 0
	for i := range req.Spans {
		sd := req.Spans[i]
		if sd.TraceID != l.Trace || sd.SpanID == "" || imported >= maxImportSpans {
			continue
		}
		if sd.Process == "" {
			sd.Process = "worker:" + req.WorkerID
		}
		telemetry.DefaultRecorder().Record(sd)
		imported++
	}

	// The failure tally is peeked to decide release-vs-abandon and only
	// recorded once the settle succeeds — a report that loses the race
	// against lease expiry must not burn retry budget for a run the
	// scheduler never accounted. The tally lives in the scheduler, shared
	// with the in-process engine, so a candidate alternating between local
	// and remote workers still gets exactly MaxRetries attempts.
	var failures int
	if req.Error != "" {
		failures = c.sched.TrainingFailures(l.JobID, l.Arm) + 1
	}
	settled := "completed"
	var err error
	switch {
	case req.Error == "":
		err = c.sched.Complete(l, req.Accuracy, req.Cost)
	case failures >= c.cfg.MaxRetries:
		settled = "abandoned"
		err = c.sched.Abandon(l)
		c.logInfo("candidate abandoned after repeated failures",
			"job", l.JobID, "candidate", l.Candidate.Name(), "failures", failures,
			"last_error", req.Error, "trace", l.Trace)
	default:
		settled = "released"
		err = c.sched.Release(l)
	}
	if err != nil {
		if errors.Is(err, server.ErrLeaseConflict) {
			fleetCompletes.With("conflict").Inc()
		} else {
			// The lease is gone from the scheduler either way (e.g. the job
			// failed mid-settle); count the run against the worker.
			fleetCompletes.With("error").Inc()
			c.reg.leaseSettled(req.WorkerID, req.LeaseID, "failed")
		}
		return CompleteResponse{}, err
	}
	if req.Error != "" {
		c.sched.NoteTrainingFailure(l.JobID, l.Arm)
	}
	fleetCompletes.With(settled).Inc()
	c.reg.leaseSettled(req.WorkerID, req.LeaseID, settled)
	if c.cfg.Logger != nil {
		c.logInfo("lease settled",
			"lease", req.LeaseID, "outcome", settled, "job", l.JobID, "worker", req.WorkerID, "trace", l.Trace)
	}
	resp := CompleteResponse{Settled: settled}
	if !c.cfg.DisableSpeculative && settled != "released" {
		// Completion and abandonment bump the job's epoch; piggyback the
		// fresh surface so the reporting worker resyncs without an extra
		// round trip. A release leaves the posterior (and epoch) untouched,
		// so the worker's cached surface is still current — shipping one
		// would be pure overhead and would invalidate its ranking for
		// nothing.
		if d, ok := c.sched.PosteriorDeltaFor(l.JobID); ok {
			p := wirePosterior(d)
			resp.Posterior = &p
			specPosteriors.Inc()
		}
	}
	return resp, nil
}

// Leave deregisters a worker gracefully: its outstanding leases are
// released (re-queued) immediately instead of waiting out the TTL.
func (c *Coordinator) Leave(workerID string) (int, error) {
	ids, err := c.reg.leave(workerID)
	if err != nil {
		return 0, err
	}
	released := 0
	for _, id := range ids {
		c.mu.Lock()
		rl, ok := c.remote[id]
		delete(c.remote, id)
		c.mu.Unlock()
		if !ok {
			continue
		}
		if err := c.sched.Release(rl.lease); err == nil {
			released++
		}
	}
	fleetLeaves.Inc()
	c.logInfo("worker left", "worker", workerID, "released", released)
	return released, nil
}

// JobInfo resolves a job for a worker: the logged program (from which the
// worker regenerates the candidate surface, like crash recovery does) and
// the expected candidate names.
func (c *Coordinator) JobInfo(jobID string) (JobInfo, error) {
	job, ok := c.sched.Job(jobID)
	if !ok {
		return JobInfo{}, fmt.Errorf("fleet: no job %q", jobID)
	}
	info := JobInfo{ID: job.ID, Name: job.Name, Program: job.Program.String()}
	for _, cand := range job.Candidates {
		info.Candidates = append(info.Candidates, cand.Name())
	}
	return info, nil
}

// FleetStatus implements server.FleetControl for GET /admin/fleet.
func (c *Coordinator) FleetStatus() server.FleetStatus {
	st := server.FleetStatus{
		LeaseTTLMS:      float64(c.cfg.LeaseTTL) / float64(time.Millisecond),
		HeartbeatMS:     float64(c.cfg.HeartbeatInterval) / float64(time.Millisecond),
		ExpiredLeases:   c.expiredTotal.Load(),
		PreemptedLeases: c.preemptedTotal.Load(),
		Workers:         c.reg.snapshot(),
	}
	c.mu.Lock()
	st.RemoteLeases = len(c.remote)
	c.mu.Unlock()
	for _, w := range st.Workers {
		switch w.State {
		case WorkerAlive:
			st.Alive++
		case WorkerDead:
			st.Dead++
		case WorkerLeft:
			st.Left++
		}
	}
	return st
}

// logInfo and logWarn emit structured coordinator diagnostics when a
// Logger is configured; a nil Logger keeps the coordinator silent.
func (c *Coordinator) logInfo(msg string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info(msg, args...)
	}
}

func (c *Coordinator) logWarn(msg string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Warn(msg, args...)
	}
}
