// Package fleet turns the scheduler's two-phase lease API into a real
// distributed execution layer: a coordinator exposes PickWork/Complete over
// HTTP, and elastic worker agents (cmd/easeml-worker, or in-process Agents)
// register with their capabilities, poll for leases, execute them through a
// pluggable Executor, stream heartbeats and report results. Leases carry a
// TTL — a worker that dies mid-training goes silent, its leases expire, and
// the expiry sweeper re-queues the candidates into GP-BUCB selection
// exactly once — so the fleet survives worker churn without losing or
// double-counting work.
//
//	            register/heartbeat          ┌──────────┐
//	  ┌──────────────────────────────────── │ agent 0  │──Execute──▶ Executor
//	  ▼                                     └──────────┘             (trainsim,
//	coordinator ──lease──▶ agents … ──complete──▶ coordinator          or yours)
//	  │
//	  ├── registry: join/leave/dead, per-worker in-flight + failures
//	  └── sweeper: lease TTL expiry ──▶ re-queue + WAL lease_expired
//
// The in-process execution engine (internal/engine) runs its local workers
// through the same Executor interface, so "local" is just the degenerate
// fleet member with zero network in between.
package fleet

import "repro/internal/telemetry"

// The coordinator's HTTP protocol. All endpoints speak JSON:
//
//	POST /fleet/register    RegisterRequest  → RegisterResponse
//	POST /fleet/lease       LeaseRequest     → LeaseResponse
//	POST /fleet/heartbeat   HeartbeatRequest → HeartbeatResponse
//	POST /fleet/complete    CompleteRequest  → CompleteResponse
//	POST /fleet/leave       LeaveRequest     → LeaveResponse
//	GET  /fleet/job?id=ID                    → JobInfo
//
// Errors reuse the server's {"error": ..., "code": ...} envelope; code
// "lease_conflict" (409) marks settle races a retrying worker should drop,
// "unknown_worker" (409) tells an agent to re-register (the coordinator
// restarted or evicted it), and "bad_request" (400) marks malformed
// requests (e.g. a non-positive LeaseRequest.Max) the sender must fix, not
// retry.

// CodeUnknownWorker tags 409 replies for requests naming a worker id the
// registry does not know; agents respond by re-registering.
const CodeUnknownWorker = "unknown_worker"

// CodeBadRequest tags 400 replies for malformed requests — retrying the
// same payload can never succeed.
const CodeBadRequest = "bad_request"

// RegisterRequest announces a worker and its capabilities.
type RegisterRequest struct {
	// Name is the operator-facing worker name (e.g. its hostname); ids are
	// assigned by the coordinator, so names need not be unique.
	Name string `json:"name"`
	// Devices is how many candidates the worker trains concurrently.
	Devices int `json:"devices"`
	// Alpha is the worker's multi-device scaling exponent — capability
	// metadata the coordinator surfaces in the registry.
	Alpha float64 `json:"alpha"`
}

// RegisterResponse assigns the worker id and the protocol cadence.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long the coordinator waits for a heartbeat before
	// reclaiming the worker's leases.
	LeaseTTLMS float64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the heartbeat period the worker should use.
	HeartbeatMS float64 `json:"heartbeat_ms"`
	// PollMS is the suggested idle poll period for /fleet/lease.
	PollMS float64 `json:"poll_ms"`
	// Seed is the coordinator's simulated-training seed: a SimExecutor
	// built on it reproduces the coordinator's quality surfaces exactly,
	// so results are identical no matter which worker trains a candidate.
	Seed int64 `json:"seed"`
}

// LeaseRequest polls for up to Max new leases. Max must be positive — a
// non-positive value is a protocol error (400, code "bad_request"); the Go
// client defaults it to 1.
//
// A speculative poll additionally carries Proposals — (job, arm, epoch)
// triples the worker pre-scored against its cached posterior surface — and
// PosteriorEpochs, the worker's last-seen epoch per job, which the
// coordinator diffs to decide which posterior deltas to attach to the
// response. A plain poll (both fields empty) is exactly the old protocol.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
	// Proposals are validated in order until Max leases are granted; each
	// either fast-path grants (epoch matched, arm free) or is skipped
	// (stale). Remaining capacity falls back to the coordinator's normal
	// pick path.
	Proposals []LeaseProposal `json:"proposals,omitempty"`
	// PosteriorEpochs maps job id → the epoch of the worker's cached
	// surface; the response carries deltas only for jobs whose epoch moved
	// (or that the worker has never seen).
	PosteriorEpochs map[string]uint64 `json:"posterior_epochs,omitempty"`
	// PosteriorVersion echoes the coordinator's global surface version
	// from the worker's last full posterior sync (LeaseResponse's field of
	// the same name). When it still matches, nothing anywhere has moved
	// and the coordinator skips the per-job epoch diff — the steady-state
	// fast path. Zero (a worker that never synced, or speculation off)
	// always triggers the full diff.
	PosteriorVersion uint64 `json:"posterior_version,omitempty"`
}

// LeaseProposal is one speculative lease ask: "grant me arm Arm of job Job,
// which I scored against the posterior surface stamped Epoch". Arm is the
// candidate's index in the job's (deterministically generated) candidate
// list — canonical on both sides, so validation is O(1).
type LeaseProposal struct {
	JobID string `json:"job_id"`
	Arm   int    `json:"arm"`
	Epoch uint64 `json:"epoch"`
}

// JobPosterior is one job's posterior surface on the wire: per-arm mean,
// std and (unhallucinated) UCB, stamped with the job's selection-index
// dirty epoch. Tried lists observed/retired arms (their UCB entries are
// zeroed — JSON cannot carry the NaN markers the in-process surface uses);
// Leased lists arms currently held by outstanding leases. Workers propose
// only arms in neither list. Done marks a job that will never train another
// candidate; its slices are omitted.
type JobPosterior struct {
	JobID  string    `json:"job_id"`
	Epoch  uint64    `json:"epoch"`
	Mu     []float64 `json:"mu,omitempty"`
	Sigma  []float64 `json:"sigma,omitempty"`
	UCB    []float64 `json:"ucb,omitempty"`
	Tried  []int     `json:"tried,omitempty"`
	Leased []int     `json:"leased,omitempty"`
	Done   bool      `json:"done,omitempty"`
}

// WireLease is one leased work item on the wire. The candidate is named,
// not embedded: workers rebuild the full candidate surface from the job's
// logged program (JobInfo), exactly like crash recovery does.
type WireLease struct {
	LeaseID   int    `json:"lease_id"`
	JobID     string `json:"job_id"`
	Candidate string `json:"candidate"`
	// Trace is the lease's trace ID, minted by the scheduler at pick time.
	// Workers carry it into their structured logs and onto the
	// X-Easeml-Trace header of the completion report, so one lease is
	// traceable end to end across processes.
	Trace string `json:"trace,omitempty"`
	// Span is the lease's root span ID, so the worker's run span parents
	// into the coordinator's span tree for the lease.
	Span string `json:"span,omitempty"`
}

// LeaseResponse returns the granted leases (possibly none) plus, for
// speculative polls, the posterior deltas for every job whose epoch moved
// past the worker's PosteriorEpochs — the resync half of the speculative
// protocol. A delta's Leased set already includes the leases granted by
// this very response, so the worker's next proposals never re-ask for them.
type LeaseResponse struct {
	Leases     []WireLease    `json:"leases"`
	Posteriors []JobPosterior `json:"posteriors,omitempty"`
	// PosteriorVersion is the coordinator's global surface version as of
	// this response's posterior diff; the worker echoes it in its next
	// LeaseRequest so an unchanged fleet costs one integer comparison
	// instead of a per-job epoch scan.
	PosteriorVersion uint64 `json:"posterior_version,omitempty"`
}

// HeartbeatRequest refreshes the worker's liveness and the TTL of the
// leases it is still executing.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseIDs []int  `json:"lease_ids,omitempty"`
}

// HeartbeatResponse echoes the subset of LeaseIDs still outstanding; a
// lease missing from KnownLeases was reclaimed (expired) and the worker
// should abort its run — a late result would only bounce off 409.
// Preempted lists leases reclaimed by priority preemption since the last
// heartbeat: the explicit abort signal, so agents can distinguish "your
// run was displaced by guaranteed work" from an expiry and kill the run
// without waiting to notice the missing KnownLeases entry.
type HeartbeatResponse struct {
	KnownLeases []int `json:"known_leases,omitempty"`
	Preempted   []int `json:"preempted,omitempty"`
}

// CompleteRequest reports the outcome of one leased run. A non-empty Error
// means the run failed: the coordinator releases the lease for retry, or
// abandons the candidate once it has failed MaxRetries times.
type CompleteRequest struct {
	WorkerID string  `json:"worker_id"`
	LeaseID  int     `json:"lease_id"`
	Accuracy float64 `json:"accuracy"`
	Cost     float64 `json:"cost"`
	Error    string  `json:"error,omitempty"`
	// Spans ships the worker-side spans of the lease's trace (the run
	// span, at minimum) back to the coordinator, which imports them into
	// its flight recorder so GET /admin/traces/{id} serves the whole
	// cross-process tree from one place.
	Spans []telemetry.SpanData `json:"spans,omitempty"`
}

// CompleteResponse reports how the lease settled. For speculative fleets
// it also carries the settled job's refreshed posterior: the settle itself
// bumped the job's epoch, so without this the reporting worker's very next
// proposal for the job would always be stale — one piggybacked delta saves
// a resync round trip.
type CompleteResponse struct {
	// Settled is "completed", "released" (failed, will retry) or
	// "abandoned" (failed MaxRetries times, candidate retired).
	Settled string `json:"settled"`
	// Posterior is the settled job's fresh surface (nil with speculation
	// disabled, in legacy-selection mode, or when the job is unknown).
	Posterior *JobPosterior `json:"posterior,omitempty"`
}

// LeaveRequest deregisters a worker gracefully: its outstanding leases are
// released (re-queued) immediately instead of waiting out the TTL.
type LeaveRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaveResponse reports how many leases the departure re-queued.
type LeaveResponse struct {
	Released int `json:"released"`
}

// JobInfo is the GET /fleet/job reply: the job's logged program, from
// which a worker regenerates the exact candidate list (same derivation as
// crash recovery), plus the expected candidate names as a cross-check.
type JobInfo struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Program    string   `json:"program"`
	Candidates []string `json:"candidates"`
}
