package fleet

import (
	"context"
	"strings"
	"sync"

	"repro/internal/server"
	"repro/internal/templates"
)

// Executor trains one leased candidate. It is the execution substrate both
// halves of the system plug into: the in-process engine's workers run
// through a TrainerExecutor, remote worker agents default to a SimExecutor
// (the trainsim substrate) and can substitute anything that can measure an
// accuracy and a cost — a real training harness, a container launcher, an
// RPC to an accelerator box. Implementations must be safe for concurrent
// use and must return errors, never panic: a panicking executor would take
// its whole worker down.
type Executor interface {
	// Execute trains cand for jobID and reports measured accuracy and
	// execution cost. ctx is cancelled when the lease is lost (expired,
	// coordinator gone) or the worker is shutting down; a run that cannot
	// observe ctx may simply finish and have its result dropped.
	Execute(ctx context.Context, jobID string, cand templates.Candidate) (accuracy, cost float64, err error)
}

// JobAware executors are told each job's candidate surface before its
// first Execute for that job. The SimExecutor builds its per-job simulator
// here; executors that only need the candidate itself can ignore the
// interface entirely.
type JobAware interface {
	RegisterJob(jobID string, cands []templates.Candidate) error
}

// TrainerExecutor adapts a server.Trainer to the Executor interface — the
// in-process engine's workers execute through it, making them fleet
// members in all but transport.
type TrainerExecutor struct {
	Trainer server.Trainer
}

// Execute implements Executor by delegating to the wrapped trainer (which
// has no context plumbing; in-process runs settle synchronously anyway).
func (x TrainerExecutor) Execute(_ context.Context, jobID string, cand templates.Candidate) (float64, float64, error) {
	return x.Trainer.Train(jobID, cand)
}

// SimExecutor is the default worker-side executor: the trainsim substrate
// rebuilt locally. Because simulated runs are deterministic pure functions
// of (seed, job, candidate list), a SimExecutor seeded like the
// coordinator produces bit-identical results to the coordinator's own
// trainer — which is what lets a fleet run converge to the same best
// models as a single-process run, no matter which worker trains what.
type SimExecutor struct {
	trainer *server.SimTrainer

	mu         sync.Mutex
	registered map[string]bool
}

// NewSimExecutor builds a SimExecutor on the given seed (must match the
// coordinator's; agents take it from RegisterResponse.Seed).
func NewSimExecutor(seed int64) *SimExecutor {
	return &SimExecutor{
		trainer:    server.NewSimTrainer(nil, seed),
		registered: make(map[string]bool),
	}
}

// RegisterJob implements JobAware: it builds the per-job simulator from
// the candidate list. Registering the same job again (an agent re-fetching
// job info after a reconnect) is a no-op.
func (x *SimExecutor) RegisterJob(jobID string, cands []templates.Candidate) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.registered[jobID] {
		return nil
	}
	if err := x.trainer.Register(jobID, cands); err != nil {
		// The underlying trainer is the source of truth; tolerate a
		// registration that raced a concurrent one.
		if strings.Contains(err.Error(), "already registered") {
			x.registered[jobID] = true
			return nil
		}
		return err
	}
	x.registered[jobID] = true
	return nil
}

// Execute implements Executor on the local simulator.
func (x *SimExecutor) Execute(_ context.Context, jobID string, cand templates.Candidate) (float64, float64, error) {
	return x.trainer.Train(jobID, cand)
}
